//! End-to-end reproduction of every claim the paper makes about its
//! running examples (Figures 1 and 2, Sections 1, 3.3, 5.2).

use tpq::prelude::*;

fn types() -> TypeInterner {
    TypeInterner::new()
}

/// Figure 2 queries, by panel, in the DSL.
mod fig2 {
    pub const A: &str = "Articles[/Article//Paragraph]/Article*[/Title]//Section//Paragraph";
    pub const B: &str = "Articles[/Article//Paragraph]/Article*//Section//Paragraph";
    pub const C: &str = "Articles/Article*//Section//Paragraph";
    pub const D: &str = "Articles[/Article//Paragraph]/Article*//Section";
    pub const E: &str = "Articles/Article*//Section";
    pub const F: &str = "Organization*[/Employee//Project][/PermEmp//DBproject]";
    pub const G: &str = "Organization*/PermEmp//DBproject";
    pub const H: &str = "OrgUnit*[/Dept/Researcher//DBProject]//Dept//DBProject";
    pub const I: &str = "OrgUnit*/Dept/Researcher//DBProject";
}

#[test]
fn section_1_book_publisher() {
    // "find the title and author of books that have a publisher" + "every
    // book has a publisher" simplifies to "find the title and author of
    // books".
    let mut tys = types();
    let q = parse_pattern("Book*[/Title][/Author][/Publisher]", &mut tys).unwrap();
    let ics = parse_constraints("Book -> Publisher", &mut tys).unwrap();
    let m = minimize(&q, &ics).pattern;
    let want = parse_pattern("Book*[/Title][/Author]", &mut tys).unwrap();
    assert!(isomorphic(&m, &want));
}

#[test]
fn section_1_department_projects() {
    let mut tys = types();
    let q = parse_pattern("Dept*[//DBProject]//Manager//DBProject", &mut tys).unwrap();
    let m = cim(&q);
    let want = parse_pattern("Dept*//Manager//DBProject", &mut tys).unwrap();
    assert!(isomorphic(&m, &want));
}

#[test]
fn fig_2h_equivalent_to_2i_and_minimal() {
    let mut tys = types();
    let h = parse_pattern(fig2::H, &mut tys).unwrap();
    let i = parse_pattern(fig2::I, &mut tys).unwrap();
    assert!(equivalent(&h, &i));
    assert!(isomorphic(&cim(&h), &i));
    // 2(i) is already minimal.
    assert!(isomorphic(&cim(&i), &i));
}

#[test]
fn fig_2h_star_on_dept_breaks_equivalence() {
    // Section 3.1: "if Figure 2(h) were modified to put the '*' on the
    // Dept node in the right branch, the queries would not be equivalent."
    let mut tys = types();
    let h_star =
        parse_pattern("OrgUnit[/Dept/Researcher//DBProject]//Dept*//DBProject", &mut tys).unwrap();
    let i_star = parse_pattern("OrgUnit/Dept*/Researcher//DBProject", &mut tys).unwrap();
    assert!(!equivalent(&h_star, &i_star));
    // And the modified 2(h) really keeps both branches under CIM.
    assert_eq!(cim(&h_star).size(), h_star.size());
}

#[test]
fn fig_2f_to_2g_under_cooccurrence() {
    let mut tys = types();
    let f = parse_pattern(fig2::F, &mut tys).unwrap();
    let g = parse_pattern(fig2::G, &mut tys).unwrap();
    let ics = parse_constraints("PermEmp ~ Employee\nDBproject ~ Project", &mut tys).unwrap();
    assert!(equivalent_under(&f, &g, &ics));
    assert!(!equivalent(&f, &g));
    let m = minimize(&f, &ics).pattern;
    assert!(isomorphic(&m, &g));
    // 2(g) "cannot be reduced further and is thus minimal".
    assert!(isomorphic(&minimize(&g, &ics).pattern, &g));
}

#[test]
fn fig_2a_chain_of_simplifications() {
    let mut tys = types();
    let a = parse_pattern(fig2::A, &mut tys).unwrap();
    let b = parse_pattern(fig2::B, &mut tys).unwrap();
    let c = parse_pattern(fig2::C, &mut tys).unwrap();
    let e = parse_pattern(fig2::E, &mut tys).unwrap();
    let title_ic = parse_constraints("Article -> Title", &mut tys).unwrap();
    let para_ic = parse_constraints("Section ->> Paragraph", &mut tys).unwrap();
    let both = parse_constraints("Article -> Title\nSection ->> Paragraph", &mut tys).unwrap();

    // Erratum (see DESIGN.md §2.3): the paper says 2(a) "cannot be
    // minimized further" without ICs, but its own 2(b) -> 2(c) step folds
    // the unmarked Article branch onto Article*, and the identical fold
    // applies to 2(a) (Title sits only in the mapping's *target*). The
    // fold is semantically sound — we assert the correct behaviour.
    let a_folded = cim(&a);
    assert_eq!(a_folded.size(), 5, "left branch folds; Title survives");
    assert!(equivalent(&a, &a_folded));
    // With Article -> Title, 2(a) ≡ 2(b).
    assert!(equivalent_under(&a, &b, &title_ic));
    // 2(b) CIM-minimizes to 2(c), which is CIM-minimal.
    assert!(isomorphic(&cim(&b), &c));
    assert!(isomorphic(&cim(&c), &c));
    // 2(c) + Section ->> Paragraph gives 2(e).
    assert!(isomorphic(&minimize(&c, &para_ic).pattern, &e));
    // Full pipeline from 2(a) with both ICs lands on 2(e).
    assert!(isomorphic(&minimize(&a, &both).pattern, &e));
    assert!(equivalent_under(&a, &e, &both));
}

#[test]
fn fig_2d_requires_augmentation() {
    // Section 3.3 last example: 2(d) is CIM-minimal, CDM can do nothing,
    // yet 2(e) is the true minimum under Section ->> Paragraph.
    let mut tys = types();
    let d = parse_pattern(fig2::D, &mut tys).unwrap();
    let e = parse_pattern(fig2::E, &mut tys).unwrap();
    let ics = parse_constraints("Section ->> Paragraph", &mut tys).unwrap();

    assert!(isomorphic(&cim(&d), &d), "2(d) is CIM-minimal");
    let after_cdm = cdm(&d, &ics);
    assert_eq!(after_cdm.size(), d.size(), "no local redundancy in 2(d)");
    let after_acim = acim(&d, &ics);
    assert!(isomorphic(&after_acim, &e), "augmentation unlocks 2(e)");
    assert!(equivalent_under(&d, &e, &ics));
}

#[test]
fn section_5_1_chase_then_cim_is_not_enough() {
    // The Section 5.1 pitfall: chasing 2(b) with Section ->> Paragraph and
    // then running plain CIM yields 2(c)'s shape (4 nodes), NOT the
    // minimal 2(e) (3 nodes) — because the chase-added Paragraph is a
    // plain node that keeps the Section "constrained".
    let mut tys = types();
    let b = parse_pattern(fig2::B, &mut tys).unwrap();
    let ics = parse_constraints("Section ->> Paragraph", &mut tys).unwrap();
    let chased = tpq::core::chase(&b, &ics);
    let after = cim(&chased);
    let e = parse_pattern(fig2::E, &mut tys).unwrap();
    assert!(after.size() > e.size(), "naive chase+CIM overshoots the minimum");
    // ACIM (temporary-aware augmentation) does reach 2(e).
    assert!(isomorphic(&acim(&b, &ics), &e));
}

#[test]
fn fig_1a_schema_inference() {
    // Figure 1(a): from the Book schema we infer Book -> Title and, since
    // every Author has a LastName child, Book ->> LastName.
    let mut tys = types();
    let schema = tpq::constraints::Schema::parse(
        "element Book = Title, Author+, Chapter\nelement Author = LastName",
        &mut tys,
    )
    .unwrap();
    let ics = schema.infer_closed();
    let t = |n: &str| tys.lookup(n).unwrap();
    assert!(ics.has_required_child(t("Book"), t("Title")));
    assert!(ics.has_required_descendant(t("Book"), t("LastName")));

    // Use them: a query asking for books with a last-name descendant
    // simplifies.
    let q = parse_pattern("Book*[/Title][//LastName]", &mut tys).unwrap();
    let m = minimize(&q, &ics).pattern;
    assert_eq!(m.size(), 1, "Title and LastName are both implied");
}

#[test]
fn answer_sets_agree_on_conforming_databases() {
    // Semantic check of the whole 2(a) -> 2(e) pipeline on documents that
    // satisfy the constraints.
    let mut tys = types();
    let a = parse_pattern(fig2::A, &mut tys).unwrap();
    let e = parse_pattern(fig2::E, &mut tys).unwrap();
    let doc = parse_xml(
        "<Articles>\
           <Article><Title/><Section><Paragraph/></Section></Article>\
           <Article><Title/><Section><Section><Paragraph/></Section><Paragraph/></Section></Article>\
           <Article><Title/></Article>\
         </Articles>",
        &mut tys,
    )
    .unwrap();
    let mut ans_a = answer_set(&a, &doc);
    let mut ans_e = answer_set(&e, &doc);
    ans_a.sort_unstable();
    ans_e.sort_unstable();
    assert_eq!(ans_a, ans_e);
    assert_eq!(ans_a.len(), 2);
}

#[test]
fn non_conforming_database_distinguishes_them() {
    // On a database violating Section ->> Paragraph the two queries are
    // NOT interchangeable — constraint-dependent minimization is only
    // sound on conforming data.
    let mut tys = types();
    let c = parse_pattern(fig2::C, &mut tys).unwrap();
    let e = parse_pattern(fig2::E, &mut tys).unwrap();
    let bad =
        parse_xml("<Articles><Article><Title/><Section/></Article></Articles>", &mut tys).unwrap();
    let ans_c = answer_set(&c, &bad);
    let ans_e = answer_set(&e, &bad);
    assert!(ans_c.is_empty());
    assert_eq!(ans_e.len(), 1);
}
