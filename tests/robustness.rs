//! Robustness battery: resource governance, panic isolation and
//! deterministic fault injection, driven through the public API.
//!
//! Three families of guarantees are checked here (see
//! `docs/ROBUSTNESS.md`):
//!
//! * **Guards** — every minimization strategy honors a deadline, a step
//!   budget and cooperative cancellation, failing with `Error::Budget`
//!   instead of hanging, and never publishing a non-equivalent result;
//! * **Isolation** — a panicking or fault-injected task inside the batch
//!   engine lands in its own result slot; the process, the pool and the
//!   sibling tasks survive;
//! * **Failpoints** — the `tpq_base::failpoint` hooks (`chase.step`,
//!   `match.build`, `pool.task`, `parse.*`) fire deterministically and
//!   surface through the layers above them as typed errors.

use tpq::base::failpoint::{self, Action};
use tpq::base::BudgetResource;
use tpq::core::{BatchMinimizer, Minimizer, Strategy};
use tpq::matching::Matcher;
use tpq::prelude::*;
use tpq_workload::{random_constraints, random_pattern, ConstraintSpec, PatternSpec};

const STRATEGIES: [Strategy; 4] =
    [Strategy::CimOnly, Strategy::AcimOnly, Strategy::CdmOnly, Strategy::CdmThenAcim];

/// A pattern big enough that every strategy must spend real work on it.
fn big_pattern(seed: u64) -> TreePattern {
    random_pattern(&PatternSpec { nodes: 60, num_types: 5, d_edge_prob: 0.4, max_fanout: 3, seed })
}

fn some_constraints() -> ConstraintSet {
    random_constraints(&ConstraintSpec { count: 5, num_types: 5, seed: 3 })
}

// ---------------------------------------------------------------- guards

#[test]
fn every_strategy_honors_an_expired_deadline() {
    let q = big_pattern(1);
    let ics = some_constraints();
    let guard = Guard::with_deadline_ms(0);
    std::thread::sleep(std::time::Duration::from_millis(2));
    for strategy in STRATEGIES {
        let mini = Minimizer::with_strategy(&ics, strategy);
        let err = mini.minimize_guarded(&q, &guard).unwrap_err();
        assert!(
            matches!(err, Error::Budget { resource: BudgetResource::Deadline, .. }),
            "{strategy:?}: {err}"
        );
    }
}

#[test]
fn pathological_pattern_trips_a_short_deadline_instead_of_hanging() {
    // Acceptance check: a heavy input under a 1 ms deadline must come
    // back quickly with a Budget error, not hang. A 900-node pattern
    // forces quadratic table builds well past the deadline.
    let q = random_pattern(&PatternSpec {
        nodes: 900,
        num_types: 4,
        d_edge_prob: 0.5,
        max_fanout: 3,
        seed: 11,
    });
    let ics = some_constraints();
    let mini = Minimizer::new(&ics);
    let t0 = std::time::Instant::now();
    let err = mini.minimize_guarded(&q, &Guard::with_deadline_ms(1)).unwrap_err();
    assert!(err.is_budget(), "{err}");
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(10),
        "deadline must abort promptly, took {:?}",
        t0.elapsed()
    );
}

#[test]
fn every_strategy_honors_a_step_budget() {
    let q = big_pattern(2);
    let ics = some_constraints();
    for strategy in STRATEGIES {
        let mini = Minimizer::with_strategy(&ics, strategy);
        // Unlimited succeeds; a 5-step allowance cannot.
        assert!(mini.minimize_guarded(&q, &Guard::unlimited()).is_ok(), "{strategy:?}");
        let err = mini.minimize_guarded(&q, &Guard::with_budget(5)).unwrap_err();
        assert!(
            matches!(err, Error::Budget { resource: BudgetResource::Steps, .. }),
            "{strategy:?}: {err}"
        );
    }
}

#[test]
fn cancellation_from_another_thread_interrupts_minimization() {
    let ics = some_constraints();
    let mini = Minimizer::new(&ics);
    let guard = Guard::cancellable();
    let worker = {
        let guard = guard.clone();
        let mini = mini.clone();
        std::thread::spawn(move || {
            // Keep minimizing fresh patterns until the guard kills one.
            let mut seed = 100;
            loop {
                seed += 1;
                if let Err(e) = mini.minimize_guarded(&big_pattern(seed), &guard) {
                    return e;
                }
            }
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(10));
    guard.cancel();
    let err = worker.join().expect("worker must return an error, not die");
    assert!(matches!(err, Error::Budget { resource: BudgetResource::Cancelled, .. }), "{err}");
}

/// Cancel-safety property: an interrupted minimization either returns a
/// Budget error (input untouched) or, when the budget happened to
/// suffice, a pattern equivalent to the input. It never returns a
/// non-equivalent pattern, for any strategy and any interruption point.
#[test]
fn interrupted_minimization_is_never_wrong() {
    let ics = some_constraints();
    for seed in 0..6u64 {
        let q = random_pattern(&PatternSpec {
            nodes: 12,
            num_types: 5,
            d_edge_prob: 0.4,
            max_fanout: 3,
            seed,
        });
        for strategy in STRATEGIES {
            let mini = Minimizer::with_strategy(&ics, strategy);
            // Sweep budgets from "trips immediately" to "never trips",
            // interrupting the pipeline at many different points.
            for budget in [1u64, 3, 10, 30, 100, 300, 1000, 10_000, 1_000_000] {
                let before = q.clone();
                match mini.minimize_guarded(&q, &Guard::with_budget(budget)) {
                    Err(e) => assert!(e.is_budget(), "{strategy:?} budget={budget}: {e}"),
                    Ok(out) => {
                        assert!(
                            mini.equivalent(&q, &out.pattern),
                            "{strategy:?} budget={budget}: non-equivalent result"
                        );
                    }
                }
                assert_eq!(q, before, "{strategy:?} budget={budget}: input mutated");
            }
        }
    }
}

#[test]
fn guarded_matchers_honor_budgets() {
    let mut tys = TypeInterner::new();
    let doc = tpq::data::generate_document(&tpq::data::DocumentSpec {
        nodes: 200,
        num_types: 4,
        max_fanout: 4,
        extra_type_prob: 0.2,
        seed: 5,
    });
    for i in 0..4 {
        tys.intern(&format!("t{i}"));
    }
    let q = parse_pattern("t0*[//t1][//t2]//t3", &mut tys).unwrap();
    // The production matcher and the naive cross-validator both trip.
    let err = Matcher::new_guarded(&q, &doc, &Guard::with_budget(3)).err().expect("must trip");
    assert!(err.is_budget(), "{err}");
    let err =
        tpq::matching::answer_set_naive_guarded(&q, &doc, &Guard::with_budget(3)).unwrap_err();
    assert!(err.is_budget(), "{err}");
    // Unlimited guards agree with the infallible entry points.
    let fast = Matcher::new_guarded(&q, &doc, &Guard::unlimited()).unwrap().answers();
    let mut plain = answer_set(&q, &doc);
    plain.sort_unstable();
    let mut fast = fast;
    fast.sort_unstable();
    assert_eq!(fast, plain);
}

// ------------------------------------------------------------- failpoints

#[test]
fn chase_failpoint_surfaces_as_an_injected_error() {
    let _fp = failpoint::arm_for_thread("chase.step", Action::Err, 1);
    let mut tys = TypeInterner::new();
    let ics = parse_constraints("a -> b", &mut tys).unwrap();
    let q = parse_pattern("a*[/b][/c]", &mut tys).unwrap();
    let mini = Minimizer::new(&ics);
    let err = mini.minimize_guarded(&q, &Guard::unlimited()).unwrap_err();
    assert_eq!(err, Error::Injected { point: "chase.step".into() });
    // One-shot: the very next run is clean.
    assert!(mini.minimize_guarded(&q, &Guard::unlimited()).is_ok());
}

#[test]
fn mid_chase_panic_inside_the_batch_is_isolated() {
    // Panic on the 3rd chase step: the chase is mid-flight when the fault
    // fires, and the pool shield must contain it to one slot.
    let _fp = failpoint::arm_for_thread("chase.step", Action::Panic, 3);
    let mut tys = TypeInterner::new();
    let ics = parse_constraints("a -> b\nb -> c", &mut tys).unwrap();
    let engine = BatchMinimizer::new(&ics);
    let queries = vec![
        parse_pattern("a*[/b][/d]", &mut tys).unwrap(),
        parse_pattern("x*[/y]", &mut tys).unwrap(),
    ];
    // jobs=1 keeps every task on this thread, where the failpoint is armed.
    let out = engine.minimize_batch_guarded(&queries, 1, &Guard::unlimited());
    let errors: Vec<usize> = (0..queries.len()).filter(|&i| out.results[i].is_err()).collect();
    assert_eq!(errors.len(), 1, "exactly one slot fails: {:?}", out.results);
    let failed = errors[0];
    match &out.results[failed] {
        Err(Error::WorkerPanic { message }) => {
            assert!(message.contains("chase.step"), "{message}")
        }
        other => panic!("expected a captured panic, got {other:?}"),
    }
    assert_eq!(out.stats.panics, 1);
    // The engine still works afterwards.
    assert!(engine.minimize_guarded(&queries[failed], &Guard::unlimited()).is_ok());
}

#[test]
fn matcher_build_failpoint_fires() {
    let _fp = failpoint::arm_for_thread("match.build", Action::Err, 1);
    let mut tys = TypeInterner::new();
    let doc = parse_xml("<a><b/></a>", &mut tys).unwrap();
    let q = parse_pattern("a*/b", &mut tys).unwrap();
    let err = Matcher::new_guarded(&q, &doc, &Guard::unlimited()).err().expect("must fire");
    assert_eq!(err, Error::Injected { point: "match.build".into() });
    assert!(Matcher::new_guarded(&q, &doc, &Guard::unlimited()).is_ok(), "one-shot");
}

#[test]
fn injected_worker_panic_never_aborts_the_process() {
    // Acceptance check, through the facade: a panic injected into a pool
    // worker becomes an error entry; the other tasks and the process
    // survive, on every jobs setting that stays on this thread.
    let mut tys = TypeInterner::new();
    let ics = parse_constraints("a -> b", &mut tys).unwrap();
    let queries: Vec<TreePattern> = ["a*[/b]", "b*[/c]", "c*[/d]", "d*[/e]"]
        .iter()
        .map(|s| parse_pattern(s, &mut tys).unwrap())
        .collect();
    let engine = BatchMinimizer::new(&ics);
    let _fp = failpoint::arm_for_thread("pool.task", Action::Panic, 2);
    let out = engine.minimize_batch_guarded(&queries, 1, &Guard::unlimited());
    assert_eq!(out.stats.failed, 1);
    assert_eq!(out.stats.panics, 1);
    assert!(out.results[0].is_ok());
    assert!(matches!(out.results[1], Err(Error::WorkerPanic { .. })));
    assert!(out.results[2].is_ok());
    assert!(out.results[3].is_ok());
}

// --------------------------------------------------------------- batching

#[test]
fn batch_under_budget_pressure_completes_cached_work() {
    let mut tys = TypeInterner::new();
    let ics = parse_constraints("a -> b", &mut tys).unwrap();
    let engine = BatchMinimizer::new(&ics);
    let warm = parse_pattern("a*[/b][/c]", &mut tys).unwrap();
    let cold = parse_pattern("d*[/e][/f]", &mut tys).unwrap();
    let warmed = engine.minimize(&warm);
    let guard = Guard::cancellable();
    guard.cancel();
    let out = engine.minimize_batch_guarded(&[warm, cold], 2, &guard);
    assert_eq!(out.results[0].as_ref().unwrap(), &warmed, "cache hit survives");
    assert!(out.results[1].as_ref().unwrap_err().is_budget(), "cold query trips");
}
