//! Integration tests for the `tpq` command-line binary.

use std::io::Write as _;
use std::process::{Command, Output};

fn tpq(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tpq")).args(args).output().expect("binary runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

fn temp_file(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("tpq-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

#[test]
fn minimize_with_inline_constraint() {
    let out = tpq(&[
        "minimize",
        "--query",
        "Book*[/Title][/Publisher]",
        "--ic",
        "Book -> Publisher",
        "--stats",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert_eq!(stdout(&out).trim(), "Book*/Title");
    assert!(stderr(&out).contains("nodes 3 -> 2"));
}

#[test]
fn minimize_accepts_xpath() {
    let out = tpq(&[
        "minimize",
        "--xpath",
        "//Dept[.//DBProject]//Manager//DBProject",
        "--strategy",
        "cim",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    // XPath marks the trailing DBProject; the bare predicate branch folds.
    let dsl = stdout(&out);
    assert!(dsl.contains("Manager"), "{dsl}");
    assert!(!dsl.contains('['), "single spine expected: {dsl}");
}

#[test]
fn minimize_with_schema_file() {
    let schema =
        temp_file("schema.txt", "element Book = Title, Author+\nelement Author = LastName");
    let out = tpq(&[
        "minimize",
        "--query",
        "Book*[/Title][//LastName][/Chapter]",
        "--schema",
        schema.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert_eq!(stdout(&out).trim(), "Book*/Chapter");
}

#[test]
fn match_reports_answers_with_paths() {
    let doc = temp_file("org.xml", "<Root><Dept><Manager/></Dept><Dept/></Root>");
    let out = tpq(&["match", "--query", "Dept*/Manager", "--doc", doc.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("1 answer(s)"), "{text}");
    assert!(text.contains("/Root/Dept"), "{text}");
}

#[test]
fn match_takes_positional_doc_and_engines_agree() {
    let doc =
        temp_file("engines.xml", "<Root><Dept><Manager/><Dept><Manager/></Dept></Dept></Root>");
    let path = doc.to_str().unwrap();
    let mut outputs = Vec::new();
    for engine in ["twig", "embed", "naive"] {
        let out = tpq(&["match", "Dept*//Manager", path, "--engine", engine]);
        assert!(out.status.success(), "{engine}: {}", stderr(&out));
        outputs.push(stdout(&out));
    }
    assert!(outputs[0].contains("2 answer(s)"), "{}", outputs[0]);
    assert_eq!(outputs[0], outputs[1], "twig vs embed output");
    assert_eq!(outputs[0], outputs[2], "twig vs naive output");
    let out = tpq(&["match", "Dept*//Manager", path, "--engine", "bogus"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown engine"), "{}", stderr(&out));
}

#[test]
fn match_count_mode() {
    let doc = temp_file("shelf.xml", r#"<Shelf><Book price="5"/><Book price="50"/></Shelf>"#);
    let out = tpq(&[
        "match",
        "--query",
        "Shelf*//Book{price<10}",
        "--doc",
        doc.to_str().unwrap(),
        "--count",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert_eq!(stdout(&out).trim(), "1");
}

#[test]
fn check_reports_containment_directions() {
    let out = tpq(&["check", "--q1", "a*/b/c", "--q2", "a*/b"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("q1 ⊆ q2: true"), "{text}");
    assert!(text.contains("q2 ⊆ q1: false"), "{text}");
    assert!(text.contains("equivalent: false"), "{text}");
    // With an IC the reverse direction holds too.
    let out = tpq(&["check", "--q1", "a*", "--q2", "a*/b", "--ic", "a -> b"]);
    assert!(stdout(&out).contains("equivalent: true"), "{}", stdout(&out));
}

#[test]
fn closure_prints_derived_constraints() {
    let ics = temp_file("ics.txt", "a -> b\nb ~ c\n");
    let out = tpq(&["closure", "--constraints", ics.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("a -> b"));
    assert!(text.contains("a -> c"), "transferred via co-occurrence: {text}");
    assert!(text.contains("a ->> b"));
}

#[test]
fn repair_outputs_satisfying_xml() {
    let doc = temp_file("raw.xml", "<Book/>");
    let ics = temp_file("bookics.txt", "Book -> Title\n");
    let out =
        tpq(&["repair", "--doc", doc.to_str().unwrap(), "--constraints", ics.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("<Title/>"), "{}", stdout(&out));
}

#[test]
fn errors_are_reported_with_nonzero_exit() {
    let out = tpq(&["minimize", "--query", "a[["]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("error:"));
    let out = tpq(&["bogus"]);
    assert!(!out.status.success());
    let out = tpq(&["minimize"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--query is required"), "{}", stderr(&out));
}

#[test]
fn minimize_batch_mode_shares_one_session() {
    let queries = temp_file(
        "queries.txt",
        "# comment\nBook*[/Title][/Publisher]\nBook*[/Publisher]\n\nShelf*//Book[/Publisher]\n",
    );
    let out = tpq(&["minimize", "--batch", queries.to_str().unwrap(), "--ic", "Book -> Publisher"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    let lines: Vec<&str> = text.trim().lines().collect();
    assert_eq!(lines, vec!["Book*/Title", "Book*", "Shelf*//Book"]);
}

/// A heavy spine query: quadratic table builds make it far slower than a
/// 1 ms deadline on any machine.
fn pathological_query(nodes: usize) -> String {
    let mut s = String::from("a*");
    for i in 0..nodes {
        s.push_str(if i % 2 == 0 { "//b" } else { "/a" });
    }
    s
}

#[test]
fn minimize_deadline_exceeded_exits_cleanly() {
    let out = tpq(&["minimize", "--query", &pathological_query(3000), "--deadline-ms", "1"]);
    assert!(!out.status.success(), "a 1 ms deadline must trip");
    let err = stderr(&out);
    assert!(err.contains("budget error"), "{err}");
    assert!(err.contains("deadline"), "{err}");
}

#[test]
fn minimize_budget_exhausted_exits_cleanly() {
    let out = tpq(&["minimize", "--query", "a*[/b][/c]", "--budget", "0"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("step budget"), "{}", stderr(&out));
}

#[test]
fn batch_deadline_reports_per_query_errors_and_exit_one() {
    let queries = temp_file(
        "slow-queries.txt",
        &format!("{}\n{}\n", pathological_query(3000), pathological_query(2500)),
    );
    let out =
        tpq(&["minimize", "--batch", queries.to_str().unwrap(), "--deadline-ms", "1", "--stats"]);
    assert!(!out.status.success(), "timed-out batch must exit nonzero");
    let text = stdout(&out);
    // One stdout line per query, each a clean commented error.
    assert_eq!(text.trim().lines().count(), 2, "{text}");
    for line in text.trim().lines() {
        assert!(line.starts_with("# error:"), "{line}");
        assert!(line.contains("budget error"), "{line}");
    }
    let err = stderr(&out);
    assert!(err.contains("2 failed"), "{err}");
    assert!(err.contains("2 of 2 queries failed"), "{err}");
}

#[test]
fn generous_limits_do_not_disturb_results() {
    let out = tpq(&[
        "minimize",
        "--query",
        "Book*[/Title][/Publisher]",
        "--ic",
        "Book -> Publisher",
        "--deadline-ms",
        "60000",
        "--budget",
        "100000000",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert_eq!(stdout(&out).trim(), "Book*/Title");
}

#[test]
fn failpoint_env_injects_a_deterministic_fault() {
    let out = Command::new(env!("CARGO_BIN_EXE_tpq"))
        .args(["minimize", "--query", "a*[/b]"])
        .env("TPQ_FAILPOINT", "parse.pattern=err")
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("injected fault at failpoint 'parse.pattern'"),
        "{}",
        stderr(&out)
    );
    // Bad specs are ignored (fail-open), and an unrelated name is inert.
    let out = Command::new(env!("CARGO_BIN_EXE_tpq"))
        .args(["minimize", "--query", "a*[/b]"])
        .env("TPQ_FAILPOINT", "chase.step=panic@999999")
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", stderr(&out));
}

#[test]
fn serve_round_trips_requests_and_shuts_down_cleanly() {
    use std::io::{BufRead as _, BufReader, Read as _};
    let mut child = Command::new(env!("CARGO_BIN_EXE_tpq"))
        .args(["serve", "--addr", "127.0.0.1:0", "--jobs", "2"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("serve starts");
    // The first stdout line announces the bound address.
    let mut child_stdout = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    child_stdout.read_line(&mut banner).unwrap();
    let addr = banner.trim().strip_prefix("listening on ").unwrap_or_else(|| {
        panic!("unexpected banner {banner:?}");
    });

    let stream = std::net::TcpStream::connect(addr).expect("connect to serve");
    stream.set_read_timeout(Some(std::time::Duration::from_secs(30))).unwrap();
    let mut conn = BufReader::new(stream);
    let mut round_trip = |line: &str| -> String {
        writeln!(conn.get_mut(), "{line}").unwrap();
        let mut response = String::new();
        conn.read_line(&mut response).unwrap();
        response.trim_end().to_owned()
    };
    let response =
        round_trip(r#"{"query": "Book*[/Title][/Publisher]", "constraints": "Book -> Publisher"}"#);
    assert!(response.contains(r#""minimized":"Book*/Title""#), "{response}");
    let stats = round_trip("STATS");
    assert!(stats.contains("\"uptime_ms\""), "{stats}");
    let ack = round_trip("SHUTDOWN");
    assert!(ack.contains("\"draining\":true"), "{ack}");

    let status = child.wait().expect("serve exits");
    assert!(status.success(), "serve should exit 0 after SHUTDOWN");
    let mut err = String::new();
    child.stderr.take().unwrap().read_to_string(&mut err).unwrap();
    assert!(err.contains("1 connections"), "{err}");
    assert!(err.contains("1 requests ok"), "{err}");
}

#[test]
fn serve_rejects_bad_flags() {
    let out = tpq(&["serve", "--max-conns", "0"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--max-conns"), "{}", stderr(&out));
    let out = tpq(&["serve", "--addr", "definitely-not-an-address"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot bind"), "{}", stderr(&out));
}

#[test]
fn bad_governance_flags_are_rejected() {
    let out = tpq(&["minimize", "--query", "a*", "--deadline-ms", "soon"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--deadline-ms"), "{}", stderr(&out));
    let out = tpq(&["minimize", "--query", "a*", "--budget", "-3"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--budget"), "{}", stderr(&out));
}

#[test]
fn explain_names_a_constraint_or_witness_per_deleted_node() {
    // The Figure 2 ACIM example: three deletions, each justified.
    let out = tpq(&[
        "explain",
        "Articles[/Article//Paragraph]/Article*//Section//Paragraph",
        "--ic",
        "Section ->> Paragraph",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some("Articles/Article*//Section"));
    let summary = lines.next().expect("summary line");
    assert!(summary.contains("3 deleted"), "{summary}");
    assert!(summary.contains("trace "), "{summary}");
    let deletions: Vec<&str> = lines.filter(|l| l.trim_start().starts_with("- ")).collect();
    assert_eq!(deletions.len(), 3, "{text}");
    for line in &deletions {
        assert!(
            line.contains("Section ->> Paragraph") || line.contains("folds it onto"),
            "deletion line lacks a constraint or witness: {line}"
        );
    }
    assert!(text.contains("CDM rule 2"), "{text}");
    assert!(text.contains("IC-implied Paragraph"), "{text}");
}

#[test]
fn explain_dumps_decision_events_as_json_lines() {
    let out = tpq(&["explain", "Dept*[//DBProject]//Manager//DBProject", "--events"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let events = stderr(&out);
    let prune = events
        .lines()
        .find(|l| l.contains("cim.prune"))
        .unwrap_or_else(|| panic!("no cim.prune event in {events:?}"));
    let json = tpq::base::Json::parse(prune).expect("event line is JSON");
    assert!(json.get("trace").and_then(tpq::base::Json::as_str).is_some());
    let fields = json.get("fields").expect("fields");
    assert!(fields.get("witness").is_some());
}

#[test]
fn serve_slow_log_flag_requires_a_threshold() {
    let out = tpq(&["serve", "--slow-log", "slow.jsonl"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--slow-ms"), "{}", stderr(&out));
}
