//! Differential and determinism tests for the parallel batch engine:
//! `BatchMinimizer` must agree with the sequential `Minimizer` on every
//! query (up to isomorphism — minimal queries are unique only up to
//! isomorphism, Theorem 5.1), for every strategy and every worker count,
//! and its output must not depend on the worker count at all.

use tpq::core::{BatchMinimizer, Minimizer, Strategy};
use tpq::prelude::*;
use tpq_workload::{random_constraints, random_pattern, ConstraintSpec, PatternSpec};

const STRATEGIES: [Strategy; 4] =
    [Strategy::CimOnly, Strategy::AcimOnly, Strategy::CdmOnly, Strategy::CdmThenAcim];

/// A mixed workload over one small type universe: random shapes plus
/// hand-picked paper patterns, with deliberate duplicates and
/// sibling-permuted isomorphic copies to exercise the memo cache.
fn workload() -> (Vec<TreePattern>, ConstraintSet) {
    let num_types = 6;
    let mut queries: Vec<TreePattern> = (0..24)
        .map(|seed| {
            random_pattern(&PatternSpec {
                nodes: 6 + (seed as usize % 7),
                num_types,
                d_edge_prob: 0.4,
                max_fanout: 3,
                seed,
            })
        })
        .collect();
    let mut tys = TypeInterner::new();
    for i in 0..num_types {
        tys.intern(&format!("t{i}"));
    }
    for src in [
        "t0*[/t1][/t2]",
        "t0*[/t2][/t1]", // isomorphic to the previous line
        "t0*[//t1//t2]//t1//t2",
        "t1*[/t2][/t2/t3]",
        "t0*",
    ] {
        queries.push(parse_pattern(src, &mut tys).expect("workload pattern"));
    }
    let dup = queries[3].clone();
    queries.push(dup); // exact duplicate
    let ics = random_constraints(&ConstraintSpec { count: 5, num_types, seed: 7 });
    (queries, ics)
}

#[test]
fn batch_agrees_with_sequential_for_every_strategy_and_job_count() {
    let (queries, ics) = workload();
    for strategy in STRATEGIES {
        let sequential = Minimizer::with_strategy(&ics, strategy);
        let expected: Vec<TreePattern> =
            queries.iter().map(|q| sequential.minimize(q).pattern).collect();
        for jobs in 1..=8 {
            let engine = BatchMinimizer::with_strategy(&ics, strategy);
            let out = engine.minimize_batch(&queries, jobs);
            assert_eq!(out.patterns.len(), queries.len(), "{strategy:?} jobs={jobs}");
            for (i, (got, want)) in out.patterns.iter().zip(&expected).enumerate() {
                assert!(
                    isomorphic(got, want),
                    "{strategy:?} jobs={jobs} query {i}: batch size {} vs sequential size {}",
                    got.size(),
                    want.size()
                );
            }
        }
    }
}

#[test]
fn output_is_deterministic_across_job_counts() {
    let (queries, ics) = workload();
    let baseline = BatchMinimizer::new(&ics).minimize_batch(&queries, 1);
    for jobs in 2..=8 {
        let out = BatchMinimizer::new(&ics).minimize_batch(&queries, jobs);
        // Same input order ⇒ byte-identical output in the same order,
        // regardless of how many threads did the work.
        assert_eq!(out.patterns, baseline.patterns, "jobs={jobs}");
    }
}

#[test]
fn warm_cache_preserves_results_and_order() {
    let (queries, ics) = workload();
    let engine = BatchMinimizer::new(&ics);
    let cold = engine.minimize_batch(&queries, 4);
    assert!(cold.stats.cache_hits >= 2, "duplicates in the workload must fold");
    let warm = engine.minimize_batch(&queries, 4);
    assert_eq!(warm.stats.cache_misses, 0);
    assert_eq!(warm.patterns, cold.patterns);
}

#[test]
fn batch_results_stay_equivalent_to_inputs() {
    let (queries, ics) = workload();
    let engine = BatchMinimizer::new(&ics);
    let out = engine.minimize_batch(&queries, 4);
    for (q, m) in queries.iter().zip(&out.patterns) {
        assert!(equivalent_under(q, m, engine.constraints()), "minimization changed semantics");
        assert!(m.size() <= q.size());
    }
}
