//! Section 7 of the paper — value-based conditions — end to end.
//!
//! "Tree pattern queries may involve value-based conditions, e.g., that
//! the price of a book always be less than $100 … when we consider
//! endomorphisms, a node u cannot be mapped to a node w unless the
//! conditions at w logically entail those at u."

use tpq::prelude::*;

fn tys() -> TypeInterner {
    TypeInterner::new()
}

#[test]
fn entailed_conditioned_branch_is_redundant() {
    // Books cheaper than 50 are also cheaper than 100: the looser branch
    // folds onto the stricter one.
    let mut t = tys();
    let q = parse_pattern("Shelf*[//Book{price<100}]//Book{price<50}//Review", &mut t).unwrap();
    let m = cim(&q);
    let want = parse_pattern("Shelf*//Book{price<50}//Review", &mut t).unwrap();
    assert!(isomorphic(&m, &want), "got {} nodes", m.size());
    assert!(equivalent(&q, &m));
}

#[test]
fn non_entailed_conditions_block_minimization() {
    // price<10 and price>50 are incomparable: nothing folds either way.
    let mut t = tys();
    let q = parse_pattern("Shelf*[//Book{price<10}]//Book{price>50}", &mut t).unwrap();
    let m = cim(&q);
    assert_eq!(m.size(), q.size());
    // Distinct attributes never entail each other.
    let q2 = parse_pattern("Shelf*[//Book{year>2000}]//Book{price<50}", &mut t).unwrap();
    assert_eq!(cim(&q2).size(), q2.size());
    // One-directional entailment folds exactly one branch: the looser
    // price<50 requirement is subsumed by the stricter price<10 node.
    let q3 = parse_pattern("Shelf*[//Book{price<10}]//Book{price<50}", &mut t).unwrap();
    let m3 = cim(&q3);
    assert_eq!(m3.size(), 2);
    let survivor = m3.alive_ids().find(|&v| !m3.node(v).conditions.is_empty()).unwrap();
    assert_eq!(m3.node(survivor).conditions[0].value, tpq::base::Value::Int(10));
}

#[test]
fn unconditioned_node_subsumed_by_conditioned_twin() {
    // A bare Book requirement is implied by any conditioned Book.
    let mut t = tys();
    let q = parse_pattern("Shelf*[//Book]//Book{price<50}", &mut t).unwrap();
    let m = cim(&q);
    assert_eq!(m.size(), 2);
    // But not the other way: the conditioned one must survive.
    let survivor = m
        .alive_ids()
        .find(|&v| !m.node(v).conditions.is_empty())
        .expect("conditioned node survives");
    assert_eq!(m.node(survivor).conditions.len(), 1);
}

#[test]
fn equality_pins_fold_both_ways() {
    // lang="en" twins are mutually redundant: exactly one survives.
    let mut t = tys();
    let q = parse_pattern(r#"Shelf*[//Book{lang="en"}]//Book{lang="en"}"#, &mut t).unwrap();
    let m = cim(&q);
    assert_eq!(m.size(), 2);
}

#[test]
fn matching_respects_attribute_values() {
    let mut t = tys();
    let q = parse_pattern(r#"Shelf*//Book{price<100,lang="en"}"#, &mut t).unwrap();
    let doc = parse_xml(
        r#"<Shelf>
             <Book price="95" lang="en"/>
             <Book price="120" lang="en"/>
             <Book price="10" lang="fr"/>
             <Book lang="en"/>
           </Shelf>"#,
        &mut t,
    )
    .unwrap();
    let shelves = answer_set(&q, &doc);
    assert_eq!(shelves.len(), 1, "the shelf matches via the first book only");
    // Move the output to the Book node to see which books matched.
    let mut q2 = q.clone();
    let book = q2.node(q2.root()).children[0];
    q2.set_output(book);
    let books = answer_set(&q2, &doc);
    assert_eq!(books.len(), 1);
    // The matching book is the 95/en one (document order: first child).
    assert_eq!(books[0].index(), 1);
}

#[test]
fn minimized_conditioned_query_keeps_answers() {
    let mut t = tys();
    let q = parse_pattern("Shelf*[//Book{price<100}]//Book{price<50}//Review", &mut t).unwrap();
    let m = cim(&q);
    let doc = parse_xml(
        r#"<Shelf>
             <Book price="40"><Review/></Book>
             <Book price="80"/>
           </Shelf>"#,
        &mut t,
    )
    .unwrap();
    assert!(tpq::matching::same_answers(&q, &m, &doc));
    assert_eq!(answer_set(&m, &doc).len(), 1);
    // A shelf whose only cheap book has no review does not match.
    let doc2 =
        parse_xml(r#"<Shelf><Book price="40"/><Book price="80"><Review/></Book></Shelf>"#, &mut t)
            .unwrap();
    assert!(answer_set(&m, &doc2).is_empty());
    assert!(tpq::matching::same_answers(&q, &m, &doc2));
}

#[test]
fn ics_do_not_discharge_conditioned_nodes() {
    // Every Book has a Price child — but not necessarily one satisfying
    // amount<100, so the conditioned leaf must survive ACIM.
    let mut t = tys();
    let q = parse_pattern("Book*[/Title]/Price{amount<100}", &mut t).unwrap();
    let ics = parse_constraints("Book -> Price\nBook -> Title", &mut t).unwrap();
    let m = minimize(&q, &ics).pattern;
    // Title goes (implied), the conditioned Price stays.
    assert_eq!(m.size(), 2);
    let kept = m.node(m.root()).children[0];
    assert!(!m.node(kept).conditions.is_empty());
    assert!(equivalent_under(&q, &m, &ics));
}

#[test]
fn cdm_uses_entailment_for_cooccurrence_witnesses() {
    // PermEmp ~ Employee: an Employee{age>30} requirement is subsumed by a
    // PermEmp{age>40} sibling (40 < age entails 30 < age), but not by a
    // PermEmp{age>20} one.
    let mut t = tys();
    let ics = parse_constraints("PermEmp ~ Employee", &mut t).unwrap();
    let q = parse_pattern("Org*[/Employee{age>30}][/PermEmp{age>40}]", &mut t).unwrap();
    let m = cdm(&q, &ics);
    assert_eq!(m.size(), 2, "entailed sibling folds");
    let q2 = parse_pattern("Org*[/Employee{age>30}][/PermEmp{age>20}]", &mut t).unwrap();
    let m2 = cdm(&q2, &ics);
    assert_eq!(m2.size(), 3, "non-entailed sibling survives");
}

#[test]
fn unsatisfiable_conditions_entail_anything() {
    // A node that can never match makes its subsuming branch trivially
    // removable; the containment machinery must not choke.
    let mut t = tys();
    let q = parse_pattern("Shelf*[//Book{price<10}]//Book{price<5,price>6}", &mut t).unwrap();
    let m = cim(&q);
    // The price<10 branch folds onto the unsatisfiable one (ex falso).
    assert_eq!(m.size(), 2);
    assert!(equivalent(&q, &m));
    // And indeed neither query ever matches anything with a Book.
    let doc = parse_xml(r#"<Shelf><Book price="3"/></Shelf>"#, &mut t).unwrap();
    assert!(answer_set(&m, &doc).is_empty());
}

#[test]
fn integer_normalization_in_minimization() {
    // price<=99 and price<100 are the same integer condition; the twins
    // are mutually redundant and the survivor's DSL keeps working.
    let mut t = tys();
    let q = parse_pattern("Shelf*[//Book{price<=99}]//Book{price<100}", &mut t).unwrap();
    let m = cim(&q);
    assert_eq!(m.size(), 2);
    let printed = tpq::pattern::print::to_dsl(&m, &t);
    let back = parse_pattern(&printed, &mut t).unwrap();
    assert!(isomorphic(&m, &back));
}

#[test]
fn containment_under_ics_with_conditions() {
    let mut t = tys();
    let ics = parse_constraints("Book -> Price", &mut t).unwrap();
    let plain = parse_pattern("Book*", &mut t).unwrap();
    let bare = parse_pattern("Book*/Price", &mut t).unwrap();
    let conditioned = parse_pattern("Book*/Price{amount<10}", &mut t).unwrap();
    // The bare Price is implied; the conditioned one is not.
    assert!(contains_under(&plain, &bare, &ics));
    assert!(!contains_under(&plain, &conditioned, &ics));
    // Conditioned is still contained in bare.
    assert!(contains_under(&conditioned, &bare, &ics));
}

#[test]
fn json_round_trips_conditions() {
    let mut t = tys();
    let q = parse_pattern(r#"Book*{price<100,lang="en"}/Title"#, &mut t).unwrap();
    let json = q.to_json().to_string_compact();
    let parsed = tpq::base::Json::parse(&json).unwrap();
    let back = TreePattern::from_json(&parsed).unwrap();
    assert_eq!(q, back);
}
