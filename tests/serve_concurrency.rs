//! Connection-scaling test for the epoll reactor: one `tpq serve`
//! process (spawned as a real subprocess, so it gets its own fd budget)
//! holding ~10k concurrent idle connections while still answering
//! pipelined traffic, STATS, and a clean SHUTDOWN drain.
//!
//! The target adapts to `RLIMIT_NOFILE`: this test process pays one fd
//! per client connection and the server pays one per accepted socket, so
//! on a constrained runner (CI default is often 1024) the ramp scales
//! down instead of dying on EMFILE. Locally (soft limit ≥ 10.2k) it
//! demonstrates the full ≥10k requirement.

#![cfg(target_os = "linux")]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Kill the server subprocess even if the test panics mid-way.
struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn reactor_holds_ten_thousand_idle_connections() {
    let (soft, _hard) = tpq::base::fd::nofile_limit().expect("getrlimit");
    // Keep 200 fds of headroom for the test harness itself.
    let target = 10_000usize.min(soft.saturating_sub(200) as usize);
    assert!(target >= 100, "fd limit {soft} too low to say anything useful");

    let mut child = ChildGuard(
        Command::new(env!("CARGO_BIN_EXE_tpq"))
            .args(["serve", "--addr", "127.0.0.1:0", "--max-conns", "15000", "--drain-ms", "5000"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn tpq serve"),
    );
    let stdout = child.0.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout);
    let addr = loop {
        let mut line = String::new();
        assert_ne!(lines.read_line(&mut line).expect("read child stdout"), 0, "server exited");
        if let Some(rest) = line.trim_end().strip_prefix("listening on ") {
            break rest.to_owned();
        }
    };

    // Ramp up the idle herd. Plain sequential connects: the reactor's
    // accept loop drains the backlog every wakeup, so this is fast.
    let mut herd = Vec::with_capacity(target);
    for i in 0..target {
        match TcpStream::connect(&addr) {
            Ok(stream) => herd.push(stream),
            Err(e) => panic!("connect {i}/{target} failed: {e}"),
        }
    }

    // The server still answers while holding the herd: STATS on a fresh
    // connection reports every connection accounted for, and a sample of
    // herd members does real pipelined minimization work.
    let mut stats_conn = BufReader::new(TcpStream::connect(&addr).expect("stats connect"));
    stats_conn.get_ref().set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    writeln!(stats_conn.get_mut(), "STATS").unwrap();
    let mut stats = String::new();
    stats_conn.read_line(&mut stats).expect("stats read");
    let json = tpq::base::Json::parse(stats.trim_end()).expect("stats JSON");
    let active = json
        .get("connections")
        .and_then(|c| c.get("active"))
        .and_then(tpq::base::Json::as_i64)
        .expect("connections.active");
    assert!(active >= target as i64, "active={active}, expected >= {target}");

    let stride = (target / 50).max(1);
    for (i, stream) in herd.iter().enumerate().step_by(stride) {
        let mut conn = BufReader::new(stream);
        // Two pipelined requests in one write, answered in order.
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        write!(conn.get_mut(), "{{\"query\": \"Busy{i}*[/Leaf{i}][/Leaf{i}]\"}}\nPING\n")
            .expect("pipelined write");
        let mut response = String::new();
        conn.read_line(&mut response).expect("minimize response");
        assert!(
            response.contains(&format!("Busy{i}*/Leaf{i}")),
            "bad response on conn {i}: {response}"
        );
        response.clear();
        conn.read_line(&mut response).expect("ping response");
        assert!(response.contains("\"ok\":true"), "bad PING on conn {i}: {response}");
    }

    // Graceful drain with the herd still attached: the ack arrives, the
    // whole process exits cleanly, and every herd socket reaches EOF.
    writeln!(stats_conn.get_mut(), "SHUTDOWN").unwrap();
    let mut ack = String::new();
    stats_conn.read_line(&mut ack).expect("shutdown ack");
    assert!(ack.contains("\"draining\":true"), "bad SHUTDOWN ack: {ack}");
    let status = child.0.wait().expect("server exit");
    assert!(status.success(), "server exited with {status}");
    drop(herd);
}
