//! Bounded-exhaustive semantic validation.
//!
//! Property tests sample; these tests *enumerate*. Over a small universe
//! (two pattern types, bounded sizes) we generate every ordered tree
//! shape, every edge-kind assignment and every type assignment, and
//! check the algorithms against brute-force answer-set semantics:
//!
//! * `cim` preserves answer sets on every enumerated document;
//! * `minimize` (CDM→ACIM) preserves answer sets on every enumerated
//!   document *repaired* to satisfy the constraints;
//! * `contains` is sound (answers really are contained on every
//!   enumerated document) **and complete** (a `false` verdict is always
//!   witnessed by a counterexample from the canonical family: the
//!   contained pattern expanded with filler-typed chains on its d-edges).

use tpq::prelude::*;
use tpq_pattern::EdgeKind;

const PATTERN_TYPES: u32 = 2;
/// A type never used in patterns, for canonical d-edge expansions.
const FILLER: u32 = 2;

/// All parent-pointer vectors for ordered trees of `n` nodes
/// (`parent[i] < i`).
fn tree_shapes(n: usize) -> Vec<Vec<usize>> {
    fn rec(n: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        let i = cur.len() + 1;
        if i > n {
            out.push(cur.clone());
            return;
        }
        for p in 0..i {
            cur.push(p);
            rec(n, cur, out);
            cur.pop();
        }
    }
    if n == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    rec(n - 1, &mut Vec::new(), &mut out);
    out
}

/// Every pattern with exactly `n` nodes over `PATTERN_TYPES` types, both
/// edge kinds, output on the root.
fn all_patterns(n: usize) -> Vec<TreePattern> {
    let mut out = Vec::new();
    for shape in tree_shapes(n) {
        let edges = shape.len();
        for edge_bits in 0..(1u32 << edges) {
            for ty_bits in 0..(PATTERN_TYPES as u64).pow(n as u32) {
                let mut tys = Vec::with_capacity(n);
                let mut rest = ty_bits;
                for _ in 0..n {
                    tys.push(TypeId((rest % PATTERN_TYPES as u64) as u32));
                    rest /= PATTERN_TYPES as u64;
                }
                let mut q = TreePattern::new(tys[0]);
                let mut ids = vec![q.root()];
                for (i, &p) in shape.iter().enumerate() {
                    let edge = if edge_bits >> i & 1 == 1 {
                        EdgeKind::Descendant
                    } else {
                        EdgeKind::Child
                    };
                    ids.push(q.add_child(ids[p], edge, tys[i + 1]));
                }
                out.push(q);
            }
        }
    }
    out
}

/// Every document with up to `max_n` nodes over `num_types` types.
fn all_documents(max_n: usize, num_types: u32) -> Vec<Document> {
    let mut out = Vec::new();
    for n in 1..=max_n {
        for shape in tree_shapes(n) {
            for ty_bits in 0..(num_types as u64).pow(n as u32) {
                let mut tys = Vec::with_capacity(n);
                let mut rest = ty_bits;
                for _ in 0..n {
                    tys.push(TypeId((rest % num_types as u64) as u32));
                    rest /= num_types as u64;
                }
                let mut d = Document::new(tys[0]);
                let mut ids = vec![d.root()];
                for (i, &p) in shape.iter().enumerate() {
                    ids.push(d.add_child(ids[p], tys[i + 1]));
                }
                out.push(d);
            }
        }
    }
    out
}

/// Canonical counterexample family for `q1 ⊆ q2`: `q1` frozen into a
/// document, with each d-edge expanded to a chain of 1..=3 filler nodes
/// (filler never occurs in patterns, so it cannot create accidental
/// matches). Returns `(document, answer node of q1's output under the
/// identity embedding)`.
fn expansions(q1: &TreePattern) -> Vec<(Document, tpq::data::DataNodeId)> {
    let d_edges: Vec<tpq::pattern::NodeId> = q1
        .alive_ids()
        .filter(|&v| v != q1.root() && q1.node(v).edge == EdgeKind::Descendant)
        .collect();
    let combos = 3u32.pow(d_edges.len() as u32);
    let mut out = Vec::new();
    for combo in 0..combos {
        let mut lens = std::collections::HashMap::new();
        let mut rest = combo;
        for &e in &d_edges {
            lens.insert(e, rest % 3);
            rest /= 3;
        }
        // Build the document by pre-order walk of q1.
        let mut doc = Document::new(q1.node(q1.root()).primary);
        let mut map = std::collections::HashMap::new();
        map.insert(q1.root(), doc.root());
        for v in q1.pre_order() {
            if v == q1.root() {
                continue;
            }
            let mut attach = map[&q1.node(v).parent.unwrap()];
            if q1.node(v).edge == EdgeKind::Descendant {
                for _ in 0..lens[&v] {
                    attach = doc.add_child(attach, TypeId(FILLER));
                }
            }
            let me = doc.add_child(attach, q1.node(v).primary);
            map.insert(v, me);
        }
        out.push((doc, map[&q1.output()]));
    }
    out
}

fn answers_sorted(q: &TreePattern, d: &Document) -> Vec<tpq::data::DataNodeId> {
    let mut a = answer_set(q, d);
    a.sort_unstable();
    a
}

#[test]
fn cim_preserves_answers_exhaustively() {
    let docs = all_documents(4, PATTERN_TYPES);
    let mut patterns = Vec::new();
    for n in 1..=4 {
        patterns.extend(all_patterns(n));
    }
    assert!(patterns.len() > 500, "enumeration sanity: {}", patterns.len());
    let mut minimized_count = 0;
    for q in &patterns {
        let m = cim(q);
        if m.size() < q.size() {
            minimized_count += 1;
        }
        for d in &docs {
            assert_eq!(answers_sorted(q, d), answers_sorted(&m, d), "q={q:?} m={m:?} d={d:?}");
        }
    }
    assert!(minimized_count > 50, "some queries must actually shrink: {minimized_count}");
}

#[test]
fn containment_is_sound_and_complete_exhaustively() {
    let docs = all_documents(4, PATTERN_TYPES);
    let patterns: Vec<TreePattern> = (1..=3).flat_map(all_patterns).collect();
    let mut positives = 0;
    let mut witnessed_negatives = 0;
    for q1 in &patterns {
        for q2 in &patterns {
            let verdict = contains(q1, q2);
            if verdict {
                positives += 1;
                // Soundness on every enumerated document.
                for d in &docs {
                    let a1 = answers_sorted(q1, d);
                    let a2 = answers_sorted(q2, d);
                    assert!(
                        a1.iter().all(|x| a2.contains(x)),
                        "contains said true but answers leak: {q1:?} vs {q2:?} on {d:?}"
                    );
                }
            } else {
                // Completeness: some canonical expansion separates them.
                let separated = expansions(q1).into_iter().any(|(d, witness)| {
                    answer_set(q1, &d).contains(&witness) && !answer_set(q2, &d).contains(&witness)
                });
                assert!(
                    separated,
                    "contains said false but no canonical expansion separates {q1:?} from {q2:?}"
                );
                witnessed_negatives += 1;
            }
        }
    }
    assert!(positives > 100, "sanity: {positives}");
    assert!(witnessed_negatives > 100, "sanity: {witnessed_negatives}");
}

#[test]
fn minimize_under_ics_preserves_answers_exhaustively() {
    // Fixed constraint set over the pattern universe.
    let mut types = TypeInterner::new();
    types.intern("t0");
    types.intern("t1");
    let ics = parse_constraints("t0 -> t1", &mut types).unwrap();
    let closed = ics.closure();
    let docs: Vec<Document> = all_documents(3, PATTERN_TYPES)
        .into_iter()
        .map(|d| tpq::constraints::repair(&d, &closed).unwrap())
        .collect();
    let patterns: Vec<TreePattern> = (1..=4).flat_map(all_patterns).collect();
    let mut shrunk = 0;
    for q in &patterns {
        let m = minimize(q, &ics).pattern;
        if m.size() < q.size() {
            shrunk += 1;
        }
        for d in &docs {
            assert_eq!(answers_sorted(q, d), answers_sorted(&m, d), "q={q:?} m={m:?} d={d:?}");
        }
    }
    assert!(shrunk > 100, "the IC must fire often: {shrunk}");
}

#[test]
fn equivalence_verdicts_match_answer_sets_on_all_documents() {
    // For equivalent pairs, answers agree on EVERY document (not just
    // containment one way).
    let docs = all_documents(4, PATTERN_TYPES);
    let patterns: Vec<TreePattern> = (1..=3).flat_map(all_patterns).collect();
    let mut eq_pairs = 0;
    for q1 in &patterns {
        for q2 in &patterns {
            if equivalent(q1, q2) {
                eq_pairs += 1;
                for d in &docs {
                    assert_eq!(answers_sorted(q1, d), answers_sorted(q2, d));
                }
            }
        }
    }
    assert!(eq_pairs > patterns.len(), "at least the diagonal plus some: {eq_pairs}");
}
