//! Whole-system integration: schema → inferred constraints → minimization
//! → repaired databases → answer-set equality, across every crate.

use tpq::constraints::{repair, satisfies, Schema};
use tpq::core::Strategy;
use tpq::matching::{answer_set_forest, count_embeddings};
use tpq::prelude::*;

#[test]
fn publishing_house_end_to_end() {
    let mut tys = TypeInterner::new();
    // A publishing-house schema: books must have a title and at least one
    // author; authors must have a last name; every hardcover is a book
    // variant (co-occurrence).
    let schema = Schema::parse(
        "element Catalog = Book*\n\
         element Book = Title, Author+, Chapter*\n\
         element Author = LastName, FirstName?\n\
         class Hardcover : Book",
        &mut tys,
    )
    .unwrap();
    let ics = schema.infer_closed();

    // A customer query written the long way.
    let q = parse_pattern("Catalog/Book*[/Title][//LastName][/Author/LastName]", &mut tys).unwrap();
    let out = tpq::core::minimize_with(&q, &ics, Strategy::CdmThenAcim);
    // Title is implied (Book -> Title); //LastName is implied
    // (Book ->> LastName); Author/LastName is implied too: Book -> Author
    // and Author -> LastName.
    assert_eq!(out.pattern.size(), 2, "only Catalog/Book* survives");
    assert!(equivalent_under(&q, &out.pattern, &ics));

    // Build a raw catalog missing required pieces, repair it, and verify
    // query/minimized-query agreement on the repaired version.
    let raw = parse_xml(
        "<Catalog>\
           <Book/>\
           <Book><Title/><Author><LastName/></Author></Book>\
           <Hardcover/>\
         </Catalog>",
        &mut tys,
    )
    .unwrap();
    assert!(!satisfies(&raw, &ics));
    let fixed = repair(&raw, &ics).unwrap();
    assert!(satisfies(&fixed, &ics));

    let mut before = answer_set(&q, &fixed);
    let mut after = answer_set(&out.pattern, &fixed);
    before.sort_unstable();
    after.sort_unstable();
    assert_eq!(before, after);
    // All three entries answer: two books plus the hardcover (which is
    // also a Book by co-occurrence).
    assert_eq!(before.len(), 3);

    // On the raw (non-conforming) catalog the queries may disagree —
    // demonstrating why the ICs matter.
    assert_ne!(answer_set(&q, &raw).len(), answer_set(&out.pattern, &raw).len());
}

#[test]
fn forest_queries_across_directory_shards() {
    let mut tys = TypeInterner::new();
    let q_raw = parse_pattern("Dept*[//Manager][//Manager//Report]", &mut tys).unwrap();
    let minimal = cim(&q_raw);
    assert_eq!(minimal.size(), 3, "the bare //Manager branch folds");

    let mut forest = Forest::new();
    for xml in [
        "<Dept><Manager><Report/></Manager></Dept>",
        "<Dept><Manager/></Dept>",
        "<Org><Dept><Team><Manager><X><Report/></X></Manager></Team></Dept></Org>",
    ] {
        forest.push(parse_xml(xml, &mut tys).unwrap());
    }
    let mut a = answer_set_forest(&q_raw, &forest);
    let mut b = answer_set_forest(&minimal, &forest);
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
    assert_eq!(a.len(), 2, "shards 0 and 2 answer");
}

#[test]
fn minimization_reduces_matching_work() {
    // The practical payoff: fewer pattern nodes, fewer embeddings to
    // enumerate. Build a query with heavy duplication and a fanout-y
    // document.
    let mut tys = TypeInterner::new();
    let q = parse_pattern("Dept*[//Proj][//Proj][//Proj][//Mgr//Proj]", &mut tys).unwrap();
    let m = cim(&q);
    assert_eq!(m.size(), 3);

    let mut xml = String::from("<Dept>");
    for _ in 0..6 {
        xml.push_str("<Mgr><Proj/><Proj/></Mgr>");
    }
    xml.push_str("</Dept>");
    let doc = parse_xml(&xml, &mut tys).unwrap();

    let full = count_embeddings(&q, &doc);
    let reduced = count_embeddings(&m, &doc);
    assert!(reduced < full, "{reduced} vs {full}");
    // Same answers regardless.
    assert_eq!(answer_set(&q, &doc), answer_set(&m, &doc));
}

#[test]
fn stats_plumb_through_the_public_api() {
    let mut tys = TypeInterner::new();
    let q = parse_pattern("Book*[/Title][/Publisher][//LastName]", &mut tys).unwrap();
    let ics = parse_constraints("Book -> Publisher\nBook ->> LastName", &mut tys).unwrap();
    let out = minimize(&q, &ics);
    assert_eq!(out.pattern.size(), 2);
    assert_eq!(out.stats.cdm_removed, 2, "both implied leaves are local");
    assert_eq!(out.stats.cim_removed, 0);
    assert!(out.stats.total_time > std::time::Duration::ZERO);
}

#[test]
fn json_round_trips_patterns_and_constraints() {
    let mut tys = TypeInterner::new();
    let q = parse_pattern("a*[/b][//c/d]", &mut tys).unwrap();
    let json = q.to_json().to_string_compact();
    let parsed = tpq::base::Json::parse(&json).unwrap();
    let back = tpq::pattern::TreePattern::from_json(&parsed).unwrap();
    assert_eq!(q, back);

    let ics = parse_constraints("a -> b\nc ~ d", &mut tys).unwrap();
    let json = tpq::base::Json::Array(ics.iter().map(|c| c.to_json()).collect());
    let parsed = tpq::base::Json::parse(&json.to_string_compact()).unwrap();
    let back: Vec<tpq::constraints::Constraint> = match &parsed {
        tpq::base::Json::Array(items) => {
            items.iter().map(|j| tpq::constraints::Constraint::from_json(j).unwrap()).collect()
        }
        _ => panic!("expected array"),
    };
    assert_eq!(back.len(), 2);
}
