//! Property-based validation of the paper's theorems on random inputs.
//!
//! Patterns, documents and constraint sets are drawn from the
//! `tpq-workload` generators (seeded through proptest), so failures
//! shrink to small seeds and every case is reproducible.

use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};
use tpq::core::{
    cdm, cim, cim_with_order, equivalent, equivalent_under, has_homomorphism,
    has_homomorphism_naive, locally_redundant_leaves, minimize_with, Strategy,
};
use tpq::matching::{answer_set, answer_set_naive};
use tpq::pattern::{canonical_form, isomorphic, TreePattern};
use tpq_workload::{
    random_constraints, random_pattern, ConstraintSpec, PatternSpec,
};

fn pattern(seed: u64, nodes: usize, num_types: usize) -> TreePattern {
    random_pattern(&PatternSpec {
        nodes,
        num_types,
        d_edge_prob: 0.5,
        max_fanout: 3,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Theorem 4.1 (existence): CIM output is equivalent to the input and
    /// no larger.
    #[test]
    fn cim_preserves_equivalence(seed in 0u64..10_000, nodes in 1usize..14, nt in 1usize..5) {
        let q = pattern(seed, nodes, nt);
        let m = cim(&q);
        prop_assert!(m.size() <= q.size());
        prop_assert!(equivalent(&q, &m), "not equivalent for seed {seed}");
        m.validate().unwrap();
    }

    /// Theorem 4.1 (uniqueness): any elimination order reaches an
    /// isomorphic minimal query.
    #[test]
    fn cim_unique_up_to_isomorphism(seed in 0u64..10_000, nodes in 1usize..12) {
        let q = pattern(seed, nodes, 3);
        let default = cim(&q);
        for shuffle_seed in 0..3u64 {
            let shuffled = cim_with_order(&q, |_, cands| {
                let mut v = cands.to_vec();
                let mut rng = StdRng::seed_from_u64(seed ^ shuffle_seed);
                v.shuffle(&mut rng);
                v
            });
            prop_assert!(
                isomorphic(&default, &shuffled),
                "orders disagree for seed {seed}"
            );
        }
    }

    /// CIM is idempotent, and its output has no redundant leaf.
    #[test]
    fn cim_idempotent(seed in 0u64..10_000, nodes in 1usize..14) {
        let q = pattern(seed, nodes, 3);
        let once = cim(&q);
        let twice = cim(&once);
        prop_assert!(isomorphic(&once, &twice));
    }

    /// The incremental engine (Section 6.1 implementation) computes the
    /// same minimum as the rebuild-per-test implementation.
    #[test]
    fn incremental_engine_matches_rebuilding(seed in 0u64..10_000, nodes in 1usize..14) {
        let q = pattern(seed, nodes, 3);
        let inc = tpq::core::cim_incremental(&q);
        let reb = cim(&q);
        prop_assert!(
            isomorphic(&inc, &reb),
            "incremental {} vs rebuilding {} (seed {seed})",
            inc.size(),
            reb.size()
        );
    }

    /// ... and the same under constraints, through augmentation.
    #[test]
    fn incremental_acim_matches_rebuilding(
        pseed in 0u64..10_000, cseed in 0u64..10_000, count in 0usize..8,
    ) {
        let q = pattern(pseed, 10, 4);
        let ics = random_constraints(&ConstraintSpec { count, num_types: 4, seed: cseed });
        let closed = ics.closure();
        let mut s1 = tpq::core::MinimizeStats::default();
        let mut s2 = tpq::core::MinimizeStats::default();
        let inc = tpq::core::acim_incremental_closed(&q, &closed, &mut s1);
        let reb = tpq::core::acim_closed(&q, &closed, &mut s2);
        prop_assert!(
            isomorphic(&inc, &reb),
            "incremental {} vs rebuilding {} (seeds {pseed}/{cseed})",
            inc.size(),
            reb.size()
        );
    }

    /// The polynomial containment test agrees with brute-force search.
    #[test]
    fn homomorphism_pruning_matches_naive(
        s1 in 0u64..10_000, s2 in 0u64..10_000,
        n1 in 1usize..8, n2 in 1usize..8,
    ) {
        let a = pattern(s1, n1, 3);
        let b = pattern(s2, n2, 3);
        prop_assert_eq!(has_homomorphism(&a, &b), has_homomorphism_naive(&a, &b));
        prop_assert_eq!(has_homomorphism(&b, &a), has_homomorphism_naive(&b, &a));
    }

    /// The production evaluator agrees with exhaustive enumeration.
    #[test]
    fn evaluator_matches_naive(pseed in 0u64..10_000, dseed in 0u64..10_000) {
        let q = pattern(pseed, 6, 3);
        let doc = tpq::data::generate_document(&tpq::data::DocumentSpec {
            nodes: 25,
            num_types: 3,
            max_fanout: 3,
            extra_type_prob: 0.15,
            seed: dseed,
        });
        let mut fast = answer_set(&q, &doc);
        fast.sort_unstable();
        prop_assert_eq!(fast, answer_set_naive(&q, &doc));
    }

    /// Semantic check of CIM: identical answer sets on random documents.
    #[test]
    fn cim_preserves_answers_on_random_documents(
        pseed in 0u64..10_000, dseed in 0u64..10_000,
    ) {
        let q = pattern(pseed, 10, 3);
        let m = cim(&q);
        let doc = tpq::data::generate_document(&tpq::data::DocumentSpec {
            nodes: 40,
            num_types: 3,
            max_fanout: 4,
            extra_type_prob: 0.1,
            seed: dseed,
        });
        prop_assert!(tpq::matching::same_answers(&q, &m, &doc));
    }

    /// Theorem 5.1: ACIM output is equivalent under the constraints and
    /// no larger than the CIM output.
    #[test]
    fn acim_preserves_equivalence_under_ics(
        pseed in 0u64..10_000, cseed in 0u64..10_000,
        nodes in 1usize..12, count in 0usize..8,
    ) {
        let q = pattern(pseed, nodes, 4);
        let ics = random_constraints(&ConstraintSpec { count, num_types: 4, seed: cseed });
        let a = minimize_with(&q, &ics, Strategy::AcimOnly).pattern;
        let c = cim(&q);
        prop_assert!(a.size() <= c.size(), "ACIM must subsume CIM");
        prop_assert!(equivalent_under(&q, &a, &ics), "seed {pseed}/{cseed}");
        a.validate().unwrap();
    }

    /// Theorem 5.2: CDM output is equivalent and locally minimal.
    #[test]
    fn cdm_locally_minimal(
        pseed in 0u64..10_000, cseed in 0u64..10_000, count in 0usize..8,
    ) {
        let q = pattern(pseed, 12, 4);
        let ics = random_constraints(&ConstraintSpec { count, num_types: 4, seed: cseed });
        let m = cdm(&q, &ics);
        prop_assert!(equivalent_under(&q, &m, &ics));
        let closed = ics.closure();
        prop_assert!(
            locally_redundant_leaves(&m, &closed).is_empty(),
            "locally redundant leaf survives CDM (seeds {pseed}/{cseed})"
        );
    }

    /// Theorem 5.3: CDM as a pre-filter does not change ACIM's result.
    #[test]
    fn cdm_prefilter_reaches_the_same_minimum(
        pseed in 0u64..10_000, cseed in 0u64..10_000, count in 0usize..8,
    ) {
        let q = pattern(pseed, 12, 4);
        let ics = random_constraints(&ConstraintSpec { count, num_types: 4, seed: cseed });
        let direct = minimize_with(&q, &ics, Strategy::AcimOnly).pattern;
        let combined = minimize_with(&q, &ics, Strategy::CdmThenAcim).pattern;
        prop_assert!(
            isomorphic(&direct, &combined),
            "ACIM {} nodes vs CDM+ACIM {} nodes (seeds {pseed}/{cseed})",
            direct.size(),
            combined.size()
        );
    }

    /// Semantic check of ACIM: answer sets agree on databases *repaired to
    /// satisfy the constraints*.
    #[test]
    fn acim_preserves_answers_on_conforming_documents(
        pseed in 0u64..10_000, cseed in 0u64..10_000, dseed in 0u64..10_000,
    ) {
        let q = pattern(pseed, 8, 4);
        let ics = random_constraints(&ConstraintSpec { count: 5, num_types: 4, seed: cseed });
        let m = minimize_with(&q, &ics, Strategy::CdmThenAcim).pattern;
        let raw = tpq::data::generate_document(&tpq::data::DocumentSpec {
            nodes: 20,
            num_types: 4,
            max_fanout: 3,
            extra_type_prob: 0.1,
            seed: dseed,
        });
        let closed = ics.closure();
        prop_assume!(closed.is_finitely_satisfiable());
        let doc = tpq::constraints::repair(&raw, &closed).unwrap();
        prop_assert!(
            tpq::matching::same_answers(&q, &m, &doc),
            "answers diverge on a conforming document (seeds {pseed}/{cseed}/{dseed})"
        );
    }

    /// DSL printing round-trips through the parser up to isomorphism.
    #[test]
    fn dsl_round_trip(seed in 0u64..10_000, nodes in 1usize..15) {
        let q = pattern(seed, nodes, 4);
        let mut tys = tpq::base::TypeInterner::new();
        tpq_workload::random::universe(&mut tys, 4);
        let printed = tpq::pattern::print::to_dsl(&q, &tys);
        let back = tpq::pattern::parse_pattern(&printed, &mut tys).unwrap();
        prop_assert!(isomorphic(&q, &back), "{printed}");
    }

    /// Compaction preserves the canonical form.
    #[test]
    fn compaction_preserves_canonical_form(seed in 0u64..10_000, nodes in 2usize..12) {
        let mut q = pattern(seed, nodes, 3);
        // Remove a random non-output leaf if one exists, then compact.
        if let Some(l) = q
            .leaves()
            .into_iter()
            .find(|&l| l != q.output() && l != q.root())
        {
            q.remove_leaf(l).unwrap();
        }
        let (compacted, _) = q.compact();
        prop_assert_eq!(canonical_form(&q), canonical_form(&compacted));
        compacted.validate().unwrap();
    }

    /// Closure is idempotent and finitely satisfiable for generated sets.
    #[test]
    fn closure_idempotent(cseed in 0u64..10_000, count in 0usize..12) {
        let ics = random_constraints(&ConstraintSpec { count, num_types: 6, seed: cseed });
        let closed = ics.closure();
        prop_assert!(closed.is_closed());
        prop_assert!(closed.is_finitely_satisfiable());
        prop_assert!(closed.len() >= ics.len());
    }

    /// Parsers reject or accept arbitrary input without panicking.
    #[test]
    fn parsers_never_panic(input in "\\PC{0,60}") {
        let mut tys = tpq::base::TypeInterner::new();
        let _ = tpq::pattern::parse_pattern(&input, &mut tys);
        let _ = tpq::pattern::parse_xpath(&input, &mut tys);
        let _ = tpq::data::parse_xml(&input, &mut tys);
        let _ = tpq::constraints::parse_constraints(&input, &mut tys);
        let _ = tpq::constraints::Schema::parse(&input, &mut tys);
    }

    /// Near-miss mutations of valid pattern text parse or fail cleanly,
    /// and whatever parses round-trips.
    #[test]
    fn mutated_dsl_never_panics(seed in 0u64..10_000, cut in 0usize..40) {
        let base = r#"Articles/Article*{price<100,lang="en"}[/Title][//Para]//Section"#;
        let mut text: Vec<char> = base.chars().collect();
        let pos = (seed as usize) % text.len();
        match seed % 4 {
            0 => { text.remove(pos); }
            1 => text.insert(pos, '['),
            2 => text.insert(pos, '}'),
            _ => { text.truncate(cut.min(text.len())); }
        }
        let s: String = text.into_iter().collect();
        let mut tys = tpq::base::TypeInterner::new();
        if let Ok(q) = tpq::pattern::parse_pattern(&s, &mut tys) {
            q.validate().unwrap();
            let printed = tpq::pattern::print::to_dsl(&q, &tys);
            let back = tpq::pattern::parse_pattern(&printed, &mut tys).unwrap();
            prop_assert!(isomorphic(&q, &back));
        }
    }

    /// Repair always yields a satisfying document.
    #[test]
    fn repair_satisfies(cseed in 0u64..10_000, dseed in 0u64..10_000) {
        let ics = random_constraints(&ConstraintSpec { count: 6, num_types: 5, seed: cseed });
        let closed = ics.closure();
        prop_assume!(closed.is_finitely_satisfiable());
        let raw = tpq::data::generate_document(&tpq::data::DocumentSpec {
            nodes: 15,
            num_types: 5,
            max_fanout: 3,
            extra_type_prob: 0.2,
            seed: dseed,
        });
        let fixed = tpq::constraints::repair(&raw, &closed).unwrap();
        prop_assert!(tpq::constraints::satisfies(&fixed, &closed));
        fixed.validate().unwrap();
    }
}
