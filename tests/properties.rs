//! Property-based validation of the paper's theorems on random inputs.
//!
//! Patterns, documents and constraint sets are drawn from the
//! `tpq-workload` generators under explicit seed loops, so every failure
//! message names the seed that reproduces it.

use tpq::base::SmallRng;
use tpq::core::{
    cdm, cim, cim_with_order, equivalent, equivalent_under, has_homomorphism,
    has_homomorphism_naive, locally_redundant_leaves, minimize_with, Strategy,
};
use tpq::matching::{answer_set, answer_set_naive};
use tpq::pattern::{canonical_form, isomorphic, TreePattern};
use tpq_workload::{random_constraints, random_pattern, ConstraintSpec, PatternSpec};

const CASES: u64 = 64;

fn pattern(seed: u64, nodes: usize, num_types: usize) -> TreePattern {
    random_pattern(&PatternSpec { nodes, num_types, d_edge_prob: 0.5, max_fanout: 3, seed })
}

/// Derive per-case parameters from the case number: a fresh RNG whose
/// draws are stable across test reorderings.
fn case_rng(salt: u64, case: u64) -> SmallRng {
    SmallRng::seed_from_u64(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ case)
}

/// Theorem 4.1 (existence): CIM output is equivalent to the input and no
/// larger.
#[test]
fn cim_preserves_equivalence() {
    for case in 0..CASES {
        let mut r = case_rng(1, case);
        let nodes = r.gen_range(1..14usize);
        let nt = r.gen_range(1..5usize);
        let q = pattern(case, nodes, nt);
        let m = cim(&q);
        assert!(m.size() <= q.size());
        assert!(equivalent(&q, &m), "not equivalent for case {case}");
        m.validate().unwrap();
    }
}

/// Theorem 4.1 (uniqueness): any elimination order reaches an isomorphic
/// minimal query.
#[test]
fn cim_unique_up_to_isomorphism() {
    for case in 0..CASES {
        let mut r = case_rng(2, case);
        let nodes = r.gen_range(1..12usize);
        let q = pattern(case, nodes, 3);
        let default = cim(&q);
        for shuffle_seed in 0..3u64 {
            let shuffled = cim_with_order(&q, |_, cands| {
                let mut v = cands.to_vec();
                let mut rng = SmallRng::seed_from_u64(case ^ shuffle_seed);
                rng.shuffle(&mut v);
                v
            });
            assert!(isomorphic(&default, &shuffled), "orders disagree for case {case}");
        }
    }
}

/// CIM is idempotent.
#[test]
fn cim_idempotent() {
    for case in 0..CASES {
        let mut r = case_rng(3, case);
        let q = pattern(case, r.gen_range(1..14usize), 3);
        let once = cim(&q);
        let twice = cim(&once);
        assert!(isomorphic(&once, &twice), "case {case}");
    }
}

/// The incremental engine (Section 6.1 implementation) computes the same
/// minimum as the rebuild-per-test implementation.
#[test]
fn incremental_engine_matches_rebuilding() {
    for case in 0..CASES {
        let mut r = case_rng(4, case);
        let q = pattern(case, r.gen_range(1..14usize), 3);
        let inc = tpq::core::cim_incremental(&q);
        let reb = cim(&q);
        assert!(
            isomorphic(&inc, &reb),
            "incremental {} vs rebuilding {} (case {case})",
            inc.size(),
            reb.size()
        );
    }
}

/// ... and the same under constraints, through augmentation.
#[test]
fn incremental_acim_matches_rebuilding() {
    for case in 0..CASES {
        let mut r = case_rng(5, case);
        let count = r.gen_range(0..8usize);
        let q = pattern(case, 10, 4);
        let ics = random_constraints(&ConstraintSpec { count, num_types: 4, seed: case << 8 });
        let closed = ics.closure();
        let mut s1 = tpq::core::MinimizeStats::default();
        let mut s2 = tpq::core::MinimizeStats::default();
        let inc = tpq::core::acim_incremental_closed(&q, &closed, &mut s1);
        let reb = tpq::core::acim_closed(&q, &closed, &mut s2);
        assert!(
            isomorphic(&inc, &reb),
            "incremental {} vs rebuilding {} (case {case})",
            inc.size(),
            reb.size()
        );
    }
}

/// The polynomial containment test agrees with brute-force search.
#[test]
fn homomorphism_pruning_matches_naive() {
    for case in 0..CASES {
        let mut r = case_rng(6, case);
        let n1 = r.gen_range(1..8usize);
        let n2 = r.gen_range(1..8usize);
        let a = pattern(case, n1, 3);
        let b = pattern(case ^ 0xFFFF, n2, 3);
        assert_eq!(has_homomorphism(&a, &b), has_homomorphism_naive(&a, &b), "case {case} a→b");
        assert_eq!(has_homomorphism(&b, &a), has_homomorphism_naive(&b, &a), "case {case} b→a");
    }
}

/// The production evaluator agrees with exhaustive enumeration.
#[test]
fn evaluator_matches_naive() {
    for case in 0..CASES {
        let q = pattern(case, 6, 3);
        let doc = tpq::data::generate_document(&tpq::data::DocumentSpec {
            nodes: 25,
            num_types: 3,
            max_fanout: 3,
            extra_type_prob: 0.15,
            seed: case << 16,
        });
        let mut fast = answer_set(&q, &doc);
        fast.sort_unstable();
        assert_eq!(fast, answer_set_naive(&q, &doc), "case {case}");
    }
}

/// Semantic check of CIM: identical answer sets on random documents.
#[test]
fn cim_preserves_answers_on_random_documents() {
    for case in 0..CASES {
        let q = pattern(case, 10, 3);
        let m = cim(&q);
        let doc = tpq::data::generate_document(&tpq::data::DocumentSpec {
            nodes: 40,
            num_types: 3,
            max_fanout: 4,
            extra_type_prob: 0.1,
            seed: case << 16,
        });
        assert!(tpq::matching::same_answers(&q, &m, &doc), "case {case}");
    }
}

/// Theorem 5.1: ACIM output is equivalent under the constraints and no
/// larger than the CIM output.
#[test]
fn acim_preserves_equivalence_under_ics() {
    for case in 0..CASES {
        let mut r = case_rng(7, case);
        let nodes = r.gen_range(1..12usize);
        let count = r.gen_range(0..8usize);
        let q = pattern(case, nodes, 4);
        let ics = random_constraints(&ConstraintSpec { count, num_types: 4, seed: case << 8 });
        let a = minimize_with(&q, &ics, Strategy::AcimOnly).pattern;
        let c = cim(&q);
        assert!(a.size() <= c.size(), "ACIM must subsume CIM (case {case})");
        assert!(equivalent_under(&q, &a, &ics), "case {case}");
        a.validate().unwrap();
    }
}

/// Theorem 5.2: CDM output is equivalent and locally minimal.
#[test]
fn cdm_locally_minimal() {
    for case in 0..CASES {
        let mut r = case_rng(8, case);
        let count = r.gen_range(0..8usize);
        let q = pattern(case, 12, 4);
        let ics = random_constraints(&ConstraintSpec { count, num_types: 4, seed: case << 8 });
        let m = cdm(&q, &ics);
        assert!(equivalent_under(&q, &m, &ics), "case {case}");
        let closed = ics.closure();
        assert!(
            locally_redundant_leaves(&m, &closed).is_empty(),
            "locally redundant leaf survives CDM (case {case})"
        );
    }
}

/// Theorem 5.3: CDM as a pre-filter does not change ACIM's result.
#[test]
fn cdm_prefilter_reaches_the_same_minimum() {
    for case in 0..CASES {
        let mut r = case_rng(9, case);
        let count = r.gen_range(0..8usize);
        let q = pattern(case, 12, 4);
        let ics = random_constraints(&ConstraintSpec { count, num_types: 4, seed: case << 8 });
        let direct = minimize_with(&q, &ics, Strategy::AcimOnly).pattern;
        let combined = minimize_with(&q, &ics, Strategy::CdmThenAcim).pattern;
        assert!(
            isomorphic(&direct, &combined),
            "ACIM {} nodes vs CDM+ACIM {} nodes (case {case})",
            direct.size(),
            combined.size()
        );
    }
}

/// Semantic check of ACIM: answer sets agree on databases *repaired to
/// satisfy the constraints*.
#[test]
fn acim_preserves_answers_on_conforming_documents() {
    for case in 0..CASES {
        let q = pattern(case, 8, 4);
        let ics = random_constraints(&ConstraintSpec { count: 5, num_types: 4, seed: case << 8 });
        let m = minimize_with(&q, &ics, Strategy::CdmThenAcim).pattern;
        let raw = tpq::data::generate_document(&tpq::data::DocumentSpec {
            nodes: 20,
            num_types: 4,
            max_fanout: 3,
            extra_type_prob: 0.1,
            seed: case << 16,
        });
        let closed = ics.closure();
        if !closed.is_finitely_satisfiable() {
            continue;
        }
        let doc = tpq::constraints::repair(&raw, &closed).unwrap();
        assert!(
            tpq::matching::same_answers(&q, &m, &doc),
            "answers diverge on a conforming document (case {case})"
        );
    }
}

/// DSL printing round-trips through the parser up to isomorphism.
#[test]
fn dsl_round_trip() {
    for case in 0..CASES {
        let mut r = case_rng(10, case);
        let q = pattern(case, r.gen_range(1..15usize), 4);
        let mut tys = tpq::base::TypeInterner::new();
        tpq_workload::random::universe(&mut tys, 4);
        let printed = tpq::pattern::print::to_dsl(&q, &tys);
        let back = tpq::pattern::parse_pattern(&printed, &mut tys).unwrap();
        assert!(isomorphic(&q, &back), "{printed}");
    }
}

/// Compaction preserves the canonical form.
#[test]
fn compaction_preserves_canonical_form() {
    for case in 0..CASES {
        let mut r = case_rng(11, case);
        let mut q = pattern(case, r.gen_range(2..12usize), 3);
        if let Some(l) = q.leaves().into_iter().find(|&l| l != q.output() && l != q.root()) {
            q.remove_leaf(l).unwrap();
        }
        let (compacted, _) = q.compact();
        assert_eq!(canonical_form(&q), canonical_form(&compacted), "case {case}");
        compacted.validate().unwrap();
    }
}

/// Closure is idempotent and finitely satisfiable for generated sets.
#[test]
fn closure_idempotent() {
    for case in 0..CASES {
        let mut r = case_rng(12, case);
        let count = r.gen_range(0..12usize);
        let ics = random_constraints(&ConstraintSpec { count, num_types: 6, seed: case });
        let closed = ics.closure();
        assert!(closed.is_closed(), "case {case}");
        assert!(closed.is_finitely_satisfiable(), "case {case}");
        assert!(closed.len() >= ics.len(), "case {case}");
    }
}

/// Parsers reject or accept arbitrary input without panicking.
#[test]
fn parsers_never_panic() {
    // A character pool biased toward DSL/XML syntax so random strings
    // reach deep parser states, plus some unicode.
    const POOL: &[char] = &[
        'a', 'b', 'Z', '0', '9', '/', '[', ']', '{', '}', '*', '<', '>', '=', '"', '\'', ',', '.',
        '-', '~', ' ', '\t', '\n', '(', ')', '&', ';', '!', 'é', '∀', '§',
    ];
    for case in 0..400u64 {
        let mut r = case_rng(13, case);
        let len = r.gen_range(0..60usize);
        let input: String = (0..len).map(|_| *r.choose(POOL).expect("non-empty pool")).collect();
        let mut tys = tpq::base::TypeInterner::new();
        let _ = tpq::pattern::parse_pattern(&input, &mut tys);
        let _ = tpq::pattern::parse_xpath(&input, &mut tys);
        let _ = tpq::data::parse_xml(&input, &mut tys);
        let _ = tpq::constraints::parse_constraints(&input, &mut tys);
        let _ = tpq::constraints::Schema::parse(&input, &mut tys);
    }
}

/// Near-miss mutations of valid pattern text parse or fail cleanly, and
/// whatever parses round-trips.
#[test]
fn mutated_dsl_never_panics() {
    let base = r#"Articles/Article*{price<100,lang="en"}[/Title][//Para]//Section"#;
    for case in 0..200u64 {
        let mut r = case_rng(14, case);
        let cut = r.gen_range(0..40usize);
        let mut text: Vec<char> = base.chars().collect();
        let pos = (case as usize) % text.len();
        match case % 4 {
            0 => {
                text.remove(pos);
            }
            1 => text.insert(pos, '['),
            2 => text.insert(pos, '}'),
            _ => text.truncate(cut.min(text.len())),
        }
        let s: String = text.into_iter().collect();
        let mut tys = tpq::base::TypeInterner::new();
        if let Ok(q) = tpq::pattern::parse_pattern(&s, &mut tys) {
            q.validate().unwrap();
            let printed = tpq::pattern::print::to_dsl(&q, &tys);
            let back = tpq::pattern::parse_pattern(&printed, &mut tys).unwrap();
            assert!(isomorphic(&q, &back), "{printed}");
        }
    }
}

/// Repair always yields a satisfying document.
#[test]
fn repair_satisfies() {
    for case in 0..CASES {
        let ics = random_constraints(&ConstraintSpec { count: 6, num_types: 5, seed: case });
        let closed = ics.closure();
        if !closed.is_finitely_satisfiable() {
            continue;
        }
        let raw = tpq::data::generate_document(&tpq::data::DocumentSpec {
            nodes: 15,
            num_types: 5,
            max_fanout: 3,
            extra_type_prob: 0.2,
            seed: case << 16,
        });
        let fixed = tpq::constraints::repair(&raw, &closed).unwrap();
        assert!(tpq::constraints::satisfies(&fixed, &closed), "case {case}");
        fixed.validate().unwrap();
    }
}
