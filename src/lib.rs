//! # tpq — Minimization of Tree Pattern Queries
//!
//! A from-scratch Rust implementation of *Minimization of Tree Pattern
//! Queries* (Amer-Yahia, Cho, Lakshmanan, Srivastava — SIGMOD 2001).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`base`] — type interner, type sets, errors;
//! * [`pattern`] — tree pattern queries, DSL, isomorphism;
//! * [`data`] — tree-structured documents, XML-subset parsing;
//! * [`constraints`] — integrity constraints, logical closure, schemas;
//! * [`core`] — containment mappings and the CIM / ACIM / CDM algorithms;
//! * [`matching`] — pattern evaluation against documents;
//! * [`obs`] — spans, counters and latency histograms over all of the
//!   above (disabled unless requested; see `docs/OBSERVABILITY.md`);
//! * [`serve`] — the long-running minimization service behind
//!   `tpq serve` (see `docs/ARCHITECTURE.md` for when to use it).
//!
//! ## Quickstart
//!
//! ```
//! use tpq::prelude::*;
//!
//! let mut types = TypeInterner::new();
//! // "departments that contain a database project and that contain project
//! // managers managing a database project" (Section 1)
//! let q = parse_pattern("Dept*[//DBProject]//Manager//DBProject", &mut types).unwrap();
//! let minimal = cim(&q);
//! assert_eq!(minimal.size(), 3); // the first //DBProject branch is redundant
//! ```

pub use tpq_base as base;
pub use tpq_constraints as constraints;
pub use tpq_core as core;
pub use tpq_data as data;
pub use tpq_match as matching;
pub use tpq_obs as obs;
pub use tpq_pattern as pattern;
pub use tpq_serve as serve;

/// Single-import convenience: the types and functions nearly every user
/// needs.
pub mod prelude {
    pub use tpq_base::{
        Cmp, Error, Guard, GuardBuilder, Result, TypeId, TypeInterner, TypeSet, Value,
    };
    pub use tpq_constraints::{parse_constraints, Constraint, ConstraintSet, Schema};
    pub use tpq_core::{
        acim, cdm, cim, contains, contains_under, equivalent, equivalent_under, minimize,
        MinimizeOutcome, MinimizeStats,
    };
    pub use tpq_data::{parse_xml, parse_xml_reader, Document, Forest};
    pub use tpq_match::{
        answer_set, answer_set_naive, answer_set_twig, count_embeddings, count_embeddings_naive,
        matches_anywhere,
    };
    pub use tpq_pattern::print::{to_dsl, to_tree_string};
    pub use tpq_pattern::{
        canonical_form, entails, isomorphic, parse_pattern, parse_xpath, Condition, EdgeKind,
        NodeId, TreePattern,
    };
}
