//! `tpq` — the command-line front door to the library.
//!
//! ```text
//! tpq minimize --query 'Book*[/Title][/Publisher]' --ic 'Book -> Publisher' --stats
//! tpq minimize --xpath '//Book[Title][.//LastName]' --schema schema.txt --tree
//! tpq minimize --batch queries.txt --constraints ics.txt --jobs 4
//! tpq minimize --batch queries.txt --deadline-ms 250 --budget 5000000
//! tpq --trace minimize 'Dept*[//DBProject]//Manager//DBProject'
//! tpq --metrics-json out.json minimize 'a*[/b][/b/c]'
//! tpq explain  'Articles[/Article//Paragraph]/Article*//Section//Paragraph' --ic 'Section ->> Paragraph'
//! tpq match    'Dept*//Manager' org.xml
//! tpq match    --query 'Dept*//Manager' --doc org.xml --engine embed
//! tpq check    --q1 'a*[/b]' --q2 'a*' --ic 'a -> b'
//! tpq closure  --constraints ics.txt
//! tpq repair   --doc org.xml --constraints ics.txt
//! tpq serve    --addr 127.0.0.1:7878 --jobs 4 --max-conns 64 --deadline-ms 1000
//! tpq serve    --addr 127.0.0.1:7878 --slow-ms 50 --slow-log slow.jsonl --flight-dump flight.jsonl
//! tpq top      --addr 127.0.0.1:7878 --interval-ms 1000
//! tpq top      --addr 127.0.0.1:7878 --once
//! ```
//!
//! Patterns are given in the DSL by default; `--xpath` switches the query
//! syntax (`minimize` and `match` also accept the query as a bare
//! positional argument). Constraints can come inline (`--ic`, repeatable),
//! from a file (`--constraints`), or inferred from a schema file
//! (`--schema`); sources combine.
//!
//! Observability (may appear anywhere on the command line):
//!
//! * `--trace` — print a flame-style span/counter report to stderr;
//! * `--metrics-json <path>` — write the span/counter/latency report as
//!   JSON (see `docs/OBSERVABILITY.md` for the schema).
//!
//! Resource governance (`minimize` only; see `docs/ROBUSTNESS.md`):
//!
//! * `--deadline-ms <n>` — wall-clock deadline for the minimization (the
//!   whole batch in `--batch` mode);
//! * `--budget <n>` — step budget (pooled across batch workers).
//!
//! A tripped limit exits with code 1 and a `budget error: …` message; in
//! batch mode queries that finished in time still print their results,
//! with `# error: …` placeholder lines holding the failed slots.
//!
//! `tpq explain` minimizes one query like `minimize` and then prints, per
//! deleted node, the Figure 6 CDM rule or the endomorphism witness that
//! justified the deletion (IC-implied witnesses are resolved back to the
//! chase fact that created them). `--events` additionally dumps the raw
//! decision-event stream to stderr as JSON lines.
//!
//! `tpq serve` runs the minimization service from `tpq-serve`: it prints
//! `listening on <addr>` once bound, answers newline-delimited JSON
//! requests until SIGTERM / ctrl-c / a `SHUTDOWN` verb, then drains
//! in-flight work and prints a summary. On Linux the socket side is an
//! epoll event-loop reactor; `--threaded` selects the legacy
//! thread-per-connection engine instead (see `docs/SERVING.md`).
//! `--deadline-ms` / `--budget` act as per-request ceilings rather than
//! whole-process limits. `--slow-ms <n>` logs requests at or above `n`
//! milliseconds (trace id plus per-phase breakdown) to stderr, or to
//! `--slow-log <path>` when given. `--flight-dump <path>` names the file
//! the always-on flight recorder dumps its recent-request black box to
//! when a worker panics or the process receives SIGUSR1.
//!
//! `tpq top` is the matching live dashboard: it polls a running server's
//! `STATS` and `TIMELINE` verbs and redraws RED rates, windowed latency
//! quantiles, and the slowest recent requests; `--once` prints a single
//! plain frame for scripts (see `docs/SERVING.md`).

use std::process::ExitCode;
use tpq::constraints::Schema;
use tpq::core::{minimize_with_guarded, Strategy};
use tpq::prelude::*;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let (mut trace, metrics_json) = match peel_obs_flags(&mut args) {
        Ok(pair) => pair,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    // `TPQ_TRACE=…` enables the layer inside tpq-obs itself; mirror it
    // here so the report is also *printed* without an explicit --trace.
    if matches!(std::env::var("TPQ_TRACE").as_deref(), Ok(v) if !matches!(v, "" | "0" | "false" | "off"))
    {
        trace = true;
    }
    if trace || metrics_json.is_some() {
        tpq::obs::set_enabled(true);
    }
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("usage: tpq [--trace] [--metrics-json <path>] <minimize|explain|match|check|closure|repair|serve|query|top> [options]");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "minimize" => cmd_minimize(rest),
        "explain" => cmd_explain(rest),
        "match" => cmd_match(rest),
        "check" => cmd_check(rest),
        "closure" => cmd_closure(rest),
        "repair" => cmd_repair(rest),
        "serve" => cmd_serve(rest),
        "query" => cmd_query(rest),
        "top" => cmd_top(rest),
        "--help" | "-h" | "help" => {
            println!(
                "subcommands: minimize, explain, match, check, closure, repair, serve, query, top"
            );
            println!("global flags: --trace, --metrics-json <path>");
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}'")),
    };
    let result = result.and_then(|()| emit_obs(trace, metrics_json.as_deref()));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Remove the global observability flags from `args`, wherever they occur.
fn peel_obs_flags(args: &mut Vec<String>) -> Result2<(bool, Option<String>)> {
    let mut trace = false;
    let mut metrics_json = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace" => {
                trace = true;
                args.remove(i);
            }
            "--metrics-json" => {
                args.remove(i);
                if i >= args.len() {
                    return Err("--metrics-json needs a path".into());
                }
                metrics_json = Some(args.remove(i));
            }
            _ => i += 1,
        }
    }
    Ok((trace, metrics_json))
}

/// Flush the requested observability sinks after a successful command.
fn emit_obs(trace: bool, metrics_json: Option<&str>) -> Result2<()> {
    if trace {
        eprint!("\n{}", tpq::obs::report().to_text());
    }
    if let Some(path) = metrics_json {
        let json = tpq::obs::report().to_json().to_string_pretty();
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(())
}

/// Minimal flag cracker: `--name value` pairs, boolean flags, and bare
/// positional arguments.
struct Opts {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
    positionals: Vec<String>,
}

impl Opts {
    fn parse(args: &[String], booleans: &[&str]) -> Result2<Opts> {
        let mut pairs = Vec::new();
        let mut flags = Vec::new();
        let mut positionals = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                positionals.push(a.clone());
                continue;
            };
            if booleans.contains(&name) {
                flags.push(name.to_owned());
            } else {
                let v = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                pairs.push((name.to_owned(), v.clone()));
            }
        }
        Ok(Opts { pairs, flags, positionals })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    fn get_all(&self, name: &str) -> Vec<&str> {
        self.pairs.iter().filter(|(n, _)| n == name).map(|(_, v)| v.as_str()).collect()
    }

    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    fn require(&self, name: &str) -> Result2<&str> {
        self.get(name).ok_or_else(|| format!("--{name} is required"))
    }

    fn no_positionals(&self) -> Result2<()> {
        match self.positionals.first() {
            Some(p) => Err(format!("unexpected argument '{p}'")),
            None => Ok(()),
        }
    }
}

type Result2<T> = std::result::Result<T, String>;

fn read_file(path: &str) -> Result2<String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn parse_query(opts: &Opts, types: &mut TypeInterner) -> Result2<TreePattern> {
    if let Some(x) = opts.get("xpath") {
        return tpq::pattern::parse_xpath(x, types).map_err(|e| e.to_string());
    }
    let q = match opts.get("query") {
        Some(q) => q,
        None => opts
            .positionals
            .first()
            .map(String::as_str)
            .ok_or("--query is required (or pass the query as a bare argument)")?,
    };
    parse_pattern(q, types).map_err(|e| e.to_string())
}

fn gather_constraints(opts: &Opts, types: &mut TypeInterner) -> Result2<ConstraintSet> {
    let mut lines: Vec<String> = opts.get_all("ic").iter().map(|s| s.to_string()).collect();
    if let Some(path) = opts.get("constraints") {
        lines.extend(read_file(path)?.lines().map(str::to_owned));
    }
    let mut set = parse_constraints(&lines.join("\n"), types).map_err(|e| e.to_string())?;
    if let Some(path) = opts.get("schema") {
        let schema = Schema::parse(&read_file(path)?, types).map_err(|e| e.to_string())?;
        for c in schema.infer_constraints().iter() {
            set.insert(c);
        }
    }
    Ok(set)
}

/// Load batch queries from `path`: either one file with one DSL query per
/// line (blank lines and `#` comments skipped), or a directory whose
/// `.txt` files are read in sorted-name order.
fn read_batch_queries(path: &str, types: &mut TypeInterner) -> Result2<Vec<TreePattern>> {
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    if std::fs::metadata(path).map_err(|e| format!("cannot read {path}: {e}"))?.is_dir() {
        for entry in std::fs::read_dir(path).map_err(|e| format!("cannot read {path}: {e}"))? {
            let entry = entry.map_err(|e| format!("cannot read {path}: {e}"))?;
            let p = entry.path();
            if p.extension().is_some_and(|ext| ext == "txt") {
                files.push(p);
            }
        }
        files.sort();
        if files.is_empty() {
            return Err(format!("{path} contains no .txt query files"));
        }
    } else {
        files.push(path.into());
    }
    let mut queries = Vec::new();
    for file in &files {
        let text = read_file(&file.display().to_string())?;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let q = parse_pattern(line, types)
                .map_err(|e| format!("{}:{}: {e}", file.display(), lineno + 1))?;
            queries.push(q);
        }
    }
    Ok(queries)
}

/// Build a [`Guard`] from `--deadline-ms` / `--budget`; with neither flag
/// the guard is unlimited and minimization takes the free fast path.
fn parse_guard(opts: &Opts) -> Result2<Guard> {
    let mut builder = Guard::builder();
    if let Some(ms) = opts.get("deadline-ms") {
        let ms = ms
            .parse::<u64>()
            .map_err(|_| format!("--deadline-ms needs a non-negative integer, got '{ms}'"))?;
        builder = builder.deadline_ms(ms);
    }
    if let Some(steps) = opts.get("budget") {
        let steps = steps
            .parse::<u64>()
            .map_err(|_| format!("--budget needs a non-negative integer, got '{steps}'"))?;
        builder = builder.budget(steps);
    }
    Ok(builder.build())
}

fn constraint_line(c: &Constraint, types: &TypeInterner) -> String {
    let op = match c {
        Constraint::RequiredChild(..) => "->",
        Constraint::RequiredDescendant(..) => "->>",
        Constraint::CoOccurrence(..) => "~",
    };
    format!("{} {} {}", types.name(c.lhs()), op, types.name(c.rhs()))
}

fn cmd_minimize(args: &[String]) -> Result2<()> {
    let opts = Opts::parse(args, &["tree", "stats"])?;
    let mut types = TypeInterner::new();
    let strategy = opts.get("strategy").unwrap_or_default().parse::<Strategy>()?;
    // Batch mode: one query per line from a file (or every `.txt` file in
    // a directory), minimized by the parallel batch engine: the constraint
    // closure is computed once, isomorphic queries are minimized once via
    // the canonical-key memo cache, and the unique remainder fans out over
    // `--jobs` worker threads. Output order always matches input order.
    if let Some(path) = opts.get("batch") {
        let jobs = match opts.get("jobs") {
            None => std::thread::available_parallelism().map_or(1, |n| n.get()),
            Some(n) => match n.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => return Err(format!("--jobs needs a positive integer, got '{n}'")),
            },
        };
        let guard = parse_guard(&opts)?;
        let queries = read_batch_queries(path, &mut types)?;
        let ics = gather_constraints(&opts, &mut types)?;
        let engine = tpq::core::BatchMinimizer::with_strategy(&ics, strategy);
        let out = engine.minimize_batch_guarded(&queries, jobs, &guard);
        // One stdout line per input query, in input order: failed slots
        // print a commented placeholder so the output stays parallel.
        for r in &out.results {
            match r {
                Ok(m) => println!("{}", to_dsl(m, &types)),
                Err(e) => println!("# error: {e}"),
            }
        }
        if opts.flag("stats") {
            let s = &out.stats;
            eprintln!(
                "{} queries ({} unique) | cache {} hit / {} miss | {} workers, {} steals | {} failed | {:?}",
                s.queries, s.unique, s.cache_hits, s.cache_misses, s.workers, s.steals, s.failed, s.wall_time,
            );
        }
        if out.stats.failed > 0 {
            return Err(format!(
                "{} of {} queries failed (see '# error' lines above)",
                out.stats.failed, out.stats.queries
            ));
        }
        return Ok(());
    }
    let guard = parse_guard(&opts)?;
    let query = parse_query(&opts, &mut types)?;
    let ics = gather_constraints(&opts, &mut types)?;
    let out = minimize_with_guarded(&query, &ics, strategy, &guard).map_err(|e| e.to_string())?;
    println!("{}", to_dsl(&out.pattern, &types));
    if opts.flag("tree") {
        eprintln!("\n{}", to_tree_string(&out.pattern, &types));
    }
    if opts.flag("stats") {
        let s = &out.stats;
        eprintln!(
            "nodes {} -> {} | cdm removed {} | acim removed {} | temps added {} | {:?} total ({:.0}% tables)",
            query.size(),
            out.pattern.size(),
            s.cdm_removed,
            s.cim_removed,
            s.augment_nodes_added,
            s.total_time,
            s.tables_fraction() * 100.0,
        );
    }
    Ok(())
}

/// `tpq explain`: minimize once with decision-event capture on and print,
/// for every deleted node, the constraint-closure fact or homomorphism
/// witness that justified the deletion.
fn cmd_explain(args: &[String]) -> Result2<()> {
    let opts = Opts::parse(args, &["events"])?;
    let mut types = TypeInterner::new();
    let strategy = opts.get("strategy").unwrap_or_default().parse::<Strategy>()?;
    let guard = parse_guard(&opts)?;
    let query = parse_query(&opts, &mut types)?;
    let ics = gather_constraints(&opts, &mut types)?;
    let ex =
        tpq::core::explain_guarded(&query, &ics, strategy, &guard).map_err(|e| e.to_string())?;
    println!("{}", to_dsl(&ex.minimized, &types));
    println!(
        "{} nodes -> {} ({} deleted) | trace {}",
        query.size(),
        ex.minimized.size(),
        ex.deletions.len(),
        tpq::obs::trace_hex(ex.trace),
    );
    for d in &ex.deletions {
        println!("  - {}", deletion_line(d, &query, &types));
    }
    if opts.flag("events") {
        eprint!("{}", tpq::obs::events_to_json_lines(&ex.events));
    }
    Ok(())
}

/// One human-readable justification line for a deleted node.
fn deletion_line(d: &tpq::core::Deletion, q: &TreePattern, types: &TypeInterner) -> String {
    use tpq::core::Reason;
    let name = types.name(d.ty);
    let fact_line = |fact: &tpq::core::ChaseFact| {
        format!("{} {} {}", types.name(fact.lhs), fact.op, types.name(fact.rhs))
    };
    match &d.reason {
        Reason::Cdm { rule, at, fact, witness_ty } => {
            let mut line = format!(
                "{name} (node {}): CDM rule {rule} at {} (node {}): {}",
                d.node.0,
                types.name(q.node(*at).primary),
                at.0,
                fact_line(fact),
            );
            if let Some(w) = witness_ty {
                let role = if *rule == 3 { "sibling" } else { "descendant" };
                line.push_str(&format!(", witnessed by a co-occurring {} {role}", types.name(*w)));
            }
            line
        }
        Reason::Cim { witness, witness_ty, via } => match via {
            Some(fact) => format!(
                "{name} (node {}): CIM folds it onto the IC-implied {} under {} (node {}), chase: {}",
                d.node.0,
                types.name(*witness_ty),
                types.name(q.node(fact.at).primary),
                fact.at.0,
                fact_line(fact),
            ),
            None => format!(
                "{name} (node {}): CIM folds it onto {} (node {})",
                d.node.0,
                types.name(*witness_ty),
                witness.0,
            ),
        },
    }
}

fn cmd_match(args: &[String]) -> Result2<()> {
    let opts = Opts::parse(args, &["count"])?;
    let mut types = TypeInterner::new();
    let query = parse_query(&opts, &mut types)?;
    // The document: `--doc <file>`, or the positional after the query
    // (`tpq match '<query>' doc.xml`). Streamed from disk, so documents
    // need not fit in one contiguous String.
    let inline_query = opts.get("query").is_none() && opts.get("xpath").is_none();
    let doc_path = match opts.get("doc") {
        Some(p) => p,
        None => opts
            .positionals
            .get(if inline_query { 1 } else { 0 })
            .map(String::as_str)
            .ok_or("--doc is required (or pass the document file after the query)")?,
    };
    let file = std::fs::File::open(doc_path).map_err(|e| format!("cannot read {doc_path}: {e}"))?;
    let doc =
        parse_xml_reader(std::io::BufReader::new(file), &mut types).map_err(|e| e.to_string())?;
    let engine = opts.get("engine").unwrap_or("twig");
    if opts.flag("count") {
        let n = match engine {
            "naive" => count_embeddings_naive(&query, &doc),
            "twig" | "embed" => count_embeddings(&query, &doc),
            other => return Err(format!("unknown engine '{other}' (twig|embed|naive)")),
        };
        println!("{n}");
        return Ok(());
    }
    let mut answers = match engine {
        "twig" => answer_set_twig(&query, &doc),
        "embed" => answer_set(&query, &doc),
        "naive" => answer_set_naive(&query, &doc),
        other => return Err(format!("unknown engine '{other}' (twig|embed|naive)")),
    };
    // Engines return different orders (pre-order vs arena); print in
    // arena order so output is engine-independent and diff-able.
    answers.sort_unstable();
    println!("{} answer(s)", answers.len());
    for a in answers {
        // Print the path from the root to the answer node.
        let mut path = Vec::new();
        let mut cur = Some(a);
        while let Some(n) = cur {
            path.push(types.name(doc.node(n).primary).to_owned());
            cur = doc.node(n).parent;
        }
        path.reverse();
        println!("  /{} (node {})", path.join("/"), a.0);
    }
    Ok(())
}

fn cmd_check(args: &[String]) -> Result2<()> {
    let opts = Opts::parse(args, &[])?;
    opts.no_positionals()?;
    let mut types = TypeInterner::new();
    let q1 = parse_pattern(opts.require("q1")?, &mut types).map_err(|e| e.to_string())?;
    let q2 = parse_pattern(opts.require("q2")?, &mut types).map_err(|e| e.to_string())?;
    let ics = gather_constraints(&opts, &mut types)?;
    let fwd = contains_under(&q1, &q2, &ics);
    let bwd = contains_under(&q2, &q1, &ics);
    println!("q1 ⊆ q2: {fwd}");
    println!("q2 ⊆ q1: {bwd}");
    println!(
        "equivalent: {}{}",
        fwd && bwd,
        if ics.is_empty() { "" } else { " (under the given constraints)" }
    );
    Ok(())
}

fn cmd_closure(args: &[String]) -> Result2<()> {
    let opts = Opts::parse(args, &[])?;
    opts.no_positionals()?;
    let mut types = TypeInterner::new();
    let ics = gather_constraints(&opts, &mut types)?;
    let closed = ics.closure();
    let mut lines: Vec<String> = closed.iter().map(|c| constraint_line(&c, &types)).collect();
    lines.sort();
    for l in lines {
        println!("{l}");
    }
    eprintln!("{} constraints ({} given)", closed.len(), ics.len());
    if !closed.is_finitely_satisfiable() {
        eprintln!("warning: the closure contains a required-descendant cycle; no finite tree satisfies it");
    }
    Ok(())
}

/// `tpq serve`: run the long-running minimization service until a
/// shutdown signal (SIGTERM / ctrl-c) or a `SHUTDOWN` protocol verb.
fn cmd_serve(args: &[String]) -> Result2<()> {
    let opts = Opts::parse(args, &["threaded"])?;
    opts.no_positionals()?;
    let mut config =
        tpq::serve::ServeConfig { handle_signals: true, ..tpq::serve::ServeConfig::default() };
    // --threaded: opt out of the epoll reactor (Linux default) and run
    // the legacy thread-per-connection engine instead.
    config.threaded = opts.flag("threaded");
    if let Some(addr) = opts.get("addr") {
        config.addr = addr.to_owned();
    }
    if let Some(jobs) = opts.get("jobs") {
        config.jobs = jobs
            .parse::<usize>()
            .map_err(|_| format!("--jobs needs a non-negative integer, got '{jobs}'"))?;
    }
    if let Some(n) = opts.get("max-conns") {
        config.max_conns = match n.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => return Err(format!("--max-conns needs a positive integer, got '{n}'")),
        };
    }
    if let Some(ms) = opts.get("deadline-ms") {
        config.deadline_ms = Some(
            ms.parse::<u64>()
                .map_err(|_| format!("--deadline-ms needs a non-negative integer, got '{ms}'"))?,
        );
    }
    if let Some(steps) = opts.get("budget") {
        config.budget = Some(
            steps
                .parse::<u64>()
                .map_err(|_| format!("--budget needs a non-negative integer, got '{steps}'"))?,
        );
    }
    if let Some(bytes) = opts.get("max-line-bytes") {
        config.max_line_bytes = match bytes.parse::<usize>() {
            Ok(n) if n >= 2 => n,
            _ => return Err(format!("--max-line-bytes needs an integer >= 2, got '{bytes}'")),
        };
    }
    if let Some(ms) = opts.get("drain-ms") {
        config.drain_ms = ms
            .parse::<u64>()
            .map_err(|_| format!("--drain-ms needs a non-negative integer, got '{ms}'"))?;
    }
    if let Some(strategy) = opts.get("strategy") {
        config.strategy = strategy.parse::<Strategy>()?;
    }
    if let Some(ms) = opts.get("slow-ms") {
        config.slow_ms = Some(
            ms.parse::<u64>()
                .map_err(|_| format!("--slow-ms needs a non-negative integer, got '{ms}'"))?,
        );
    }
    if let Some(path) = opts.get("slow-log") {
        if config.slow_ms.is_none() {
            return Err("--slow-log needs --slow-ms to set the threshold".into());
        }
        config.slow_log = Some(path.into());
    }
    if let Some(n) = opts.get("queue-depth") {
        config.queue_depth = match n.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => return Err(format!("--queue-depth needs a positive integer, got '{n}'")),
        };
    }
    if let Some(path) = opts.get("snapshot") {
        config.snapshot = Some(path.into());
    }
    if let Some(path) = opts.get("restore") {
        config.restore = Some(path.into());
    }
    if let Some(path) = opts.get("flight-dump") {
        config.flight_dump = Some(path.into());
    }
    let server = tpq::serve::Server::bind(config).map_err(|e| format!("cannot bind: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    let restore = server.handle().restore_status().clone();
    match restore.outcome {
        "restored" => println!(
            "restored snapshot: {} engines, {} patterns, {} closures ({} bytes)",
            restore.stats.engines,
            restore.stats.patterns,
            restore.stats.closures,
            restore.stats.bytes
        ),
        "rejected" => println!(
            "snapshot rejected ({}), starting cold",
            restore.reason.as_deref().unwrap_or("unknown reason")
        ),
        _ => {}
    }
    // Announce the bound address on a flushed line so wrappers (tests, CI
    // smoke scripts) can pick up the port chosen for `--addr host:0`.
    println!("listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let summary = server.run().map_err(|e| format!("serve failed: {e}"))?;
    eprintln!(
        "serve: {} connections ({} refused), {} requests ok, {} failed, {} shed",
        summary.accepted,
        summary.refused,
        summary.requests_ok,
        summary.requests_failed,
        summary.requests_shed
    );
    if let Some(path) = &summary.snapshot_written {
        eprintln!("serve: snapshot written to {}", path.display());
    }
    Ok(())
}

/// `tpq top`: a live terminal dashboard over a running `tpq serve`,
/// polling `STATS` and `TIMELINE` at `--interval-ms`. `--once` renders a
/// single plain frame (stable `key:` line prefixes, no escape codes) for
/// scripts and CI smoke checks.
fn cmd_top(args: &[String]) -> Result2<()> {
    let opts = Opts::parse(args, &["once"])?;
    opts.no_positionals()?;
    let mut config = tpq::serve::TopConfig::default();
    if let Some(addr) = opts.get("addr") {
        config.addr = addr.to_owned();
    }
    if let Some(ms) = opts.get("interval-ms") {
        config.interval_ms = match ms.parse::<u64>() {
            Ok(n) if n >= 1 => n,
            _ => return Err(format!("--interval-ms needs a positive integer, got '{ms}'")),
        };
    }
    if let Some(n) = opts.get("timeline") {
        config.timeline = match n.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => return Err(format!("--timeline needs a positive integer, got '{n}'")),
        };
    }
    config.once = opts.flag("once");
    let mut stdout = std::io::stdout();
    tpq::serve::top::run(&config, &mut stdout)
        .map_err(|e| format!("cannot watch {}: {e}", config.addr))
}

/// `tpq query`: minimize one query against a running `tpq serve`, with
/// the client-side retry discipline (retries only `overloaded` /
/// `injected` refusals and transport failures, honoring the server's
/// `retry_after_ms` hints, under an optional end-to-end deadline).
fn cmd_query(args: &[String]) -> Result2<()> {
    use tpq::base::Json;
    let opts = Opts::parse(args, &["stats"])?;
    let addr = opts.get("addr").unwrap_or("127.0.0.1:7878").to_owned();
    let mut policy = tpq::serve::RetryPolicy::default();
    if let Some(n) = opts.get("retries") {
        policy.retries = n
            .parse::<u32>()
            .map_err(|_| format!("--retries needs a non-negative integer, got '{n}'"))?;
    }
    if let Some(ms) = opts.get("backoff-ms") {
        policy.backoff_ms = ms
            .parse::<u64>()
            .map_err(|_| format!("--backoff-ms needs a non-negative integer, got '{ms}'"))?;
    }
    if let Some(ms) = opts.get("deadline-ms") {
        policy.deadline_ms = Some(
            ms.parse::<u64>()
                .map_err(|_| format!("--deadline-ms needs a non-negative integer, got '{ms}'"))?,
        );
    }
    if let Some(seed) = opts.get("seed") {
        policy.seed = seed
            .parse::<u64>()
            .map_err(|_| format!("--seed needs a non-negative integer, got '{seed}'"))?;
    }

    // Build the protocol request object from the same flags `tpq
    // minimize` takes; the query may be --query, --xpath, or positional.
    let mut members: Vec<(&str, Json)> = Vec::new();
    if let Some(x) = opts.get("xpath") {
        members.push(("query", Json::Str(x.to_owned())));
        members.push(("syntax", Json::Str("xpath".to_owned())));
    } else {
        let q = match opts.get("query") {
            Some(q) => q,
            None => opts
                .positionals
                .first()
                .map(String::as_str)
                .ok_or("--query is required (or pass the query as a bare argument)")?,
        };
        members.push(("query", Json::Str(q.to_owned())));
    }
    let ics: Vec<String> = opts.get_all("ic").iter().map(|s| s.to_string()).collect();
    let mut constraints = ics.join("\n");
    if let Some(path) = opts.get("constraints") {
        if !constraints.is_empty() {
            constraints.push('\n');
        }
        constraints.push_str(&read_file(path)?);
    }
    if !constraints.is_empty() {
        members.push(("constraints", Json::Str(constraints)));
    }
    if let Some(strategy) = opts.get("strategy") {
        strategy.parse::<Strategy>()?; // validate locally for a better error
        members.push(("strategy", Json::Str(strategy.to_owned())));
    }
    if let Some(steps) = opts.get("budget") {
        let steps = steps
            .parse::<i64>()
            .map_err(|_| format!("--budget needs a non-negative integer, got '{steps}'"))?;
        members.push(("budget", Json::Int(steps)));
    }
    let request = Json::object(members);

    let mut client = tpq::serve::Client::new(addr, policy);
    match client.query(&request) {
        Ok(outcome) => {
            println!("{}", outcome.minimized);
            if opts.flag("stats") {
                eprintln!(
                    "query: {} attempt(s), cache {}, {}us server-side{}",
                    outcome.attempts,
                    if outcome.cache_hit { "hit" } else { "miss" },
                    outcome.micros,
                    outcome.trace.as_deref().map(|t| format!(", trace {t}")).unwrap_or_default()
                );
            }
            Ok(())
        }
        Err(e) => Err(e.to_string()),
    }
}

fn cmd_repair(args: &[String]) -> Result2<()> {
    let opts = Opts::parse(args, &[])?;
    opts.no_positionals()?;
    let mut types = TypeInterner::new();
    let doc =
        parse_xml(&read_file(opts.require("doc")?)?, &mut types).map_err(|e| e.to_string())?;
    let ics = gather_constraints(&opts, &mut types)?.closure();
    let fixed = tpq::constraints::repair(&doc, &ics).map_err(|e| e.to_string())?;
    print!("{}", tpq::data::write_xml(&fixed, &types));
    eprintln!("{} -> {} nodes", doc.len(), fixed.len());
    Ok(())
}
