//! Synthetic workload generators reproducing the paper's evaluation
//! (Section 6).
//!
//! Each experiment panel of Figures 7–9 has a generator here; the
//! `tpq-bench` crate drives them. All generators are deterministic and
//! return the pattern together with the interner and (where applicable)
//! the constraint set, so benches and tests agree exactly on the inputs.
//!
//! | Figure | Generator |
//! |--------|-----------|
//! | 7(a)   | [`redundancy::redundancy_query`] + [`redundancy::relevant_constraints`] |
//! | 7(b)   | [`shapes::ic_chain_query`] (101 nodes, 100 constraints) |
//! | 8(a)   | [`shapes::ic_chain_query`] + [`constraints::irrelevant_constraints`] |
//! | 8(b)   | [`shapes::shaped_ic_query`] (right-deep / bushy / wider fanout) |
//! | 9(a)   | [`shapes::shaped_ic_query`] with fanout 1 (parity workload) |
//! | 9(b)   | [`prefilter::prefilter_query`] |
//!
//! [`random`] additionally provides random patterns and random (finitely
//! satisfiable) constraint sets for the property-based test suites.

pub mod constraints;
pub mod mix;
pub mod prefilter;
pub mod random;
pub mod redundancy;
pub mod shapes;

pub use constraints::irrelevant_constraints;
pub use mix::{zipf_request_mix, MixSpec, RequestMix, Zipf};
pub use prefilter::{prefilter_query, PrefilterQuery};
pub use random::{random_constraints, random_pattern, ConstraintSpec, PatternSpec};
pub use redundancy::{redundancy_query, relevant_constraints, RedundancyQuery, RedundancySpec};
pub use shapes::{ic_chain_query, shaped_ic_query, ShapedQuery};
