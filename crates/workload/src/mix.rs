//! Zipf-distributed request mixes for replaying realistic traffic
//! against `tpq serve`.
//!
//! Query-optimizer traffic is heavily skewed: a handful of generated
//! patterns account for most requests (which is what makes the serve
//! layer's canonical-pattern memo cache pay off). This module builds a
//! deterministic replay script for that shape: a pool of *distinct*
//! Figure-7 queries rendered to DSL text, sampled under a Zipf
//! distribution, all sharing one constraint text (one schema, many
//! queries — the paper's Section 1 deployment).
//!
//! Everything is seeded and text-based, so the bench harness can pipe
//! the same byte stream at a server across runs and machines.

use crate::redundancy::{redundancy_query, relevant_constraints, RedundancySpec};
use tpq_base::SmallRng;
use tpq_constraints::Constraint;
use tpq_pattern::print::to_dsl;

/// A deterministic Zipf(s) sampler over ranks `0..n` (rank 0 is the most
/// popular). Sampling is an inverse-CDF binary search over precomputed
/// cumulative weights `1/(rank+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler for `n` ranks with skew `s` (`s = 0` is uniform;
    /// `s = 1` is the classic harmonic skew).
    ///
    /// # Panics
    /// Panics when `n` is zero or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "skew must be finite and non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for w in &mut cdf {
            *w /= total;
        }
        // Guard the binary search against floating-point shortfall.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one rank in `0..n`.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        // 53 random mantissa bits give a uniform float in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.cdf.partition_point(|&w| w < unit).min(self.cdf.len() - 1)
    }
}

/// Parameters for [`zipf_request_mix`].
#[derive(Debug, Clone, Copy)]
pub struct MixSpec {
    /// Distinct queries in the pool.
    pub pool: usize,
    /// Requests to draw from the pool.
    pub requests: usize,
    /// Zipf skew (`1.0` is the classic heavy-hitter mix).
    pub skew: f64,
    /// RNG seed for the draw order.
    pub seed: u64,
}

impl Default for MixSpec {
    fn default() -> MixSpec {
        MixSpec { pool: 24, requests: 400, skew: 1.0, seed: 0 }
    }
}

/// A replayable request mix: DSL query texts (one per request, drawn
/// Zipf-skewed from a pool of [`MixSpec::pool`] distinct queries) plus
/// the one constraint text every request shares.
#[derive(Debug, Clone)]
pub struct RequestMix {
    /// One DSL query per request, in replay order.
    pub queries: Vec<String>,
    /// The shared constraint text (`parse_constraints` syntax).
    pub constraints: String,
    /// How often each pool rank was drawn (diagnostics; sums to
    /// `queries.len()`).
    pub draws_per_rank: Vec<u64>,
}

/// Build a deterministic Zipf-skewed request mix over a pool of distinct
/// Figure-7 redundancy queries. All pool entries intern `tR`, `tX` and
/// the filler types in the same order, so one constraint text is valid —
/// and means the same thing — for every query in the mix.
pub fn zipf_request_mix(spec: &MixSpec) -> RequestMix {
    assert!(spec.pool > 0 && spec.requests > 0, "mix needs a pool and requests");
    // Pool entry i: 17-node query, i mod 8 planted redundant leaves (so
    // entries differ structurally, not just by renaming), degree 2.
    let generated: Vec<_> = (0..spec.pool)
        .map(|i| {
            redundancy_query(&RedundancySpec {
                total_nodes: 17,
                redundant_nodes: 2 + (i % 8),
                degree: 2,
            })
        })
        .collect();
    let pool: Vec<String> = generated.iter().map(|g| to_dsl(&g.pattern, &g.types)).collect();
    // Constraints over the family's shared type names, rendered from the
    // generator with the most filler types so every name resolves.
    let widest = generated.iter().max_by_key(|g| g.filler_types.len()).expect("non-empty pool");
    let ics = relevant_constraints(widest, 8);
    let mut lines: Vec<String> = ics
        .iter()
        .map(|c| {
            let (a, op, b) = match c {
                Constraint::RequiredChild(a, b) => (a, "->", b),
                Constraint::RequiredDescendant(a, b) => (a, "->>", b),
                Constraint::CoOccurrence(a, b) => (a, "~", b),
            };
            format!("{} {} {}", widest.types.name(a), op, widest.types.name(b))
        })
        .collect();
    lines.sort();
    let constraints = lines.join("\n");

    let zipf = Zipf::new(spec.pool, spec.skew);
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut draws_per_rank = vec![0u64; spec.pool];
    let queries = (0..spec.requests)
        .map(|_| {
            let rank = zipf.sample(&mut rng);
            draws_per_rank[rank] += 1;
            pool[rank].clone()
        })
        .collect();
    RequestMix { queries, constraints, draws_per_rank }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_deterministic_and_skewed() {
        let zipf = Zipf::new(16, 1.0);
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        let draws_a: Vec<usize> = (0..500).map(|_| zipf.sample(&mut a)).collect();
        let draws_b: Vec<usize> = (0..500).map(|_| zipf.sample(&mut b)).collect();
        assert_eq!(draws_a, draws_b, "same seed, same draw sequence");
        let top = draws_a.iter().filter(|&&r| r == 0).count();
        let tail = draws_a.iter().filter(|&&r| r == 15).count();
        assert!(top > 5 * tail.max(1), "rank 0 ({top}) must dominate rank 15 ({tail})");
        assert!(draws_a.iter().all(|&r| r < 16));
    }

    #[test]
    fn zipf_zero_skew_is_roughly_uniform() {
        let zipf = Zipf::new(4, 0.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for (rank, &n) in counts.iter().enumerate() {
            assert!((800..1200).contains(&n), "rank {rank} drawn {n} times");
        }
    }

    #[test]
    fn mix_is_replayable_and_parseable() {
        let spec = MixSpec { pool: 6, requests: 60, skew: 1.0, seed: 42 };
        let mix = zipf_request_mix(&spec);
        assert_eq!(mix.queries.len(), 60);
        assert_eq!(mix.draws_per_rank.iter().sum::<u64>(), 60);
        assert_eq!(zipf_request_mix(&spec).queries, mix.queries, "seeded replay is exact");
        // Every request and the shared constraints parse back under one
        // fresh interner — the contract the serve replay relies on.
        let mut tys = tpq_base::TypeInterner::new();
        let ics = tpq_constraints::parse_constraints(&mix.constraints, &mut tys).unwrap();
        assert!(!ics.is_empty());
        for q in &mix.queries {
            tpq_pattern::parse_pattern(q, &mut tys).unwrap();
        }
        // The pool really is distinct queries, not one repeated text.
        let mut uniq: Vec<&String> = mix.queries.iter().collect();
        uniq.sort();
        uniq.dedup();
        assert!(uniq.len() > 1, "zipf mix draws from multiple distinct queries");
    }
}
