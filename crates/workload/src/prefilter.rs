//! The Figure 9(b) workload: CDM removes half of what ACIM removes.
//!
//! ```text
//! root (tB, output)
//! ├─ IC-chain branch: /c0/c1/…/c{k-1}  with ICs tB -> c0, c0 -> c1, …
//! │     → k locally redundant nodes (CDM removes them)
//! ├─ original branch: //b0//b1//…//b{k-1}
//! └─ duplicate branch: //b0//…//b{k-1}
//!       → k globally redundant nodes (only ACIM can fold the duplicate
//!         onto the original — not local, no IC involved)
//! ```
//!
//! ACIM alone removes `2k` nodes; CDM removes the `k` chain nodes, so the
//! CDM-prefilter hands ACIM a query smaller by exactly half the removable
//! nodes — the Section 6.4 setup.

use tpq_base::TypeInterner;
use tpq_constraints::{Constraint, ConstraintSet};
use tpq_pattern::{EdgeKind, TreePattern};

/// A generated Figure 9(b) query.
#[derive(Debug, Clone)]
pub struct PrefilterQuery {
    /// The query; the root is the output node.
    pub pattern: TreePattern,
    /// Interner for the generated type names.
    pub types: TypeInterner,
    /// The ICs that make the chain branch redundant.
    pub constraints: ConstraintSet,
    /// Number of nodes CDM can remove (the IC chain).
    pub cdm_removable: usize,
    /// Number of nodes ACIM removes in total (chain + duplicate branch).
    pub acim_removable: usize,
}

/// Build a prefilter query with `3k + 1` nodes.
pub fn prefilter_query(k: usize) -> PrefilterQuery {
    assert!(k >= 1, "k must be at least 1");
    let mut types = TypeInterner::new();
    let t_root = types.intern("tB");
    let mut pattern = TreePattern::new(t_root);
    let root = pattern.root();
    let mut constraints = ConstraintSet::new();
    // IC chain branch.
    let mut prev_ty = t_root;
    let mut cur = root;
    for i in 0..k {
        let ty = types.intern(&format!("c{i}"));
        cur = pattern.add_child(cur, EdgeKind::Child, ty);
        constraints.insert(Constraint::RequiredChild(prev_ty, ty));
        prev_ty = ty;
    }
    // Original + duplicate structural branches.
    let branch_types: Vec<_> = (0..k).map(|i| types.intern(&format!("b{i}"))).collect();
    for _ in 0..2 {
        let mut cur = root;
        for &ty in &branch_types {
            cur = pattern.add_child(cur, EdgeKind::Descendant, ty);
        }
    }
    pattern.validate().expect("generator produces valid patterns");
    PrefilterQuery { pattern, types, constraints, cdm_removable: k, acim_removable: 2 * k }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpq_core::{acim, cdm};

    #[test]
    fn sizes_and_removability() {
        for k in [1, 3, 10] {
            let q = prefilter_query(k);
            assert_eq!(q.pattern.size(), 3 * k + 1);
            let after_cdm = cdm(&q.pattern, &q.constraints);
            assert_eq!(
                after_cdm.size(),
                q.pattern.size() - q.cdm_removable,
                "k={k}: CDM removes the chain"
            );
            let after_acim = acim(&q.pattern, &q.constraints);
            assert_eq!(
                after_acim.size(),
                q.pattern.size() - q.acim_removable,
                "k={k}: ACIM removes chain + duplicate branch"
            );
            // The prefiltered query still reaches the same minimum.
            let combined = acim(&after_cdm, &q.constraints);
            assert_eq!(combined.size(), after_acim.size());
        }
    }

    #[test]
    fn duplicate_branch_is_not_locally_redundant() {
        let q = prefilter_query(4);
        let closed = q.constraints.closure();
        let local = tpq_core::locally_redundant_leaves(&q.pattern, &closed);
        // Only the chain leaf is locally redundant (1 leaf; removal then
        // cascades inside CDM).
        assert_eq!(local.len(), 1);
    }
}
