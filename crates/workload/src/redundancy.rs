//! The Figure 7(a) workload: queries with a controlled number of
//! redundant nodes and degree of redundancy, plus relevant constraints.
//!
//! Construction (all sizes deterministic):
//!
//! ```text
//! root (tR, output)
//! ├─//─ tX        ⎫
//! ├─//─ tX        ⎬ redundant_nodes planted d-leaves of the shared type tX
//! ├─//─ tX        ⎭
//! ├─//─ tX ─//─ tX ─ … ─//─ tX     witness chain of `degree` tX nodes
//! └─/─ tF0 ─/─ tF1 ─ … ─/─ tFm     filler chain of distinct types
//! ```
//!
//! Every planted leaf can map onto each of the `degree` witness-chain
//! nodes, so it is redundant with (at least) that degree; the witness
//! chain itself is incompressible (d-edges cannot shrink a strict chain),
//! and the filler chain has pairwise distinct types, so CIM removes
//! exactly the planted leaves. The paper's observation — ACIM time at
//! fixed query size depends on the *total* `degree × redundant_nodes`
//! only weakly, but grows with the number of relevant constraints — is
//! regenerated on exactly this family.

use tpq_base::{TypeId, TypeInterner};
use tpq_constraints::{Constraint, ConstraintSet};
use tpq_pattern::{EdgeKind, TreePattern};

/// Parameters for [`redundancy_query`].
#[derive(Debug, Clone, Copy)]
pub struct RedundancySpec {
    /// Total query size in nodes.
    pub total_nodes: usize,
    /// Number of planted redundant leaves.
    pub redundant_nodes: usize,
    /// Witness-chain length = (minimum) degree of redundancy of each
    /// planted leaf.
    pub degree: usize,
}

/// A generated Figure 7(a) query plus its bookkeeping.
#[derive(Debug, Clone)]
pub struct RedundancyQuery {
    /// The query; the root is the output node.
    pub pattern: TreePattern,
    /// Shared interner (filler type ids are needed by
    /// [`relevant_constraints`]).
    pub types: TypeInterner,
    /// The shared redundant type `tX`.
    pub redundant_type: TypeId,
    /// The filler chain types, in chain order.
    pub filler_types: Vec<TypeId>,
    /// Size of the unique minimal equivalent query.
    pub expected_minimal_size: usize,
}

/// Build the Figure 7(a) query family.
///
/// # Panics
/// Panics if the spec does not fit: `1 + degree + redundant_nodes`
/// must be at most `total_nodes`.
pub fn redundancy_query(spec: &RedundancySpec) -> RedundancyQuery {
    let base = 1 + spec.degree + spec.redundant_nodes;
    assert!(
        base <= spec.total_nodes,
        "spec does not fit: {base} core nodes > {} total",
        spec.total_nodes
    );
    assert!(spec.degree >= 1, "degree must be at least 1");
    let filler = spec.total_nodes - base;
    let mut types = TypeInterner::new();
    let t_root = types.intern("tR");
    let t_x = types.intern("tX");
    let mut pattern = TreePattern::new(t_root);
    let root = pattern.root();
    // Planted redundant leaves.
    for _ in 0..spec.redundant_nodes {
        pattern.add_child(root, EdgeKind::Descendant, t_x);
    }
    // Witness chain.
    let mut cur = root;
    for _ in 0..spec.degree {
        cur = pattern.add_child(cur, EdgeKind::Descendant, t_x);
    }
    // Filler chain of distinct types.
    let mut filler_types = Vec::with_capacity(filler);
    let mut cur = root;
    for i in 0..filler {
        let t = types.intern(&format!("tF{i}"));
        filler_types.push(t);
        cur = pattern.add_child(cur, EdgeKind::Child, t);
    }
    pattern.validate().expect("generator produces valid patterns");
    RedundancyQuery {
        expected_minimal_size: spec.total_nodes - spec.redundant_nodes,
        pattern,
        types,
        redundant_type: t_x,
        filler_types,
    }
}

/// `k` constraints relevant to `q` (their types all occur in the query)
/// that change neither the minimal query nor the redundancy structure:
/// required-descendant constraints among filler types (and from fillers
/// to `tX`). Because fillers are connected by c-edges and the generated
/// ICs are all `->>`, no original node becomes removable — the
/// constraints only feed the augmentation (which is what Figure 7(a)
/// measures).
///
/// # Panics
/// Panics if `k` exceeds the number of distinct constraints available
/// (`fillers × fillers`, ample for the paper's 150).
pub fn relevant_constraints(q: &RedundancyQuery, k: usize) -> ConstraintSet {
    let mut set = ConstraintSet::new();
    let f = q.filler_types.len();
    assert!(f >= 1 || k == 0, "need filler types to generate constraints");
    let mut produced = 0usize;
    'outer: for i in 0..f {
        // tFi ->> tX first, then tFi ->> tFj for j > i (acyclic).
        let mut rhs: Vec<TypeId> = vec![q.redundant_type];
        rhs.extend(q.filler_types.iter().copied().skip(i + 1));
        for r in rhs {
            if produced == k {
                break 'outer;
            }
            if set.insert(Constraint::RequiredDescendant(q.filler_types[i], r)) {
                produced += 1;
            }
        }
    }
    assert_eq!(produced, k, "not enough filler types for {k} constraints");
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpq_core::{acim, cim};
    use tpq_pattern::isomorphic;

    #[test]
    fn sizes_add_up() {
        let q =
            redundancy_query(&RedundancySpec { total_nodes: 101, redundant_nodes: 30, degree: 3 });
        assert_eq!(q.pattern.size(), 101);
        assert_eq!(q.expected_minimal_size, 71);
    }

    #[test]
    fn cim_removes_exactly_the_planted_leaves() {
        for (r, d) in [(1, 1), (5, 2), (10, 4), (30, 3)] {
            let q = redundancy_query(&RedundancySpec {
                total_nodes: 61,
                redundant_nodes: r,
                degree: d,
            });
            let m = cim(&q.pattern);
            assert_eq!(m.size(), q.expected_minimal_size, "r={r} d={d}");
        }
    }

    #[test]
    fn relevant_constraints_do_not_change_the_minimum() {
        let q =
            redundancy_query(&RedundancySpec { total_nodes: 41, redundant_nodes: 10, degree: 2 });
        let plain = cim(&q.pattern);
        for k in [0, 10, 50] {
            let ics = relevant_constraints(&q, k);
            assert_eq!(ics.len(), k);
            let m = acim(&q.pattern, &ics);
            assert!(isomorphic(&plain, &m), "k={k}: constraints changed the minimal query");
        }
    }

    #[test]
    fn constraints_mention_only_query_types() {
        let q =
            redundancy_query(&RedundancySpec { total_nodes: 31, redundant_nodes: 5, degree: 2 });
        let present: Vec<TypeId> = (0..q.types.len() as u32).map(TypeId).collect();
        let ics = relevant_constraints(&q, 20);
        for c in ics.iter() {
            assert!(present.contains(&c.lhs()));
            assert!(present.contains(&c.rhs()));
        }
    }

    #[test]
    fn generator_panics_when_spec_does_not_fit() {
        let result = std::panic::catch_unwind(|| {
            redundancy_query(&RedundancySpec { total_nodes: 5, redundant_nodes: 10, degree: 10 })
        });
        assert!(result.is_err());
    }
}
