//! Shaped fully-IC-redundant queries — the Figure 7(b), 8 and 9(a)
//! workloads.
//!
//! [`shaped_ic_query`] builds an `f`-ary tree query of `n` nodes with a
//! distinct type per node position and the constraint
//! `type(parent) -> type(child)` for every edge. Every edge is then
//! redundant under the constraints and the unique minimal equivalent
//! query is the root alone — exactly the setup of Section 6.3: "Because
//! of the way the query is generated (all edges are redundant), the only
//! node that remains after query minimization is the root node. The only
//! marked node is the root node."
//!
//! * fanout 1 → the paper's **RightDeep** series;
//! * fanout 2 → **Bushy**;
//! * larger fanouts → the **VaryingFanout** series and the fanout sweep.

use tpq_base::TypeInterner;
use tpq_constraints::{Constraint, ConstraintSet};
use tpq_pattern::{EdgeKind, NodeId, TreePattern};

/// A shaped query with the constraint set that makes all of it redundant.
#[derive(Debug, Clone)]
pub struct ShapedQuery {
    /// The query; the root is the output node.
    pub pattern: TreePattern,
    /// Type names `p0..p{n-1}` by node position.
    pub types: TypeInterner,
    /// One required-child constraint per edge (`n - 1` of them).
    pub constraints: ConstraintSet,
}

/// Build an `n`-node query shaped as an `fanout`-ary tree (c-edges,
/// breadth-first fill) plus the per-edge required-child constraints.
pub fn shaped_ic_query(n: usize, fanout: usize) -> ShapedQuery {
    assert!(n >= 1, "a query has at least one node");
    assert!(fanout >= 1, "fanout must be at least 1");
    let mut types = TypeInterner::new();
    let ids: Vec<_> = (0..n).map(|i| types.intern(&format!("p{i}"))).collect();
    let mut pattern = TreePattern::new(ids[0]);
    let mut constraints = ConstraintSet::new();
    // Breadth-first: node i's parent is node (i - 1) / fanout.
    let mut nodes: Vec<NodeId> = Vec::with_capacity(n);
    nodes.push(pattern.root());
    for i in 1..n {
        let parent_pos = (i - 1) / fanout;
        let node = pattern.add_child(nodes[parent_pos], EdgeKind::Child, ids[i]);
        nodes.push(node);
        constraints.insert(Constraint::RequiredChild(ids[parent_pos], ids[i]));
    }
    pattern.validate().expect("generator produces valid patterns");
    ShapedQuery { pattern, types, constraints }
}

/// The right-deep special case used by Figures 7(b), 8(a) and 9(a): a
/// chain of `n` nodes with `n - 1` constraints.
pub fn ic_chain_query(n: usize) -> ShapedQuery {
    shaped_ic_query(n, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpq_core::{acim, cdm, locally_redundant_leaves};

    #[test]
    fn chain_shape() {
        let q = ic_chain_query(5);
        assert_eq!(q.pattern.size(), 5);
        assert_eq!(q.pattern.max_depth(), 4);
        assert_eq!(q.pattern.max_fanout(), 1);
        assert_eq!(q.constraints.len(), 4);
    }

    #[test]
    fn bushy_shape() {
        let q = shaped_ic_query(7, 2);
        assert_eq!(q.pattern.max_depth(), 2);
        assert_eq!(q.pattern.max_fanout(), 2);
    }

    #[test]
    fn wide_shape() {
        let q = shaped_ic_query(13, 4);
        assert_eq!(q.pattern.max_fanout(), 4);
        assert_eq!(q.pattern.max_depth(), 2);
    }

    #[test]
    fn cdm_reduces_to_root_alone() {
        for (n, f) in [(1, 1), (2, 1), (17, 1), (15, 2), (21, 4), (40, 3)] {
            let q = shaped_ic_query(n, f);
            let m = cdm(&q.pattern, &q.constraints);
            assert_eq!(m.size(), 1, "n={n} f={f}: only the root survives CDM");
        }
    }

    #[test]
    fn acim_agrees_with_cdm_on_this_family() {
        // Figure 9(a)'s premise: both algorithms remove the same set.
        for n in [5, 12, 30] {
            let q = ic_chain_query(n);
            let a = acim(&q.pattern, &q.constraints);
            assert_eq!(a.size(), 1, "n={n}");
        }
    }

    #[test]
    fn every_leaf_is_locally_redundant_initially() {
        let q = shaped_ic_query(15, 2);
        let closed = q.constraints.closure();
        let local = locally_redundant_leaves(&q.pattern, &closed);
        let leaves = q.pattern.leaves();
        assert_eq!(local.len(), leaves.len());
    }
}
