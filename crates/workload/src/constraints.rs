//! Constraint-repository filler for the Figure 8(a) experiment.

use tpq_base::TypeInterner;
use tpq_constraints::{Constraint, ConstraintSet};

/// `k` constraints over a disjoint type universe `z0, z1, …` — they sit
/// in the repository but are irrelevant to any query over other types.
/// Figure 8(a) shows CDM time is flat as this pool grows: every rule
/// check is a hash probe keyed by a type pair, so repository size never
/// enters the cost.
///
/// The generated set is acyclic (`z_i ->> z_{i+1+j}` style), hence safely
/// closable, and cycles through the three constraint kinds.
pub fn irrelevant_constraints(k: usize, types: &mut TypeInterner) -> ConstraintSet {
    let mut set = ConstraintSet::new();
    for j in 0..k {
        let a = types.intern(&format!("z{j}"));
        let b = types.intern(&format!("z{}", j + 1));
        let c = match j % 3 {
            0 => Constraint::RequiredChild(a, b),
            1 => Constraint::RequiredDescendant(a, b),
            _ => Constraint::CoOccurrence(a, b),
        };
        let inserted = set.insert(c);
        debug_assert!(inserted, "consecutive z-pairs are pairwise distinct");
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpq_core::cdm;
    use tpq_pattern::parse_pattern;

    #[test]
    fn produces_exactly_k_constraints() {
        let mut tys = TypeInterner::new();
        for k in [0, 1, 2, 3, 10, 150] {
            let set = irrelevant_constraints(k, &mut TypeInterner::new());
            assert_eq!(set.len(), k, "k={k}");
            let _ = &mut tys;
        }
    }

    #[test]
    fn set_is_finitely_satisfiable_after_closure() {
        let mut tys = TypeInterner::new();
        let set = irrelevant_constraints(60, &mut tys).closure();
        assert!(set.is_finitely_satisfiable());
    }

    #[test]
    fn irrelevant_constraints_never_affect_a_disjoint_query() {
        let mut tys = TypeInterner::new();
        // Intern query types FIRST so the z-universe is disjoint.
        let q = parse_pattern("Book*[/Title][/Publisher]", &mut tys).unwrap();
        let set = irrelevant_constraints(100, &mut tys);
        let m = cdm(&q, &set);
        assert_eq!(m.size(), q.size());
    }
}
