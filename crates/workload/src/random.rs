//! Random patterns and constraint sets for property-based testing.
//!
//! Patterns are arbitrary; constraint sets are generated *acyclic by
//! construction* (every constraint points from a lower-indexed type to a
//! higher-indexed one), which guarantees finite satisfiability of the
//! closure — a precondition for repairing documents to satisfy them.

use tpq_base::{SmallRng, TypeId, TypeInterner};
use tpq_constraints::{Constraint, ConstraintSet};
use tpq_pattern::{EdgeKind, NodeId, TreePattern};

/// Parameters for [`random_pattern`].
#[derive(Debug, Clone)]
pub struct PatternSpec {
    /// Number of nodes (≥ 1).
    pub nodes: usize,
    /// Types are drawn uniformly from `t0..t{num_types-1}`.
    pub num_types: usize,
    /// Probability that an edge is a descendant edge.
    pub d_edge_prob: f64,
    /// Maximum fanout.
    pub max_fanout: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PatternSpec {
    fn default() -> Self {
        PatternSpec { nodes: 8, num_types: 4, d_edge_prob: 0.5, max_fanout: 3, seed: 0 }
    }
}

/// Generate a random pattern; the output marker lands on a uniformly
/// random node. Type ids are `TypeId(0)..TypeId(num_types-1)`; intern that
/// many names (e.g. with [`universe`]) for printing.
pub fn random_pattern(spec: &PatternSpec) -> TreePattern {
    assert!(spec.nodes >= 1 && spec.num_types >= 1 && spec.max_fanout >= 1);
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let ty = |rng: &mut SmallRng| TypeId(rng.gen_range(0..spec.num_types as u32));
    let root_ty = ty(&mut rng);
    let mut q = TreePattern::new(root_ty);
    let mut open: Vec<NodeId> = vec![q.root()];
    let mut all: Vec<NodeId> = vec![q.root()];
    while q.size() < spec.nodes {
        let slot = rng.gen_range(0..open.len());
        let parent = open[slot];
        let edge =
            if rng.gen_bool(spec.d_edge_prob) { EdgeKind::Descendant } else { EdgeKind::Child };
        let child = q.add_child(parent, edge, ty(&mut rng));
        open.push(child);
        all.push(child);
        if q.node(parent).children.len() >= spec.max_fanout {
            open.swap_remove(slot);
        }
    }
    let star = all[rng.gen_range(0..all.len())];
    q.set_output(star);
    q.validate().expect("random pattern is valid");
    q
}

/// Parameters for [`random_constraints`].
#[derive(Debug, Clone)]
pub struct ConstraintSpec {
    /// Number of constraints to draw.
    pub count: usize,
    /// Type universe size (pairs drawn with lhs index < rhs index).
    pub num_types: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ConstraintSpec {
    fn default() -> Self {
        ConstraintSpec { count: 4, num_types: 6, seed: 0 }
    }
}

/// Generate a random, acyclic (hence finitely satisfiable) constraint
/// set over `TypeId(0)..TypeId(num_types-1)`.
pub fn random_constraints(spec: &ConstraintSpec) -> ConstraintSet {
    assert!(spec.num_types >= 2 || spec.count == 0);
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut set = ConstraintSet::new();
    let mut attempts = 0;
    while set.len() < spec.count && attempts < spec.count * 50 {
        attempts += 1;
        let a = rng.gen_range(0..spec.num_types as u32 - 1);
        let b = rng.gen_range(a + 1..spec.num_types as u32);
        let c = match rng.gen_range(0..3u32) {
            0 => Constraint::RequiredChild(TypeId(a), TypeId(b)),
            1 => Constraint::RequiredDescendant(TypeId(a), TypeId(b)),
            _ => Constraint::CoOccurrence(TypeId(a), TypeId(b)),
        };
        set.insert(c);
    }
    set
}

/// Intern `n` type names `t0..t{n-1}` so that generated `TypeId`s print
/// nicely.
pub fn universe(types: &mut TypeInterner, n: usize) -> Vec<TypeId> {
    (0..n).map(|i| types.intern(&format!("t{i}"))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_respects_spec() {
        for seed in 0..10 {
            let spec =
                PatternSpec { nodes: 20, num_types: 3, max_fanout: 2, seed, ..Default::default() };
            let q = random_pattern(&spec);
            assert_eq!(q.size(), 20);
            assert!(q.max_fanout() <= 2);
            for v in q.alive_ids() {
                assert!(q.node(v).primary.0 < 3);
            }
        }
    }

    #[test]
    fn pattern_deterministic_per_seed() {
        let spec = PatternSpec { seed: 7, ..Default::default() };
        assert_eq!(random_pattern(&spec), random_pattern(&spec));
    }

    #[test]
    fn star_can_land_anywhere() {
        let mut root_count = 0;
        for seed in 0..30 {
            let q = random_pattern(&PatternSpec { seed, ..Default::default() });
            if q.output() == q.root() {
                root_count += 1;
            }
        }
        assert!(root_count > 0 && root_count < 30, "marker varies across seeds");
    }

    #[test]
    fn constraints_are_acyclic_and_closable() {
        for seed in 0..10 {
            let set = random_constraints(&ConstraintSpec { count: 8, num_types: 6, seed });
            let closed = set.closure();
            assert!(closed.is_finitely_satisfiable(), "seed {seed}");
        }
    }

    #[test]
    fn constraint_count_met_when_space_allows() {
        let set = random_constraints(&ConstraintSpec { count: 10, num_types: 12, seed: 1 });
        assert_eq!(set.len(), 10);
    }
}
