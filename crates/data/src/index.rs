//! Pre/post/level node index over a document.
//!
//! The classic interval encoding: node `a` is a proper ancestor of node `d`
//! iff `pre(a) < pre(d) && post(d) < post(a)`. The index also keeps, per
//! type, the list of nodes carrying that type (in pre-order), which is what
//! the pattern-matching engine iterates over.

use crate::document::{DataNodeId, Document};
use tpq_base::{FxHashMap, TypeId};

/// Immutable index over one [`Document`]. Build once, query many times.
#[derive(Debug, Clone)]
pub struct DocIndex {
    pre: Vec<u32>,
    post: Vec<u32>,
    level: Vec<u32>,
    by_type: FxHashMap<TypeId, Vec<DataNodeId>>,
}

impl DocIndex {
    /// Build the index in one DFS pass.
    pub fn build(doc: &Document) -> Self {
        let n = doc.len();
        let mut pre = vec![0u32; n];
        let mut post = vec![0u32; n];
        let mut level = vec![0u32; n];
        let mut by_type: FxHashMap<TypeId, Vec<DataNodeId>> = FxHashMap::default();
        let mut pre_counter = 0u32;
        let mut post_counter = 0u32;
        // Iterative DFS with an explicit enter/exit stack to avoid recursion
        // depth limits on deep documents.
        enum Step {
            Enter(DataNodeId, u32),
            Exit(DataNodeId),
        }
        let mut stack = vec![Step::Enter(doc.root(), 0)];
        while let Some(step) = stack.pop() {
            match step {
                Step::Enter(id, lvl) => {
                    pre[id.index()] = pre_counter;
                    pre_counter += 1;
                    level[id.index()] = lvl;
                    for t in doc.node(id).types.iter() {
                        by_type.entry(t).or_default().push(id);
                    }
                    stack.push(Step::Exit(id));
                    for &c in doc.node(id).children.iter().rev() {
                        stack.push(Step::Enter(c, lvl + 1));
                    }
                }
                Step::Exit(id) => {
                    post[id.index()] = post_counter;
                    post_counter += 1;
                }
            }
        }
        DocIndex { pre, post, level, by_type }
    }

    /// Pre-order rank of `id`.
    #[inline]
    pub fn pre(&self, id: DataNodeId) -> u32 {
        self.pre[id.index()]
    }

    /// Post-order rank of `id`.
    #[inline]
    pub fn post(&self, id: DataNodeId) -> u32 {
        self.post[id.index()]
    }

    /// Depth of `id` (root = 0).
    #[inline]
    pub fn level(&self, id: DataNodeId) -> u32 {
        self.level[id.index()]
    }

    /// O(1): is `anc` a **proper** ancestor of `desc`?
    #[inline]
    pub fn is_proper_ancestor(&self, anc: DataNodeId, desc: DataNodeId) -> bool {
        self.pre[anc.index()] < self.pre[desc.index()]
            && self.post[desc.index()] < self.post[anc.index()]
    }

    /// O(1): is `parent` the parent of `child`? (ancestorship plus a level
    /// difference of one).
    #[inline]
    pub fn is_parent(&self, parent: DataNodeId, child: DataNodeId) -> bool {
        self.level[child.index()] == self.level[parent.index()] + 1
            && self.is_proper_ancestor(parent, child)
    }

    /// Nodes carrying type `ty`, in pre-order. Empty slice if none.
    pub fn nodes_of_type(&self, ty: TypeId) -> &[DataNodeId] {
        self.by_type.get(&ty).map_or(&[], Vec::as_slice)
    }

    /// Distinct types present in the document.
    pub fn types(&self) -> impl Iterator<Item = TypeId> + '_ {
        self.by_type.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> (Document, Vec<DataNodeId>) {
        // 0:a ( 1:b ( 2:c ), 3:b )
        let mut d = Document::new(TypeId(0));
        let b1 = d.add_child(d.root(), TypeId(1));
        let c = d.add_child(b1, TypeId(2));
        let b2 = d.add_child(d.root(), TypeId(1));
        (d, vec![DataNodeId(0), b1, c, b2])
    }

    #[test]
    fn ancestor_checks_match_parent_walk() {
        let (d, ids) = doc();
        let idx = DocIndex::build(&d);
        for &a in &ids {
            for &b in &ids {
                assert_eq!(
                    idx.is_proper_ancestor(a, b),
                    d.is_proper_ancestor(a, b),
                    "mismatch for {a},{b}"
                );
            }
        }
    }

    #[test]
    fn parent_check() {
        let (d, ids) = doc();
        let idx = DocIndex::build(&d);
        assert!(idx.is_parent(ids[0], ids[1]));
        assert!(idx.is_parent(ids[1], ids[2]));
        assert!(!idx.is_parent(ids[0], ids[2]), "grandchild is not a child");
        assert!(!idx.is_parent(ids[2], ids[1]));
    }

    #[test]
    fn type_lists_in_pre_order() {
        let (d, ids) = doc();
        let idx = DocIndex::build(&d);
        assert_eq!(idx.nodes_of_type(TypeId(1)), &[ids[1], ids[3]]);
        assert_eq!(idx.nodes_of_type(TypeId(2)), &[ids[2]]);
        assert!(idx.nodes_of_type(TypeId(9)).is_empty());
    }

    #[test]
    fn multi_typed_nodes_appear_in_every_type_list() {
        let (mut d, ids) = doc();
        d.add_type(ids[3], TypeId(2));
        let idx = DocIndex::build(&d);
        assert_eq!(idx.nodes_of_type(TypeId(2)), &[ids[2], ids[3]]);
    }

    #[test]
    fn levels() {
        let (d, ids) = doc();
        let idx = DocIndex::build(&d);
        assert_eq!(idx.level(ids[0]), 0);
        assert_eq!(idx.level(ids[1]), 1);
        assert_eq!(idx.level(ids[2]), 2);
    }

    #[test]
    fn deep_document_does_not_overflow_stack() {
        let mut d = Document::new(TypeId(0));
        let mut cur = d.root();
        for _ in 0..100_000 {
            cur = d.add_child(cur, TypeId(1));
        }
        let idx = DocIndex::build(&d);
        assert!(idx.is_proper_ancestor(d.root(), cur));
    }
}
