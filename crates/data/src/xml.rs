//! A deliberately small XML subset, sufficient for writing documents in
//! examples and tests as readable markup — plus a chunked streaming parser
//! for documents too large to hold as one `String`.
//!
//! Supported: start/end tags, self-closing tags, an optional `also`
//! attribute listing extra node types (comma- or space-separated), comments
//! (`<!-- ... -->`), inter-element text (ignored — tree patterns are
//! structure-only), and character/entity references inside attribute values
//! (`&amp; &lt; &gt; &quot; &apos; &#NN; &#xHH;`). Not supported:
//! namespaces, CDATA, processing instructions, references in text content.
//!
//! Attribute values that look like integers parse as [`Value::Int`]; the
//! writer keeps `Value::Str("5")` distinguishable by emitting its first
//! character as a character reference (`&#53;5` stays a string on reparse).
//!
//! ```
//! use tpq_base::TypeInterner;
//! let mut tys = TypeInterner::new();
//! let doc = tpq_data::parse_xml(r#"
//!   <Org>
//!     <Employee also="Person"><Project/></Employee>
//!   </Org>"#, &mut tys).unwrap();
//! assert_eq!(doc.len(), 3);
//! ```

use crate::document::{DataNodeId, Document};
use tpq_base::{failpoint, Error, Result, TypeId, TypeInterner, Value};

/// Maximum open-element nesting. The parse loop is iterative, so the call
/// stack is never at risk; this bounds the explicit stack (and the node
/// arena growth) against adversarial `<x><x><x>…` streams while staying
/// well above any realistic document (and above the 100k-deep documents
/// the tests exercise).
pub const MAX_XML_DEPTH: usize = 1 << 18;

/// Parse a document from the XML subset, interning type names into `types`.
///
/// The parser is a flat loop over tags with an explicit open-element
/// stack, so document depth is limited by [`MAX_XML_DEPTH`], not the call
/// stack.
pub fn parse_xml(input: &str, types: &mut TypeInterner) -> Result<Document> {
    failpoint::hit("parse.xml")?;
    let mut p = XmlParser { input: input.as_bytes(), pos: 0, base: 0 };
    let mut b = TreeBuilder::new();
    loop {
        p.skip_misc();
        if p.peek().is_none() {
            break;
        }
        // After skip_misc the cursor sits on '<' (text content is skipped).
        let at = p.base + p.pos;
        if b.done() {
            return Err(Error::XmlParse {
                offset: at,
                message: "trailing content after the root element".into(),
            });
        }
        if p.starts_with("</") {
            let name = p.parse_end_tag()?;
            b.end_tag(&name).map_err(|message| Error::XmlParse { offset: at, message })?;
        } else {
            let (name, extra, attrs, selfclosing) = p.parse_start_tag(types)?;
            b.start_tag(name, extra, attrs, selfclosing, types)
                .map_err(|message| Error::XmlParse { offset: at, message })?;
        }
    }
    let doc = b.finish().map_err(|m| p.err(&m))?;
    doc.validate()?;
    Ok(doc)
}

/// Chunk size for [`parse_xml_reader`]. One refill per ~64KB of input keeps
/// syscall overhead negligible while the window stays cache-friendly.
const READ_CHUNK: usize = 64 * 1024;

/// Parse a document from a byte stream without materializing the input as
/// one `String`.
///
/// The reader is pulled in 64 KiB chunks into a sliding
/// window; inter-element text and comments are discarded as they stream
/// past, and only the bytes of the tag currently being parsed are retained.
/// Tag-level parsing, entity decoding and tree building are shared with
/// [`parse_xml`], so the two accept the same language and report the same
/// absolute byte offsets in errors. Peak memory is the document arena plus
/// O(longest tag) of buffered input.
pub fn parse_xml_reader<R: std::io::Read>(reader: R, types: &mut TypeInterner) -> Result<Document> {
    failpoint::hit("parse.xml")?;
    let mut src = ChunkedSource::new(reader);
    let mut b = TreeBuilder::new();
    loop {
        if !src.skip_misc_to_tag()? {
            break; // clean EOF between elements
        }
        let at = src.absolute_pos();
        if b.done() {
            return Err(Error::XmlParse {
                offset: at,
                message: "trailing content after the root element".into(),
            });
        }
        let tag_end = src.find_tag_end()?;
        // Parse the complete tag in place; `base` makes reported offsets
        // absolute within the stream.
        let mut p = XmlParser { input: &src.buf[..tag_end], pos: src.start, base: src.consumed };
        if p.starts_with("</") {
            let name = p.parse_end_tag()?;
            b.end_tag(&name).map_err(|message| Error::XmlParse { offset: at, message })?;
        } else {
            let (name, extra, attrs, selfclosing) = p.parse_start_tag(types)?;
            b.start_tag(name, extra, attrs, selfclosing, types)
                .map_err(|message| Error::XmlParse { offset: at, message })?;
        }
        src.start = tag_end;
    }
    let doc =
        b.finish().map_err(|message| Error::XmlParse { offset: src.absolute_pos(), message })?;
    doc.validate()?;
    Ok(doc)
}

/// Sliding input window over an [`std::io::Read`], tracking how many bytes
/// were discarded before the window so error offsets stay absolute.
struct ChunkedSource<R> {
    reader: R,
    buf: Vec<u8>,
    /// Consumed prefix within `buf`.
    start: usize,
    /// Bytes discarded before `buf[0]`.
    consumed: usize,
    eof: bool,
}

impl<R: std::io::Read> ChunkedSource<R> {
    fn new(reader: R) -> Self {
        ChunkedSource {
            reader,
            buf: Vec::with_capacity(READ_CHUNK),
            start: 0,
            consumed: 0,
            eof: false,
        }
    }

    fn absolute_pos(&self) -> usize {
        self.consumed + self.start
    }

    /// Read one more chunk; sets `eof` when the reader is exhausted.
    fn fill(&mut self) -> Result<()> {
        let old_len = self.buf.len();
        self.buf.resize(old_len + READ_CHUNK, 0);
        let n = self.reader.read(&mut self.buf[old_len..]).map_err(|e| Error::XmlParse {
            offset: self.consumed + self.buf.len().min(old_len),
            message: format!("read error: {e}"),
        })?;
        self.buf.truncate(old_len + n);
        if n == 0 {
            self.eof = true;
        }
        Ok(())
    }

    /// Drop the consumed prefix once it is large enough to matter.
    fn compact(&mut self) {
        if self.start >= READ_CHUNK {
            self.consumed += self.start;
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Skip text and comments until the window starts with a tag. Returns
    /// `false` on clean EOF (trailing text/comments are discarded, matching
    /// the slice parser).
    fn skip_misc_to_tag(&mut self) -> Result<bool> {
        loop {
            self.compact();
            // Need up to 4 bytes to tell `<!--` from a tag start.
            while self.buf.len() - self.start < 4 && !self.eof {
                self.fill()?;
            }
            let window = &self.buf[self.start..];
            if window.is_empty() {
                return Ok(false);
            }
            if window[0] != b'<' {
                // Text content: discard up to the next '<' (or everything).
                match window.iter().position(|&b| b == b'<') {
                    Some(i) => self.start += i,
                    None => {
                        self.start = self.buf.len();
                        if self.eof {
                            return Ok(false);
                        }
                    }
                }
                continue;
            }
            if window.starts_with(b"<!--") {
                self.skip_comment()?;
                continue;
            }
            return Ok(true);
        }
    }

    /// Skip a comment the window is positioned at. An unterminated comment
    /// swallows the rest of the input, matching the slice parser.
    fn skip_comment(&mut self) -> Result<()> {
        let mut from = self.start + 4;
        loop {
            if let Some(end) = find(&self.buf, from, b"-->") {
                self.start = end + 3;
                return Ok(());
            }
            if self.eof {
                self.start = self.buf.len();
                return Ok(());
            }
            // Re-scan only the tail that could still hold a split "-->".
            from = self.buf.len().saturating_sub(2).max(self.start + 4);
            self.fill()?;
        }
    }

    /// With the window at '<', find the end of the tag: the index one past
    /// its '>' (quote-aware, so '>' inside an attribute value doesn't
    /// terminate the tag).
    fn find_tag_end(&mut self) -> Result<usize> {
        let mut i = self.start + 1;
        let mut in_quote = false;
        loop {
            while i < self.buf.len() {
                match self.buf[i] {
                    b'"' => in_quote = !in_quote,
                    b'>' if !in_quote => return Ok(i + 1),
                    _ => {}
                }
                i += 1;
            }
            if self.eof {
                return Err(Error::XmlParse {
                    offset: self.consumed + self.buf.len(),
                    message: "unexpected end of input inside tag".into(),
                });
            }
            self.fill()?;
        }
    }
}

/// Incremental tree construction shared by the slice and streaming parsers:
/// an open-element stack with the depth limit and the root/trailing-content
/// state machine. Methods return plain messages; callers attach offsets.
struct TreeBuilder {
    doc: Option<Document>,
    open: Vec<(String, DataNodeId)>,
}

impl TreeBuilder {
    fn new() -> Self {
        TreeBuilder { doc: None, open: Vec::new() }
    }

    /// Whether the root element has been fully closed.
    fn done(&self) -> bool {
        self.doc.is_some() && self.open.is_empty()
    }

    fn start_tag(
        &mut self,
        name: String,
        extra: Vec<TypeId>,
        attrs: Vec<(TypeId, Value)>,
        selfclosing: bool,
        types: &mut TypeInterner,
    ) -> std::result::Result<(), String> {
        let id = match &mut self.doc {
            None => {
                self.doc = Some(Document::new(types.intern(&name)));
                DataNodeId(0)
            }
            Some(doc) => match self.open.last() {
                Some(&(_, parent)) => doc.add_child(parent, types.intern(&name)),
                None => return Err("trailing content after the root element".into()),
            },
        };
        let doc = self.doc.as_mut().expect("doc exists after start_tag");
        for t in extra {
            doc.add_type(id, t);
        }
        for (a, v) in attrs {
            doc.set_attr(id, a, v);
        }
        if !selfclosing {
            if self.open.len() >= MAX_XML_DEPTH {
                return Err("element nesting too deep".into());
            }
            self.open.push((name, id));
        }
        Ok(())
    }

    fn end_tag(&mut self, name: &str) -> std::result::Result<(), String> {
        match self.open.pop() {
            Some((want, _)) if want == name => Ok(()),
            Some((want, _)) => Err(format!("mismatched end tag </{name}> (expected </{want}>)")),
            None => Err(format!("unmatched end tag </{name}>")),
        }
    }

    fn finish(self) -> std::result::Result<Document, String> {
        match self.doc {
            None => Err("expected a root element".into()),
            Some(_) if !self.open.is_empty() => {
                Err("unexpected end of input inside element".into())
            }
            Some(doc) => Ok(doc),
        }
    }
}

struct XmlParser<'a> {
    input: &'a [u8],
    pos: usize,
    /// Absolute offset of `input[0]` in the overall stream (0 for slice
    /// parsing; the discarded-prefix length for the chunked reader).
    base: usize,
}

impl XmlParser<'_> {
    fn err(&self, message: &str) -> Error {
        Error::XmlParse { offset: self.base + self.pos, message: message.to_owned() }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    /// Skip whitespace, text content and comments.
    fn skip_misc(&mut self) {
        loop {
            if self.starts_with("<!--") {
                match find(self.input, self.pos + 4, b"-->") {
                    Some(end) => self.pos = end + 3,
                    None => {
                        self.pos = self.input.len();
                        return;
                    }
                }
            } else if self.peek().is_some() && self.peek() != Some(b'<') {
                self.pos += 1;
            } else {
                return;
            }
        }
    }

    fn parse_name(&mut self) -> Result<String> {
        let start = self.pos;
        match self.peek() {
            Some(b) if b.is_ascii_alphabetic() || b == b'_' => self.pos += 1,
            _ => return Err(self.err("expected an element name")),
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    /// Parse `</name>` with the cursor at `<`. Returns the name.
    fn parse_end_tag(&mut self) -> Result<String> {
        self.pos += 2; // "</"
        let name = self.parse_name()?;
        self.skip_ws();
        if self.peek() != Some(b'>') {
            return Err(self.err("expected '>' closing end tag"));
        }
        self.pos += 1;
        Ok(name)
    }

    /// Parse `<name attr="v" ...>` or `<name .../>`. Returns
    /// `(name, extra types, attributes, self_closing)`.
    #[allow(clippy::type_complexity)]
    fn parse_start_tag(
        &mut self,
        types: &mut TypeInterner,
    ) -> Result<(String, Vec<TypeId>, Vec<(TypeId, Value)>, bool)> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        self.skip_ws();
        // Attributes. The reserved name `also="T1,T2"` adds extra node
        // types; every other attribute becomes a typed value
        // (integer-looking text parses as an integer, but any value written
        // with a character reference stays a string — that's how the writer
        // round-trips `Value::Str("5")`).
        let mut extra = Vec::new();
        let mut attrs: Vec<(TypeId, Value)> = Vec::new();
        while self.peek().is_some_and(|b| b.is_ascii_alphabetic() || b == b'_') {
            let attr_name = self.parse_name()?;
            self.skip_ws();
            if self.peek() != Some(b'=') {
                return Err(self.err(&format!("expected '=' after attribute '{attr_name}'")));
            }
            self.pos += 1;
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected '\"' opening attribute value"));
            }
            self.pos += 1;
            let (value, had_ref) = self.parse_attr_value()?;
            if attr_name == "also" {
                for part in value.split([',', ' ']).filter(|s| !s.is_empty()) {
                    extra.push(types.intern(part));
                }
            } else {
                let v = if had_ref {
                    Value::Str(value)
                } else {
                    match value.parse::<i64>() {
                        Ok(i) => Value::Int(i),
                        Err(_) => Value::Str(value),
                    }
                };
                attrs.push((types.intern(&attr_name), v));
            }
            self.skip_ws();
        }
        // Self-closing?
        if self.starts_with("/>") {
            self.pos += 2;
            return Ok((name, extra, attrs, true));
        }
        if self.peek() != Some(b'>') {
            return Err(self.err("expected '>' or '/>'"));
        }
        self.pos += 1;
        Ok((name, extra, attrs, false))
    }

    /// Parse an attribute value with the cursor just past the opening `"`.
    /// Decodes character/entity references; returns the decoded text and
    /// whether any reference occurred (which forces `Value::Str`).
    fn parse_attr_value(&mut self) -> Result<(String, bool)> {
        let mut value = String::new();
        let mut had_ref = false;
        let mut seg = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(b'"') => {
                    value.push_str(&String::from_utf8_lossy(&self.input[seg..self.pos]));
                    self.pos += 1;
                    return Ok((value, had_ref));
                }
                Some(b'&') => {
                    value.push_str(&String::from_utf8_lossy(&self.input[seg..self.pos]));
                    had_ref = true;
                    value.push(self.parse_reference()?);
                    seg = self.pos;
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// Parse `&amp;`-style entity or `&#NN;`/`&#xHH;` character references
    /// with the cursor at `&`.
    fn parse_reference(&mut self) -> Result<char> {
        let amp = self.pos;
        // Entity names are short; bound the scan so an unescaped lone '&'
        // fails fast with a usable offset.
        let mut end = amp + 1;
        while end < self.input.len() && self.input[end] != b';' && end - amp <= 12 {
            end += 1;
        }
        if end >= self.input.len() || self.input[end] != b';' {
            return Err(self.err("'&' must start an entity reference (use &amp; for a literal)"));
        }
        let body = &self.input[amp + 1..end];
        let c = match body {
            b"amp" => '&',
            b"lt" => '<',
            b"gt" => '>',
            b"quot" => '"',
            b"apos" => '\'',
            [b'#', digits @ ..] => {
                let cp = match digits {
                    [b'x' | b'X', hex @ ..] => {
                        std::str::from_utf8(hex).ok().and_then(|s| u32::from_str_radix(s, 16).ok())
                    }
                    _ => std::str::from_utf8(digits).ok().and_then(|s| s.parse::<u32>().ok()),
                };
                match cp.and_then(char::from_u32) {
                    Some(c) => c,
                    None => return Err(self.err("invalid character reference")),
                }
            }
            _ => return Err(self.err("unknown entity reference")),
        };
        self.pos = end + 1;
        Ok(c)
    }
}

fn find(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if from >= haystack.len() {
        return None;
    }
    haystack[from..].windows(needle.len()).position(|w| w == needle).map(|p| p + from)
}

/// Serialize a document back to the XML subset (indented, one element per
/// line). Round-trips through [`parse_xml`]. Iterative: safe on deep
/// documents.
pub fn write_xml(doc: &Document, types: &TypeInterner) -> String {
    let mut out = Vec::new();
    write_xml_to(doc, types, &mut out).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("the writer emits UTF-8")
}

/// Serialize a document to any [`std::io::Write`] sink — the streaming
/// counterpart of [`write_xml`], for documents whose markup should go
/// straight to disk. Attribute values are escaped so the output reparses to
/// an equal document (see the module docs for the `Value::Str("5")` rule).
pub fn write_xml_to<W: std::io::Write>(
    doc: &Document,
    types: &TypeInterner,
    w: &mut W,
) -> std::io::Result<()> {
    enum Step {
        Open(DataNodeId, usize),
        Close(DataNodeId, usize),
    }
    let mut stack = vec![Step::Open(doc.root(), 0)];
    while let Some(step) = stack.pop() {
        match step {
            Step::Open(id, indent) => {
                write_open(doc, types, id, indent, w)?;
                if !doc.node(id).children.is_empty() {
                    stack.push(Step::Close(id, indent));
                    for &c in doc.node(id).children.iter().rev() {
                        stack.push(Step::Open(c, indent + 1));
                    }
                }
            }
            Step::Close(id, indent) => {
                write_indent(w, indent)?;
                w.write_all(b"</")?;
                w.write_all(types.name(doc.node(id).primary).as_bytes())?;
                w.write_all(b">\n")?;
            }
        }
    }
    Ok(())
}

fn write_indent<W: std::io::Write>(w: &mut W, indent: usize) -> std::io::Result<()> {
    for _ in 0..indent {
        w.write_all(b"  ")?;
    }
    Ok(())
}

/// Write `s` with the XML special characters escaped, so the value survives
/// [`XmlParser::parse_attr_value`] unchanged.
fn write_escaped<W: std::io::Write>(w: &mut W, s: &str) -> std::io::Result<()> {
    let mut rest = s;
    while let Some(i) = rest.find(['&', '<', '>', '"']) {
        w.write_all(&rest.as_bytes()[..i])?;
        w.write_all(match rest.as_bytes()[i] {
            b'&' => b"&amp;".as_slice(),
            b'<' => b"&lt;",
            b'>' => b"&gt;",
            _ => b"&quot;",
        })?;
        rest = &rest[i + 1..];
    }
    w.write_all(rest.as_bytes())
}

fn write_open<W: std::io::Write>(
    doc: &Document,
    types: &TypeInterner,
    id: DataNodeId,
    indent: usize,
    w: &mut W,
) -> std::io::Result<()> {
    let node = doc.node(id);
    let name = types.name(node.primary);
    write_indent(w, indent)?;
    w.write_all(b"<")?;
    w.write_all(name.as_bytes())?;
    if node.types.len() > 1 {
        let extras: Vec<&str> =
            node.types.iter().filter(|&t| t != node.primary).map(|t| types.name(t)).collect();
        w.write_all(b" also=\"")?;
        write_escaped(w, &extras.join(","))?;
        w.write_all(b"\"")?;
    }
    for (a, v) in &node.attrs {
        w.write_all(b" ")?;
        w.write_all(types.name(*a).as_bytes())?;
        w.write_all(b"=\"")?;
        match v {
            Value::Int(i) => write!(w, "{i}")?,
            Value::Str(s) => {
                if s.parse::<i64>().is_ok() {
                    // Int-looking string: emit the first character as a
                    // character reference so the reparse stays `Value::Str`.
                    let mut cs = s.chars();
                    let first = cs.next().expect("an int-parsing string is non-empty");
                    write!(w, "&#{};", first as u32)?;
                    write_escaped(w, cs.as_str())?;
                } else {
                    write_escaped(w, s)?;
                }
            }
        }
        w.write_all(b"\"")?;
    }
    if node.children.is_empty() {
        w.write_all(b"/>\n")
    } else {
        w.write_all(b">\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpq_base::SmallRng;

    fn parse(s: &str) -> (Document, TypeInterner) {
        let mut tys = TypeInterner::new();
        let d = parse_xml(s, &mut tys).expect("parse");
        (d, tys)
    }

    #[test]
    fn single_self_closing_element() {
        let (d, tys) = parse("<Book/>");
        assert_eq!(d.len(), 1);
        assert_eq!(tys.name(d.node(d.root()).primary), "Book");
    }

    #[test]
    fn nested_elements_with_text_and_comments() {
        let (d, _) = parse("<a> hello <!-- note --> <b><c/></b> tail <b/> </a>");
        assert_eq!(d.len(), 4);
        assert_eq!(d.node(d.root()).children.len(), 2);
    }

    #[test]
    fn also_attribute_adds_types() {
        let (d, tys) = parse(r#"<Employee also="Person,Manager"/>"#);
        let person = tys.lookup("Person").unwrap();
        let manager = tys.lookup("Manager").unwrap();
        assert!(d.node(d.root()).types.contains(person));
        assert!(d.node(d.root()).types.contains(manager));
        assert_eq!(d.node(d.root()).types.len(), 3);
    }

    #[test]
    fn mismatched_end_tag_is_an_error() {
        let mut tys = TypeInterner::new();
        assert!(parse_xml("<a><b></a></b>", &mut tys).is_err());
    }

    #[test]
    fn trailing_content_is_an_error() {
        let mut tys = TypeInterner::new();
        assert!(parse_xml("<a/><b/>", &mut tys).is_err());
    }

    #[test]
    fn unterminated_input_is_an_error() {
        let mut tys = TypeInterner::new();
        assert!(parse_xml("<a><b/>", &mut tys).is_err());
        assert!(parse_xml("<a", &mut tys).is_err());
        assert!(parse_xml("", &mut tys).is_err());
    }

    #[test]
    fn malformed_documents_error_instead_of_panicking() {
        // Regression battery: every input here used to reach (or guard
        // with) an `expect` somewhere in the parse loop. Each must come
        // back as Err with a usable offset, never a panic.
        let cases = [
            "</a>",
            "<a></a></a>",
            "<a></b>",
            "<a><b></b></b>",
            "<a><b></a></b>",
            "<a></a",
            "<a><</a>",
            "<a></ >",
            "<a><b/></a></a>",
            "<!-- only a comment -->",
            "<a></a x>",
        ];
        for case in cases {
            let mut tys = TypeInterner::new();
            let got = parse_xml(case, &mut tys);
            let err = got.expect_err(&format!("{case:?} must fail"));
            match err {
                Error::XmlParse { offset, .. } => assert!(offset <= case.len(), "{case:?}"),
                other => panic!("{case:?}: expected XmlParse, got {other:?}"),
            }
        }
    }

    #[test]
    fn attributes_parse_as_typed_values() {
        let (d, tys) = parse(r#"<Book price="95" lang="en" isbn="978-3"/>"#);
        let n = d.node(d.root());
        assert_eq!(n.attr(tys.lookup("price").unwrap()), Some(&Value::Int(95)));
        assert_eq!(n.attr(tys.lookup("lang").unwrap()), Some(&Value::Str("en".into())));
        // Not a pure integer -> string.
        assert_eq!(n.attr(tys.lookup("isbn").unwrap()), Some(&Value::Str("978-3".into())));
        assert_eq!(n.attr(tys.lookup("Book").unwrap()), None);
    }

    #[test]
    fn also_combines_with_value_attributes() {
        let (d, tys) = parse(r#"<Employee also="Person" age="41"><Badge/></Employee>"#);
        let n = d.node(d.root());
        assert!(n.types.contains(tys.lookup("Person").unwrap()));
        assert_eq!(n.attr(tys.lookup("age").unwrap()), Some(&tpq_base::Value::Int(41)));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn attribute_round_trip() {
        let (d, mut tys) = parse(r#"<Book price="95" lang="en"><Title n="-2"/></Book>"#);
        let xml = write_xml(&d, &tys);
        let d2 = parse_xml(&xml, &mut tys).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn entity_references_decode_in_attribute_values() {
        let (d, tys) = parse(r#"<a v="&amp;&lt;&gt;&quot;&apos;" w="x &amp; y"/>"#);
        let n = d.node(d.root());
        assert_eq!(n.attr(tys.lookup("v").unwrap()), Some(&Value::Str("&<>\"'".into())));
        assert_eq!(n.attr(tys.lookup("w").unwrap()), Some(&Value::Str("x & y".into())));
    }

    #[test]
    fn character_references_decode() {
        let (d, tys) = parse(r#"<a v="&#65;&#x42;&#x2603;"/>"#);
        assert_eq!(
            d.node(d.root()).attr(tys.lookup("v").unwrap()),
            Some(&Value::Str("AB☃".into()))
        );
    }

    #[test]
    fn referenced_digits_stay_strings() {
        // The writer's disambiguation: &#53;5 is the string "55", not Int(55).
        let (d, tys) = parse(r#"<a v="&#53;5"/>"#);
        assert_eq!(d.node(d.root()).attr(tys.lookup("v").unwrap()), Some(&Value::Str("55".into())));
    }

    #[test]
    fn bad_references_are_errors() {
        for case in [
            r#"<a v="x & y"/>"#,    // bare ampersand
            r#"<a v="&bogus;"/>"#,  // unknown entity
            r#"<a v="&#xD800;"/>"#, // surrogate code point
            r#"<a v="&#;"/>"#,      // empty reference
            r#"<a v="&amp"/>"#,     // unterminated
        ] {
            let mut tys = TypeInterner::new();
            assert!(parse_xml(case, &mut tys).is_err(), "{case:?}");
        }
    }

    #[test]
    fn special_characters_in_attributes_round_trip() {
        let mut d = Document::new(TypeId(0));
        let mut tys = TypeInterner::new();
        tys.intern("root");
        let attr = tys.intern("v");
        let cases = [
            "he said \"hi\"",
            "a < b && c > d",
            "&amp; already escaped",
            "5",
            "-17",
            "+3",
            "007",
            "",
            "line\nbreak",
            "snow ☃ man",
        ];
        for (i, s) in cases.iter().enumerate() {
            let c = d.add_child(d.root(), TypeId(0));
            d.set_attr(c, attr, Value::Str((*s).to_owned()));
            d.set_attr(c, tys.intern(&format!("n{i}")), Value::Int(i as i64 - 3));
        }
        let xml = write_xml(&d, &tys);
        let d2 = parse_xml(&xml, &mut tys).unwrap();
        assert_eq!(d, d2, "xml was:\n{xml}");
    }

    #[test]
    fn int_looking_strings_stay_strings() {
        let mut d = Document::new(TypeId(0));
        let mut tys = TypeInterner::new();
        tys.intern("root");
        let a = tys.intern("a");
        let b = tys.intern("b");
        d.set_attr(d.root(), a, Value::Str("5".into()));
        d.set_attr(d.root(), b, Value::Int(5));
        let xml = write_xml(&d, &tys);
        let d2 = parse_xml(&xml, &mut tys).unwrap();
        assert_eq!(d2.node(d2.root()).attr(a), Some(&Value::Str("5".into())));
        assert_eq!(d2.node(d2.root()).attr(b), Some(&Value::Int(5)));
    }

    /// Seeded property test: random documents with adversarial attribute
    /// values and multi-typing survive write → parse unchanged.
    #[test]
    fn write_parse_round_trip_property() {
        let alphabet = ['a', '&', '<', '>', '"', '\'', '5', '-', ' ', ';', '#', 'é'];
        for seed in 0..40u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut tys = TypeInterner::new();
            let ntypes = 4u32;
            for i in 0..ntypes {
                tys.intern(&format!("t{i}"));
            }
            let attr_names: Vec<TypeId> = (0..3).map(|i| tys.intern(&format!("attr{i}"))).collect();
            let mut d = Document::new(TypeId(rng.gen_range(0..ntypes)));
            // Build depth-first along a stack of open nodes so arena order
            // is pre-order — `parse_xml` rebuilds in pre-order, and
            // `Document` equality is arena-order-sensitive.
            let mut open = vec![d.root()];
            for _ in 0..rng.gen_range(1..30usize) {
                for _ in 0..rng.gen_range(0..open.len()) {
                    if open.len() > 1 {
                        open.pop();
                    }
                }
                let parent = *open.last().unwrap();
                let id = d.add_child(parent, TypeId(rng.gen_range(0..ntypes)));
                open.push(id);
                if rng.gen_bool(0.3) {
                    d.add_type(id, TypeId(rng.gen_range(0..ntypes)));
                }
                for &name in &attr_names {
                    if !rng.gen_bool(0.4) {
                        continue;
                    }
                    let v = if rng.gen_bool(0.5) {
                        Value::Int(rng.next_u64() as i64)
                    } else {
                        let len = rng.gen_range(0..8usize);
                        let s: String = (0..len).map(|_| *rng.choose(&alphabet).unwrap()).collect();
                        Value::Str(s)
                    };
                    d.set_attr(id, name, v);
                    break; // one attr per name rule: move on
                }
            }
            let xml = write_xml(&d, &tys);
            let d2 = parse_xml(&xml, &mut tys)
                .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}\n{xml}"));
            assert_eq!(d, d2, "seed {seed}: round trip changed the document\n{xml}");
        }
    }

    #[test]
    fn malformed_attributes_rejected() {
        let mut tys = TypeInterner::new();
        assert!(parse_xml(r#"<a x=1/>"#, &mut tys).is_err(), "unquoted");
        assert!(parse_xml(r#"<a x/>"#, &mut tys).is_err(), "missing =");
        assert!(parse_xml(r#"<a x="y/>"#, &mut tys).is_err(), "unterminated");
    }

    #[test]
    fn write_then_parse_round_trips() {
        let (d, mut tys) = parse(
            r#"<Org><Dept><Employee also="Person"><Project/></Employee></Dept><Dept/></Org>"#,
        );
        let xml = write_xml(&d, &tys);
        let d2 = parse_xml(&xml, &mut tys).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn deep_nesting_parses() {
        let depth = 100_000;
        let mut s = String::new();
        for _ in 0..depth {
            s.push_str("<x>");
        }
        s.push_str("<y/>");
        for _ in 0..depth {
            s.push_str("</x>");
        }
        let (d, _) = parse(&s);
        assert_eq!(d.len(), depth + 1);
    }

    #[test]
    fn absurd_nesting_is_rejected_not_oom() {
        // One level past the cap: the parser must error cleanly instead of
        // growing the arena without bound.
        let depth = MAX_XML_DEPTH + 1;
        let mut s = String::with_capacity(depth * 3 + 4);
        for _ in 0..depth {
            s.push_str("<x>");
        }
        let mut tys = TypeInterner::new();
        let err = parse_xml(&s, &mut tys).unwrap_err();
        assert!(err.to_string().contains("nesting too deep"), "{err}");
    }

    #[test]
    fn parse_xml_failpoint_injects_an_error() {
        let _fp = failpoint::arm_for_thread("parse.xml", failpoint::Action::Err, 1);
        let mut tys = TypeInterner::new();
        let err = parse_xml("<a/>", &mut tys).unwrap_err();
        assert_eq!(err, Error::Injected { point: "parse.xml".into() });
        assert!(parse_xml("<a/>", &mut tys).is_ok(), "one-shot");
    }

    // ---- streaming reader ----

    /// A reader that hands out at most `step` bytes per `read` call, to
    /// exercise refills landing mid-tag, mid-comment and mid-reference.
    struct Dribble<'a> {
        data: &'a [u8],
        pos: usize,
        step: usize,
    }

    impl std::io::Read for Dribble<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.step.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn reader_agrees_with_slice_parser() {
        let cases = [
            "<Book/>",
            "<a> hello <!-- note --> <b><c/></b> tail <b/> </a>",
            r#"<Employee also="Person,Manager" age="41"><Badge/></Employee>"#,
            r#"<a v="&amp;&lt;5 &gt; 4&quot;" w="a > b"/>"#,
            "<a/> trailing text ",
            "<a/><!-- post-root comment -->",
        ];
        for case in cases {
            let mut tys1 = TypeInterner::new();
            let want = parse_xml(case, &mut tys1).expect(case);
            let mut tys2 = TypeInterner::new();
            let got = parse_xml_reader(case.as_bytes(), &mut tys2).expect(case);
            assert_eq!(want, got, "{case:?}");
        }
    }

    #[test]
    fn reader_rejects_what_the_slice_parser_rejects() {
        let cases = [
            "</a>",
            "<a></a></a>",
            "<a></b>",
            "<a></a",
            "<a><</a>",
            "",
            "<!-- only a comment -->",
            "<a/><b/>",
            r#"<a x="y/>"#,
            r#"<a v="&bogus;"/>"#,
        ];
        for case in cases {
            let mut tys = TypeInterner::new();
            let err = parse_xml_reader(case.as_bytes(), &mut tys)
                .expect_err(&format!("{case:?} must fail"));
            match err {
                Error::XmlParse { offset, .. } => assert!(offset <= case.len(), "{case:?}"),
                other => panic!("{case:?}: expected XmlParse, got {other:?}"),
            }
        }
    }

    #[test]
    fn reader_survives_tiny_chunks() {
        let xml = r#"<Org note="a &amp; b"><!-- split --- comment --><Dept also="Unit"><Employee n="-3"/></Dept> text <Dept/></Org>"#;
        let mut tys = TypeInterner::new();
        let want = parse_xml(xml, &mut tys).unwrap();
        for step in 1..9 {
            let mut tys2 = TypeInterner::new();
            let r = Dribble { data: xml.as_bytes(), pos: 0, step };
            let got = parse_xml_reader(r, &mut tys2).unwrap_or_else(|e| panic!("step {step}: {e}"));
            assert_eq!(want, got, "step {step}");
        }
    }

    #[test]
    fn reader_handles_inputs_larger_than_one_chunk() {
        // Enough siblings that the window slides several times.
        let n = 20_000;
        let mut xml = String::with_capacity(n * 16);
        xml.push_str("<root>");
        for i in 0..n {
            xml.push_str(&format!("<item k=\"{}\"/>", i % 97));
        }
        xml.push_str("</root>");
        assert!(xml.len() > 2 * READ_CHUNK);
        let mut tys = TypeInterner::new();
        let doc = parse_xml_reader(xml.as_bytes(), &mut tys).unwrap();
        assert_eq!(doc.len(), n + 1);
        let mut tys2 = TypeInterner::new();
        assert_eq!(doc, parse_xml(&xml, &mut tys2).unwrap());
    }

    #[test]
    fn reader_failpoint_injects_an_error() {
        let _fp = failpoint::arm_for_thread("parse.xml", failpoint::Action::Err, 1);
        let mut tys = TypeInterner::new();
        let err = parse_xml_reader("<a/>".as_bytes(), &mut tys).unwrap_err();
        assert_eq!(err, Error::Injected { point: "parse.xml".into() });
    }

    #[test]
    fn write_xml_to_matches_write_xml() {
        let (d, tys) =
            parse(r#"<Org><Dept count="2"><Employee also="Person"/><Employee/></Dept></Org>"#);
        let mut bytes = Vec::new();
        write_xml_to(&d, &tys, &mut bytes).unwrap();
        assert_eq!(String::from_utf8(bytes).unwrap(), write_xml(&d, &tys));
    }
}
