//! A deliberately small XML subset, sufficient for writing documents in
//! examples and tests as readable markup.
//!
//! Supported: start/end tags, self-closing tags, an optional `also`
//! attribute listing extra node types (comma- or space-separated), comments
//! (`<!-- ... -->`) and inter-element text (ignored — tree patterns are
//! structure-only). Not supported: namespaces, entities, CDATA, processing
//! instructions.
//!
//! ```
//! use tpq_base::TypeInterner;
//! let mut tys = TypeInterner::new();
//! let doc = tpq_data::parse_xml(r#"
//!   <Org>
//!     <Employee also="Person"><Project/></Employee>
//!   </Org>"#, &mut tys).unwrap();
//! assert_eq!(doc.len(), 3);
//! ```

use crate::document::{DataNodeId, Document};
use tpq_base::{failpoint, Error, Result, TypeInterner};

/// Maximum open-element nesting. The parse loop is iterative, so the call
/// stack is never at risk; this bounds the explicit stack (and the node
/// arena growth) against adversarial `<x><x><x>…` streams while staying
/// well above any realistic document (and above the 100k-deep documents
/// the tests exercise).
pub const MAX_XML_DEPTH: usize = 1 << 18;

/// Parse a document from the XML subset, interning type names into `types`.
///
/// The parser is a flat loop over tags with an explicit open-element
/// stack, so document depth is limited by [`MAX_XML_DEPTH`], not the call
/// stack.
pub fn parse_xml(input: &str, types: &mut TypeInterner) -> Result<Document> {
    failpoint::hit("parse.xml")?;
    let mut p = XmlParser { input: input.as_bytes(), pos: 0 };
    p.skip_misc();
    // Root start tag.
    let (root_name, root_extra, root_attrs, root_selfclosing) = p.parse_start_tag(types)?;
    let mut doc = Document::new(types.intern(&root_name));
    for t in root_extra {
        doc.add_type(doc.root(), t);
    }
    for (a, v) in root_attrs {
        doc.set_attr(doc.root(), a, v);
    }
    if !root_selfclosing {
        // Stack of (open element name, node id). The `while let` keeps the
        // "stack is non-empty inside the loop" invariant structural, so a
        // malformed document can only produce an `Err`, never a panic.
        let mut open: Vec<(String, DataNodeId)> = vec![(root_name, doc.root())];
        while let Some(parent) = open.last().map(|(_, id)| *id) {
            p.skip_misc();
            if p.starts_with("</") {
                p.pos += 2;
                let end_name = p.parse_name()?;
                match open.pop() {
                    Some((want, _)) if end_name == want => {}
                    Some((want, _)) => {
                        return Err(p.err(&format!(
                            "mismatched end tag </{end_name}> (expected </{want}>)"
                        )))
                    }
                    None => return Err(p.err(&format!("unmatched end tag </{end_name}>"))),
                }
                p.skip_ws();
                if p.peek() != Some(b'>') {
                    return Err(p.err("expected '>' closing end tag"));
                }
                p.pos += 1;
            } else if p.peek() == Some(b'<') {
                let (name, extra, attrs, selfclosing) = p.parse_start_tag(types)?;
                let me = doc.add_child(parent, types.intern(&name));
                for t in extra {
                    doc.add_type(me, t);
                }
                for (a, v) in attrs {
                    doc.set_attr(me, a, v);
                }
                if !selfclosing {
                    if open.len() >= MAX_XML_DEPTH {
                        return Err(p.err("element nesting too deep"));
                    }
                    open.push((name, me));
                }
            } else {
                return Err(p.err("unexpected end of input inside element"));
            }
        }
    }
    p.skip_misc();
    if p.pos != p.input.len() {
        return Err(p.err("trailing content after the root element"));
    }
    doc.validate()?;
    Ok(doc)
}

struct XmlParser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl XmlParser<'_> {
    fn err(&self, message: &str) -> Error {
        Error::XmlParse { offset: self.pos, message: message.to_owned() }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    /// Skip whitespace, text content and comments.
    fn skip_misc(&mut self) {
        loop {
            if self.starts_with("<!--") {
                match find(self.input, self.pos + 4, b"-->") {
                    Some(end) => self.pos = end + 3,
                    None => {
                        self.pos = self.input.len();
                        return;
                    }
                }
            } else if self.peek().is_some() && self.peek() != Some(b'<') {
                self.pos += 1;
            } else {
                return;
            }
        }
    }

    fn parse_name(&mut self) -> Result<String> {
        let start = self.pos;
        match self.peek() {
            Some(b) if b.is_ascii_alphabetic() || b == b'_' => self.pos += 1,
            _ => return Err(self.err("expected an element name")),
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    /// Parse `<name attr="v" ...>` or `<name .../>`. Returns
    /// `(name, extra types, attributes, self_closing)`.
    #[allow(clippy::type_complexity)]
    fn parse_start_tag(
        &mut self,
        types: &mut TypeInterner,
    ) -> Result<(String, Vec<tpq_base::TypeId>, Vec<(tpq_base::TypeId, tpq_base::Value)>, bool)>
    {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        self.skip_ws();
        // Attributes. The reserved name `also="T1,T2"` adds extra node
        // types; every other attribute becomes a typed value
        // (integer-looking text parses as an integer).
        let mut extra = Vec::new();
        let mut attrs: Vec<(tpq_base::TypeId, tpq_base::Value)> = Vec::new();
        while self.peek().is_some_and(|b| b.is_ascii_alphabetic() || b == b'_') {
            let attr_name = self.parse_name()?;
            self.skip_ws();
            if self.peek() != Some(b'=') {
                return Err(self.err(&format!("expected '=' after attribute '{attr_name}'")));
            }
            self.pos += 1;
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected '\"' opening attribute value"));
            }
            self.pos += 1;
            let start = self.pos;
            while self.peek().is_some() && self.peek() != Some(b'"') {
                self.pos += 1;
            }
            if self.peek() != Some(b'"') {
                return Err(self.err("unterminated attribute value"));
            }
            let value = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
            self.pos += 1;
            if attr_name == "also" {
                for part in value.split([',', ' ']).filter(|s| !s.is_empty()) {
                    extra.push(types.intern(part));
                }
            } else {
                let v = match value.parse::<i64>() {
                    Ok(i) => tpq_base::Value::Int(i),
                    Err(_) => tpq_base::Value::Str(value),
                };
                attrs.push((types.intern(&attr_name), v));
            }
            self.skip_ws();
        }
        // Self-closing?
        if self.starts_with("/>") {
            self.pos += 2;
            return Ok((name, extra, attrs, true));
        }
        if self.peek() != Some(b'>') {
            return Err(self.err("expected '>' or '/>'"));
        }
        self.pos += 1;
        Ok((name, extra, attrs, false))
    }
}

fn find(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    haystack[from..].windows(needle.len()).position(|w| w == needle).map(|p| p + from)
}

/// Serialize a document back to the XML subset (indented, one element per
/// line). Round-trips through [`parse_xml`]. Iterative: safe on deep
/// documents.
pub fn write_xml(doc: &Document, types: &TypeInterner) -> String {
    let mut out = String::new();
    enum Step {
        Open(DataNodeId, usize),
        Close(DataNodeId, usize),
    }
    let mut stack = vec![Step::Open(doc.root(), 0)];
    while let Some(step) = stack.pop() {
        match step {
            Step::Open(id, indent) => {
                write_open(doc, types, id, indent, &mut out);
                if !doc.node(id).children.is_empty() {
                    stack.push(Step::Close(id, indent));
                    for &c in doc.node(id).children.iter().rev() {
                        stack.push(Step::Open(c, indent + 1));
                    }
                }
            }
            Step::Close(id, indent) => {
                let pad = "  ".repeat(indent);
                out.push_str(&pad);
                out.push_str("</");
                out.push_str(types.name(doc.node(id).primary));
                out.push_str(">\n");
            }
        }
    }
    out
}

fn write_open(
    doc: &Document,
    types: &TypeInterner,
    id: DataNodeId,
    indent: usize,
    out: &mut String,
) {
    let node = doc.node(id);
    let pad = "  ".repeat(indent);
    let name = types.name(node.primary);
    out.push_str(&pad);
    out.push('<');
    out.push_str(name);
    if node.types.len() > 1 {
        let extras: Vec<&str> =
            node.types.iter().filter(|&t| t != node.primary).map(|t| types.name(t)).collect();
        out.push_str(" also=\"");
        out.push_str(&extras.join(","));
        out.push('"');
    }
    for (a, v) in &node.attrs {
        out.push(' ');
        out.push_str(types.name(*a));
        out.push_str("=\"");
        match v {
            tpq_base::Value::Int(i) => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("{i}"));
            }
            tpq_base::Value::Str(s) => out.push_str(s),
        }
        out.push('"');
    }
    if node.children.is_empty() {
        out.push_str("/>\n");
    } else {
        out.push_str(">\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> (Document, TypeInterner) {
        let mut tys = TypeInterner::new();
        let d = parse_xml(s, &mut tys).expect("parse");
        (d, tys)
    }

    #[test]
    fn single_self_closing_element() {
        let (d, tys) = parse("<Book/>");
        assert_eq!(d.len(), 1);
        assert_eq!(tys.name(d.node(d.root()).primary), "Book");
    }

    #[test]
    fn nested_elements_with_text_and_comments() {
        let (d, _) = parse("<a> hello <!-- note --> <b><c/></b> tail <b/> </a>");
        assert_eq!(d.len(), 4);
        assert_eq!(d.node(d.root()).children.len(), 2);
    }

    #[test]
    fn also_attribute_adds_types() {
        let (d, tys) = parse(r#"<Employee also="Person,Manager"/>"#);
        let person = tys.lookup("Person").unwrap();
        let manager = tys.lookup("Manager").unwrap();
        assert!(d.node(d.root()).types.contains(person));
        assert!(d.node(d.root()).types.contains(manager));
        assert_eq!(d.node(d.root()).types.len(), 3);
    }

    #[test]
    fn mismatched_end_tag_is_an_error() {
        let mut tys = TypeInterner::new();
        assert!(parse_xml("<a><b></a></b>", &mut tys).is_err());
    }

    #[test]
    fn trailing_content_is_an_error() {
        let mut tys = TypeInterner::new();
        assert!(parse_xml("<a/><b/>", &mut tys).is_err());
    }

    #[test]
    fn unterminated_input_is_an_error() {
        let mut tys = TypeInterner::new();
        assert!(parse_xml("<a><b/>", &mut tys).is_err());
        assert!(parse_xml("<a", &mut tys).is_err());
        assert!(parse_xml("", &mut tys).is_err());
    }

    #[test]
    fn malformed_documents_error_instead_of_panicking() {
        // Regression battery: every input here used to reach (or guard
        // with) an `expect` somewhere in the parse loop. Each must come
        // back as Err with a usable offset, never a panic.
        let cases = [
            "</a>",
            "<a></a></a>",
            "<a></b>",
            "<a><b></b></b>",
            "<a><b></a></b>",
            "<a></a",
            "<a><</a>",
            "<a></ >",
            "<a><b/></a></a>",
            "<!-- only a comment -->",
            "<a></a x>",
        ];
        for case in cases {
            let mut tys = TypeInterner::new();
            let got = parse_xml(case, &mut tys);
            let err = got.expect_err(&format!("{case:?} must fail"));
            match err {
                Error::XmlParse { offset, .. } => assert!(offset <= case.len(), "{case:?}"),
                other => panic!("{case:?}: expected XmlParse, got {other:?}"),
            }
        }
    }

    #[test]
    fn attributes_parse_as_typed_values() {
        use tpq_base::Value;
        let (d, tys) = parse(r#"<Book price="95" lang="en" isbn="978-3"/>"#);
        let n = d.node(d.root());
        assert_eq!(n.attr(tys.lookup("price").unwrap()), Some(&Value::Int(95)));
        assert_eq!(n.attr(tys.lookup("lang").unwrap()), Some(&Value::Str("en".into())));
        // Not a pure integer -> string.
        assert_eq!(n.attr(tys.lookup("isbn").unwrap()), Some(&Value::Str("978-3".into())));
        assert_eq!(n.attr(tys.lookup("Book").unwrap()), None);
    }

    #[test]
    fn also_combines_with_value_attributes() {
        let (d, tys) = parse(r#"<Employee also="Person" age="41"><Badge/></Employee>"#);
        let n = d.node(d.root());
        assert!(n.types.contains(tys.lookup("Person").unwrap()));
        assert_eq!(n.attr(tys.lookup("age").unwrap()), Some(&tpq_base::Value::Int(41)));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn attribute_round_trip() {
        let (d, mut tys) = parse(r#"<Book price="95" lang="en"><Title n="-2"/></Book>"#);
        let xml = write_xml(&d, &tys);
        let d2 = parse_xml(&xml, &mut tys).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn malformed_attributes_rejected() {
        let mut tys = TypeInterner::new();
        assert!(parse_xml(r#"<a x=1/>"#, &mut tys).is_err(), "unquoted");
        assert!(parse_xml(r#"<a x/>"#, &mut tys).is_err(), "missing =");
        assert!(parse_xml(r#"<a x="y/>"#, &mut tys).is_err(), "unterminated");
    }

    #[test]
    fn write_then_parse_round_trips() {
        let (d, mut tys) = parse(
            r#"<Org><Dept><Employee also="Person"><Project/></Employee></Dept><Dept/></Org>"#,
        );
        let xml = write_xml(&d, &tys);
        let d2 = parse_xml(&xml, &mut tys).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn deep_nesting_parses() {
        let depth = 100_000;
        let mut s = String::new();
        for _ in 0..depth {
            s.push_str("<x>");
        }
        s.push_str("<y/>");
        for _ in 0..depth {
            s.push_str("</x>");
        }
        let (d, _) = parse(&s);
        assert_eq!(d.len(), depth + 1);
    }

    #[test]
    fn absurd_nesting_is_rejected_not_oom() {
        // One level past the cap: the parser must error cleanly instead of
        // growing the arena without bound.
        let depth = MAX_XML_DEPTH + 1;
        let mut s = String::with_capacity(depth * 3 + 4);
        for _ in 0..depth {
            s.push_str("<x>");
        }
        let mut tys = TypeInterner::new();
        let err = parse_xml(&s, &mut tys).unwrap_err();
        assert!(err.to_string().contains("nesting too deep"), "{err}");
    }

    #[test]
    fn parse_xml_failpoint_injects_an_error() {
        let _fp = failpoint::arm_for_thread("parse.xml", failpoint::Action::Err, 1);
        let mut tys = TypeInterner::new();
        let err = parse_xml("<a/>", &mut tys).unwrap_err();
        assert_eq!(err, Error::Injected { point: "parse.xml".into() });
        assert!(parse_xml("<a/>", &mut tys).is_ok(), "one-shot");
    }
}
