//! Random document generation.
//!
//! Used by the experiment harness (documents to evaluate minimized vs
//! unminimized patterns against) and by the property tests (empirical
//! equivalence checks need a population of databases).

use crate::document::Document;
use tpq_base::{SmallRng, TypeId};

/// Parameters for [`generate_document`].
#[derive(Debug, Clone)]
pub struct DocumentSpec {
    /// Number of nodes to generate (≥ 1).
    pub nodes: usize,
    /// Number of distinct types `t0..t{num_types-1}` to draw from.
    pub num_types: usize,
    /// Maximum fanout per node (≥ 1). New nodes attach to a uniformly random
    /// existing node that still has spare fanout.
    pub max_fanout: usize,
    /// Probability that a node gets one extra (co-occurring) type.
    pub extra_type_prob: f64,
    /// RNG seed — generation is fully deterministic given the spec.
    pub seed: u64,
}

impl Default for DocumentSpec {
    fn default() -> Self {
        DocumentSpec { nodes: 100, num_types: 8, max_fanout: 4, extra_type_prob: 0.1, seed: 0 }
    }
}

/// Generate a random document per `spec`. Types are `TypeId(0)` through
/// `TypeId(spec.num_types - 1)`; callers that need names should intern that
/// many names first so ids line up.
pub fn generate_document(spec: &DocumentSpec) -> Document {
    assert!(spec.nodes >= 1, "a document has at least one node");
    assert!(spec.num_types >= 1, "need at least one type");
    assert!(spec.max_fanout >= 1, "fanout must be at least 1");
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let ty = |rng: &mut SmallRng| TypeId(rng.gen_range(0..spec.num_types as u32));
    let root_ty = ty(&mut rng);
    let mut doc = Document::new(root_ty);
    // Candidates that still have spare fanout (swap-remove keeps this O(1)).
    let mut open = vec![doc.root()];
    while doc.len() < spec.nodes {
        let slot = rng.gen_range(0..open.len());
        let parent = open[slot];
        let child = doc.add_child(parent, ty(&mut rng));
        if rng.gen_bool(spec.extra_type_prob) {
            let extra = ty(&mut rng);
            doc.add_type(child, extra);
        }
        open.push(child);
        if doc.node(parent).children.len() >= spec.max_fanout {
            open.swap_remove(slot);
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size_and_validates() {
        for nodes in [1, 2, 17, 200] {
            let doc = generate_document(&DocumentSpec { nodes, ..Default::default() });
            assert_eq!(doc.len(), nodes);
            doc.validate().unwrap();
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let spec = DocumentSpec { nodes: 64, seed: 42, ..Default::default() };
        assert_eq!(generate_document(&spec), generate_document(&spec));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_document(&DocumentSpec { nodes: 64, seed: 1, ..Default::default() });
        let b = generate_document(&DocumentSpec { nodes: 64, seed: 2, ..Default::default() });
        assert_ne!(a, b);
    }

    #[test]
    fn fanout_bound_is_respected() {
        let spec = DocumentSpec { nodes: 300, max_fanout: 2, ..Default::default() };
        let doc = generate_document(&spec);
        for id in doc.ids() {
            assert!(doc.node(id).children.len() <= 2);
        }
    }

    #[test]
    fn fanout_one_gives_a_chain() {
        let spec = DocumentSpec { nodes: 20, max_fanout: 1, ..Default::default() };
        let doc = generate_document(&spec);
        assert_eq!(doc.depth(crate::DataNodeId(19)), 19);
    }

    #[test]
    fn extra_types_appear_when_probability_is_one() {
        let spec =
            DocumentSpec { nodes: 50, extra_type_prob: 1.0, num_types: 2, ..Default::default() };
        let doc = generate_document(&spec);
        // Every non-root node got an extra-type draw; with 2 types roughly
        // half of the draws differ from the primary, so at least one node
        // must be multi-typed.
        assert!(doc.ids().any(|id| doc.node(id).types.len() > 1));
    }

    #[test]
    fn types_stay_in_range() {
        let spec = DocumentSpec { nodes: 100, num_types: 3, ..Default::default() };
        let doc = generate_document(&spec);
        for id in doc.ids() {
            for t in doc.node(id).types.iter() {
                assert!(t.0 < 3);
            }
        }
    }
}
