//! Random document generation.
//!
//! Used by the experiment harness (documents to evaluate minimized vs
//! unminimized patterns against) and by the property tests (empirical
//! equivalence checks need a population of databases). For documents too
//! large to build in memory, [`stream_xml_to`] writes the markup straight
//! to an [`std::io::Write`] sink instead.

use crate::document::Document;
use std::io::{BufWriter, Write};
use tpq_base::{SmallRng, TypeId};

/// Parameters for [`generate_document`].
#[derive(Debug, Clone)]
pub struct DocumentSpec {
    /// Number of nodes to generate (≥ 1).
    pub nodes: usize,
    /// Number of distinct types `t0..t{num_types-1}` to draw from.
    pub num_types: usize,
    /// Maximum fanout per node (≥ 1). New nodes attach to a uniformly random
    /// existing node that still has spare fanout.
    pub max_fanout: usize,
    /// Probability that a node gets one extra (co-occurring) type.
    pub extra_type_prob: f64,
    /// RNG seed — generation is fully deterministic given the spec.
    pub seed: u64,
}

impl Default for DocumentSpec {
    fn default() -> Self {
        DocumentSpec { nodes: 100, num_types: 8, max_fanout: 4, extra_type_prob: 0.1, seed: 0 }
    }
}

/// Generate a random document per `spec`. Types are `TypeId(0)` through
/// `TypeId(spec.num_types - 1)`; callers that need names should intern that
/// many names first so ids line up.
pub fn generate_document(spec: &DocumentSpec) -> Document {
    assert!(spec.nodes >= 1, "a document has at least one node");
    assert!(spec.num_types >= 1, "need at least one type");
    assert!(spec.max_fanout >= 1, "fanout must be at least 1");
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let ty = |rng: &mut SmallRng| TypeId(rng.gen_range(0..spec.num_types as u32));
    let root_ty = ty(&mut rng);
    let mut doc = Document::new(root_ty);
    // Candidates that still have spare fanout (swap-remove keeps this O(1)).
    let mut open = vec![doc.root()];
    while doc.len() < spec.nodes {
        let slot = rng.gen_range(0..open.len());
        let parent = open[slot];
        let child = doc.add_child(parent, ty(&mut rng));
        // Draw the extra type from the non-primary types directly, so the
        // realized multi-typing rate matches `extra_type_prob` instead of
        // silently no-opping whenever the draw repeats the primary.
        if spec.num_types > 1 && rng.gen_bool(spec.extra_type_prob) {
            let primary = doc.node(child).primary;
            let shift = 1 + rng.gen_range(0..spec.num_types as u32 - 1);
            doc.add_type(child, TypeId((primary.0 + shift) % spec.num_types as u32));
        }
        open.push(child);
        if doc.node(parent).children.len() >= spec.max_fanout {
            open.swap_remove(slot);
        }
    }
    doc
}

/// Parameters for [`stream_xml_to`] — the disk-scale counterpart of
/// [`DocumentSpec`]. Type names are `t0..t{num_types-1}`, matching
/// [`generate_document`]'s `TypeId` convention once interned in order.
#[derive(Debug, Clone)]
pub struct XmlStreamSpec {
    /// Number of elements to emit (≥ 1).
    pub nodes: usize,
    /// Number of distinct types `t0..t{num_types-1}` to draw from.
    pub num_types: usize,
    /// Maximum fanout per element (≥ 1).
    pub max_fanout: usize,
    /// Probability that an element gets one extra type via `also=`
    /// (drawn excluding the primary, like [`generate_document`]).
    pub extra_type_prob: f64,
    /// Probability that an element gets a `v="<int>"` attribute.
    pub attr_prob: f64,
    /// RNG seed — the emitted bytes are fully deterministic given the spec.
    pub seed: u64,
}

impl Default for XmlStreamSpec {
    fn default() -> Self {
        XmlStreamSpec {
            nodes: 100_000,
            num_types: 8,
            max_fanout: 4,
            extra_type_prob: 0.1,
            attr_prob: 0.1,
            seed: 0,
        }
    }
}

/// Probability of descending (opening a child) at each step of the
/// streaming walk when both moves are legal. Below ½, the walk is
/// close-biased, so element depth stays shallow no matter how many nodes
/// are emitted — multi-hundred-MB outputs never approach
/// [`crate::MAX_XML_DEPTH`].
const STREAM_DESCEND_PROB: f64 = 0.45;

/// Counts the bytes that actually reach the sink under the [`BufWriter`].
struct CountingWriter<W> {
    inner: W,
    bytes: u64,
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Generate a random XML document of exactly `spec.nodes` elements and
/// write its markup to `out` (compact, no inter-element whitespace),
/// returning the number of bytes written.
///
/// The generator is a single pre-order pass with an open-element stack, so
/// the markup never exists in memory as one `String` — point it at a file
/// and it produces multi-hundred-MB documents in O(depth) memory, ready to
/// be re-ingested through [`crate::parse_xml_reader`]. The walk never
/// closes an element while doing so would leave no open element with spare
/// fanout, which is what lets it hit the node budget exactly.
pub fn stream_xml_to<W: Write>(spec: &XmlStreamSpec, out: W) -> std::io::Result<u64> {
    assert!(spec.nodes >= 1, "a document has at least one element");
    assert!(spec.num_types >= 1, "need at least one type");
    assert!(spec.max_fanout >= 1, "fanout must be at least 1");
    let mut w = BufWriter::new(CountingWriter { inner: out, bytes: 0 });
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let ty = |rng: &mut SmallRng| rng.gen_range(0..spec.num_types as u32);
    let open_tag = |w: &mut BufWriter<CountingWriter<W>>,
                    rng: &mut SmallRng,
                    t: u32,
                    spec: &XmlStreamSpec|
     -> std::io::Result<()> {
        write!(w, "<t{t}")?;
        if spec.num_types > 1 && rng.gen_bool(spec.extra_type_prob) {
            let shift = 1 + rng.gen_range(0..spec.num_types as u32 - 1);
            write!(w, " also=\"t{}\"", (t + shift) % spec.num_types as u32)?;
        }
        if rng.gen_bool(spec.attr_prob) {
            write!(w, " v=\"{}\"", rng.gen_range(0..100u32))?;
        }
        write!(w, ">")
    };
    let root_ty = ty(&mut rng);
    open_tag(&mut w, &mut rng, root_ty, spec)?;
    // Open elements as (type, children emitted so far); `spare` tracks the
    // total unused fanout across them — the budget-feasibility invariant is
    // `spare >= 1` whenever elements remain to be placed.
    let mut stack: Vec<(u32, usize)> = vec![(root_ty, 0)];
    let mut spare = spec.max_fanout;
    let mut emitted = 1usize;
    while emitted < spec.nodes {
        let top = *stack.last().expect("root stays open while emitting");
        let top_spare = spec.max_fanout - top.1;
        let can_open = top_spare > 0;
        let can_close = stack.len() > 1 && spare - top_spare > 0;
        let open_now = if can_open && can_close {
            rng.gen_bool(STREAM_DESCEND_PROB)
        } else {
            // When the top is saturated, `spare >= 1` guarantees an open
            // element below it, so closing is always legal here.
            can_open
        };
        if open_now {
            let t = ty(&mut rng);
            open_tag(&mut w, &mut rng, t, spec)?;
            stack.last_mut().expect("non-empty").1 += 1;
            spare = spare - 1 + spec.max_fanout;
            stack.push((t, 0));
            emitted += 1;
        } else {
            let (t, _) = stack.pop().expect("can_close implies depth > 1");
            spare -= top_spare;
            write!(w, "</t{t}>")?;
        }
    }
    while let Some((t, _)) = stack.pop() {
        write!(w, "</t{t}>")?;
    }
    w.flush()?;
    let counter = w.into_inner().map_err(|e| e.into_error())?;
    Ok(counter.bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size_and_validates() {
        for nodes in [1, 2, 17, 200] {
            let doc = generate_document(&DocumentSpec { nodes, ..Default::default() });
            assert_eq!(doc.len(), nodes);
            doc.validate().unwrap();
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let spec = DocumentSpec { nodes: 64, seed: 42, ..Default::default() };
        assert_eq!(generate_document(&spec), generate_document(&spec));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_document(&DocumentSpec { nodes: 64, seed: 1, ..Default::default() });
        let b = generate_document(&DocumentSpec { nodes: 64, seed: 2, ..Default::default() });
        assert_ne!(a, b);
    }

    #[test]
    fn fanout_bound_is_respected() {
        let spec = DocumentSpec { nodes: 300, max_fanout: 2, ..Default::default() };
        let doc = generate_document(&spec);
        for id in doc.ids() {
            assert!(doc.node(id).children.len() <= 2);
        }
    }

    #[test]
    fn fanout_one_gives_a_chain() {
        let spec = DocumentSpec { nodes: 20, max_fanout: 1, ..Default::default() };
        let doc = generate_document(&spec);
        assert_eq!(doc.depth(crate::DataNodeId(19)), 19);
    }

    #[test]
    fn extra_types_appear_when_probability_is_one() {
        let spec =
            DocumentSpec { nodes: 50, extra_type_prob: 1.0, num_types: 2, ..Default::default() };
        let doc = generate_document(&spec);
        // The extra draw excludes the primary, so probability 1.0 means
        // every non-root node is multi-typed — no silent no-ops.
        for id in doc.ids().skip(1) {
            assert_eq!(doc.node(id).types.len(), 2, "{id} should carry an extra type");
        }
    }

    #[test]
    fn realized_multi_typing_rate_tracks_probability() {
        let spec = DocumentSpec {
            nodes: 2000,
            extra_type_prob: 0.5,
            num_types: 3,
            seed: 7,
            ..Default::default()
        };
        let doc = generate_document(&spec);
        let multi = doc.ids().skip(1).filter(|&id| doc.node(id).types.len() > 1).count();
        let rate = multi as f64 / (spec.nodes - 1) as f64;
        // Binomial(1999, 0.5): ±0.05 is > 4 sigma. Before the redraw fix
        // the realized rate was prob * (1 - 1/num_types) ≈ 0.33.
        assert!((rate - 0.5).abs() < 0.05, "realized rate {rate}");
    }

    #[test]
    fn single_type_documents_never_multi_type() {
        let spec =
            DocumentSpec { nodes: 50, extra_type_prob: 1.0, num_types: 1, ..Default::default() };
        let doc = generate_document(&spec);
        for id in doc.ids() {
            assert_eq!(doc.node(id).types.len(), 1);
        }
    }

    #[test]
    fn stream_xml_is_deterministic_and_reingests() {
        let spec = XmlStreamSpec { nodes: 5_000, seed: 11, ..Default::default() };
        let mut a = Vec::new();
        let bytes = stream_xml_to(&spec, &mut a).unwrap();
        assert_eq!(bytes, a.len() as u64);
        let mut b = Vec::new();
        stream_xml_to(&spec, &mut b).unwrap();
        assert_eq!(a, b, "same spec, same bytes");

        let mut tys = tpq_base::TypeInterner::new();
        let doc = crate::parse_xml_reader(&a[..], &mut tys).unwrap();
        assert_eq!(doc.len(), spec.nodes);
        doc.validate().unwrap();
        for id in doc.ids() {
            assert!(doc.node(id).children.len() <= spec.max_fanout);
            for t in doc.node(id).types.iter() {
                let name = tys.name(t);
                let idx: usize = name.strip_prefix('t').unwrap().parse().unwrap();
                assert!(idx < spec.num_types, "unexpected type {name}");
            }
        }
        // The chunked reader and the slice parser agree on the output.
        let mut tys2 = tpq_base::TypeInterner::new();
        let via_slice = crate::parse_xml(std::str::from_utf8(&a).unwrap(), &mut tys2).unwrap();
        assert_eq!(doc, via_slice);
    }

    #[test]
    fn stream_xml_multi_types_and_attrs_appear() {
        let spec = XmlStreamSpec {
            nodes: 200,
            extra_type_prob: 1.0,
            attr_prob: 1.0,
            num_types: 3,
            seed: 3,
            ..Default::default()
        };
        let mut out = Vec::new();
        stream_xml_to(&spec, &mut out).unwrap();
        let mut tys = tpq_base::TypeInterner::new();
        let doc = crate::parse_xml_reader(&out[..], &mut tys).unwrap();
        let v = tys.lookup("v").unwrap();
        for id in doc.ids() {
            assert_eq!(doc.node(id).types.len(), 2, "{id} must be multi-typed");
            assert!(doc.node(id).attr(v).is_some(), "{id} must carry v=");
        }
    }

    #[test]
    fn stream_xml_single_node_and_chain_edge_cases() {
        for spec in [
            XmlStreamSpec { nodes: 1, ..Default::default() },
            XmlStreamSpec { nodes: 40, max_fanout: 1, ..Default::default() },
            XmlStreamSpec { nodes: 17, num_types: 1, ..Default::default() },
        ] {
            let mut out = Vec::new();
            stream_xml_to(&spec, &mut out).unwrap();
            let mut tys = tpq_base::TypeInterner::new();
            let doc = crate::parse_xml_reader(&out[..], &mut tys).unwrap();
            assert_eq!(doc.len(), spec.nodes, "{spec:?}");
            doc.validate().unwrap();
        }
    }

    #[test]
    fn types_stay_in_range() {
        let spec = DocumentSpec { nodes: 100, num_types: 3, ..Default::default() };
        let doc = generate_document(&spec);
        for id in doc.ids() {
            for t in doc.node(id).types.iter() {
                assert!(t.0 < 3);
            }
        }
    }
}
