//! Tree-structured data: the databases that tree pattern queries run
//! against (Section 2.1 of the paper).
//!
//! A [`Document`] is a single rooted tree of multi-typed nodes (an XML
//! document or an LDAP subtree); a [`Forest`] is the paper's "forest of
//! trees" database. The crate also provides:
//!
//! * an XML-subset parser and writer ([`xml`]) so examples and tests can be
//!   written as readable markup;
//! * a pre/post/level node index ([`index`]) giving O(1) ancestorship tests
//!   and per-type node lists — the data-side analogue of the paper's
//!   hash-table ancestor/descendant and images tables;
//! * a random document generator ([`generate`]) used by the experiment
//!   harness and the property tests.

pub mod document;
pub mod generate;
pub mod index;
pub mod xml;

pub use document::{DataNode, DataNodeId, Document, Forest};
pub use generate::{generate_document, DocumentSpec};
pub use index::DocIndex;
pub use xml::{parse_xml, write_xml, MAX_XML_DEPTH};
