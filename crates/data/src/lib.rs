//! Tree-structured data: the databases that tree pattern queries run
//! against (Section 2.1 of the paper).
//!
//! A [`Document`] is a single rooted tree of multi-typed nodes (an XML
//! document or an LDAP subtree); a [`Forest`] is the paper's "forest of
//! trees" database. The crate also provides:
//!
//! * an XML-subset parser and writer ([`xml`]) so examples and tests can be
//!   written as readable markup, plus a chunked streaming reader/writer
//!   pair for documents that should never exist as one `String`;
//! * a pre/post/level node index ([`index`]) giving O(1) ancestorship tests
//!   and per-type node lists — the data-side analogue of the paper's
//!   hash-table ancestor/descendant and images tables;
//! * a random document generator ([`generate`]) used by the experiment
//!   harness and the property tests.

#![warn(missing_docs)]

pub mod document;
pub mod generate;
pub mod index;
pub mod xml;

pub use document::{DataNode, DataNodeId, Document, Forest};
pub use generate::{generate_document, stream_xml_to, DocumentSpec, XmlStreamSpec};
pub use index::DocIndex;
pub use xml::{parse_xml, parse_xml_reader, write_xml, write_xml_to, MAX_XML_DEPTH};
