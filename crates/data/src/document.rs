//! Arena-based documents and forests.

use std::fmt;
use tpq_base::{Error, Result, TypeId, TypeSet, Value};

/// Index of a node inside a [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataNodeId(pub u32);

impl DataNodeId {
    /// The id as a usize, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DataNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// One node of a document. Data nodes carry a *set* of types (Section 2.2:
/// an `employee` entry is also a `person`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataNode {
    /// The element name / primary object class.
    pub primary: TypeId,
    /// All types of the node (always contains `primary`).
    pub types: TypeSet,
    /// Parent link; `None` for the root.
    pub parent: Option<DataNodeId>,
    /// Children in document order.
    pub children: Vec<DataNodeId>,
    /// Attribute values (`name id -> value`; first entry per name wins).
    pub attrs: Vec<(TypeId, Value)>,
}

impl DataNode {
    /// The value of attribute `name`, if present.
    pub fn attr(&self, name: TypeId) -> Option<&Value> {
        self.attrs.iter().find(|(a, _)| *a == name).map(|(_, v)| v)
    }
}

/// A single rooted data tree. Unlike patterns, documents are append-only —
/// repairs (making a document satisfy constraints) only add nodes or types.
///
/// There is deliberately no `Default` impl: a zero-node document has no
/// root, so every accessor would panic. Construct via [`Document::new`]
/// (or the parsers/generators), all of which yield a rooted tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    nodes: Vec<DataNode>,
}

impl Document {
    /// A single-node document of type `ty`.
    pub fn new(ty: TypeId) -> Self {
        Document {
            nodes: vec![DataNode {
                primary: ty,
                types: TypeSet::singleton(ty),
                parent: None,
                children: Vec::new(),
                attrs: Vec::new(),
            }],
        }
    }

    /// The root id (always `DataNodeId(0)`).
    #[inline]
    pub fn root(&self) -> DataNodeId {
        DataNodeId(0)
    }

    /// Borrow a node.
    #[inline]
    pub fn node(&self, id: DataNodeId) -> &DataNode {
        &self.nodes[id.index()]
    }

    /// Mutably borrow a node.
    #[inline]
    pub fn node_mut(&mut self, id: DataNodeId) -> &mut DataNode {
        &mut self.nodes[id.index()]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the document is empty (never true for constructed docs).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Append a child of type `ty` under `parent`.
    pub fn add_child(&mut self, parent: DataNodeId, ty: TypeId) -> DataNodeId {
        let id = DataNodeId(u32::try_from(self.nodes.len()).expect("document too large"));
        self.nodes.push(DataNode {
            primary: ty,
            types: TypeSet::singleton(ty),
            parent: Some(parent),
            children: Vec::new(),
            attrs: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Add an extra type to a node (LDAP multi-typing / repairs).
    pub fn add_type(&mut self, id: DataNodeId, ty: TypeId) {
        self.nodes[id.index()].types.insert(ty);
    }

    /// Set an attribute value on a node (appends; earlier entries win on
    /// lookup, so use once per name).
    pub fn set_attr(&mut self, id: DataNodeId, name: TypeId, value: Value) {
        self.nodes[id.index()].attrs.push((name, value));
    }

    /// Iterate over all node ids in arena (pre-insertion) order.
    pub fn ids(&self) -> impl Iterator<Item = DataNodeId> {
        (0..self.nodes.len() as u32).map(DataNodeId)
    }

    /// Node ids in pre-order (document order).
    pub fn pre_order(&self) -> Vec<DataNodeId> {
        let mut out = Vec::with_capacity(self.len());
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            out.push(id);
            for &c in self.node(id).children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Whether `anc` is a **proper** ancestor of `desc` (parent walk; use a
    /// [`DocIndex`](crate::DocIndex) for O(1) checks in hot paths).
    pub fn is_proper_ancestor(&self, anc: DataNodeId, desc: DataNodeId) -> bool {
        let mut cur = self.node(desc).parent;
        while let Some(p) = cur {
            if p == anc {
                return true;
            }
            cur = self.node(p).parent;
        }
        false
    }

    /// Depth of `id` (root = 0).
    pub fn depth(&self, id: DataNodeId) -> usize {
        let mut d = 0;
        let mut cur = self.node(id).parent;
        while let Some(p) = cur {
            d += 1;
            cur = self.node(p).parent;
        }
        d
    }

    /// Check structural invariants.
    pub fn validate(&self) -> Result<()> {
        if self.nodes.is_empty() {
            return Err(Error::InvalidDocument("empty document".into()));
        }
        if self.nodes[0].parent.is_some() {
            return Err(Error::InvalidDocument("root has a parent".into()));
        }
        let mut seen = vec![false; self.len()];
        for id in self.pre_order() {
            if seen[id.index()] {
                return Err(Error::InvalidDocument(format!("{id} reachable twice")));
            }
            seen[id.index()] = true;
            let n = self.node(id);
            if !n.types.contains(n.primary) {
                return Err(Error::InvalidDocument(format!("{id}: type set missing primary type")));
            }
            for &c in &n.children {
                if self.node(c).parent != Some(id) {
                    return Err(Error::InvalidDocument(format!(
                        "child {c} of {id} has mismatched parent"
                    )));
                }
            }
        }
        if seen.iter().any(|&s| !s) {
            return Err(Error::InvalidDocument("unreachable nodes".into()));
        }
        Ok(())
    }
}

/// A forest of documents — the paper's database model ("information is
/// represented as a forest of trees").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Forest {
    /// The member trees.
    pub trees: Vec<Document>,
}

/// An empty forest is fine (unlike an empty [`Document`]), so `Forest`
/// keeps a `Default` — manual, since `Document` no longer derives one.
impl Default for Forest {
    fn default() -> Self {
        Forest { trees: Vec::new() }
    }
}

impl Forest {
    /// An empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// A forest of one tree.
    pub fn single(doc: Document) -> Self {
        Forest { trees: vec![doc] }
    }

    /// Push a tree.
    pub fn push(&mut self, doc: Document) {
        self.trees.push(doc);
    }

    /// Total node count across trees.
    pub fn total_nodes(&self) -> usize {
        self.trees.iter().map(Document::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> (Document, Vec<DataNodeId>) {
        // a(b(c), d)
        let mut d = Document::new(TypeId(0));
        let b = d.add_child(d.root(), TypeId(1));
        let c = d.add_child(b, TypeId(2));
        let e = d.add_child(d.root(), TypeId(3));
        (d, vec![DataNodeId(0), b, c, e])
    }

    #[test]
    fn build_and_validate() {
        let (d, ids) = doc();
        assert_eq!(d.len(), 4);
        d.validate().unwrap();
        assert_eq!(d.pre_order(), vec![ids[0], ids[1], ids[2], ids[3]]);
    }

    #[test]
    fn ancestorship_and_depth() {
        let (d, ids) = doc();
        assert!(d.is_proper_ancestor(ids[0], ids[2]));
        assert!(d.is_proper_ancestor(ids[1], ids[2]));
        assert!(!d.is_proper_ancestor(ids[2], ids[2]));
        assert!(!d.is_proper_ancestor(ids[3], ids[2]));
        assert_eq!(d.depth(ids[2]), 2);
        assert_eq!(d.depth(ids[0]), 0);
    }

    #[test]
    fn add_type_multi_types_a_node() {
        let (mut d, ids) = doc();
        d.add_type(ids[1], TypeId(9));
        assert!(d.node(ids[1]).types.contains(TypeId(9)));
        assert!(d.node(ids[1]).types.contains(TypeId(1)));
        d.validate().unwrap();
    }

    #[test]
    fn forest_counts() {
        let (d, _) = doc();
        let mut f = Forest::single(d.clone());
        f.push(d);
        assert_eq!(f.trees.len(), 2);
        assert_eq!(f.total_nodes(), 8);
    }

    #[test]
    fn every_public_constructor_yields_a_valid_rooted_document() {
        // `Document` has no `Default` (a zero-node doc would panic in
        // `root()`/`node()`); each remaining way to obtain one must give a
        // tree whose root is immediately usable.
        let d = Document::new(TypeId(7));
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
        assert_eq!(d.node(d.root()).primary, TypeId(7));
        d.validate().unwrap();

        let mut grown = Document::new(TypeId(0));
        grown.add_child(grown.root(), TypeId(1));
        grown.validate().unwrap();

        let f = Forest::default();
        assert!(f.trees.is_empty());
        let f = Forest::new();
        assert_eq!(f.total_nodes(), 0);
        let f = Forest::single(d.clone());
        f.trees.iter().for_each(|t| t.validate().unwrap());
    }

    #[test]
    fn validate_catches_corruption() {
        let (mut d, ids) = doc();
        d.node_mut(ids[2]).parent = Some(ids[3]); // break parent link
        assert!(d.validate().is_err());
    }
}
