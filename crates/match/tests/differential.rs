//! Engine-agreement battery: the twig join, the embed matcher, and the
//! naive backtracking enumerator must agree on the answer set of every
//! random (pattern, document) pair — including multi-typed nodes, value
//! conditions, and `a//a`-style self-overlapping patterns.
//!
//! Twig and embed must agree *byte-identically* (both return pre-order);
//! naive returns arena order, so it is compared as a sorted set.

use tpq_base::{Cmp, Error, Guard, SmallRng, TypeId, Value};
use tpq_data::{generate_document, DocIndex, Document, DocumentSpec};
use tpq_match::{
    answer_set, answer_set_naive_guarded, answer_set_twig, answer_set_twig_guarded,
    answer_set_twig_indexed, Matcher,
};
use tpq_pattern::{Condition, TreePattern};
use tpq_workload::{random_pattern, PatternSpec};

/// A uniform probability in `[0, 1)` (the in-tree rng has no float ranges).
fn prob(rng: &mut SmallRng) -> f64 {
    rng.gen_range(0..1000u32) as f64 / 1000.0
}

/// Sprinkle value conditions over a random pattern and matching attribute
/// values over the document, so the condition-filtering paths of all three
/// engines are exercised (the generators alone emit neither).
fn decorate(pattern: &mut TreePattern, doc: &mut Document, num_types: usize, rng: &mut SmallRng) {
    let attr = TypeId(num_types as u32); // one id past the type universe
    let ids: Vec<_> = pattern.alive_ids().collect();
    for v in ids {
        if rng.gen_bool(0.3) {
            let cond = if rng.gen_bool(0.7) {
                let op =
                    *rng.choose(&[Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge, Cmp::Eq, Cmp::Ne]).unwrap();
                Condition::new(attr, op, Value::Int(rng.gen_range(0..6u32) as i64))
            } else {
                Condition::new(attr, Cmp::Eq, Value::Str("x".into()))
            };
            pattern.node_mut(v).conditions.push(cond);
        }
    }
    for u in doc.ids().collect::<Vec<_>>() {
        if rng.gen_bool(0.5) {
            let value = if rng.gen_bool(0.8) {
                Value::Int(rng.gen_range(0..6u32) as i64)
            } else {
                Value::Str(if rng.gen_bool(0.5) { "x" } else { "y" }.into())
            };
            doc.set_attr(u, attr, value);
        }
    }
}

/// Assert all three engines agree on one pair; returns the answer count.
/// The naive enumerator walks every embedding, which explodes on dense
/// self-overlapping pairs — it runs under a budget and is skipped (not
/// failed) when that trips; twig vs embed always runs to completion.
fn agree(pattern: &TreePattern, doc: &Document, ctx: &str) -> usize {
    let twig = answer_set_twig(pattern, doc);
    let embed = answer_set(pattern, doc);
    assert_eq!(twig, embed, "{ctx}: twig vs embed (order-sensitive)");
    match answer_set_naive_guarded(pattern, doc, &Guard::with_budget(2_000_000)) {
        Ok(naive) => {
            let mut sorted = twig.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, naive, "{ctx}: twig vs naive (as sets)");
        }
        Err(Error::Budget { .. }) => {} // embedding count blew up; skip oracle
        Err(e) => panic!("{ctx}: naive failed unexpectedly: {e:?}"),
    }
    twig.len()
}

#[test]
fn engines_agree_on_random_pairs() {
    let mut nonempty = 0usize;
    for seed in 0..120u64 {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed);
        // Few types ⇒ frequent self-overlap (`a//a`, `a/a//a`…) and dense
        // match sets; more types ⇒ sparse streams and early pruning.
        let num_types = rng.gen_range(1..5usize);
        let pspec = PatternSpec {
            nodes: rng.gen_range(1..9),
            num_types,
            d_edge_prob: prob(&mut rng),
            max_fanout: rng.gen_range(1..4),
            seed,
        };
        let dspec = DocumentSpec {
            nodes: rng.gen_range(1..250),
            num_types,
            max_fanout: rng.gen_range(1..6),
            extra_type_prob: prob(&mut rng) * 0.4,
            seed: seed.wrapping_mul(31) + 7,
        };
        let mut pattern = random_pattern(&pspec);
        let mut doc = generate_document(&dspec);
        if seed % 2 == 0 {
            decorate(&mut pattern, &mut doc, num_types, &mut rng);
        }
        let ctx = format!("seed {seed} ({pspec:?}, {dspec:?})");
        nonempty += usize::from(agree(&pattern, &doc, &ctx) > 0);
    }
    // The battery must actually exercise the match paths, not vacuously
    // compare empty answer sets.
    assert!(nonempty >= 30, "only {nonempty}/120 pairs had answers — generators drifted?");
}

#[test]
fn guarded_engines_trip_to_err_not_wrong_answers() {
    for seed in 0..20u64 {
        let pattern =
            random_pattern(&PatternSpec { nodes: 6, num_types: 3, seed, ..PatternSpec::default() });
        let doc = generate_document(&DocumentSpec {
            nodes: 120,
            num_types: 3,
            seed: seed + 999,
            ..DocumentSpec::default()
        });
        let full = answer_set_twig(&pattern, &doc);
        // A budget far below the work either trips or — only if the true
        // workload was tiny — returns the exact full answer.
        for budget in [1u64, 5, 25] {
            match answer_set_twig_guarded(&pattern, &doc, &Guard::with_budget(budget)) {
                Err(Error::Budget { .. }) => {}
                Ok(ans) => {
                    assert_eq!(ans, full, "seed {seed} budget {budget}: partial answers leaked")
                }
                Err(e) => panic!("seed {seed} budget {budget}: unexpected error {e:?}"),
            }
            match answer_set_naive_guarded(&pattern, &doc, &Guard::with_budget(budget)) {
                Err(Error::Budget { .. }) => {}
                Ok(ans) => {
                    let mut sorted = full.clone();
                    sorted.sort_unstable();
                    assert_eq!(
                        ans, sorted,
                        "seed {seed} budget {budget}: naive partial answers leaked"
                    );
                }
                Err(e) => panic!("seed {seed} budget {budget}: unexpected error {e:?}"),
            }
        }
    }
}

#[test]
fn indexed_twig_agrees_with_matcher_across_queries_on_one_doc() {
    // The index-reuse entry point (what `tpq match` and the bench panels
    // use) must match a fresh Matcher per query.
    let doc = generate_document(&DocumentSpec {
        nodes: 300,
        num_types: 4,
        seed: 42,
        ..DocumentSpec::default()
    });
    let index = DocIndex::build(&doc);
    let guard = Guard::unlimited();
    for seed in 0..40u64 {
        let pattern =
            random_pattern(&PatternSpec { nodes: 5, num_types: 4, seed, ..PatternSpec::default() });
        let twig = answer_set_twig_indexed(&pattern, &doc, &index, &guard).unwrap();
        let embed = Matcher::new(&pattern, &doc).answers().to_vec();
        assert_eq!(twig, embed, "seed {seed}");
    }
}
