//! Brute-force embedding enumeration — the reference evaluator.
//!
//! Enumerates every embedding by backtracking over pattern nodes in
//! pre-order. Exponential in the worst case; exists to cross-validate
//! [`crate::embed`] in tests and to serve as the baseline in the ablation
//! benches.

use tpq_base::{FxHashSet, Guard, Result};
use tpq_data::{DataNodeId, DocIndex, Document};
use tpq_pattern::{EdgeKind, NodeId, TreePattern};

/// The answer set of `pattern` on `doc`, by exhaustive enumeration.
pub fn answer_set_naive(pattern: &TreePattern, doc: &Document) -> Vec<DataNodeId> {
    answer_set_naive_guarded(pattern, doc, &Guard::unlimited())
        .expect("unlimited guard cannot trip")
}

/// [`answer_set_naive`] under a [`Guard`]. The backtracker is exponential
/// in the worst case, so this is the variant to use anywhere the input is
/// not trusted to be tiny: one step is spent per (pattern node, data
/// node) binding attempt.
pub fn answer_set_naive_guarded(
    pattern: &TreePattern,
    doc: &Document,
    guard: &Guard,
) -> Result<Vec<DataNodeId>> {
    let mut answers: FxHashSet<DataNodeId> = FxHashSet::default();
    enumerate(pattern, doc, guard, &mut |binding| {
        // Every node is bound when `visit` fires; an unbound output would
        // mean a corrupted traversal, so skip it rather than panic.
        if let Some(out) = binding[pattern.output().index()] {
            answers.insert(out);
        }
    })?;
    let mut out: Vec<DataNodeId> = answers.into_iter().collect();
    out.sort_unstable();
    Ok(out)
}

/// The number of embeddings of `pattern` into `doc`, by exhaustive
/// enumeration.
pub fn count_embeddings_naive(pattern: &TreePattern, doc: &Document) -> u64 {
    count_embeddings_naive_guarded(pattern, doc, &Guard::unlimited())
        .expect("unlimited guard cannot trip")
}

/// [`count_embeddings_naive`] under a [`Guard`] (see
/// [`answer_set_naive_guarded`] for the spend model).
pub fn count_embeddings_naive_guarded(
    pattern: &TreePattern,
    doc: &Document,
    guard: &Guard,
) -> Result<u64> {
    let mut count = 0u64;
    enumerate(pattern, doc, guard, &mut |_| count += 1)?;
    Ok(count)
}

fn enumerate<F: FnMut(&[Option<DataNodeId>])>(
    pattern: &TreePattern,
    doc: &Document,
    guard: &Guard,
    visit: &mut F,
) -> Result<()> {
    let index = DocIndex::build(doc);
    let order: Vec<NodeId> = pattern.pre_order();
    let mut binding: Vec<Option<DataNodeId>> = vec![None; pattern.arena_len()];
    // Read-only state shared by every recursion level.
    struct Ctx<'a> {
        pattern: &'a TreePattern,
        doc: &'a Document,
        index: &'a DocIndex,
        order: &'a [NodeId],
        guard: &'a Guard,
    }
    fn rec<F: FnMut(&[Option<DataNodeId>])>(
        ctx: &Ctx<'_>,
        i: usize,
        binding: &mut Vec<Option<DataNodeId>>,
        visit: &mut F,
    ) -> Result<()> {
        if i == ctx.order.len() {
            visit(binding);
            return Ok(());
        }
        let v = ctx.order[i];
        let node = ctx.pattern.node(v);
        // Pre-order binds parents before children; if that invariant were
        // ever broken, produce no embeddings instead of panicking.
        let parent_img = match node.parent {
            None => None,
            Some(p) => match binding[p.index()] {
                Some(img) => Some(img),
                None => return Ok(()),
            },
        };
        for u in ctx.doc.ids() {
            ctx.guard.spend(1)?;
            if !ctx.doc.node(u).types.is_superset(&node.types)
                || !tpq_pattern::condition::satisfied_by(&node.conditions, &ctx.doc.node(u).attrs)
            {
                continue;
            }
            if let Some(pu) = parent_img {
                let ok = match node.edge {
                    EdgeKind::Child => ctx.index.is_parent(pu, u),
                    EdgeKind::Descendant => ctx.index.is_proper_ancestor(pu, u),
                };
                if !ok {
                    continue;
                }
            }
            binding[v.index()] = Some(u);
            rec(ctx, i + 1, binding, visit)?;
            binding[v.index()] = None;
        }
        Ok(())
    }
    let ctx = Ctx { pattern, doc, index: &index, order: &order, guard };
    rec(&ctx, 0, &mut binding, visit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::{answer_set, count_embeddings};
    use tpq_base::TypeInterner;
    use tpq_data::{generate_document, parse_xml, DocumentSpec};
    use tpq_pattern::parse_pattern;

    #[test]
    fn agrees_with_fast_evaluator_on_fixed_cases() {
        let mut tys = TypeInterner::new();
        let doc = parse_xml("<r><a><b/><b><c/></b></a><a><c/></a><b><a><b/></a></b></r>", &mut tys)
            .unwrap();
        for q in
            ["a*", "a*/b", "a*//b", "a//b*", "b*//c", "a*[/b][/b/c]", "r*//a//b", "a*[//c]", "x*"]
        {
            let p = parse_pattern(q, &mut tys).unwrap();
            let mut fast = answer_set(&p, &doc);
            fast.sort_unstable();
            assert_eq!(fast, answer_set_naive(&p, &doc), "{q} answers");
            assert_eq!(count_embeddings(&p, &doc), count_embeddings_naive(&p, &doc), "{q} counts");
        }
    }

    #[test]
    fn agrees_on_random_documents() {
        let mut tys = TypeInterner::new();
        for i in 0..8u32 {
            tys.intern(&format!("t{i}"));
        }
        for seed in 0..6u64 {
            let doc = generate_document(&DocumentSpec {
                nodes: 30,
                num_types: 4,
                max_fanout: 3,
                extra_type_prob: 0.2,
                seed,
            });
            for q in ["t0*//t1", "t1*[/t2][/t3]", "t0*[//t1//t2]", "t2*/t2"] {
                let p = parse_pattern(q, &mut tys).unwrap();
                let mut fast = answer_set(&p, &doc);
                fast.sort_unstable();
                assert_eq!(fast, answer_set_naive(&p, &doc), "seed {seed} {q}");
            }
        }
    }
}
