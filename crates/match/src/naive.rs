//! Brute-force embedding enumeration — the reference evaluator.
//!
//! Enumerates every embedding by backtracking over pattern nodes in
//! pre-order. Exponential in the worst case; exists to cross-validate
//! [`crate::embed`] in tests and to serve as the baseline in the ablation
//! benches.

use tpq_base::FxHashSet;
use tpq_data::{DataNodeId, DocIndex, Document};
use tpq_pattern::{EdgeKind, NodeId, TreePattern};

/// The answer set of `pattern` on `doc`, by exhaustive enumeration.
pub fn answer_set_naive(pattern: &TreePattern, doc: &Document) -> Vec<DataNodeId> {
    let mut answers: FxHashSet<DataNodeId> = FxHashSet::default();
    enumerate(pattern, doc, &mut |binding| {
        // Every node is bound when `visit` fires; an unbound output would
        // mean a corrupted traversal, so skip it rather than panic.
        if let Some(out) = binding[pattern.output().index()] {
            answers.insert(out);
        }
    });
    let mut out: Vec<DataNodeId> = answers.into_iter().collect();
    out.sort_unstable();
    out
}

/// The number of embeddings of `pattern` into `doc`, by exhaustive
/// enumeration.
pub fn count_embeddings_naive(pattern: &TreePattern, doc: &Document) -> u64 {
    let mut count = 0u64;
    enumerate(pattern, doc, &mut |_| count += 1);
    count
}

fn enumerate<F: FnMut(&[Option<DataNodeId>])>(
    pattern: &TreePattern,
    doc: &Document,
    visit: &mut F,
) {
    let index = DocIndex::build(doc);
    let order: Vec<NodeId> = pattern.pre_order();
    let mut binding: Vec<Option<DataNodeId>> = vec![None; pattern.arena_len()];
    fn rec<F: FnMut(&[Option<DataNodeId>])>(
        pattern: &TreePattern,
        doc: &Document,
        index: &DocIndex,
        order: &[NodeId],
        i: usize,
        binding: &mut Vec<Option<DataNodeId>>,
        visit: &mut F,
    ) {
        if i == order.len() {
            visit(binding);
            return;
        }
        let v = order[i];
        let node = pattern.node(v);
        // Pre-order binds parents before children; if that invariant were
        // ever broken, produce no embeddings instead of panicking.
        let parent_img = match node.parent {
            None => None,
            Some(p) => match binding[p.index()] {
                Some(img) => Some(img),
                None => return,
            },
        };
        for u in doc.ids() {
            if !doc.node(u).types.is_superset(&node.types)
                || !tpq_pattern::condition::satisfied_by(&node.conditions, &doc.node(u).attrs)
            {
                continue;
            }
            if let Some(pu) = parent_img {
                let ok = match node.edge {
                    EdgeKind::Child => index.is_parent(pu, u),
                    EdgeKind::Descendant => index.is_proper_ancestor(pu, u),
                };
                if !ok {
                    continue;
                }
            }
            binding[v.index()] = Some(u);
            rec(pattern, doc, index, order, i + 1, binding, visit);
            binding[v.index()] = None;
        }
    }
    rec(pattern, doc, &index, &order, 0, &mut binding, visit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::{answer_set, count_embeddings};
    use tpq_base::TypeInterner;
    use tpq_data::{generate_document, parse_xml, DocumentSpec};
    use tpq_pattern::parse_pattern;

    #[test]
    fn agrees_with_fast_evaluator_on_fixed_cases() {
        let mut tys = TypeInterner::new();
        let doc = parse_xml("<r><a><b/><b><c/></b></a><a><c/></a><b><a><b/></a></b></r>", &mut tys)
            .unwrap();
        for q in
            ["a*", "a*/b", "a*//b", "a//b*", "b*//c", "a*[/b][/b/c]", "r*//a//b", "a*[//c]", "x*"]
        {
            let p = parse_pattern(q, &mut tys).unwrap();
            let mut fast = answer_set(&p, &doc);
            fast.sort_unstable();
            assert_eq!(fast, answer_set_naive(&p, &doc), "{q} answers");
            assert_eq!(count_embeddings(&p, &doc), count_embeddings_naive(&p, &doc), "{q} counts");
        }
    }

    #[test]
    fn agrees_on_random_documents() {
        let mut tys = TypeInterner::new();
        for i in 0..8u32 {
            tys.intern(&format!("t{i}"));
        }
        for seed in 0..6u64 {
            let doc = generate_document(&DocumentSpec {
                nodes: 30,
                num_types: 4,
                max_fanout: 3,
                extra_type_prob: 0.2,
                seed,
            });
            for q in ["t0*//t1", "t1*[/t2][/t3]", "t0*[//t1//t2]", "t2*/t2"] {
                let p = parse_pattern(q, &mut tys).unwrap();
                let mut fast = answer_set(&p, &doc);
                fast.sort_unstable();
                assert_eq!(fast, answer_set_naive(&p, &doc), "seed {seed} {q}");
            }
        }
    }
}
