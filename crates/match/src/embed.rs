//! The production evaluator: candidate pruning + feasibility.
//!
//! Phase 1 (bottom-up): for each pattern node `v`, compute `cand(v)` — the
//! data nodes `u` such that the subtree of `v` embeds with `v ↦ u`. The
//! computation mirrors the images pruning of the minimization algorithms:
//! pattern subtrees are independent, so `u ∈ cand(v)` iff `u` carries
//! `v`'s types and every pattern child has a structurally compatible
//! candidate.
//!
//! Phase 2 (top-down): intersect with reachability from the root to get
//! `feasible(v)` — the data nodes that participate in at least one *full*
//! embedding. The answer set is `feasible(output)`.

use tpq_base::{failpoint, FxHashSet, Guard, Result};
use tpq_data::{DataNodeId, DocIndex, Document};
use tpq_pattern::{EdgeKind, NodeId, TreePattern};

/// Per-pattern-child acceleration structure for the bottom-up pass: does
/// a candidate of the child sit correctly below a given parent image?
///
/// * c-edge: the set of parents of the child's candidates (O(1) probe);
/// * d-edge: the child's candidates are pre-order sorted, so "some
///   candidate inside `u`'s subtree" ⟺ the minimum post rank among
///   candidates with `pre > pre(u)` is `< post(u)` — a binary search plus
///   a suffix-minimum lookup.
enum ChildCheck {
    /// Tiny candidate lists: a plain scan beats building any structure.
    Linear {
        edge: EdgeKind,
        cand: Vec<DataNodeId>,
    },
    Child {
        parents: FxHashSet<DataNodeId>,
    },
    Descendant {
        pres: Vec<u32>,
        suffix_min_post: Vec<u32>,
    },
}

/// Below this length, linear scans win over hash/binary-search setups.
const SMALL_LIST: usize = 16;

impl ChildCheck {
    fn build(edge: EdgeKind, cand: &[DataNodeId], doc: &Document, index: &DocIndex) -> Self {
        if cand.len() <= SMALL_LIST {
            return ChildCheck::Linear { edge, cand: cand.to_vec() };
        }
        match edge {
            EdgeKind::Child => ChildCheck::Child {
                parents: cand.iter().filter_map(|&u2| doc.node(u2).parent).collect(),
            },
            EdgeKind::Descendant => {
                debug_assert!(cand.windows(2).all(|w| index.pre(w[0]) < index.pre(w[1])));
                let pres: Vec<u32> = cand.iter().map(|&u2| index.pre(u2)).collect();
                let mut suffix_min_post = vec![u32::MAX; cand.len() + 1];
                for i in (0..cand.len()).rev() {
                    suffix_min_post[i] = suffix_min_post[i + 1].min(index.post(cand[i]));
                }
                ChildCheck::Descendant { pres, suffix_min_post }
            }
        }
    }

    fn has_image_below(&self, u: DataNodeId, index: &DocIndex) -> bool {
        match self {
            ChildCheck::Linear { edge, cand } => cand.iter().any(|&u2| match edge {
                EdgeKind::Child => index.is_parent(u, u2),
                EdgeKind::Descendant => index.is_proper_ancestor(u, u2),
            }),
            ChildCheck::Child { parents } => parents.contains(&u),
            ChildCheck::Descendant { pres, suffix_min_post } => {
                let from = pres.partition_point(|&p| p <= index.pre(u));
                suffix_min_post[from] < index.post(u)
            }
        }
    }
}

/// Acceleration structure for the top-down pass: does a feasible parent
/// image sit correctly above a given child candidate?
///
/// * c-edge: probe the feasible set with the candidate's parent;
/// * d-edge: among feasible images with `pre < pre(u2)` (a prefix of the
///   pre-sorted list), an ancestor exists iff the maximum post rank in
///   that prefix is `> post(u2)`.
enum ParentCheck {
    Linear { feasible: Vec<DataNodeId> },
    Indexed { set: FxHashSet<DataNodeId>, pres: Vec<u32>, prefix_max_post: Vec<u32> },
}

impl ParentCheck {
    fn build(feasible: &[DataNodeId], index: &DocIndex) -> Self {
        if feasible.len() <= SMALL_LIST {
            return ParentCheck::Linear { feasible: feasible.to_vec() };
        }
        debug_assert!(feasible.windows(2).all(|w| index.pre(w[0]) < index.pre(w[1])));
        let pres: Vec<u32> = feasible.iter().map(|&u| index.pre(u)).collect();
        let mut prefix_max_post = vec![0u32; feasible.len() + 1];
        for (i, &u) in feasible.iter().enumerate() {
            prefix_max_post[i + 1] = prefix_max_post[i].max(index.post(u).saturating_add(1));
        }
        ParentCheck::Indexed { set: feasible.iter().copied().collect(), pres, prefix_max_post }
    }

    fn has_image_above(
        &self,
        u2: DataNodeId,
        edge: EdgeKind,
        doc: &Document,
        index: &DocIndex,
    ) -> bool {
        match self {
            ParentCheck::Linear { feasible } => feasible.iter().any(|&u| match edge {
                EdgeKind::Child => index.is_parent(u, u2),
                EdgeKind::Descendant => index.is_proper_ancestor(u, u2),
            }),
            ParentCheck::Indexed { set, pres, prefix_max_post } => match edge {
                EdgeKind::Child => doc.node(u2).parent.is_some_and(|p| set.contains(&p)),
                EdgeKind::Descendant => {
                    let upto = pres.partition_point(|&p| p < index.pre(u2));
                    // prefix_max_post stores max(post)+1 (0 = empty prefix):
                    // an ancestor exists iff max(post) > post(u2).
                    prefix_max_post[upto] > index.post(u2) + 1
                }
            },
        }
    }
}

/// A prepared matcher for one `(pattern, document)` pair. Build once with
/// [`Matcher::new`], then query candidates, feasibility, answers and
/// counts without recomputation.
pub struct Matcher<'a> {
    pattern: &'a TreePattern,
    doc: &'a Document,
    index: DocIndex,
    /// `cand[v]`: subtree-embedding candidates, pre-order sorted.
    cand: Vec<Vec<DataNodeId>>,
    /// `feasible[v]`: candidates reachable in a full embedding.
    feasible: Vec<Vec<DataNodeId>>,
}

impl<'a> Matcher<'a> {
    /// Build candidate and feasibility tables for `pattern` on `doc`.
    pub fn new(pattern: &'a TreePattern, doc: &'a Document) -> Self {
        Self::new_guarded(pattern, doc, &Guard::unlimited())
            .expect("unlimited guard cannot trip and no failpoint is armed")
    }

    /// [`Matcher::new`] under a [`Guard`]: the bottom-up candidate pass
    /// spends one step per candidate examined and the top-down pass one
    /// per feasibility probe, so a deadline or budget trips mid-build on
    /// large documents. Passes the `match.build` failpoint once on entry.
    pub fn new_guarded(pattern: &'a TreePattern, doc: &'a Document, guard: &Guard) -> Result<Self> {
        failpoint::hit("match.build")?;
        let _span = tpq_obs::span!("match.build");
        let index = {
            let _s = tpq_obs::span!("match.index");
            DocIndex::build(doc)
        };
        let cand_span = tpq_obs::span!("match.candidates");
        let mut cand: Vec<Vec<DataNodeId>> = vec![Vec::new(); pattern.arena_len()];
        // Bottom-up candidates.
        for v in pattern.post_order() {
            let node = pattern.node(v);
            let mut list: Vec<DataNodeId> = {
                // Seed from the rarest type's list, then check the full
                // type set and the value conditions.
                let seed = node
                    .types
                    .iter()
                    .min_by_key(|t| index.nodes_of_type(*t).len())
                    .expect("non-empty type set");
                index
                    .nodes_of_type(seed)
                    .iter()
                    .copied()
                    .filter(|&u| {
                        doc.node(u).types.is_superset(&node.types)
                            && tpq_pattern::condition::satisfied_by(
                                &node.conditions,
                                &doc.node(u).attrs,
                            )
                    })
                    .collect()
            };
            guard.spend(list.len() as u64 + 1)?;
            let children: Vec<NodeId> =
                node.children.iter().copied().filter(|&c| pattern.is_alive(c)).collect();
            if !children.is_empty() {
                // Structural-join style checks: O(1)/O(log k) per
                // candidate instead of scanning child candidate lists.
                let checks: Vec<ChildCheck> = children
                    .iter()
                    .map(|&w| {
                        ChildCheck::build(pattern.node(w).edge, &cand[w.index()], doc, &index)
                    })
                    .collect();
                list.retain(|&u| checks.iter().all(|c| c.has_image_below(u, &index)));
            }
            cand[v.index()] = list;
        }
        if tpq_obs::enabled() {
            let total: usize = cand.iter().map(Vec::len).sum();
            tpq_obs::incr("match.candidates", total as u64);
        }
        drop(cand_span);
        // Top-down feasibility.
        let _join_span = tpq_obs::span!("match.join");
        let mut feasible: Vec<Vec<DataNodeId>> = vec![Vec::new(); pattern.arena_len()];
        feasible[pattern.root().index()] = cand[pattern.root().index()].clone();
        for v in pattern.pre_order() {
            let parents = &feasible[v.index()];
            let parent_check = ParentCheck::build(parents, &index);
            let mut results: Vec<(NodeId, Vec<DataNodeId>)> = Vec::new();
            for &w in &pattern.node(v).children {
                if !pattern.is_alive(w) {
                    continue;
                }
                guard.spend(cand[w.index()].len() as u64 + 1)?;
                let edge = pattern.node(w).edge;
                let filtered: Vec<DataNodeId> = cand[w.index()]
                    .iter()
                    .copied()
                    .filter(|&u2| parent_check.has_image_above(u2, edge, doc, &index))
                    .collect();
                results.push((w, filtered));
            }
            for (w, filtered) in results {
                feasible[w.index()] = filtered;
            }
        }
        Ok(Matcher { pattern, doc, index, cand, feasible })
    }

    /// Does at least one embedding exist?
    pub fn matches(&self) -> bool {
        !self.cand[self.pattern.root().index()].is_empty()
    }

    /// Data nodes the output node binds to across all embeddings.
    pub fn answers(&self) -> Vec<DataNodeId> {
        self.feasible[self.pattern.output().index()].clone()
    }

    /// Subtree-embedding candidates of a pattern node (phase 1 result).
    pub fn candidates(&self, v: NodeId) -> &[DataNodeId] {
        &self.cand[v.index()]
    }

    /// Total number of embeddings (may be exponential in value, computed in
    /// polynomial time by dynamic programming; saturates at `u64::MAX`).
    pub fn count_embeddings(&self) -> u64 {
        let root = self.pattern.root();
        self.cand[root.index()]
            .iter()
            .map(|&u| self.count_at(root, u))
            .fold(0u64, u64::saturating_add)
    }

    fn count_at(&self, v: NodeId, u: DataNodeId) -> u64 {
        let mut total = 1u64;
        for &w in &self.pattern.node(v).children {
            if !self.pattern.is_alive(w) {
                continue;
            }
            let edge = self.pattern.node(w).edge;
            let sub: u64 = self.cand[w.index()]
                .iter()
                .filter(|&&u2| match edge {
                    EdgeKind::Child => self.index.is_parent(u, u2),
                    EdgeKind::Descendant => self.index.is_proper_ancestor(u, u2),
                })
                .map(|&u2| self.count_at(w, u2))
                .fold(0u64, u64::saturating_add);
            total = total.saturating_mul(sub);
        }
        total
    }

    /// The document this matcher was built for.
    pub fn document(&self) -> &Document {
        self.doc
    }

    /// Enumerate up to `limit` full embeddings as pattern-node →
    /// data-node maps. Enumeration walks the (already pruned) candidate
    /// sets top-down, so each partial assignment extends to at least one
    /// embedding — no dead-end backtracking.
    pub fn embeddings(&self, limit: usize) -> Vec<tpq_base::FxHashMap<NodeId, DataNodeId>> {
        let _span = tpq_obs::span!("match.enumerate");
        let mut out = Vec::new();
        if limit == 0 || !self.matches() {
            return out;
        }
        let order = self.pattern.pre_order();
        let mut binding: tpq_base::FxHashMap<NodeId, DataNodeId> = tpq_base::FxHashMap::default();
        self.enumerate(&order, 0, &mut binding, limit, &mut out);
        tpq_obs::incr("match.embeddings", out.len() as u64);
        out
    }

    fn enumerate(
        &self,
        order: &[NodeId],
        i: usize,
        binding: &mut tpq_base::FxHashMap<NodeId, DataNodeId>,
        limit: usize,
        out: &mut Vec<tpq_base::FxHashMap<NodeId, DataNodeId>>,
    ) {
        if out.len() == limit {
            return;
        }
        if i == order.len() {
            out.push(binding.clone());
            return;
        }
        let v = order[i];
        let parent_img = self.pattern.node(v).parent.map(|p| binding[&p]);
        let edge = self.pattern.node(v).edge;
        for &u in &self.cand[v.index()] {
            if let Some(pu) = parent_img {
                let ok = match edge {
                    EdgeKind::Child => self.index.is_parent(pu, u),
                    EdgeKind::Descendant => self.index.is_proper_ancestor(pu, u),
                };
                if !ok {
                    continue;
                }
            }
            binding.insert(v, u);
            self.enumerate(order, i + 1, binding, limit, out);
            binding.remove(&v);
            if out.len() == limit {
                return;
            }
        }
    }
}

/// One-shot: does `pattern` match anywhere in `doc`?
pub fn matches_anywhere(pattern: &TreePattern, doc: &Document) -> bool {
    Matcher::new(pattern, doc).matches()
}

/// One-shot: the answer set of `pattern` on `doc` (unsorted, duplicate
/// free).
pub fn answer_set(pattern: &TreePattern, doc: &Document) -> Vec<DataNodeId> {
    Matcher::new(pattern, doc).answers()
}

/// Answer sets per tree of a forest, as `(tree_index, node)` pairs.
pub fn answer_set_forest(
    pattern: &TreePattern,
    forest: &tpq_data::Forest,
) -> Vec<(usize, DataNodeId)> {
    forest
        .trees
        .iter()
        .enumerate()
        .flat_map(|(i, doc)| answer_set(pattern, doc).into_iter().map(move |n| (i, n)))
        .collect()
}

/// One-shot: number of embeddings of `pattern` into `doc`.
pub fn count_embeddings(pattern: &TreePattern, doc: &Document) -> u64 {
    Matcher::new(pattern, doc).count_embeddings()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpq_base::TypeInterner;
    use tpq_data::parse_xml;
    use tpq_pattern::parse_pattern;

    fn setup(q: &str, xml: &str) -> (TreePattern, Document, TypeInterner) {
        let mut tys = TypeInterner::new();
        let p = parse_pattern(q, &mut tys).unwrap();
        let d = parse_xml(xml, &mut tys).unwrap();
        (p, d, tys)
    }

    #[test]
    fn single_node_pattern_matches_every_node_of_type() {
        let (p, d, _) = setup("b*", "<a><b/><c><b/></c></a>");
        let mut answers = answer_set(&p, &d);
        answers.sort_unstable();
        assert_eq!(answers.len(), 2);
        assert!(matches_anywhere(&p, &d));
    }

    #[test]
    fn c_edge_requires_direct_child() {
        let (p, d, _) = setup("a/b*", "<a><x><b/></x></a>");
        assert!(!matches_anywhere(&p, &d));
        let (p2, d2, _) = setup("a//b*", "<a><x><b/></x></a>");
        assert_eq!(answer_set(&p2, &d2).len(), 1);
    }

    #[test]
    fn answers_respect_ancestor_constraints() {
        // Only b nodes under an a count, not the stray one.
        let (p, d, _) = setup("a//b*", "<r><a><b/></a><b/></r>");
        let answers = answer_set(&p, &d);
        assert_eq!(answers.len(), 1);
        // The answer is the b inside a (data node 2 in document order).
        assert_eq!(d.node(answers[0]).parent.map(|p| p.index()), Some(1));
    }

    #[test]
    fn multi_branch_pattern() {
        let (p, d, _) = setup(
            "Dept*[//Manager][//DBProject]",
            "<Org>\
               <Dept><Manager/><DBProject/></Dept>\
               <Dept><Manager/></Dept>\
               <Dept><DBProject/></Dept>\
             </Org>",
        );
        assert_eq!(answer_set(&p, &d).len(), 1, "only the first Dept has both");
    }

    #[test]
    fn multi_typed_pattern_node_needs_all_types() {
        let mut tys = TypeInterner::new();
        let mut p = parse_pattern("Org*/Employee", &mut tys).unwrap();
        let person = tys.intern("Person");
        let emp_node = p.node(p.root()).children[0];
        p.node_mut(emp_node).types.insert(person);
        let d = parse_xml(r#"<Org><Employee/><Employee also="Person"/></Org>"#, &mut tys).unwrap();
        let m = Matcher::new(&p, &d);
        assert_eq!(m.candidates(emp_node).len(), 1, "only the multi-typed node");
        assert!(m.matches());
    }

    #[test]
    fn count_embeddings_product_shape() {
        // a with two b-children: pattern a*[//b][//b] has 2×2 embeddings
        // per a... both b branches range independently.
        let (p, d, _) = setup("a*[//b][//b]", "<a><b/><b/></a>");
        assert_eq!(count_embeddings(&p, &d), 4);
        let (p2, d2, _) = setup("a*//b", "<a><b/><b/></a>");
        assert_eq!(count_embeddings(&p2, &d2), 2);
    }

    #[test]
    fn descendant_is_proper_on_data_too() {
        let (p, d, _) = setup("a//a*", "<a/>");
        assert!(!matches_anywhere(&p, &d));
        let (p2, d2, _) = setup("a//a*", "<a><a/></a>");
        assert_eq!(answer_set(&p2, &d2).len(), 1);
    }

    #[test]
    fn pattern_root_floats_anywhere() {
        let (p, d, _) = setup("b*/c", "<a><x><b><c/></b></x></a>");
        assert_eq!(answer_set(&p, &d).len(), 1);
    }

    #[test]
    fn no_match_empty_answers() {
        let (p, d, _) = setup("z*", "<a><b/></a>");
        assert!(!matches_anywhere(&p, &d));
        assert!(answer_set(&p, &d).is_empty());
        assert_eq!(count_embeddings(&p, &d), 0);
    }

    #[test]
    fn forest_answers_tag_tree_index() {
        let mut tys = TypeInterner::new();
        let p = parse_pattern("b*", &mut tys).unwrap();
        let d1 = parse_xml("<a><b/></a>", &mut tys).unwrap();
        let d2 = parse_xml("<b/>", &mut tys).unwrap();
        let forest = tpq_data::Forest { trees: vec![d1, d2] };
        let answers = answer_set_forest(&p, &forest);
        assert_eq!(answers.len(), 2);
        assert_eq!(answers[0].0, 0);
        assert_eq!(answers[1].0, 1);
    }

    #[test]
    fn embeddings_enumeration_matches_counts() {
        let (p, d, _) = setup("a*[//b][//b]", "<a><b/><b/><b/></a>");
        let m = Matcher::new(&p, &d);
        assert_eq!(m.count_embeddings(), 9);
        let all = m.embeddings(usize::MAX);
        assert_eq!(all.len(), 9);
        // Every returned map is a valid embedding.
        for emb in &all {
            for v in p.alive_ids() {
                let u = emb[&v];
                assert!(d.node(u).types.is_superset(&p.node(v).types));
                if let Some(parent) = p.node(v).parent {
                    let pu = emb[&parent];
                    match p.node(v).edge {
                        tpq_pattern::EdgeKind::Child => {
                            assert_eq!(d.node(u).parent, Some(pu))
                        }
                        tpq_pattern::EdgeKind::Descendant => {
                            assert!(d.is_proper_ancestor(pu, u))
                        }
                    }
                }
            }
        }
        // The limit is honored.
        assert_eq!(m.embeddings(4).len(), 4);
        assert!(m.embeddings(0).is_empty());
    }

    #[test]
    fn embeddings_agree_with_naive_count_on_random_docs() {
        let mut tys = TypeInterner::new();
        for i in 0..4 {
            tys.intern(&format!("t{i}"));
        }
        let doc = tpq_data::generate_document(&tpq_data::DocumentSpec {
            nodes: 30,
            num_types: 4,
            max_fanout: 3,
            extra_type_prob: 0.1,
            seed: 7,
        });
        for q in ["t0*[//t1]//t2", "t1*[/t2][/t3]", "t0*//t0"] {
            let p = parse_pattern(q, &mut tys).unwrap();
            let m = Matcher::new(&p, &doc);
            assert_eq!(
                m.embeddings(usize::MAX).len() as u64,
                crate::naive::count_embeddings_naive(&p, &doc),
                "{q}"
            );
        }
    }

    #[test]
    fn equivalent_patterns_same_answers() {
        // Figure 2(h) ≡ 2(i) — check on an actual database.
        let (h, d, mut tys) = setup(
            "OrgUnit*[/Dept/Researcher//DBProject]//Dept//DBProject",
            "<Root>\
               <OrgUnit><Dept><Researcher><X><DBProject/></X></Researcher></Dept></OrgUnit>\
               <OrgUnit><Dept><Researcher/></Dept><Dept><DBProject/></Dept></OrgUnit>\
             </Root>",
        );
        let i = parse_pattern("OrgUnit*/Dept/Researcher//DBProject", &mut tys).unwrap();
        assert!(crate::same_answers(&h, &i, &d));
        // First OrgUnit matches, second does not (its Researcher manages
        // nothing).
        assert_eq!(answer_set(&h, &d).len(), 1);
    }
}
