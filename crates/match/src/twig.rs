//! Holistic twig-join evaluation over the pre/post interval index.
//!
//! TwigStack-style matching (see "A Survey of XML Tree Patterns" in
//! PAPERS.md): every alive pattern node gets a *stream* — the pre-order
//! type-index list from [`DocIndex`], lazily filtered by type set and value
//! conditions — and the streams are merged into one document-order sweep.
//! The sweep maintains a single *spine* of frames (one frame per live
//! (pattern node, data node) pair whose data node is an ancestor-or-self of
//! the sweep position) plus, per pattern node, a stack of spine positions.
//! Because frames pop in post-order, a frame knows by pop time whether
//! every pattern child found a correctly-related match below it; satisfied
//! frames propagate one bit into their parent's frames.
//!
//! Memory stays O(document depth × pattern size) during the sweep — no
//! per-pattern-node candidate vectors. Only the nodes on the root→output
//! path record their satisfied matches, and a final top-down pass filters
//! those path lists to the answer set, which is exactly
//! [`embed::Matcher::answers`](crate::embed::Matcher::answers) (same
//! contents, same pre-order).
//!
//! Two soundness notes, mirrored by `debug_assert`s below:
//!
//! * **Push pruning.** A stream hit `(v, u)` is discarded unless `v`'s
//!   pattern parent currently holds a frame in the required relation to
//!   `u` (its parent for a c-edge, any proper ancestor for a d-edge). By
//!   induction over pattern ancestors this keeps every data node that
//!   participates in a full embedding, so the recorded path lists sit
//!   between the true feasible sets and the unpruned candidate sets — the
//!   final path filter then yields exactly the feasible output set.
//! * **Propagation early-stop.** Satisfied-child bits are set on parent
//!   frames from the deepest up, stopping at the first frame that already
//!   has the bit: set-regions of a stack are always closed toward the
//!   stack bottom, so everything below the stop point is already marked.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tpq_base::{failpoint, FxHashSet, Guard, Result};
use tpq_data::{DataNodeId, DocIndex, Document};
use tpq_pattern::{condition, EdgeKind, NodeId, TreePattern};

/// One-shot: the answer set of `pattern` on `doc` via the twig join.
/// Pre-order sorted and duplicate-free, byte-identical to
/// [`crate::answer_set`].
pub fn answer_set_twig(pattern: &TreePattern, doc: &Document) -> Vec<DataNodeId> {
    answer_set_twig_guarded(pattern, doc, &Guard::unlimited())
        .expect("unlimited guard cannot trip and no failpoint is armed")
}

/// [`answer_set_twig`] under a [`Guard`]: one step is spent per stream
/// element examined, per merge event, and per satisfied-bit propagation,
/// so budgets and deadlines trip mid-sweep on large documents. Passes the
/// `match.build` failpoint once on entry.
pub fn answer_set_twig_guarded(
    pattern: &TreePattern,
    doc: &Document,
    guard: &Guard,
) -> Result<Vec<DataNodeId>> {
    failpoint::hit("match.build")?;
    let index = {
        let _s = tpq_obs::span!("twig.index");
        DocIndex::build(doc)
    };
    answer_set_twig_indexed(pattern, doc, &index, guard)
}

/// The twig join over a caller-provided [`DocIndex`] — the entry point for
/// matching many patterns against one indexed document without rebuilding
/// the index per query.
pub fn answer_set_twig_indexed(
    pattern: &TreePattern,
    doc: &Document,
    index: &DocIndex,
    guard: &Guard,
) -> Result<Vec<DataNodeId>> {
    let _span = tpq_obs::span!("twig.match");
    let shape = PatternShape::new(pattern);
    let mut sweep = Sweep::new(pattern, doc, index, &shape);
    sweep.run(guard)?;
    sweep.answers(guard)
}

/// Immutable per-pattern tables the sweep indexes by arena position.
struct PatternShape {
    /// Alive children per node (arena-indexed; dead slots empty).
    alive_children: Vec<Vec<NodeId>>,
    /// Position of each node within its parent's alive-children list.
    slot: Vec<u32>,
    /// The root→output chain.
    path: Vec<NodeId>,
    /// Arena-indexed position on `path`, if any.
    path_pos: Vec<Option<usize>>,
}

impl PatternShape {
    fn new(pattern: &TreePattern) -> Self {
        let arena = pattern.arena_len();
        let mut alive_children: Vec<Vec<NodeId>> = vec![Vec::new(); arena];
        let mut slot = vec![0u32; arena];
        for v in pattern.alive_ids() {
            let kids: Vec<NodeId> =
                pattern.node(v).children.iter().copied().filter(|&c| pattern.is_alive(c)).collect();
            for (i, &c) in kids.iter().enumerate() {
                slot[c.index()] = i as u32;
            }
            alive_children[v.index()] = kids;
        }
        let mut path = vec![pattern.output()];
        while let Some(p) = pattern.node(*path.last().expect("non-empty")).parent {
            path.push(p);
        }
        path.reverse();
        debug_assert_eq!(path[0], pattern.root(), "output chain must reach the root");
        let mut path_pos: Vec<Option<usize>> = vec![None; arena];
        for (i, &v) in path.iter().enumerate() {
            path_pos[v.index()] = Some(i);
        }
        PatternShape { alive_children, slot, path, path_pos }
    }
}

/// Which-children-matched bits of one frame. Patterns wider than 64
/// children spill to the heap; everything else stays inline.
enum Mask {
    Small(u64),
    Large(Box<[u64]>),
}

impl Mask {
    fn new(children: usize) -> Self {
        if children <= 64 {
            Mask::Small(0)
        } else {
            Mask::Large(vec![0u64; children.div_ceil(64)].into_boxed_slice())
        }
    }

    /// Set bit `i`; returns whether it was newly set.
    fn set(&mut self, i: u32) -> bool {
        match self {
            Mask::Small(bits) => {
                let m = 1u64 << i;
                let newly = *bits & m == 0;
                *bits |= m;
                newly
            }
            Mask::Large(words) => {
                let (w, m) = ((i / 64) as usize, 1u64 << (i % 64));
                let newly = words[w] & m == 0;
                words[w] |= m;
                newly
            }
        }
    }
}

/// A live (pattern node, data node) pair on the spine.
struct Frame {
    /// Arena index of the pattern node.
    v: u32,
    u: DataNodeId,
    /// Alive children whose subtree match is still missing.
    need: u32,
    seen: Mask,
}

/// One pattern node's candidate stream: the pre-order index list of its
/// rarest type, filtered lazily by full type set and value conditions.
struct Stream<'a> {
    v: NodeId,
    list: &'a [DataNodeId],
    pos: usize,
}

impl Stream<'_> {
    fn advance(
        &mut self,
        pattern: &TreePattern,
        doc: &Document,
        guard: &Guard,
    ) -> Result<Option<DataNodeId>> {
        let node = pattern.node(self.v);
        while self.pos < self.list.len() {
            let u = self.list[self.pos];
            self.pos += 1;
            guard.spend(1)?;
            if doc.node(u).types.is_superset(&node.types)
                && condition::satisfied_by(&node.conditions, &doc.node(u).attrs)
            {
                return Ok(Some(u));
            }
        }
        Ok(None)
    }
}

struct Sweep<'a> {
    pattern: &'a TreePattern,
    doc: &'a Document,
    index: &'a DocIndex,
    shape: &'a PatternShape,
    streams: Vec<Stream<'a>>,
    /// Push-ordered live frames; always a nesting chain (each frame's data
    /// node is an ancestor-or-self of every data node above it).
    spine: Vec<Frame>,
    /// Per pattern node (arena-indexed): spine positions of its frames,
    /// bottom = highest ancestor.
    stacks: Vec<Vec<u32>>,
    /// Satisfied matches of the root→output path nodes, in pop order.
    path_cand: Vec<Vec<DataNodeId>>,
}

impl<'a> Sweep<'a> {
    fn new(
        pattern: &'a TreePattern,
        doc: &'a Document,
        index: &'a DocIndex,
        shape: &'a PatternShape,
    ) -> Self {
        let streams: Vec<Stream<'a>> = pattern
            .alive_ids()
            .map(|v| {
                let seed = pattern
                    .node(v)
                    .types
                    .iter()
                    .min_by_key(|t| index.nodes_of_type(*t).len())
                    .expect("non-empty type set");
                Stream { v, list: index.nodes_of_type(seed), pos: 0 }
            })
            .collect();
        Sweep {
            pattern,
            doc,
            index,
            shape,
            streams,
            spine: Vec::new(),
            stacks: vec![Vec::new(); pattern.arena_len()],
            path_cand: vec![Vec::new(); shape.path.len()],
        }
    }

    /// Merge the streams in document order, maintaining the spine.
    fn run(&mut self, guard: &Guard) -> Result<()> {
        let _span = tpq_obs::span!("twig.sweep");
        // Min-heap of (pre rank, stream index, data node).
        let mut heap: BinaryHeap<Reverse<(u32, u32, DataNodeId)>> = BinaryHeap::new();
        for si in 0..self.streams.len() {
            if let Some(u) = self.streams[si].advance(self.pattern, self.doc, guard)? {
                heap.push(Reverse((self.index.pre(u), si as u32, u)));
            }
        }
        while let Some(Reverse((_, si, u))) = heap.pop() {
            guard.spend(1)?;
            let v = self.streams[si as usize].v;
            // Retire frames that are not ancestors-or-self of the sweep
            // position; their subtrees are complete.
            while let Some(top) = self.spine.last() {
                if top.u == u || self.index.is_proper_ancestor(top.u, u) {
                    break;
                }
                self.pop_top(guard)?;
            }
            if self.connects_upward(v, u) {
                let children = self.shape.alive_children[v.index()].len();
                if children == 0 {
                    // Leaf fast path: the frame would be born satisfied, so
                    // complete it now instead of touching the spine. The
                    // parent frames it targets are identical either way —
                    // anything pushed later has a larger pre rank and
                    // cannot be an ancestor.
                    self.complete(v.index() as u32, u, guard)?;
                } else {
                    self.stacks[v.index()].push(self.spine.len() as u32);
                    self.spine.push(Frame {
                        v: v.index() as u32,
                        u,
                        need: children as u32,
                        seen: Mask::new(children),
                    });
                }
            }
            if let Some(nu) = self.streams[si as usize].advance(self.pattern, self.doc, guard)? {
                heap.push(Reverse((self.index.pre(nu), si, nu)));
            }
        }
        while !self.spine.is_empty() {
            self.pop_top(guard)?;
        }
        Ok(())
    }

    /// Can a frame for `(v, u)` still take part in a full embedding? True
    /// iff `v` is the pattern root or its parent's stack holds a frame in
    /// the required relation to `u`.
    fn connects_upward(&self, v: NodeId, u: DataNodeId) -> bool {
        let Some(parent_v) = self.pattern.node(v).parent else {
            return true;
        };
        let stack = &self.stacks[parent_v.index()];
        match self.pattern.node(v).edge {
            EdgeKind::Child => {
                let Some(pu) = self.doc.node(u).parent else {
                    return false;
                };
                // All stacked frames are ancestors-or-self of `u`, so the
                // deepest non-self frame is the only one that can be the
                // parent.
                for &fi in stack.iter().rev() {
                    let f = &self.spine[fi as usize];
                    if f.u == u {
                        continue;
                    }
                    return f.u == pu;
                }
                false
            }
            EdgeKind::Descendant => {
                // A proper ancestor exists iff the bottom frame is not `u`
                // itself (a self frame can only sit alone at the top).
                stack.first().is_some_and(|&fi| self.spine[fi as usize].u != u)
            }
        }
    }

    fn pop_top(&mut self, guard: &Guard) -> Result<()> {
        let frame = self.spine.pop().expect("pop_top called on a non-empty spine");
        let popped = self.stacks[frame.v as usize].pop();
        debug_assert_eq!(popped, Some(self.spine.len() as u32), "stack/spine desync");
        if frame.need == 0 {
            self.complete(frame.v, frame.u, guard)?;
        }
        Ok(())
    }

    /// `(v, u)`'s subtree fully matched: record it if `v` is on the output
    /// path, and mark the satisfied-child bit on `v`'s parent frames.
    fn complete(&mut self, v: u32, u: DataNodeId, guard: &Guard) -> Result<()> {
        if let Some(pos) = self.shape.path_pos[v as usize] {
            self.path_cand[pos].push(u);
        }
        let vid = NodeId(v);
        let Some(parent_v) = self.pattern.node(vid).parent else {
            return Ok(());
        };
        let slot = self.shape.slot[vid.index()];
        let stack = &self.stacks[parent_v.index()];
        match self.pattern.node(vid).edge {
            EdgeKind::Child => {
                let Some(pu) = self.doc.node(u).parent else {
                    return Ok(());
                };
                for &fi in stack.iter().rev() {
                    let f = &mut self.spine[fi as usize];
                    if f.u == u {
                        continue;
                    }
                    if f.u == pu && f.seen.set(slot) {
                        f.need -= 1;
                    }
                    break;
                }
            }
            EdgeKind::Descendant => {
                for &fi in stack.iter().rev() {
                    let f = &mut self.spine[fi as usize];
                    if f.u == u {
                        continue;
                    }
                    debug_assert!(self.index.is_proper_ancestor(f.u, u));
                    if !f.seen.set(slot) {
                        break; // everything below is already marked
                    }
                    guard.spend(1)?;
                    f.need -= 1;
                }
            }
        }
        Ok(())
    }

    /// Filter the recorded path lists top-down into the answer set.
    fn answers(mut self, guard: &Guard) -> Result<Vec<DataNodeId>> {
        let _span = tpq_obs::span!("twig.paths");
        let index = self.index;
        let mut feasible = std::mem::take(&mut self.path_cand[0]);
        feasible.sort_unstable_by_key(|&u| index.pre(u));
        for i in 1..self.shape.path.len() {
            let v = self.shape.path[i];
            let edge = self.pattern.node(v).edge;
            let mut cands = std::mem::take(&mut self.path_cand[i]);
            cands.sort_unstable_by_key(|&u| index.pre(u));
            guard.spend(cands.len() as u64 + 1)?;
            feasible = match edge {
                EdgeKind::Child => {
                    let set: FxHashSet<DataNodeId> = feasible.into_iter().collect();
                    cands
                        .into_iter()
                        .filter(|&u| self.doc.node(u).parent.is_some_and(|p| set.contains(&p)))
                        .collect()
                }
                EdgeKind::Descendant => {
                    // Among feasible parents with pre < pre(u), an ancestor
                    // exists iff the max post in that prefix is > post(u).
                    let pres: Vec<u32> = feasible.iter().map(|&p| index.pre(p)).collect();
                    let mut prefix_max_post = vec![0u32; feasible.len() + 1];
                    for (j, &p) in feasible.iter().enumerate() {
                        prefix_max_post[j + 1] =
                            prefix_max_post[j].max(index.post(p).saturating_add(1));
                    }
                    cands
                        .into_iter()
                        .filter(|&u| {
                            let upto = pres.partition_point(|&p| p < index.pre(u));
                            // prefix_max_post stores max(post)+1 (0 = empty).
                            prefix_max_post[upto] > index.post(u) + 1
                        })
                        .collect()
                }
            };
        }
        if tpq_obs::enabled() {
            tpq_obs::incr("twig.answers", feasible.len() as u64);
        }
        Ok(feasible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{answer_set, answer_set_naive};
    use tpq_base::{Error, TypeInterner};
    use tpq_data::parse_xml;
    use tpq_pattern::parse_pattern;

    fn setup(q: &str, xml: &str) -> (TreePattern, Document, TypeInterner) {
        let mut tys = TypeInterner::new();
        let p = parse_pattern(q, &mut tys).unwrap();
        let d = parse_xml(xml, &mut tys).unwrap();
        (p, d, tys)
    }

    /// The twig answers must be byte-identical to the embed matcher's.
    fn check(q: &str, xml: &str) -> Vec<DataNodeId> {
        let (p, d, _) = setup(q, xml);
        let twig = answer_set_twig(&p, &d);
        assert_eq!(twig, answer_set(&p, &d), "{q} on {xml}: disagrees with embed");
        let mut sorted = twig.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, answer_set_naive(&p, &d), "{q} on {xml}: disagrees with naive");
        twig
    }

    #[test]
    fn single_node_pattern_matches_every_node_of_type() {
        assert_eq!(check("b*", "<a><b/><c><b/></c></a>").len(), 2);
    }

    #[test]
    fn c_edge_requires_direct_child() {
        assert!(check("a/b*", "<a><x><b/></x></a>").is_empty());
        assert_eq!(check("a//b*", "<a><x><b/></x></a>").len(), 1);
    }

    #[test]
    fn answers_respect_ancestor_constraints() {
        let answers = check("a//b*", "<r><a><b/></a><b/></r>");
        assert_eq!(answers.len(), 1);
    }

    #[test]
    fn multi_branch_pattern() {
        let answers = check(
            "Dept*[//Manager][//DBProject]",
            "<Org>\
               <Dept><Manager/><DBProject/></Dept>\
               <Dept><Manager/></Dept>\
               <Dept><DBProject/></Dept>\
             </Org>",
        );
        assert_eq!(answers.len(), 1, "only the first Dept has both");
    }

    #[test]
    fn output_below_branching_nodes() {
        // The output sits under a branch sibling; the path filter must
        // respect satisfaction of the off-path branch.
        assert_eq!(
            check(
                "Dept[//Manager]//Project*",
                "<Org>\
                   <Dept><Manager/><Project/></Dept>\
                   <Dept><Project/></Dept>\
                 </Org>",
            )
            .len(),
            1
        );
    }

    #[test]
    fn self_overlap_chains() {
        // a//a and deeper chains: the same data node serves several
        // pattern nodes at different stack depths.
        assert!(check("a//a*", "<a/>").is_empty());
        assert_eq!(check("a//a*", "<a><a/></a>").len(), 1);
        assert_eq!(check("a//a*", "<a><a><a/></a></a>").len(), 2);
        assert_eq!(check("a//a//a*", "<a><a><a><a/></a></a></a>").len(), 2);
        assert_eq!(check("a/a*", "<a><a><a/></a></a>").len(), 2);
        assert_eq!(check("a*//a", "<a><b><a/></b></a>").len(), 1);
    }

    #[test]
    fn deep_output_chain() {
        assert_eq!(check("a//b//c*", "<a><x><b><y><c/></y></b></x><c/></a>").len(), 1);
        assert_eq!(check("a/b/c*", "<a><b><c/></b><c/></a>").len(), 1);
    }

    #[test]
    fn pattern_root_floats_anywhere() {
        assert_eq!(check("b*/c", "<a><x><b><c/></b></x></a>").len(), 1);
    }

    #[test]
    fn multi_typed_pattern_node_needs_all_types() {
        let mut tys = TypeInterner::new();
        let mut p = parse_pattern("Org*/Employee", &mut tys).unwrap();
        let person = tys.intern("Person");
        let emp_node = p.node(p.root()).children[0];
        p.node_mut(emp_node).types.insert(person);
        let d = parse_xml(r#"<Org><Employee/><Employee also="Person"/></Org>"#, &mut tys).unwrap();
        assert_eq!(answer_set_twig(&p, &d), answer_set(&p, &d));
        assert_eq!(answer_set_twig(&p, &d).len(), 1);
    }

    #[test]
    fn value_conditions_filter_streams() {
        let mut tys = TypeInterner::new();
        let p = parse_pattern(r#"Book*{price<50}"#, &mut tys).unwrap();
        let d = parse_xml(r#"<Shop><Book price="95"/><Book price="12"/><Book/></Shop>"#, &mut tys)
            .unwrap();
        assert_eq!(answer_set_twig(&p, &d), answer_set(&p, &d));
        assert_eq!(answer_set_twig(&p, &d).len(), 1);
    }

    #[test]
    fn no_match_empty_answers() {
        assert!(check("z*", "<a><b/></a>").is_empty());
        assert!(check("a/z*", "<a><b/></a>").is_empty());
    }

    #[test]
    fn wide_documents_with_interleaved_siblings() {
        // Sibling subtrees force constant frame retirement mid-stream.
        let xml = "<r>\
            <a><b/><c/></a><a><c/></a><b/><a><b><c/></b></a>\
            <x><a><b/></a></x><c/>\
        </r>";
        check("a*[//b]", xml);
        check("a*[/b][/c]", xml);
        check("r[//c]//a//b*", xml);
        check("a//c*", xml);
    }

    #[test]
    fn guard_budget_trips_to_err_not_wrong_answers() {
        let (p, d, _) = setup("a//b*", "<a><b/><b/><b/><b/></a>");
        let guard = Guard::with_budget(3);
        match answer_set_twig_guarded(&p, &d, &guard) {
            Err(Error::Budget { .. }) => {}
            other => panic!("expected budget trip, got {other:?}"),
        }
    }

    #[test]
    fn unlimited_guard_passes_through() {
        let (p, d, _) = setup("a//b*", "<a><b/></a>");
        let answers = answer_set_twig_guarded(&p, &d, &Guard::unlimited()).unwrap();
        assert_eq!(answers.len(), 1);
    }

    #[test]
    fn indexed_entry_point_reuses_the_index() {
        let (p, d, mut tys) = setup("a//b*", "<a><b/><c><b/></c></a>");
        let index = DocIndex::build(&d);
        let p2 = parse_pattern("c/b*", &mut tys).unwrap();
        let g = Guard::unlimited();
        assert_eq!(answer_set_twig_indexed(&p, &d, &index, &g).unwrap().len(), 2);
        assert_eq!(answer_set_twig_indexed(&p2, &d, &index, &g).unwrap().len(), 1);
    }

    #[test]
    fn match_build_failpoint_injects() {
        let _fp = failpoint::arm_for_thread("match.build", failpoint::Action::Err, 1);
        let (p, d, _) = setup("a*", "<a/>");
        let err = answer_set_twig_guarded(&p, &d, &Guard::unlimited()).unwrap_err();
        assert_eq!(err, Error::Injected { point: "match.build".into() });
    }

    #[test]
    fn wide_pattern_spills_to_large_mask() {
        // More than 64 children on one pattern node exercises Mask::Large.
        let mut tys = TypeInterner::new();
        let n = 70;
        let mut q = String::from("r*");
        for i in 0..n {
            q.push_str(&format!("[//t{i}]"));
        }
        let p = parse_pattern(&q, &mut tys).unwrap();
        let mut xml = String::from("<r>");
        for i in 0..n {
            xml.push_str(&format!("<t{i}/>"));
        }
        xml.push_str("</r><!-- -->");
        let xml = format!("<top>{xml}</top>");
        let d = parse_xml(&xml, &mut tys).unwrap();
        assert_eq!(answer_set_twig(&p, &d), answer_set(&p, &d));
        assert_eq!(answer_set_twig(&p, &d).len(), 1);
    }
}
