//! Tree pattern matching: evaluating patterns against documents.
//!
//! "The idea is one finds all ways of *embedding* the pattern into the
//! database, with the answer set constructed from the set of all
//! embeddings found" (Section 1). An embedding maps each pattern node to a
//! data node carrying all the pattern node's types, a c-edge to a
//! parent/child pair, and a d-edge to a proper ancestor/descendant pair.
//! The pattern root may land anywhere in the tree. The answer set is the
//! set of data nodes bound to the output (`*`) node across all embeddings.
//!
//! Three evaluators are provided:
//!
//! * [`embed`] — the production evaluator: bottom-up candidate pruning
//!   over a [`DocIndex`](tpq_data::DocIndex) (O(1) structural checks),
//!   then a top-down feasibility pass; polynomial and exact;
//! * [`twig`] — a holistic twig join: one document-order merge of per-type
//!   streams with path stacks, O(depth × pattern) sweep memory instead of
//!   per-node candidate vectors; returns the same answers as [`embed`];
//! * [`naive`] — exponential backtracking enumeration of embeddings, used
//!   to cross-validate the other evaluators in tests.
//!
//! Matching cost grows with pattern size — which is the whole motivation
//! for minimization; the ablation benches quantify it.

#![warn(missing_docs)]

pub mod embed;
pub mod naive;
pub mod twig;

pub use embed::{answer_set, answer_set_forest, count_embeddings, matches_anywhere, Matcher};
pub use naive::{
    answer_set_naive, answer_set_naive_guarded, count_embeddings_naive,
    count_embeddings_naive_guarded,
};
pub use twig::{answer_set_twig, answer_set_twig_guarded, answer_set_twig_indexed};

/// Do two patterns produce the same answer set on `doc`? (Empirical
/// equivalence on one database; used by property tests against the
/// containment-mapping based `tpq_core::equivalent`.)
pub fn same_answers(
    q1: &tpq_pattern::TreePattern,
    q2: &tpq_pattern::TreePattern,
    doc: &tpq_data::Document,
) -> bool {
    let mut a = answer_set(q1, doc);
    let mut b = answer_set(q2, doc);
    a.sort_unstable();
    b.sort_unstable();
    a == b
}
