//! Typed attribute values and comparison operators.
//!
//! Section 7 of the paper proposes *value-based conditions* ("the price of
//! a book always be less than $100") as the first extension of tree
//! pattern minimization: a node `u` can be mapped to a node `w` only if
//! the conditions at `w` logically entail those at `u`. These are the
//! value primitives; the condition language and entailment live in
//! `tpq-pattern`.

use std::fmt;

/// An attribute value carried by a data node or compared by a condition.
///
/// Integers compare numerically; strings only support equality and
/// disequality (the condition parser enforces this).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A 64-bit integer.
    Int(i64),
    /// A string.
    Str(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "\"{s}\""),
        }
    }
}

/// Comparison operators for conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cmp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<` (integers only)
    Lt,
    /// `<=` (integers only)
    Le,
    /// `>` (integers only)
    Gt,
    /// `>=` (integers only)
    Ge,
}

impl Cmp {
    /// Evaluate `left ∘ right`. Ordering comparisons on strings return
    /// `false` (they are rejected at parse time; this is the safe
    /// fallback).
    pub fn eval(self, left: &Value, right: &Value) -> bool {
        match (self, left, right) {
            (Cmp::Eq, a, b) => a == b,
            (Cmp::Ne, a, b) => a != b,
            (Cmp::Lt, Value::Int(a), Value::Int(b)) => a < b,
            (Cmp::Le, Value::Int(a), Value::Int(b)) => a <= b,
            (Cmp::Gt, Value::Int(a), Value::Int(b)) => a > b,
            (Cmp::Ge, Value::Int(a), Value::Int(b)) => a >= b,
            _ => false,
        }
    }

    /// The source-text token for this operator.
    pub fn token(self) -> &'static str {
        match self {
            Cmp::Eq => "=",
            Cmp::Ne => "!=",
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
        }
    }

    /// Inverse of [`Cmp::token`].
    pub fn from_token(token: &str) -> Option<Cmp> {
        Some(match token {
            "=" => Cmp::Eq,
            "!=" => Cmp::Ne,
            "<" => Cmp::Lt,
            "<=" => Cmp::Le,
            ">" => Cmp::Gt,
            ">=" => Cmp::Ge,
            _ => return None,
        })
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_comparisons() {
        let (a, b) = (Value::Int(3), Value::Int(5));
        assert!(Cmp::Lt.eval(&a, &b));
        assert!(Cmp::Le.eval(&a, &b));
        assert!(!Cmp::Gt.eval(&a, &b));
        assert!(!Cmp::Ge.eval(&a, &b));
        assert!(Cmp::Ne.eval(&a, &b));
        assert!(Cmp::Eq.eval(&a, &a.clone()));
        assert!(Cmp::Le.eval(&a, &a.clone()));
    }

    #[test]
    fn string_equality_only() {
        let (a, b) = (Value::Str("en".into()), Value::Str("fr".into()));
        assert!(Cmp::Ne.eval(&a, &b));
        assert!(Cmp::Eq.eval(&a, &a.clone()));
        // Ordering on strings is rejected (false), not panicking.
        assert!(!Cmp::Lt.eval(&a, &b));
        assert!(!Cmp::Ge.eval(&a, &b));
    }

    #[test]
    fn mixed_types_never_equal() {
        let (a, b) = (Value::Int(1), Value::Str("1".into()));
        assert!(!Cmp::Eq.eval(&a, &b));
        assert!(Cmp::Ne.eval(&a, &b));
        assert!(!Cmp::Lt.eval(&a, &b));
    }

    #[test]
    fn token_round_trips() {
        for op in [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge] {
            assert_eq!(Cmp::from_token(op.token()), Some(op));
        }
        assert_eq!(Cmp::from_token("=="), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Str("x".into()).to_string(), "\"x\"");
        assert_eq!(Cmp::Le.to_string(), "<=");
        assert_eq!(Cmp::Ne.to_string(), "!=");
    }
}
