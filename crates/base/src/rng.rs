//! A small deterministic PRNG for generators and tests.
//!
//! Workload synthesis and the property tests only need reproducible,
//! reasonably-distributed randomness — not cryptographic strength — so a
//! self-contained xoshiro-style generator keeps the workspace free of
//! external dependencies.

/// Deterministic 64-bit PRNG (xorshift* core, splitmix64 seeding).
///
/// The same seed always yields the same stream, across platforms.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s0: u64,
    s1: u64,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Expand a 64-bit seed into the full generator state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s0 = splitmix64(&mut sm);
        let s1 = splitmix64(&mut sm);
        SmallRng { s0, s1 }
    }

    /// Next raw 64-bit output (xorshift128+).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.s0;
        let y = self.s1;
        self.s0 = y;
        x ^= x << 23;
        self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        self.s1.wrapping_add(y)
    }

    /// Next raw 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform sample from `range` (half-open). Panics on an empty range,
    /// matching the behaviour generator code already relies on.
    #[inline]
    pub fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 random mantissa bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }

    /// Uniformly pick an element, `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(0..slice.len())])
        }
    }
}

/// Types [`SmallRng::gen_range`] can sample.
pub trait SampleRange: Copy {
    fn sample(rng: &mut SmallRng, range: std::ops::Range<Self>) -> Self;
}

/// Debiased bounded sample via Lemire's multiply-shift with rejection.
#[inline]
fn bounded_u64(rng: &mut SmallRng, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone below `threshold` removes the modulo bias.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let r = rng.next_u64();
        let hi = ((r as u128 * bound as u128) >> 64) as u64;
        let lo = (r as u128 * bound as u128) as u64;
        if lo >= threshold {
            return hi;
        }
    }
}

impl SampleRange for u64 {
    #[inline]
    fn sample(rng: &mut SmallRng, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range on empty range");
        range.start + bounded_u64(rng, range.end - range.start)
    }
}

impl SampleRange for u32 {
    #[inline]
    fn sample(rng: &mut SmallRng, range: std::ops::Range<u32>) -> u32 {
        assert!(range.start < range.end, "gen_range on empty range");
        range.start + bounded_u64(rng, (range.end - range.start) as u64) as u32
    }
}

impl SampleRange for usize {
    #[inline]
    fn sample(rng: &mut SmallRng, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range on empty range");
        range.start + bounded_u64(rng, (range.end - range.start) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(3..13u32);
            assert!((3..13).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never stay sorted");
    }

    #[test]
    fn choose_is_none_only_on_empty() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(rng.choose::<u8>(&[]), None);
        assert_eq!(rng.choose(&[9]), Some(&9));
    }
}
