//! Small sorted sets of [`TypeId`]s.
//!
//! Data nodes carry a *set* of types (Section 2.2 of the paper: "every
//! employee entry must also belong to the type person"), and the chase of
//! co-occurrence constraints adds types to pattern nodes. These sets are
//! almost always tiny (1–4 elements), so a sorted `Vec` beats a hash set in
//! both space and time.

use crate::TypeId;

/// A sorted, duplicate-free set of [`TypeId`]s.
///
/// ```
/// use tpq_base::{TypeId, TypeSet};
/// let mut s = TypeSet::singleton(TypeId(3));
/// s.insert(TypeId(1));
/// s.insert(TypeId(3)); // duplicate ignored
/// assert!(s.contains(TypeId(1)));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![TypeId(1), TypeId(3)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct TypeSet {
    sorted: Vec<TypeId>,
}

impl TypeSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A one-element set.
    pub fn singleton(ty: TypeId) -> Self {
        Self { sorted: vec![ty] }
    }

    /// Insert `ty`; returns `true` if it was not already present.
    pub fn insert(&mut self, ty: TypeId) -> bool {
        match self.sorted.binary_search(&ty) {
            Ok(_) => false,
            Err(pos) => {
                self.sorted.insert(pos, ty);
                true
            }
        }
    }

    /// Remove `ty`; returns `true` if it was present.
    pub fn remove(&mut self, ty: TypeId) -> bool {
        match self.sorted.binary_search(&ty) {
            Ok(pos) => {
                self.sorted.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, ty: TypeId) -> bool {
        self.sorted.binary_search(&ty).is_ok()
    }

    /// Whether every element of `other` is in `self`.
    pub fn is_superset(&self, other: &TypeSet) -> bool {
        other.iter().all(|t| self.contains(t))
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Iterate in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = TypeId> + '_ {
        self.sorted.iter().copied()
    }

    /// Union `other` into `self`.
    pub fn union_with(&mut self, other: &TypeSet) {
        for t in other.iter() {
            self.insert(t);
        }
    }

    /// Borrow the underlying sorted slice.
    pub fn as_slice(&self) -> &[TypeId] {
        &self.sorted
    }
}

impl FromIterator<TypeId> for TypeSet {
    fn from_iter<I: IntoIterator<Item = TypeId>>(iter: I) -> Self {
        let mut s = TypeSet::new();
        for t in iter {
            s.insert(t);
        }
        s
    }
}

impl From<TypeId> for TypeSet {
    fn from(ty: TypeId) -> Self {
        TypeSet::singleton(ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> TypeSet {
        ids.iter().map(|&i| TypeId(i)).collect()
    }

    #[test]
    fn insert_keeps_sorted_and_dedups() {
        let mut s = TypeSet::new();
        assert!(s.insert(TypeId(5)));
        assert!(s.insert(TypeId(2)));
        assert!(!s.insert(TypeId(5)));
        assert_eq!(s.as_slice(), &[TypeId(2), TypeId(5)]);
    }

    #[test]
    fn remove_works() {
        let mut s = set(&[1, 2, 3]);
        assert!(s.remove(TypeId(2)));
        assert!(!s.remove(TypeId(2)));
        assert_eq!(s.as_slice(), &[TypeId(1), TypeId(3)]);
    }

    #[test]
    fn superset_and_union() {
        let mut a = set(&[1, 2]);
        let b = set(&[2, 3]);
        assert!(!a.is_superset(&b));
        a.union_with(&b);
        assert!(a.is_superset(&b));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn from_iter_dedups_out_of_order_input() {
        let s: TypeSet = [TypeId(9), TypeId(0), TypeId(9)].into_iter().collect();
        assert_eq!(s.as_slice(), &[TypeId(0), TypeId(9)]);
    }

    #[test]
    fn empty_set_properties() {
        let s = TypeSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(TypeId(0)));
        assert!(s.is_superset(&TypeSet::new()));
    }
}
