//! A minimal JSON document model, writer, and parser.
//!
//! The workspace serialises patterns, constraints, bench panels and metrics
//! reports without external crates, so this module provides the small JSON
//! surface those callers need. Integers and floats are kept apart
//! ([`Json::Int`] vs [`Json::Float`]) so `i64` values round-trip exactly;
//! object members preserve insertion order for deterministic output.

use std::fmt;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// A number without fractional part or exponent in the source.
    Int(i64),
    /// Any other number.
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    /// Members in insertion order; duplicate keys are not rejected but
    /// lookups return the first match.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn object(members: Vec<(&str, Json)>) -> Json {
        Json::Object(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member of an object by key; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as `f64` — accepts both number variants.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out.push('\n');
        out
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    ///
    /// Nesting is limited to [`MAX_DEPTH`](Json::MAX_DEPTH) levels: the
    /// parser recurses per container, so unbounded nesting would overflow
    /// the stack instead of returning an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

impl Json {
    /// Maximum container nesting accepted by [`Json::parse`].
    pub const MAX_DEPTH: usize = 512;
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

/// Parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

// ---------------------------------------------------------------- writing

fn write_value(out: &mut String, v: &Json, indent: Option<usize>, depth: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Int(n) => out.push_str(&n.to_string()),
        Json::Float(x) => write_float(out, *x),
        Json::Str(s) => write_string(out, s),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Json::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        let text = format!("{x}");
        out.push_str(&text);
        // `{}` prints integral floats without a dot; keep the value typed
        // as a float on re-parse.
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Infinity; null is the conventional fallback.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting, bounded by [`Json::MAX_DEPTH`].
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > Json::MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy runs of plain bytes wholesale.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let b = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'b' => '\u{08}',
            b'f' => '\u{0c}',
            b'u' => {
                let first = self.hex4()?;
                let code = if (0xd800..0xdc00).contains(&first) {
                    // Surrogate pair.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let second = self.hex4()?;
                        if !(0xdc00..0xe000).contains(&second) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00)
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else {
                    first
                };
                char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))?
            }
            _ => return Err(self.err("unknown escape")),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        // Only ASCII digit/sign/exponent bytes were consumed, so the slice
        // is valid UTF-8; still, degrade to a parse error over a panic.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("malformed number"))?;
        if !fractional {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>().map(Json::Float).map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-17", "9007199254740993"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string_compact(), text);
        }
    }

    #[test]
    fn int_float_distinction_survives() {
        assert_eq!(Json::parse("5").unwrap(), Json::Int(5));
        assert_eq!(Json::parse("5.0").unwrap(), Json::Float(5.0));
        assert_eq!(Json::Float(5.0).to_string_compact(), "5.0");
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::Str("a\"b\\c\nd\te\u{1}é日🎉".to_string());
        let text = original.to_string_compact();
        assert_eq!(Json::parse(&text).unwrap(), original);
    }

    #[test]
    fn surrogate_pairs_parse() {
        assert_eq!(Json::parse(r#""🎉""#).unwrap(), Json::Str("🎉".to_string()));
        assert!(Json::parse(r#""\ud83c""#).is_err());
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::object(vec![
            ("name", Json::Str("fig7b".into())),
            ("points", Json::Array(vec![Json::Int(1), Json::Float(2.5), Json::Null])),
            ("nested", Json::object(vec![("ok", Json::Bool(true))])),
            ("empty_arr", Json::Array(vec![])),
            ("empty_obj", Json::Object(vec![])),
        ]);
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": 1, "b": [2.5], "c": "x", "d": true}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_i64), Some(1));
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("b").and_then(Json::as_array).map(|a| a.len()), Some(1));
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("d").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_errors_carry_position() {
        let e = Json::parse("[1, 2").unwrap_err();
        assert_eq!(e.offset, 5);
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("[] []").is_err());
        assert!(Json::parse("0x10").is_err());
    }

    #[test]
    fn whitespace_tolerance() {
        let v = Json::parse(" {\n\t\"k\" :\r [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("k").and_then(Json::as_array).map(|a| a.len()), Some(2));
    }

    #[test]
    fn nonfinite_floats_degrade_to_null() {
        assert_eq!(Json::Float(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn pathological_nesting_errors_instead_of_overflowing() {
        // 100k unclosed brackets would blow the stack without the depth
        // limit; the parser must return Err well before that.
        let deep = "[".repeat(100_000);
        let e = Json::parse(&deep).unwrap_err();
        assert!(e.message.contains("nesting too deep"), "{e}");
        let deep_obj = "{\"k\":".repeat(100_000);
        assert!(Json::parse(&deep_obj).is_err());
    }

    #[test]
    fn nesting_below_the_limit_parses() {
        let depth = 100;
        let text = format!("{}{}", "[".repeat(depth), "]".repeat(depth));
        let v = Json::parse(&text).unwrap();
        assert!(matches!(v, Json::Array(_)));
        // Siblings do not accumulate depth.
        let wide = format!("[{}]", vec!["[[]]"; 1000].join(","));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn malformed_input_battery_returns_err() {
        for bad in [
            "",
            " ",
            "[",
            "]",
            "{",
            "}",
            "nul",
            "truex",
            "\"",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800x\"",
            "[1,, 2]",
            "[1 2]",
            "{\"a\"}",
            "{a:1}",
            "{\"a\":}",
            "-",
            "1e",
            "--1",
            "\u{7f}",
            "[\"\u{1}\"]",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail to parse");
        }
    }
}
