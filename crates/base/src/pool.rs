//! Thread pools: a scoped work-stealing batch pool and a persistent
//! [`TaskPool`] for services.
//!
//! Built on `std::thread::scope` only — the workspace builds offline with
//! no external dependencies. The unit of work is an *index range* over a
//! shared slice: each worker starts with an even share of the input and,
//! when its own range drains, steals the upper half of the largest
//! remaining range from another worker. Range splitting keeps the
//! scheduler tiny (one `Mutex<Range>` per worker, locked only to take the
//! next index or to be robbed) while still balancing skewed workloads.
//!
//! Results come back **in input order** regardless of which worker ran
//! which item, so callers get deterministic output for free.
//!
//! Tasks are *isolated*: every task runs under `catch_unwind`, so one
//! panicking item becomes an [`Error::WorkerPanic`] entry in the result
//! of [`scoped_map_isolated`] while the remaining items complete — the
//! pool, and the process, survive. The infallible [`scoped_map`] wrapper
//! keeps the old calling convention and re-raises the first task failure
//! on the calling thread.
//!
//! For workloads that outlive any single batch — the `tpq-serve` request
//! loop — [`TaskPool`] keeps a fixed set of workers alive and executes
//! one fallible job at a time per worker, with the same panic isolation.
//!
//! ```
//! let (squares, stats) = tpq_base::pool::scoped_map(4, &[1u64, 2, 3, 4, 5], |ctx, &x| {
//!     assert!(ctx.worker < 4);
//!     x * x
//! });
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! assert_eq!(stats.executed.iter().sum::<u64>(), 5);
//! ```

use crate::error::{Error, Result};
use crate::failpoint;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Where a unit of work ran: handed to the mapped closure so callers can
/// attribute metrics (latency histograms, counters) per worker.
#[derive(Debug, Clone, Copy)]
pub struct TaskCtx {
    /// Worker index in `0..jobs`.
    pub worker: usize,
    /// Index of the item in the input slice.
    pub index: usize,
}

/// Scheduler measurements for one [`scoped_map`] run.
#[derive(Debug, Clone, Default)]
pub struct PoolStats {
    /// Number of worker threads that ran (1 means the inline fast path).
    pub workers: usize,
    /// Successful steals (a worker took half of another worker's range).
    pub steals: u64,
    /// Items executed per worker, indexed by worker id.
    pub executed: Vec<u64>,
    /// Wall time each worker spent inside the mapped closure.
    pub busy: Vec<Duration>,
    /// Wall time of the whole map, including scheduling.
    pub wall: Duration,
    /// Tasks whose panic was captured and turned into an error entry.
    pub panics: u64,
}

/// A half-open index range `[next, end)` owned by one worker.
struct Range {
    next: usize,
    end: usize,
}

impl Range {
    fn remaining(&self) -> usize {
        self.end.saturating_sub(self.next)
    }
}

/// Render a panic payload as text (best effort).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Run one task behind the `pool.task` failpoint and a panic shield.
fn run_task<T, R, F>(f: &F, ctx: TaskCtx, item: &T) -> Result<R>
where
    F: Fn(TaskCtx, &T) -> Result<R>,
{
    // The failpoint fires inside the shield so an injected panic is
    // captured exactly like one from the task itself.
    match std::panic::catch_unwind(AssertUnwindSafe(|| {
        failpoint::hit("pool.task")?;
        f(ctx, item)
    })) {
        Ok(result) => result,
        Err(payload) => Err(Error::WorkerPanic { message: panic_message(payload) }),
    }
}

/// Map `f` over `items` on up to `jobs` threads, returning the results in
/// input order together with scheduler statistics.
///
/// `jobs` is clamped to `1..=items.len()`; `jobs <= 1` (or a single item)
/// runs inline on the calling thread with no scheduling overhead, so the
/// function is safe to call unconditionally on small inputs.
///
/// Task failures (panics, injected faults) are re-raised as a panic on
/// the calling thread, preserving the historical contract. Callers that
/// want per-task isolation use [`scoped_map_isolated`].
pub fn scoped_map<T, R, F>(jobs: usize, items: &[T], f: F) -> (Vec<R>, PoolStats)
where
    T: Sync,
    R: Send,
    F: Fn(TaskCtx, &T) -> R + Sync,
{
    let (results, stats) = scoped_map_isolated(jobs, items, |ctx, item| Ok(f(ctx, item)));
    let results = results
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(e) => panic!("pool task failed: {e}"),
        })
        .collect();
    (results, stats)
}

/// [`scoped_map`] with per-task fault isolation: the mapped closure is
/// fallible, every call runs under `catch_unwind`, and each item yields
/// `Ok(R)` or the `Err` that stopped it — a panicking or erroring item
/// never disturbs the others. `stats.panics` counts captured panics.
pub fn scoped_map_isolated<T, R, F>(jobs: usize, items: &[T], f: F) -> (Vec<Result<R>>, PoolStats)
where
    T: Sync,
    R: Send,
    F: Fn(TaskCtx, &T) -> Result<R> + Sync,
{
    let t0 = Instant::now();
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs == 1 {
        let mut results = Vec::with_capacity(items.len());
        let busy0 = Instant::now();
        for (index, item) in items.iter().enumerate() {
            results.push(run_task(&f, TaskCtx { worker: 0, index }, item));
        }
        let panics = count_panics(&results);
        let stats = PoolStats {
            workers: 1,
            steals: 0,
            executed: vec![items.len() as u64],
            busy: vec![busy0.elapsed()],
            wall: t0.elapsed(),
            panics,
        };
        return (results, stats);
    }

    // Even initial partition: worker w owns [w*chunk.., ..] with the
    // remainder spread over the first `extra` workers.
    let chunk = items.len() / jobs;
    let extra = items.len() % jobs;
    let mut start = 0usize;
    let queues: Vec<Mutex<Range>> = (0..jobs)
        .map(|w| {
            let len = chunk + usize::from(w < extra);
            let r = Range { next: start, end: start + len };
            start += len;
            Mutex::new(r)
        })
        .collect();

    struct WorkerOut<R> {
        results: Vec<(usize, Result<R>)>,
        executed: u64,
        steals: u64,
        busy: Duration,
    }

    let outputs: Vec<std::thread::Result<WorkerOut<R>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                let queues = &queues;
                let f = &f;
                scope.spawn(move || {
                    let mut out = WorkerOut {
                        results: Vec::new(),
                        executed: 0,
                        steals: 0,
                        busy: Duration::ZERO,
                    };
                    loop {
                        let index = {
                            let mut own = queues[w].lock().expect("pool queue poisoned");
                            if own.next < own.end {
                                let i = own.next;
                                own.next += 1;
                                Some(i)
                            } else {
                                None
                            }
                        };
                        let index = match index {
                            Some(i) => i,
                            None => match steal(queues, w) {
                                Some(i) => {
                                    out.steals += 1;
                                    i
                                }
                                None => break,
                            },
                        };
                        let t = Instant::now();
                        let r = run_task(f, TaskCtx { worker: w, index }, &items[index]);
                        out.busy += t.elapsed();
                        out.executed += 1;
                        out.results.push((index, r));
                    }
                    out
                })
            })
            .collect();
        // join() only fails if a worker died outside the per-task shield
        // (a scheduler bug). Collect the failure instead of asserting so
        // the surviving workers' results still reach the caller.
        handles.into_iter().map(|h| h.join()).collect()
    });

    let mut stats = PoolStats {
        workers: jobs,
        steals: 0,
        executed: vec![0; jobs],
        busy: vec![Duration::ZERO; jobs],
        wall: Duration::ZERO,
        panics: 0,
    };
    let mut slots: Vec<Option<Result<R>>> = (0..items.len()).map(|_| None).collect();
    let mut worker_loss: Option<String> = None;
    for (w, out) in outputs.into_iter().enumerate() {
        match out {
            Ok(out) => {
                stats.steals += out.steals;
                stats.executed[w] = out.executed;
                stats.busy[w] = out.busy;
                for (i, r) in out.results {
                    slots[i] = Some(r);
                }
            }
            Err(payload) => {
                worker_loss = Some(panic_message(payload));
            }
        }
    }
    // Items lost to a dead worker (or never scheduled because its range
    // died with it) degrade to error entries rather than a process abort.
    let loss = worker_loss.unwrap_or_else(|| "pool worker died".to_owned());
    let results: Vec<Result<R>> = slots
        .into_iter()
        .map(|slot| slot.unwrap_or_else(|| Err(Error::WorkerPanic { message: loss.clone() })))
        .collect();
    stats.panics = count_panics(&results);
    stats.wall = t0.elapsed();
    (results, stats)
}

fn count_panics<R>(results: &[Result<R>]) -> u64 {
    results.iter().filter(|r| matches!(r, Err(Error::WorkerPanic { .. }))).count() as u64
}

/// Rob the victim with the most remaining work: take one index now and
/// move the upper half of the rest into the thief's own queue.
fn steal(queues: &[Mutex<Range>], thief: usize) -> Option<usize> {
    loop {
        // Pick the victim with the largest remaining range (snapshot; the
        // range may shrink before we lock it again, so re-check under the
        // lock and retry while any queue looks non-empty).
        let victim = queues
            .iter()
            .enumerate()
            .filter(|&(w, _)| w != thief)
            .map(|(w, q)| (w, q.lock().expect("pool queue poisoned").remaining()))
            .max_by_key(|&(_, len)| len)
            .filter(|&(_, len)| len > 0)?
            .0;
        let mut v = queues[victim].lock().expect("pool queue poisoned");
        if v.next >= v.end {
            continue; // drained between snapshot and lock; rescan
        }
        let index = v.next;
        v.next += 1;
        let mid = v.next + v.remaining() / 2;
        let tail = Range { next: mid, end: v.end };
        v.end = mid;
        drop(v);
        if tail.remaining() > 0 {
            *queues[thief].lock().expect("pool queue poisoned") = tail;
        }
        return Some(index);
    }
}

// ------------------------------------------------------------ TaskPool

/// A boxed unit of work queued on a [`TaskPool`].
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent worker pool for long-running services.
///
/// [`scoped_map`] fans one batch out and tears its threads down; a server
/// needs threads that outlive any single request. A [`TaskPool`] spawns
/// its workers once and feeds them jobs over a channel; [`TaskPool::run`]
/// submits a fallible closure, blocks the calling thread until a worker
/// has executed it, and returns its result. Every job runs behind the
/// same `pool.task` failpoint and `catch_unwind` shield as the scoped
/// pool, so one panicking job becomes an [`Error::WorkerPanic`] for its
/// caller while the worker thread — and every other in-flight job —
/// carries on.
///
/// [`TaskPool::shutdown`] (also invoked on drop) closes the queue and
/// joins the workers; jobs already queued are drained first, so a
/// graceful server shutdown never abandons an accepted request.
///
/// ```
/// let pool = tpq_base::pool::TaskPool::new(2);
/// let nine = pool.run(|| Ok(3 * 3)).unwrap();
/// assert_eq!(nine, 9);
/// let boom: tpq_base::Result<()> = pool.run(|| panic!("bad input"));
/// assert!(boom.is_err(), "panic captured, pool still alive");
/// assert_eq!(pool.run(|| Ok(1 + 1)).unwrap(), 2);
/// ```
#[derive(Debug)]
pub struct TaskPool {
    sender: Mutex<Option<mpsc::Sender<Job>>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    executed: Arc<AtomicU64>,
    size: usize,
}

impl TaskPool {
    /// Spawn a pool of `jobs.max(1)` worker threads, idle until fed.
    pub fn new(jobs: usize) -> TaskPool {
        let size = jobs.max(1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size)
            .map(|w| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("tpq-pool-{w}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only while dequeuing, so
                        // workers execute concurrently.
                        let job = match receiver.lock() {
                            Ok(rx) => rx.recv(),
                            Err(_) => break, // poisoned: a worker died mid-recv
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // queue closed and drained
                        }
                    })
                    .expect("spawning a pool worker thread")
            })
            .collect();
        TaskPool {
            sender: Mutex::new(Some(sender)),
            workers: Mutex::new(workers),
            executed: Arc::new(AtomicU64::new(0)),
            size,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Jobs completed so far, across all workers.
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Run `f` on a pool worker and block until it finishes.
    ///
    /// `f` runs behind the `pool.task` failpoint and a panic shield: a
    /// panic (injected or genuine) comes back as [`Error::WorkerPanic`].
    /// After [`shutdown`](TaskPool::shutdown) the queue is closed and
    /// `run` fails fast with [`Error::WorkerPanic`] instead of blocking.
    pub fn run<R, F>(&self, f: F) -> Result<R>
    where
        R: Send + 'static,
        F: FnOnce() -> Result<R> + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        let executed = Arc::clone(&self.executed);
        let job: Job = Box::new(move || {
            let result = match std::panic::catch_unwind(AssertUnwindSafe(|| {
                failpoint::hit("pool.task")?;
                f()
            })) {
                Ok(result) => result,
                Err(payload) => Err(Error::WorkerPanic { message: panic_message(payload) }),
            };
            executed.fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(result); // caller may have given up; that's fine
        });
        {
            let sender = self.sender.lock().expect("task pool sender poisoned");
            match sender.as_ref() {
                Some(sender) => sender.send(job).map_err(|_| Error::WorkerPanic {
                    message: "task pool workers are gone".to_owned(),
                })?,
                None => {
                    return Err(Error::WorkerPanic { message: "task pool is shut down".to_owned() })
                }
            }
        }
        rx.recv().unwrap_or_else(|_| {
            Err(Error::WorkerPanic { message: "task pool worker lost".to_owned() })
        })
    }

    /// Submit `f` to the pool and return immediately, without waiting
    /// for a worker to pick it up — the fire-and-forget counterpart of
    /// [`run`](TaskPool::run), for callers (the `tpq-serve` reactor) that
    /// collect results through their own completion channel.
    ///
    /// The worker runs `f` behind a panic shield so a panicking job can
    /// never kill its thread, but — unlike `run` — the payload has
    /// nowhere to go and is dropped, and the `pool.task` failpoint is
    /// *not* hit here: a caller that wants per-job fault injection and
    /// error reporting does both inside `f`, where it can route the
    /// outcome to its own channel. Fails fast once the queue is closed.
    pub fn spawn<F>(&self, f: F) -> Result<()>
    where
        F: FnOnce() + Send + 'static,
    {
        let executed = Arc::clone(&self.executed);
        let job: Job = Box::new(move || {
            let _ = std::panic::catch_unwind(AssertUnwindSafe(f));
            executed.fetch_add(1, Ordering::Relaxed);
        });
        let sender = self.sender.lock().expect("task pool sender poisoned");
        match sender.as_ref() {
            Some(sender) => sender.send(job).map_err(|_| Error::WorkerPanic {
                message: "task pool workers are gone".to_owned(),
            }),
            None => Err(Error::WorkerPanic { message: "task pool is shut down".to_owned() }),
        }
    }

    /// Close the queue and join every worker. Jobs already queued are
    /// executed before the workers exit (mpsc delivers buffered messages
    /// after the sender drops); jobs submitted afterwards fail fast.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        drop(self.sender.lock().expect("task pool sender poisoned").take());
        let workers =
            std::mem::take(&mut *self.workers.lock().expect("task pool workers poisoned"));
        for handle in workers {
            // A worker that somehow died outside the shield has nothing
            // left to clean up; ignore its panic payload.
            let _ = handle.join();
        }
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        for jobs in [1, 2, 3, 8] {
            let (out, stats) = scoped_map(jobs, &items, |_, &x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>(), "jobs={jobs}");
            assert_eq!(stats.executed.iter().sum::<u64>(), 1000);
            assert_eq!(stats.workers, jobs);
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let items: Vec<usize> = (0..257).collect();
        let (out, _) = scoped_map(4, &items, |_, &i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
        assert_eq!(out, items);
    }

    #[test]
    fn more_jobs_than_items_clamps() {
        let (out, stats) = scoped_map(64, &[1, 2, 3], |_, &x| x);
        assert_eq!(out, vec![1, 2, 3]);
        assert!(stats.workers <= 3);
    }

    #[test]
    fn empty_input_is_fine() {
        let (out, stats) = scoped_map(4, &[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn skewed_work_gets_stolen() {
        // One pathological item at the front of worker 0's range; the other
        // workers should drain the rest. We cannot assert steals happened
        // (timing-dependent on a loaded machine) but the results must be
        // complete and ordered.
        let items: Vec<u64> = (0..64).collect();
        let (out, stats) = scoped_map(4, &items, |_, &x| {
            if x == 0 {
                std::thread::sleep(Duration::from_millis(20));
            }
            x
        });
        assert_eq!(out, items);
        assert_eq!(stats.executed.iter().sum::<u64>(), 64);
        assert!(stats.busy.iter().any(|b| *b >= Duration::from_millis(20)));
    }

    #[test]
    fn worker_ids_are_in_range() {
        let items: Vec<u32> = (0..100).collect();
        let (_, stats) = scoped_map(5, &items, |ctx, &x| {
            assert!(ctx.worker < 5);
            assert_eq!(ctx.index as u32, x);
            x
        });
        assert_eq!(stats.executed.len(), 5);
        assert_eq!(stats.busy.len(), 5);
    }

    #[test]
    fn one_panicking_task_in_eight_leaves_seven_results() {
        // The regression the `join().expect` rewrite exists for: a batch
        // of 8 with one poisoned item yields 7 results + 1 error, in
        // order, on every jobs setting.
        let items: Vec<u64> = (0..8).collect();
        for jobs in [1, 2, 4, 8] {
            let (out, stats) = scoped_map_isolated(jobs, &items, |_, &x| {
                if x == 3 {
                    panic!("poisoned item {x}");
                }
                Ok(x * 10)
            });
            assert_eq!(out.len(), 8, "jobs={jobs}");
            for (i, r) in out.iter().enumerate() {
                if i == 3 {
                    match r {
                        Err(Error::WorkerPanic { message }) => {
                            assert!(message.contains("poisoned item 3"), "{message}")
                        }
                        other => panic!("jobs={jobs}: expected a panic entry, got {other:?}"),
                    }
                } else {
                    assert_eq!(r.as_ref().unwrap(), &(i as u64 * 10), "jobs={jobs}");
                }
            }
            assert_eq!(stats.panics, 1, "jobs={jobs}");
        }
    }

    #[test]
    fn pool_is_usable_after_a_panicking_batch() {
        let items: Vec<u64> = (0..8).collect();
        let (_, _) = scoped_map_isolated(4, &items, |_, &x| {
            if x % 2 == 0 {
                panic!("even");
            }
            Ok(x)
        });
        // A fresh batch on the same thread works normally.
        let (out, stats) = scoped_map(4, &items, |_, &x| x + 1);
        assert_eq!(out, (1..=8).collect::<Vec<_>>());
        assert_eq!(stats.panics, 0);
    }

    #[test]
    fn fallible_tasks_return_their_errors_in_place() {
        let items: Vec<u32> = (0..6).collect();
        let (out, stats) = scoped_map_isolated(3, &items, |_, &x| {
            if x == 5 {
                Err(Error::InvalidPattern("bad".into()))
            } else {
                Ok(x)
            }
        });
        assert_eq!(out[5], Err(Error::InvalidPattern("bad".into())));
        assert_eq!(out[..5].iter().filter(|r| r.is_ok()).count(), 5);
        assert_eq!(stats.panics, 0, "plain errors are not panics");
    }

    #[test]
    fn infallible_wrapper_reraises_task_panics() {
        let caught = std::panic::catch_unwind(|| {
            scoped_map(2, &[1u32, 2, 3], |_, &x| {
                if x == 2 {
                    panic!("kaboom");
                }
                x
            })
        });
        let message = panic_message(caught.unwrap_err());
        assert!(message.contains("kaboom"), "{message}");
    }

    #[test]
    fn task_pool_runs_jobs_and_reports_progress() {
        let pool = TaskPool::new(3);
        assert_eq!(pool.size(), 3);
        let results: Vec<u64> = (0..20u64).map(|x| pool.run(move || Ok(x * x)).unwrap()).collect();
        assert_eq!(results, (0..20u64).map(|x| x * x).collect::<Vec<_>>());
        assert_eq!(pool.executed(), 20);
    }

    #[test]
    fn task_pool_executes_concurrently() {
        // Two jobs that each wait for the other prove that at least two
        // workers run at once (a serial pool would deadlock; the test
        // would then time out rather than hang forever thanks to the
        // barrier's generous use from both sides).
        let pool = Arc::new(TaskPool::new(2));
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let (b1, b2) = (Arc::clone(&barrier), Arc::clone(&barrier));
        let p2 = Arc::clone(&pool);
        let helper = std::thread::spawn(move || p2.run(move || Ok(b2.wait().is_leader())));
        let first = pool.run(move || Ok(b1.wait().is_leader())).unwrap();
        let second = helper.join().unwrap().unwrap();
        assert_ne!(first, second, "exactly one barrier waiter is the leader");
    }

    #[test]
    fn task_pool_isolates_panics() {
        let pool = TaskPool::new(1);
        let boom: Result<()> = pool.run(|| panic!("poisoned request"));
        match boom {
            Err(Error::WorkerPanic { message }) => {
                assert!(message.contains("poisoned"), "{message}")
            }
            other => panic!("expected a captured panic, got {other:?}"),
        }
        // The worker survives its job's panic.
        assert_eq!(pool.run(|| Ok(7)).unwrap(), 7);
    }

    #[test]
    fn spawned_jobs_run_without_blocking_the_caller() {
        let pool = TaskPool::new(2);
        let (tx, rx) = mpsc::channel();
        for i in 0..10u64 {
            let tx = tx.clone();
            pool.spawn(move || tx.send(i * i).unwrap()).unwrap();
        }
        let mut results: Vec<u64> =
            (0..10).map(|_| rx.recv_timeout(Duration::from_secs(10)).unwrap()).collect();
        results.sort_unstable();
        assert_eq!(results, (0..10u64).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(pool.executed(), 10);
    }

    #[test]
    fn spawned_panic_is_contained_and_the_worker_survives() {
        let pool = TaskPool::new(1);
        pool.spawn(|| panic!("spawned boom")).unwrap();
        // The single worker survived: a follow-up job still executes.
        let (tx, rx) = mpsc::channel();
        pool.spawn(move || tx.send(5u32).unwrap()).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), 5);
        pool.shutdown();
        assert!(pool.spawn(|| {}).is_err(), "spawn fails fast after shutdown");
    }

    #[test]
    fn task_pool_rejects_jobs_after_shutdown() {
        let pool = TaskPool::new(2);
        assert_eq!(pool.run(|| Ok(1)).unwrap(), 1);
        pool.shutdown();
        let late: Result<u32> = pool.run(|| Ok(2));
        assert!(matches!(late, Err(Error::WorkerPanic { .. })), "{late:?}");
        pool.shutdown(); // idempotent
    }

    #[test]
    fn pool_task_failpoint_injects_an_error_entry() {
        // Thread-scoped arming + jobs=1 (inline on this thread) keeps the
        // shared "pool.task" name deterministic under parallel tests.
        let _fp = crate::failpoint::arm_for_thread("pool.task", crate::failpoint::Action::Err, 2);
        let items: Vec<u32> = (0..4).collect();
        let (out, _) = scoped_map_isolated(1, &items, |_, &x| Ok(x));
        let errors: Vec<_> = out.iter().filter(|r| r.is_err()).collect();
        assert_eq!(errors.len(), 1);
        assert_eq!(out[1], Err(Error::Injected { point: "pool.task".into() }));
    }
}
