//! A minimal scoped work-stealing thread pool.
//!
//! Built on `std::thread::scope` only — the workspace builds offline with
//! no external dependencies. The unit of work is an *index range* over a
//! shared slice: each worker starts with an even share of the input and,
//! when its own range drains, steals the upper half of the largest
//! remaining range from another worker. Range splitting keeps the
//! scheduler tiny (one `Mutex<Range>` per worker, locked only to take the
//! next index or to be robbed) while still balancing skewed workloads.
//!
//! Results come back **in input order** regardless of which worker ran
//! which item, so callers get deterministic output for free.
//!
//! ```
//! let (squares, stats) = tpq_base::pool::scoped_map(4, &[1u64, 2, 3, 4, 5], |ctx, &x| {
//!     assert!(ctx.worker < 4);
//!     x * x
//! });
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! assert_eq!(stats.executed.iter().sum::<u64>(), 5);
//! ```

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Where a unit of work ran: handed to the mapped closure so callers can
/// attribute metrics (latency histograms, counters) per worker.
#[derive(Debug, Clone, Copy)]
pub struct TaskCtx {
    /// Worker index in `0..jobs`.
    pub worker: usize,
    /// Index of the item in the input slice.
    pub index: usize,
}

/// Scheduler measurements for one [`scoped_map`] run.
#[derive(Debug, Clone, Default)]
pub struct PoolStats {
    /// Number of worker threads that ran (1 means the inline fast path).
    pub workers: usize,
    /// Successful steals (a worker took half of another worker's range).
    pub steals: u64,
    /// Items executed per worker, indexed by worker id.
    pub executed: Vec<u64>,
    /// Wall time each worker spent inside the mapped closure.
    pub busy: Vec<Duration>,
    /// Wall time of the whole map, including scheduling.
    pub wall: Duration,
}

/// A half-open index range `[next, end)` owned by one worker.
struct Range {
    next: usize,
    end: usize,
}

impl Range {
    fn remaining(&self) -> usize {
        self.end.saturating_sub(self.next)
    }
}

/// Map `f` over `items` on up to `jobs` threads, returning the results in
/// input order together with scheduler statistics.
///
/// `jobs` is clamped to `1..=items.len()`; `jobs <= 1` (or a single item)
/// runs inline on the calling thread with no scheduling overhead, so the
/// function is safe to call unconditionally on small inputs.
pub fn scoped_map<T, R, F>(jobs: usize, items: &[T], f: F) -> (Vec<R>, PoolStats)
where
    T: Sync,
    R: Send,
    F: Fn(TaskCtx, &T) -> R + Sync,
{
    let t0 = Instant::now();
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs == 1 {
        let mut results = Vec::with_capacity(items.len());
        let busy0 = Instant::now();
        for (index, item) in items.iter().enumerate() {
            results.push(f(TaskCtx { worker: 0, index }, item));
        }
        let stats = PoolStats {
            workers: 1,
            steals: 0,
            executed: vec![items.len() as u64],
            busy: vec![busy0.elapsed()],
            wall: t0.elapsed(),
        };
        return (results, stats);
    }

    // Even initial partition: worker w owns [w*chunk.., ..] with the
    // remainder spread over the first `extra` workers.
    let chunk = items.len() / jobs;
    let extra = items.len() % jobs;
    let mut start = 0usize;
    let queues: Vec<Mutex<Range>> = (0..jobs)
        .map(|w| {
            let len = chunk + usize::from(w < extra);
            let r = Range { next: start, end: start + len };
            start += len;
            Mutex::new(r)
        })
        .collect();

    struct WorkerOut<R> {
        results: Vec<(usize, R)>,
        executed: u64,
        steals: u64,
        busy: Duration,
    }

    let outputs: Vec<WorkerOut<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                let queues = &queues;
                let f = &f;
                scope.spawn(move || {
                    let mut out = WorkerOut {
                        results: Vec::new(),
                        executed: 0,
                        steals: 0,
                        busy: Duration::ZERO,
                    };
                    loop {
                        let index = {
                            let mut own = queues[w].lock().expect("pool queue poisoned");
                            if own.next < own.end {
                                let i = own.next;
                                own.next += 1;
                                Some(i)
                            } else {
                                None
                            }
                        };
                        let index = match index {
                            Some(i) => i,
                            None => match steal(queues, w) {
                                Some(i) => {
                                    out.steals += 1;
                                    i
                                }
                                None => break,
                            },
                        };
                        let t = Instant::now();
                        let r = f(TaskCtx { worker: w, index }, &items[index]);
                        out.busy += t.elapsed();
                        out.executed += 1;
                        out.results.push((index, r));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("pool worker panicked")).collect()
    });

    let mut stats = PoolStats {
        workers: jobs,
        steals: 0,
        executed: vec![0; jobs],
        busy: vec![Duration::ZERO; jobs],
        wall: Duration::ZERO,
    };
    let mut pairs: Vec<(usize, R)> = Vec::with_capacity(items.len());
    for (w, out) in outputs.into_iter().enumerate() {
        stats.steals += out.steals;
        stats.executed[w] = out.executed;
        stats.busy[w] = out.busy;
        pairs.extend(out.results);
    }
    assert_eq!(pairs.len(), items.len(), "pool executed every item exactly once");
    pairs.sort_unstable_by_key(|&(i, _)| i);
    let results = pairs.into_iter().map(|(_, r)| r).collect();
    stats.wall = t0.elapsed();
    (results, stats)
}

/// Rob the victim with the most remaining work: take one index now and
/// move the upper half of the rest into the thief's own queue.
fn steal(queues: &[Mutex<Range>], thief: usize) -> Option<usize> {
    loop {
        // Pick the victim with the largest remaining range (snapshot; the
        // range may shrink before we lock it again, so re-check under the
        // lock and retry while any queue looks non-empty).
        let victim = queues
            .iter()
            .enumerate()
            .filter(|&(w, _)| w != thief)
            .map(|(w, q)| (w, q.lock().expect("pool queue poisoned").remaining()))
            .max_by_key(|&(_, len)| len)
            .filter(|&(_, len)| len > 0)?
            .0;
        let mut v = queues[victim].lock().expect("pool queue poisoned");
        if v.next >= v.end {
            continue; // drained between snapshot and lock; rescan
        }
        let index = v.next;
        v.next += 1;
        let mid = v.next + v.remaining() / 2;
        let tail = Range { next: mid, end: v.end };
        v.end = mid;
        drop(v);
        if tail.remaining() > 0 {
            *queues[thief].lock().expect("pool queue poisoned") = tail;
        }
        return Some(index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        for jobs in [1, 2, 3, 8] {
            let (out, stats) = scoped_map(jobs, &items, |_, &x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>(), "jobs={jobs}");
            assert_eq!(stats.executed.iter().sum::<u64>(), 1000);
            assert_eq!(stats.workers, jobs);
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let items: Vec<usize> = (0..257).collect();
        let (out, _) = scoped_map(4, &items, |_, &i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
        assert_eq!(out, items);
    }

    #[test]
    fn more_jobs_than_items_clamps() {
        let (out, stats) = scoped_map(64, &[1, 2, 3], |_, &x| x);
        assert_eq!(out, vec![1, 2, 3]);
        assert!(stats.workers <= 3);
    }

    #[test]
    fn empty_input_is_fine() {
        let (out, stats) = scoped_map(4, &[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn skewed_work_gets_stolen() {
        // One pathological item at the front of worker 0's range; the other
        // workers should drain the rest. We cannot assert steals happened
        // (timing-dependent on a loaded machine) but the results must be
        // complete and ordered.
        let items: Vec<u64> = (0..64).collect();
        let (out, stats) = scoped_map(4, &items, |_, &x| {
            if x == 0 {
                std::thread::sleep(Duration::from_millis(20));
            }
            x
        });
        assert_eq!(out, items);
        assert_eq!(stats.executed.iter().sum::<u64>(), 64);
        assert!(stats.busy.iter().any(|b| *b >= Duration::from_millis(20)));
    }

    #[test]
    fn worker_ids_are_in_range() {
        let items: Vec<u32> = (0..100).collect();
        let (_, stats) = scoped_map(5, &items, |ctx, &x| {
            assert!(ctx.worker < 5);
            assert_eq!(ctx.index as u32, x);
            x
        });
        assert_eq!(stats.executed.len(), 5);
        assert_eq!(stats.busy.len(), 5);
    }
}
