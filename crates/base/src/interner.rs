//! Interning of node type names.
//!
//! Types (XML element names, LDAP object classes) appear everywhere in
//! patterns, documents and constraints. Interning them once into dense
//! [`TypeId`]s lets every hot path — containment-mapping candidate
//! initialization, constraint lookups keyed by `(TypeId, TypeId)`,
//! information-content propagation — hash and compare plain `u32`s.

use crate::FxHashMap;
use std::fmt;

/// A dense identifier for an interned type name.
///
/// Ids are allocated consecutively from 0 by a [`TypeInterner`], so they can
/// double as indexes into `Vec`-backed per-type tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeId(pub u32);

impl TypeId {
    /// The id as a usize, for indexing per-type tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Bidirectional map between type names and [`TypeId`]s.
///
/// A single interner is shared by the patterns, documents and constraints
/// that participate in one minimization problem, so that equal names mean
/// equal ids across all of them.
///
/// ```
/// use tpq_base::TypeInterner;
/// let mut tys = TypeInterner::new();
/// let book = tys.intern("Book");
/// assert_eq!(tys.intern("Book"), book);      // idempotent
/// assert_eq!(tys.name(book), "Book");
/// assert_eq!(tys.lookup("Title"), None);      // not interned yet
/// ```
#[derive(Debug, Clone, Default)]
pub struct TypeInterner {
    names: Vec<String>,
    by_name: FxHashMap<String, TypeId>,
}

impl TypeInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its id (allocating a fresh one if needed).
    pub fn intern(&mut self, name: &str) -> TypeId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = TypeId(u32::try_from(self.names.len()).expect("more than u32::MAX types"));
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Look up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<TypeId> {
        self.by_name.get(name).copied()
    }

    /// The name behind `id`.
    ///
    /// # Panics
    /// Panics if `id` was not allocated by this interner.
    pub fn name(&self, id: TypeId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct interned types.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no types have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over all `(id, name)` pairs in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = (TypeId, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (TypeId(i as u32), n.as_str()))
    }

    /// Rebuild the name → id index after deserialization (the index is not
    /// part of any serialised form).
    pub fn rebuild_index(&mut self) {
        self.by_name =
            self.names.iter().enumerate().map(|(i, n)| (n.clone(), TypeId(i as u32))).collect();
    }

    /// Intern a batch of names, returning their ids in order. Convenient for
    /// tests and generators.
    pub fn intern_all<'a, I: IntoIterator<Item = &'a str>>(&mut self, names: I) -> Vec<TypeId> {
        names.into_iter().map(|n| self.intern(n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut t = TypeInterner::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_eq!(a, TypeId(0));
        assert_eq!(b, TypeId(1));
        assert_eq!(t.intern("a"), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lookup_and_name_round_trip() {
        let mut t = TypeInterner::new();
        let id = t.intern("Organization");
        assert_eq!(t.lookup("Organization"), Some(id));
        assert_eq!(t.name(id), "Organization");
        assert_eq!(t.lookup("Missing"), None);
    }

    #[test]
    fn iter_yields_allocation_order() {
        let mut t = TypeInterner::new();
        t.intern_all(["x", "y", "z"]);
        let collected: Vec<_> = t.iter().map(|(id, n)| (id.0, n.to_owned())).collect();
        assert_eq!(collected, vec![(0, "x".to_owned()), (1, "y".to_owned()), (2, "z".to_owned())]);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut t = TypeInterner::new();
        t.intern("alpha");
        let mut clone = TypeInterner { names: t.names.clone(), by_name: Default::default() };
        assert_eq!(clone.lookup("alpha"), None);
        clone.rebuild_index();
        assert_eq!(clone.lookup("alpha"), Some(TypeId(0)));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(TypeId(42).to_string(), "t42");
    }
}
