//! The workspace hash function.
//!
//! Every hot map in the workspace is keyed by small dense integers
//! (`TypeId`, `NodeId`, pairs of them), so a short multiply-rotate mixer
//! beats SipHash by a wide margin (DESIGN.md §5). The implementation is
//! self-contained: the build must not depend on any external registry.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier with a good bit-dispersion pattern (odd, high entropy).
const K: u64 = 0x9e37_79b9_7f4a_7c15;

/// A fast, non-cryptographic hasher for small keys.
///
/// Each written word is folded in with a rotate-xor-multiply step; strings
/// are consumed eight bytes at a time. Not DoS-resistant — do not expose
/// to untrusted key sets.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(26) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // A final avalanche so that low bits (used by the table mask)
        // depend on every input bit.
        let mut h = self.state;
        h ^= h >> 32;
        h = h.wrapping_mul(K);
        h ^= h >> 29;
        h
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s; plugs into `HashMap::default`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn distinct_small_keys_hash_distinctly() {
        let hashes: std::collections::HashSet<u64> = (0u32..1000).map(hash_of).collect();
        assert_eq!(hashes.len(), 1000);
    }

    #[test]
    fn pairs_do_not_collide_trivially() {
        let mut seen = std::collections::HashSet::new();
        for a in 0u32..40 {
            for b in 0u32..40 {
                seen.insert(hash_of((a, b)));
            }
        }
        assert_eq!(seen.len(), 1600, "no collisions on a small pair grid");
    }

    #[test]
    fn strings_hash_consistently() {
        assert_eq!(hash_of("Book"), hash_of("Book"));
        assert_ne!(hash_of("Book"), hash_of("Boot"));
        // Length is mixed in: a prefix must not collide with the whole.
        assert_ne!(hash_of("ab"), hash_of("ab\0\0"));
    }

    #[test]
    fn low_bits_vary() {
        // HashMap masks with (capacity - 1); consecutive keys must spread
        // over the low bits.
        let low: std::collections::HashSet<u64> = (0u32..64).map(|v| hash_of(v) & 63).collect();
        assert!(low.len() > 32, "low-bit spread too weak: {}", low.len());
    }
}
