//! Foundations shared by every crate in the tree-pattern-query workspace.
//!
//! This crate deliberately has no knowledge of patterns, documents or
//! constraints. It provides:
//!
//! * [`TypeId`] / [`TypeInterner`] — node *types* (element names, LDAP object
//!   classes) interned to dense `u32` ids so that all hot algorithms compare
//!   and hash plain integers;
//! * [`TypeSet`] — the small sorted set of types carried by a data node
//!   (LDAP entries are multi-typed; the chase of co-occurrence constraints
//!   adds types to pattern nodes);
//! * [`FxHashMap`] / [`FxHashSet`] — std maps with the fast in-tree hasher
//!   (see DESIGN.md §5);
//! * [`Json`] — a small self-contained JSON model for serialisation;
//! * [`SmallRng`] — a deterministic PRNG for generators and tests;
//! * [`pool`] — a scoped work-stealing thread pool for batch fan-out and a
//!   persistent [`TaskPool`] for services, both with per-task panic
//!   isolation;
//! * [`Guard`] — deadlines, step budgets and cooperative cancellation
//!   for the expensive algorithms (see `docs/ROBUSTNESS.md`);
//! * [`failpoint`] — deterministic fault injection (`TPQ_FAILPOINT`);
//! * [`fd`] (Linux) — raw `epoll`/`eventfd` FFI and safe wrappers, the
//!   substrate of the `tpq-serve` event-loop reactor;
//! * [`Error`] / [`Result`] — the workspace-wide error type.

pub mod error;
pub mod failpoint;
#[cfg(target_os = "linux")]
pub mod fd;
pub mod guard;
pub mod hash;
pub mod interner;
pub mod json;
pub mod pool;
pub mod rng;
pub mod typeset;
pub mod value;

pub use error::{BudgetResource, Error, Result};
pub use guard::{Guard, GuardBuilder};
pub use hash::{FxBuildHasher, FxHasher};
pub use interner::{TypeId, TypeInterner};
pub use json::{Json, JsonError};
pub use pool::TaskPool;
pub use rng::SmallRng;
pub use typeset::TypeSet;
pub use value::{Cmp, Value};

/// Fast hash map keyed by small integer ids (in-tree hasher, DESIGN.md §5).
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// Fast hash set, companion to [`FxHashMap`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;
