//! Foundations shared by every crate in the tree-pattern-query workspace.
//!
//! This crate deliberately has no knowledge of patterns, documents or
//! constraints. It provides:
//!
//! * [`TypeId`] / [`TypeInterner`] — node *types* (element names, LDAP object
//!   classes) interned to dense `u32` ids so that all hot algorithms compare
//!   and hash plain integers;
//! * [`TypeSet`] — the small sorted set of types carried by a data node
//!   (LDAP entries are multi-typed; the chase of co-occurrence constraints
//!   adds types to pattern nodes);
//! * [`Error`] / [`Result`] — the workspace-wide error type.

pub mod error;
pub mod interner;
pub mod typeset;
pub mod value;

pub use error::{Error, Result};
pub use interner::{TypeId, TypeInterner};
pub use typeset::TypeSet;
pub use value::{Cmp, Value};

/// Fast hash map keyed by small integer ids (see DESIGN.md §5 for the
/// justification of `rustc-hash`).
pub type FxHashMap<K, V> = rustc_hash::FxHashMap<K, V>;
/// Fast hash set, companion to [`FxHashMap`].
pub type FxHashSet<K> = rustc_hash::FxHashSet<K>;
