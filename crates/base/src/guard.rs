//! Cooperative resource governance for expensive algorithms.
//!
//! Minimization, the chase and the matchers are worst-case expensive; a
//! production service cannot let one adversarial input stall the process.
//! A [`Guard`] carries three independent limits — a wall-clock deadline, a
//! step budget, and a cancellation flag — and the expensive loops check it
//! at their heads via [`Guard::spend`]. When a limit trips the algorithm
//! unwinds with [`Error::Budget`], leaving the caller's input untouched.
//!
//! Guards are cheap to clone (an `Arc` bump) and share their state across
//! clones, so a batch driver can hand one guard to a worker thread and
//! [`cancel`](Guard::cancel) it from outside.
//!
//! The unlimited guard is free: [`Guard::unlimited`] performs no atomic
//! traffic on the spend path beyond one branch, so infallible legacy entry
//! points wrap the guarded ones at zero practical cost. Deadline reads are
//! amortized — `Instant::now` is consulted once every
//! [`DEADLINE_CHECK_INTERVAL`] spent steps and at every explicit
//! [`check`](Guard::check) — so a 1 ms deadline still trips promptly while
//! hot loops stay cheap.

use crate::error::{BudgetResource, Error, Result};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How many spent steps may pass between two wall-clock reads. Powers of
/// two keep the modulo a mask.
pub const DEADLINE_CHECK_INTERVAL: u64 = 128;

#[derive(Debug)]
struct GuardInner {
    /// Instant after which [`Guard::spend`] fails; `None` disables it.
    deadline: Option<Instant>,
    /// When the deadline was armed — reported limits/spent are relative.
    armed_at: Instant,
    /// Deadline expressed in milliseconds, for error reporting.
    deadline_ms: u64,
    /// Maximum number of steps; `u64::MAX` disables the budget.
    budget: u64,
    /// Steps spent so far across all clones.
    spent: AtomicU64,
    /// Cooperative cancellation flag, shared across clones.
    cancelled: AtomicBool,
}

/// A clonable handle bundling a deadline, a step budget and a cancel flag.
///
/// See the [module docs](self) for the design; see `docs/ROBUSTNESS.md`
/// for how the workspace threads guards through its layers.
#[derive(Debug, Clone)]
pub struct Guard {
    inner: Option<Arc<GuardInner>>,
}

impl Default for Guard {
    fn default() -> Self {
        Guard::unlimited()
    }
}

impl Guard {
    /// A guard that never trips (modulo [`cancel`](Guard::cancel), which
    /// is unavailable without limits — unlimited guards share no state).
    /// The spend path is a single branch; infallible wrappers use this.
    pub fn unlimited() -> Self {
        Guard { inner: None }
    }

    /// A guard with a wall-clock deadline of `ms` milliseconds from now.
    pub fn with_deadline_ms(ms: u64) -> Self {
        GuardBuilder::new().deadline_ms(ms).build()
    }

    /// A guard with a step budget: after `steps` units of work,
    /// [`spend`](Guard::spend) fails.
    pub fn with_budget(steps: u64) -> Self {
        GuardBuilder::new().budget(steps).build()
    }

    /// A cancellable guard with no other limits.
    pub fn cancellable() -> Self {
        GuardBuilder::new().build_limited()
    }

    /// Start composing a guard with several limits.
    pub fn builder() -> GuardBuilder {
        GuardBuilder::new()
    }

    /// True when this guard can never trip.
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    /// Raise the cancellation flag: every clone of this guard fails its
    /// next check. No-op on unlimited guards (they share no state).
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Release);
        }
    }

    /// Has [`cancel`](Guard::cancel) been called on any clone?
    pub fn is_cancelled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.cancelled.load(Ordering::Acquire))
    }

    /// Steps spent so far across all clones (0 for unlimited guards).
    pub fn spent(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.spent.load(Ordering::Relaxed))
    }

    /// Account `steps` units of work and fail if any limit has tripped.
    ///
    /// The deadline is consulted when the spent counter crosses a
    /// [`DEADLINE_CHECK_INTERVAL`] boundary; call [`check`](Guard::check)
    /// at coarse loop heads for an unconditional read.
    #[inline]
    pub fn spend(&self, steps: u64) -> Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let spent = inner.spent.fetch_add(steps, Ordering::Relaxed) + steps;
        if inner.cancelled.load(Ordering::Acquire) {
            return Err(Error::Budget { resource: BudgetResource::Cancelled, spent, limit: 0 });
        }
        if spent > inner.budget {
            return Err(Error::Budget {
                resource: BudgetResource::Steps,
                spent,
                limit: inner.budget,
            });
        }
        // Amortize Instant::now(): only read the clock when the counter
        // crossed an interval boundary.
        if let Some(deadline) = inner.deadline {
            let crossed =
                (spent / DEADLINE_CHECK_INTERVAL) != ((spent - steps) / DEADLINE_CHECK_INTERVAL);
            if crossed {
                let now = Instant::now();
                if now >= deadline {
                    return Err(self.deadline_error(inner, now));
                }
            }
        }
        Ok(())
    }

    /// Unconditional limit check (always reads the clock when a deadline
    /// is armed). Use at the heads of coarse outer loops so short
    /// deadlines trip before the amortized counter does.
    #[inline]
    pub fn check(&self) -> Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if inner.cancelled.load(Ordering::Acquire) {
            return Err(Error::Budget {
                resource: BudgetResource::Cancelled,
                spent: inner.spent.load(Ordering::Relaxed),
                limit: 0,
            });
        }
        let spent = inner.spent.load(Ordering::Relaxed);
        if spent > inner.budget {
            return Err(Error::Budget {
                resource: BudgetResource::Steps,
                spent,
                limit: inner.budget,
            });
        }
        if let Some(deadline) = inner.deadline {
            let now = Instant::now();
            if now >= deadline {
                return Err(self.deadline_error(inner, now));
            }
        }
        Ok(())
    }

    fn deadline_error(&self, inner: &GuardInner, now: Instant) -> Error {
        Error::Budget {
            resource: BudgetResource::Deadline,
            spent: now.duration_since(inner.armed_at).as_millis() as u64,
            limit: inner.deadline_ms,
        }
    }
}

/// Composes a [`Guard`] out of individual limits.
#[derive(Debug, Default, Clone, Copy)]
pub struct GuardBuilder {
    deadline_ms: Option<u64>,
    budget: Option<u64>,
}

impl GuardBuilder {
    /// An empty builder: [`build`](GuardBuilder::build) with no limits set
    /// yields an unlimited guard.
    pub fn new() -> Self {
        GuardBuilder::default()
    }

    /// Arm a wall-clock deadline `ms` milliseconds from `build` time.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Arm a step budget.
    pub fn budget(mut self, steps: u64) -> Self {
        self.budget = Some(steps);
        self
    }

    /// Build the guard. With no limits set this returns
    /// [`Guard::unlimited`] (free spend path, but not cancellable).
    pub fn build(self) -> Guard {
        if self.deadline_ms.is_none() && self.budget.is_none() {
            return Guard::unlimited();
        }
        self.build_limited()
    }

    /// Build a guard that always carries shared state, so
    /// [`Guard::cancel`] works even with no other limit armed.
    pub fn build_limited(self) -> Guard {
        let armed_at = Instant::now();
        let deadline_ms = self.deadline_ms.unwrap_or(0);
        Guard {
            inner: Some(Arc::new(GuardInner {
                deadline: self
                    .deadline_ms
                    .map(|ms| armed_at + std::time::Duration::from_millis(ms)),
                armed_at,
                deadline_ms,
                budget: self.budget.unwrap_or(u64::MAX),
                spent: AtomicU64::new(0),
                cancelled: AtomicBool::new(false),
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_guard_never_trips() {
        let g = Guard::unlimited();
        for _ in 0..10_000 {
            g.spend(1_000_000).unwrap();
        }
        g.check().unwrap();
        assert!(g.is_unlimited());
        assert_eq!(g.spent(), 0);
        g.cancel(); // no-op
        assert!(!g.is_cancelled());
    }

    #[test]
    fn step_budget_trips_at_the_limit() {
        let g = Guard::with_budget(10);
        for _ in 0..10 {
            g.spend(1).unwrap();
        }
        let err = g.spend(1).unwrap_err();
        match err {
            Error::Budget { resource: BudgetResource::Steps, spent, limit } => {
                assert_eq!(limit, 10);
                assert_eq!(spent, 11);
            }
            other => panic!("wrong error: {other}"),
        }
        // Once tripped, stays tripped.
        assert!(g.check().is_err());
    }

    #[test]
    fn bulk_spend_counts_every_step() {
        let g = Guard::with_budget(100);
        g.spend(100).unwrap();
        assert!(g.spend(1).is_err());
        assert_eq!(g.spent(), 101);
    }

    #[test]
    fn expired_deadline_trips_check_immediately() {
        let g = Guard::with_deadline_ms(0);
        std::thread::sleep(Duration::from_millis(2));
        let err = g.check().unwrap_err();
        assert!(matches!(err, Error::Budget { resource: BudgetResource::Deadline, .. }), "{err}");
    }

    #[test]
    fn deadline_trips_spend_within_one_interval() {
        let g = Guard::with_deadline_ms(1);
        std::thread::sleep(Duration::from_millis(5));
        let mut tripped = false;
        for _ in 0..=DEADLINE_CHECK_INTERVAL {
            if g.spend(1).is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "spend must notice an expired deadline within one interval");
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let g = Guard::with_deadline_ms(60_000);
        for _ in 0..1_000 {
            g.spend(1).unwrap();
        }
        g.check().unwrap();
    }

    #[test]
    fn cancel_reaches_every_clone() {
        let g = Guard::cancellable();
        let clone = g.clone();
        clone.spend(5).unwrap();
        g.cancel();
        assert!(clone.is_cancelled());
        let err = clone.spend(1).unwrap_err();
        assert!(matches!(err, Error::Budget { resource: BudgetResource::Cancelled, .. }), "{err}");
        assert!(clone.check().is_err());
    }

    #[test]
    fn cancel_from_another_thread() {
        let g = Guard::cancellable();
        let worker = g.clone();
        let handle = std::thread::spawn(move || {
            // Spin until the main thread cancels us.
            loop {
                if worker.spend(1).is_err() {
                    return worker.spent();
                }
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        g.cancel();
        let spent = handle.join().unwrap();
        assert!(spent > 0);
    }

    #[test]
    fn builder_combines_limits() {
        let g = Guard::builder().budget(5).deadline_ms(60_000).build();
        assert!(!g.is_unlimited());
        g.spend(5).unwrap();
        assert!(g.spend(1).unwrap_err().is_budget());
    }

    #[test]
    fn empty_builder_is_unlimited() {
        assert!(Guard::builder().build().is_unlimited());
        assert!(Guard::default().is_unlimited());
        // ...but build_limited always carries state, for cancellation.
        assert!(!Guard::builder().build_limited().is_unlimited());
    }

    #[test]
    fn shared_spend_accumulates_across_clones() {
        let g = Guard::with_budget(10);
        let a = g.clone();
        let b = g.clone();
        a.spend(6).unwrap();
        b.spend(4).unwrap();
        assert_eq!(g.spent(), 10);
        assert!(a.spend(1).is_err());
    }
}
