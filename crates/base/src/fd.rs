//! Raw file-descriptor plumbing for the epoll reactor: `epoll(7)`,
//! `eventfd(2)` and `getrlimit(2)` without a libc crate.
//!
//! `std` already links the platform C library, so — exactly like the
//! `signal(2)` declaration in `tpq-serve` — we declare the handful of
//! symbols we need ourselves and keep the workspace dependency-free. The
//! module is Linux-only (`epoll` and `eventfd` are Linux APIs); the serve
//! crate gates its reactor on the same `cfg` and falls back to the
//! threaded core elsewhere.
//!
//! Two safe wrappers cover everything the reactor needs:
//!
//! * [`Epoll`] — an epoll instance. Interest is registered per fd with a
//!   `u64` token that comes back verbatim in every ready event, so the
//!   reactor can map events to connection slots without a lookup table.
//! * [`EventFd`] — a nonblocking `eventfd` used as the reactor's
//!   self-wakeup: pool workers [`signal`](EventFd::signal) it after
//!   pushing a completed response, which makes a blocked
//!   [`Epoll::wait`] return immediately. Thread-safe through `&self`
//!   (both syscalls are atomic on the kernel side).
//!
//! ```no_run
//! use tpq_base::fd::{Epoll, EventFd, EpollEvent, EPOLLIN, EPOLLET};
//!
//! let epoll = Epoll::new().unwrap();
//! let wake = EventFd::new().unwrap();
//! epoll.add(wake.raw(), EPOLLIN | EPOLLET, 7).unwrap();
//! wake.signal();
//! let mut events = [EpollEvent::default(); 8];
//! let n = epoll.wait(&mut events, 1000).unwrap();
//! assert_eq!(events[..n][0].token(), 7);
//! ```

use std::io;
use std::os::raw::{c_int, c_uint, c_void};

/// Readable (or a peer hang-up is pending — Linux folds both in).
pub const EPOLLIN: u32 = 0x001;
/// Writable without blocking.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition on the fd (always reported; no need to register).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up: both directions closed (always reported).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing half (must be registered to be reported).
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered delivery: one event per readiness *transition*; the
/// consumer must then read/write until `EAGAIN` or it will never hear
/// about that fd again.
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0x80000;
const EFD_CLOEXEC: c_int = 0x80000;
const EFD_NONBLOCK: c_int = 0x800;
const RLIMIT_NOFILE: c_int = 7;

/// One ready event, ABI-compatible with the kernel's `struct epoll_event`.
/// The struct is packed on x86-64 (a historical quirk of the 64-bit ABI)
/// and naturally aligned everywhere else.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy, Default)]
pub struct EpollEvent {
    events: u32,
    data: u64,
}

impl EpollEvent {
    /// The readiness mask (`EPOLLIN | …`) the kernel reported.
    pub fn events(&self) -> u32 {
        // By-value read: the field may be unaligned on x86-64, so no
        // reference to it may be formed.
        self.events
    }

    /// The token the fd was registered with.
    pub fn token(&self) -> u64 {
        self.data
    }
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
}

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

/// The process's open-file limit as `(soft, hard)`, or `None` if the
/// query fails. Connection-scaling tests and benches size their fd
/// budgets from this instead of hard-coding a target that EMFILEs on a
/// constrained machine.
pub fn nofile_limit() -> Option<(u64, u64)> {
    let mut rlim = RLimit { cur: 0, max: 0 };
    match unsafe { getrlimit(RLIMIT_NOFILE, &mut rlim) } {
        0 => Some((rlim.cur, rlim.max)),
        _ => None,
    }
}

/// An owned epoll instance; the fd closes on drop.
#[derive(Debug)]
pub struct Epoll {
    fd: c_int,
}

impl Epoll {
    /// Create an epoll instance (close-on-exec).
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent { events, data: token };
        if unsafe { epoll_ctl(self.fd, op, fd, &mut event) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register interest in `events` on `fd`; ready events carry `token`
    /// back. Registration counts as an edge: an fd that is already ready
    /// is reported by the next [`wait`](Epoll::wait).
    pub fn add(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Replace the interest mask (and token) of an already-registered fd.
    pub fn modify(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Drop an fd from the interest list. Closing an fd deregisters it
    /// implicitly; this exists for fds that outlive their registration.
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Block until at least one registered fd is ready, `timeout_ms`
    /// elapses (`-1` = forever, `0` = poll), or a signal interrupts the
    /// wait. Returns how many entries of `events` were filled; `EINTR`
    /// maps to `Ok(0)` so callers treat it like a timeout tick.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let n = unsafe {
            epoll_wait(self.fd, events.as_mut_ptr(), events.len().min(4096) as c_int, timeout_ms)
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// An owned nonblocking `eventfd`, used as a cross-thread wakeup for an
/// [`Epoll`] loop. Both [`signal`](EventFd::signal) and
/// [`drain`](EventFd::drain) take `&self` and are safe to call from any
/// thread concurrently.
#[derive(Debug)]
pub struct EventFd {
    fd: c_int,
}

impl EventFd {
    /// Create the eventfd (counter 0, nonblocking, close-on-exec).
    pub fn new() -> io::Result<EventFd> {
        let fd = unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EventFd { fd })
    }

    /// The raw fd, for registration with [`Epoll::add`].
    pub fn raw(&self) -> i32 {
        self.fd
    }

    /// Add 1 to the counter, waking any epoll waiting on `EPOLLIN`.
    /// Best-effort: the only failure mode of a nonblocking eventfd write
    /// is a full (`u64::MAX - 1`) counter, which still leaves the fd
    /// readable — the wakeup the caller wanted is already pending.
    pub fn signal(&self) {
        let value: u64 = 1;
        unsafe { write(self.fd, (&value as *const u64).cast(), 8) };
    }

    /// Read-and-zero the counter, re-arming edge-triggered interest.
    /// Returns the number of signals folded into this wakeup (0 if the
    /// counter was already empty).
    pub fn drain(&self) -> u64 {
        let mut value: u64 = 0;
        let n = unsafe { read(self.fd, (&mut value as *mut u64).cast(), 8) };
        if n == 8 {
            value
        } else {
            0
        }
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_signals_wake_epoll_and_drain_rearms() {
        let epoll = Epoll::new().unwrap();
        let wake = EventFd::new().unwrap();
        epoll.add(wake.raw(), EPOLLIN | EPOLLET, 42).unwrap();

        // No signal yet: a zero-timeout wait sees nothing.
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        wake.signal();
        wake.signal();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);
        assert_ne!(events[0].events() & EPOLLIN, 0);

        // Both signals fold into one counter read; after the drain the
        // edge is re-armed and silence means silence.
        assert_eq!(wake.drain(), 2);
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        // A fresh signal after the drain is a new edge.
        wake.signal();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        assert_eq!(wake.drain(), 1);
    }

    #[test]
    fn epoll_reports_readiness_present_at_registration() {
        // ADD on an already-readable fd must count as an edge, or the
        // reactor would hang on data that raced connection registration.
        let wake = EventFd::new().unwrap();
        wake.signal();
        let epoll = Epoll::new().unwrap();
        epoll.add(wake.raw(), EPOLLIN | EPOLLET, 9).unwrap();
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        assert_eq!(events[0].token(), 9);
    }

    #[test]
    fn modify_and_delete_round_trip() {
        let epoll = Epoll::new().unwrap();
        let wake = EventFd::new().unwrap();
        epoll.add(wake.raw(), EPOLLIN, 1).unwrap();
        epoll.modify(wake.raw(), EPOLLIN, 2).unwrap();
        wake.signal();
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        assert_eq!(events[0].token(), 2, "modify replaced the token");
        epoll.delete(wake.raw()).unwrap();
        wake.signal();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "deleted fd is silent");
    }

    #[test]
    fn nofile_limit_is_queryable() {
        let (soft, hard) = nofile_limit().expect("getrlimit");
        assert!(soft >= 64, "implausibly low fd limit: {soft}");
        assert!(hard >= soft);
    }
}
