//! Deterministic fault injection.
//!
//! A *failpoint* is a named hook compiled into production code at a place
//! where faults are interesting: a chase step, a pool task, a parser
//! entry. In normal operation a hook costs one relaxed atomic load. When
//! armed — programmatically via [`arm`]/[`set`], or through the
//! `TPQ_FAILPOINT` environment variable — the hook fires a configured
//! fault on a configured hit count, letting tests drive panics and errors
//! through the public API deterministically:
//!
//! ```text
//! TPQ_FAILPOINT=chase.step=panic@17          # panic on the 17th chase step
//! TPQ_FAILPOINT=pool.task=err,parse.json=err # error on first hit of each
//! ```
//!
//! Syntax: comma-separated `name=action[@n]` entries, where `action` is
//! `panic` or `err` and `@n` (default 1) selects the nth hit. Each armed
//! entry fires **once** and then disarms itself, so a single run observes
//! exactly the configured fault — re-arm for repeated faults.
//!
//! Failpoint names in this workspace are listed in `docs/ROBUSTNESS.md`.

use crate::error::{Error, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Panic with a recognizable message — exercises `catch_unwind` paths.
    Panic,
    /// Return [`Error::Injected`] from the hook.
    Err,
}

struct Entry {
    action: Action,
    /// Fire on the nth hit (1-based).
    on_hit: u64,
    /// Hits observed so far.
    hits: u64,
    /// When set, only hits from this thread count — lets a test arm a
    /// globally-named point (e.g. `pool.task`) without racing parallel
    /// tests in the same process.
    thread: Option<std::thread::ThreadId>,
}

/// Fast-path flag: true iff the registry holds at least one armed entry.
static ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<String, Entry>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut map = HashMap::new();
        if let Ok(spec) = std::env::var("TPQ_FAILPOINT") {
            if let Ok(entries) = parse_spec(&spec) {
                for (name, action, on_hit) in entries {
                    map.insert(name, Entry { action, on_hit, hits: 0, thread: None });
                }
            }
        }
        if !map.is_empty() {
            ARMED.store(true, Ordering::Release);
        }
        Mutex::new(map)
    })
}

/// Parse a `TPQ_FAILPOINT`-style spec into `(name, action, on_hit)`
/// triples. Public so the CLI and tests can validate specs up front.
pub fn parse_spec(spec: &str) -> std::result::Result<Vec<(String, Action, u64)>, String> {
    let mut out = Vec::new();
    for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (name, rhs) =
            part.split_once('=').ok_or_else(|| format!("failpoint entry '{part}' lacks '='"))?;
        let (action_text, on_hit) = match rhs.split_once('@') {
            Some((a, n)) => {
                let n: u64 =
                    n.parse().map_err(|_| format!("failpoint '{name}': bad hit count '{n}'"))?;
                if n == 0 {
                    return Err(format!("failpoint '{name}': hit count must be >= 1"));
                }
                (a, n)
            }
            None => (rhs, 1),
        };
        let action = match action_text {
            "panic" => Action::Panic,
            "err" => Action::Err,
            other => return Err(format!("failpoint '{name}': unknown action '{other}'")),
        };
        if name.is_empty() {
            return Err(format!("failpoint entry '{part}' has an empty name"));
        }
        out.push((name.to_owned(), action, on_hit));
    }
    Ok(out)
}

/// Arm `name` to fire `action` on its `on_hit`th hit (1-based).
/// Overwrites any previous arming of the same name and resets its count.
pub fn set(name: &str, action: Action, on_hit: u64) {
    insert(name, action, on_hit, None);
}

/// Like [`set`], but only hits from the **calling thread** count toward
/// the trigger. Use in unit tests that arm shared point names while
/// unrelated tests run in parallel threads of the same process.
pub fn set_for_thread(name: &str, action: Action, on_hit: u64) {
    insert(name, action, on_hit, Some(std::thread::current().id()));
}

fn insert(name: &str, action: Action, on_hit: u64, thread: Option<std::thread::ThreadId>) {
    let mut map = registry().lock().expect("failpoint registry poisoned");
    map.insert(name.to_owned(), Entry { action, on_hit: on_hit.max(1), hits: 0, thread });
    ARMED.store(true, Ordering::Release);
}

/// Disarm `name` (no-op when it was not armed).
pub fn clear(name: &str) {
    let mut map = registry().lock().expect("failpoint registry poisoned");
    map.remove(name);
    if map.is_empty() {
        ARMED.store(false, Ordering::Release);
    }
}

/// Disarm everything.
pub fn clear_all() {
    let mut map = registry().lock().expect("failpoint registry poisoned");
    map.clear();
    ARMED.store(false, Ordering::Release);
}

/// RAII arming: the failpoint is disarmed when the returned token drops.
/// Prefer this in tests — it keeps parallel tests from leaking armed
/// points into each other (use a unique name per test regardless).
#[must_use = "the failpoint disarms when this token drops"]
pub fn arm(name: &str, action: Action, on_hit: u64) -> ArmedFailpoint {
    set(name, action, on_hit);
    ArmedFailpoint { name: name.to_owned() }
}

/// RAII variant of [`set_for_thread`].
#[must_use = "the failpoint disarms when this token drops"]
pub fn arm_for_thread(name: &str, action: Action, on_hit: u64) -> ArmedFailpoint {
    set_for_thread(name, action, on_hit);
    ArmedFailpoint { name: name.to_owned() }
}

/// Token returned by [`arm`]; clears the failpoint on drop.
pub struct ArmedFailpoint {
    name: String,
}

impl Drop for ArmedFailpoint {
    fn drop(&mut self) {
        clear(&self.name);
    }
}

/// The hook: call at a named failpoint. Nearly free (two uncontended
/// atomic loads) unless some failpoint is armed. When `name` is armed and
/// this is its configured hit, the point disarms itself and fires —
/// either panicking or returning [`Error::Injected`].
#[inline]
pub fn hit(name: &str) -> Result<()> {
    // Parse TPQ_FAILPOINT exactly once, lazily; after initialization this
    // is a single acquire load.
    static ENV_LOADED: OnceLock<()> = OnceLock::new();
    ENV_LOADED.get_or_init(|| {
        let _ = registry();
    });
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    fire(name)
}

#[cold]
fn fire(name: &str) -> Result<()> {
    let action = {
        let mut map = registry().lock().expect("failpoint registry poisoned");
        match map.get_mut(name) {
            None => return Ok(()),
            Some(entry) => {
                if entry.thread.is_some_and(|t| t != std::thread::current().id()) {
                    return Ok(());
                }
                entry.hits += 1;
                if entry.hits != entry.on_hit {
                    return Ok(());
                }
                let action = entry.action;
                map.remove(name);
                if map.is_empty() {
                    ARMED.store(false, Ordering::Release);
                }
                action
            }
        }
    };
    match action {
        Action::Panic => panic!("injected panic at failpoint '{name}'"),
        Action::Err => Err(Error::Injected { point: name.to_owned() }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_hits_are_free_and_ok() {
        for _ in 0..1000 {
            hit("test.unarmed.point").unwrap();
        }
    }

    #[test]
    fn thread_scoped_arming_ignores_other_threads() {
        let _fp = arm_for_thread("test.thread.point", Action::Err, 1);
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..10 {
                    hit("test.thread.point").unwrap();
                }
            });
        });
        // Still armed: the other thread's hits did not count.
        assert!(hit("test.thread.point").is_err());
    }

    #[test]
    fn err_action_fires_on_the_configured_hit_then_disarms() {
        let _fp = arm("test.err.point", Action::Err, 3);
        hit("test.err.point").unwrap();
        hit("test.err.point").unwrap();
        let err = hit("test.err.point").unwrap_err();
        assert_eq!(err, Error::Injected { point: "test.err.point".into() });
        // One-shot: the 4th hit is clean again.
        hit("test.err.point").unwrap();
    }

    #[test]
    fn panic_action_panics_with_recognizable_message() {
        let _fp = arm("test.panic.point", Action::Panic, 1);
        let caught = std::panic::catch_unwind(|| hit("test.panic.point"));
        let payload = caught.unwrap_err();
        let message = payload.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("injected panic at failpoint 'test.panic.point'"), "{message}");
    }

    #[test]
    fn raii_token_disarms_on_drop() {
        {
            let _fp = arm("test.raii.point", Action::Err, 1);
        }
        hit("test.raii.point").unwrap();
    }

    #[test]
    fn clear_and_set_interact() {
        set("test.clear.point", Action::Err, 1);
        clear("test.clear.point");
        hit("test.clear.point").unwrap();
    }

    #[test]
    fn spec_parsing_accepts_the_documented_grammar() {
        let entries = parse_spec("chase.step=panic@17, pool.task=err").unwrap();
        assert_eq!(
            entries,
            vec![
                ("chase.step".to_owned(), Action::Panic, 17),
                ("pool.task".to_owned(), Action::Err, 1),
            ]
        );
        assert!(parse_spec("").unwrap().is_empty());
    }

    #[test]
    fn spec_parsing_rejects_malformed_entries() {
        for bad in ["nameonly", "x=explode", "x=err@zero", "x=err@0", "=err"] {
            assert!(parse_spec(bad).is_err(), "{bad} should be rejected");
        }
    }
}
