//! Workspace-wide error type.
//!
//! Every fallible public operation in the workspace returns
//! [`Result<T>`](Result). The variants are deliberately coarse: each one
//! identifies the *layer* that failed and carries a human-readable message
//! with position information where available.

use std::fmt;

/// Errors produced anywhere in the tree-pattern-query workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The pattern DSL could not be parsed.
    PatternParse {
        /// Byte offset in the input where the error was detected.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// The XML-subset document text could not be parsed.
    XmlParse {
        /// Byte offset in the input where the error was detected.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// The constraint DSL could not be parsed.
    ConstraintParse {
        /// Line number (1-based) where the error was detected.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The schema DSL could not be parsed.
    SchemaParse {
        /// Line number (1-based) where the error was detected.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A structurally invalid pattern (e.g. no output node, a cycle, a
    /// dangling node id) was handed to an algorithm.
    InvalidPattern(String),
    /// A structurally invalid document was handed to an algorithm.
    InvalidDocument(String),
    /// A constraint set violated an internal invariant (e.g. closure of an
    /// inconsistent repository).
    InvalidConstraints(String),
    /// A resource guard tripped: the operation ran out of its deadline or
    /// step budget, or was cancelled cooperatively. The caller's input is
    /// untouched — guarded entry points never publish partial results.
    Budget {
        /// Which resource was exhausted.
        resource: BudgetResource,
        /// How much of the resource was consumed when the guard tripped
        /// (steps for [`BudgetResource::Steps`], elapsed milliseconds for
        /// [`BudgetResource::Deadline`], steps so far for
        /// [`BudgetResource::Cancelled`]).
        spent: u64,
        /// The configured limit (milliseconds for deadlines, steps for
        /// budgets; 0 for cancellation, which has no numeric limit).
        limit: u64,
    },
    /// A deterministic fault injected through `tpq_base::failpoint` — only
    /// ever produced while a failpoint is armed (tests, chaos drills).
    Injected {
        /// Name of the failpoint that fired.
        point: String,
    },
    /// A worker thread panicked while executing an isolated task; the
    /// payload message is preserved. Produced by the panic-capturing pool
    /// paths instead of aborting the process.
    WorkerPanic {
        /// Panic payload rendered as text (best effort).
        message: String,
    },
}

/// The resource dimension a [`Error::Budget`] ran out of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetResource {
    /// The wall-clock deadline passed.
    Deadline,
    /// The step/node budget was spent.
    Steps,
    /// The cooperative cancellation flag was raised.
    Cancelled,
}

impl fmt::Display for BudgetResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetResource::Deadline => write!(f, "deadline"),
            BudgetResource::Steps => write!(f, "step budget"),
            BudgetResource::Cancelled => write!(f, "cancelled"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::PatternParse { offset, message } => {
                write!(f, "pattern parse error at byte {offset}: {message}")
            }
            Error::XmlParse { offset, message } => {
                write!(f, "xml parse error at byte {offset}: {message}")
            }
            Error::ConstraintParse { line, message } => {
                write!(f, "constraint parse error at line {line}: {message}")
            }
            Error::SchemaParse { line, message } => {
                write!(f, "schema parse error at line {line}: {message}")
            }
            Error::InvalidPattern(m) => write!(f, "invalid pattern: {m}"),
            Error::InvalidDocument(m) => write!(f, "invalid document: {m}"),
            Error::InvalidConstraints(m) => write!(f, "invalid constraints: {m}"),
            Error::Budget { resource: BudgetResource::Cancelled, spent, .. } => {
                write!(f, "budget error: cancelled after {spent} steps")
            }
            Error::Budget { resource: BudgetResource::Deadline, spent, limit } => {
                write!(f, "budget error: deadline of {limit} ms exceeded ({spent} ms elapsed)")
            }
            Error::Budget { resource: BudgetResource::Steps, spent, limit } => {
                write!(f, "budget error: step budget of {limit} exhausted ({spent} spent)")
            }
            Error::Injected { point } => write!(f, "injected fault at failpoint '{point}'"),
            Error::WorkerPanic { message } => write!(f, "worker panicked: {message}"),
        }
    }
}

impl Error {
    /// True for [`Error::Budget`] — the "ran out of resources, input
    /// intact" family callers may want to retry with a larger allowance.
    pub fn is_budget(&self) -> bool {
        matches!(self, Error::Budget { .. })
    }
}

impl std::error::Error for Error {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = Error::PatternParse { offset: 7, message: "unexpected ')'".into() };
        assert_eq!(e.to_string(), "pattern parse error at byte 7: unexpected ')'");
        let e = Error::ConstraintParse { line: 3, message: "missing '->'".into() };
        assert_eq!(e.to_string(), "constraint parse error at line 3: missing '->'");
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&Error::InvalidPattern("x".into()));
    }

    #[test]
    fn budget_display_names_the_resource() {
        let e = Error::Budget { resource: BudgetResource::Deadline, spent: 12, limit: 5 };
        assert_eq!(e.to_string(), "budget error: deadline of 5 ms exceeded (12 ms elapsed)");
        assert!(e.is_budget());
        let e = Error::Budget { resource: BudgetResource::Steps, spent: 1001, limit: 1000 };
        assert_eq!(e.to_string(), "budget error: step budget of 1000 exhausted (1001 spent)");
        let e = Error::Budget { resource: BudgetResource::Cancelled, spent: 40, limit: 0 };
        assert_eq!(e.to_string(), "budget error: cancelled after 40 steps");
    }

    #[test]
    fn injected_and_panic_variants_display() {
        let e = Error::Injected { point: "chase.step".into() };
        assert_eq!(e.to_string(), "injected fault at failpoint 'chase.step'");
        assert!(!e.is_budget());
        let e = Error::WorkerPanic { message: "boom".into() };
        assert_eq!(e.to_string(), "worker panicked: boom");
    }
}
