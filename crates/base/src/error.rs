//! Workspace-wide error type.
//!
//! Every fallible public operation in the workspace returns
//! [`Result<T>`](Result). The variants are deliberately coarse: each one
//! identifies the *layer* that failed and carries a human-readable message
//! with position information where available.

use std::fmt;

/// Errors produced anywhere in the tree-pattern-query workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The pattern DSL could not be parsed.
    PatternParse {
        /// Byte offset in the input where the error was detected.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// The XML-subset document text could not be parsed.
    XmlParse {
        /// Byte offset in the input where the error was detected.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// The constraint DSL could not be parsed.
    ConstraintParse {
        /// Line number (1-based) where the error was detected.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The schema DSL could not be parsed.
    SchemaParse {
        /// Line number (1-based) where the error was detected.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A structurally invalid pattern (e.g. no output node, a cycle, a
    /// dangling node id) was handed to an algorithm.
    InvalidPattern(String),
    /// A structurally invalid document was handed to an algorithm.
    InvalidDocument(String),
    /// A constraint set violated an internal invariant (e.g. closure of an
    /// inconsistent repository).
    InvalidConstraints(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::PatternParse { offset, message } => {
                write!(f, "pattern parse error at byte {offset}: {message}")
            }
            Error::XmlParse { offset, message } => {
                write!(f, "xml parse error at byte {offset}: {message}")
            }
            Error::ConstraintParse { line, message } => {
                write!(f, "constraint parse error at line {line}: {message}")
            }
            Error::SchemaParse { line, message } => {
                write!(f, "schema parse error at line {line}: {message}")
            }
            Error::InvalidPattern(m) => write!(f, "invalid pattern: {m}"),
            Error::InvalidDocument(m) => write!(f, "invalid document: {m}"),
            Error::InvalidConstraints(m) => write!(f, "invalid constraints: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = Error::PatternParse { offset: 7, message: "unexpected ')'".into() };
        assert_eq!(e.to_string(), "pattern parse error at byte 7: unexpected ')'");
        let e = Error::ConstraintParse { line: 3, message: "missing '->'".into() };
        assert_eq!(e.to_string(), "constraint parse error at line 3: missing '->'");
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&Error::InvalidPattern("x".into()));
    }
}
