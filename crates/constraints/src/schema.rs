//! A DTD-flavoured schema language and constraint inference.
//!
//! Section 2.2 of the paper derives integrity constraints from XML Schema
//! specifications: "whenever type B appears (as a subelement) in every XML
//! Schema specification for type A, we can conclude every element of type A
//! must have a child of type B". We model the minimum needed for that
//! inference: per-element content lists with multiplicities, plus
//! `class A : B` declarations for co-occurrence (the LDAP "every employee
//! is also a person").
//!
//! ```text
//! element Book = Title, Author+, Chapter*, Publisher?
//! element Author = LastName, FirstName?
//! class Employee : Person
//! ```
//!
//! `Title` and `Author+` are *required* (min-occurs ≥ 1) and yield
//! `Book -> Title`, `Book -> Author`; `Chapter*` and `Publisher?` are
//! optional and yield nothing. Transitive required descendants
//! (`Book ->> LastName`) come out of the closure of the inferred set.

use crate::constraint::Constraint;
use crate::set::ConstraintSet;
use tpq_base::{Error, Result, TypeId, TypeInterner};

/// Occurrence bounds of a content item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Multiplicity {
    /// Exactly one (no suffix).
    One,
    /// One or more (`+`).
    OneOrMore,
    /// Zero or more (`*`).
    ZeroOrMore,
    /// Zero or one (`?`).
    ZeroOrOne,
}

impl Multiplicity {
    /// Whether at least one occurrence is required.
    pub fn required(self) -> bool {
        matches!(self, Multiplicity::One | Multiplicity::OneOrMore)
    }
}

/// One `element` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementDecl {
    /// The declared element type.
    pub name: TypeId,
    /// Content items in declaration order.
    pub content: Vec<(TypeId, Multiplicity)>,
}

/// A parsed schema: element declarations plus class (co-occurrence)
/// declarations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    /// `element` declarations.
    pub elements: Vec<ElementDecl>,
    /// `class A : B` declarations (`A` is also a `B`).
    pub classes: Vec<(TypeId, TypeId)>,
}

impl Schema {
    /// Parse the schema DSL, interning names into `types`.
    pub fn parse(input: &str, types: &mut TypeInterner) -> Result<Schema> {
        let mut schema = Schema::default();
        for (lineno, raw) in input.lines().enumerate() {
            let line = match raw.find('#') {
                Some(i) => &raw[..i],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let err = |message: String| Error::SchemaParse { line: lineno + 1, message };
            if let Some(rest) = line.strip_prefix("element ") {
                let (name, content) = rest
                    .split_once('=')
                    .ok_or_else(|| err("missing '=' in element declaration".into()))?;
                let name = name.trim();
                if name.is_empty() {
                    return Err(err("empty element name".into()));
                }
                let name_id = types.intern(name);
                let mut items = Vec::new();
                let content = content.trim();
                if !content.is_empty() {
                    for item in content.split(',') {
                        let item = item.trim();
                        if item.is_empty() {
                            return Err(err("empty content item".into()));
                        }
                        let (base, mult) = match item.as_bytes()[item.len() - 1] {
                            b'+' => (&item[..item.len() - 1], Multiplicity::OneOrMore),
                            b'*' => (&item[..item.len() - 1], Multiplicity::ZeroOrMore),
                            b'?' => (&item[..item.len() - 1], Multiplicity::ZeroOrOne),
                            _ => (item, Multiplicity::One),
                        };
                        let base = base.trim();
                        if base.is_empty() {
                            return Err(err(format!("bare multiplicity in '{item}'")));
                        }
                        items.push((types.intern(base), mult));
                    }
                }
                schema.elements.push(ElementDecl { name: name_id, content: items });
            } else if let Some(rest) = line.strip_prefix("class ") {
                let (a, b) = rest
                    .split_once(':')
                    .ok_or_else(|| err("missing ':' in class declaration".into()))?;
                let (a, b) = (a.trim(), b.trim());
                if a.is_empty() || b.is_empty() {
                    return Err(err("empty class name".into()));
                }
                schema.classes.push((types.intern(a), types.intern(b)));
            } else {
                return Err(err(format!(
                    "expected 'element' or 'class' declaration, got '{line}'"
                )));
            }
        }
        Ok(schema)
    }

    /// Infer the *direct* integrity constraints of Section 2.2:
    ///
    /// * `A -> B` for every required content item `B` of element `A`;
    /// * `A ~ B` for every `class A : B`.
    ///
    /// Derived constraints (`A ->> B`, transitive descendants, constraint
    /// transfer across classes) are produced by
    /// [`ConstraintSet::closure`]; call [`Schema::infer_closed`] to get them
    /// in one step.
    pub fn infer_constraints(&self) -> ConstraintSet {
        let mut set = ConstraintSet::new();
        for decl in &self.elements {
            for &(ty, mult) in &decl.content {
                if mult.required() {
                    set.insert(Constraint::RequiredChild(decl.name, ty));
                }
            }
        }
        for &(a, b) in &self.classes {
            set.insert(Constraint::CoOccurrence(a, b));
        }
        set
    }

    /// [`Schema::infer_constraints`] followed by logical closure.
    pub fn infer_closed(&self) -> ConstraintSet {
        self.infer_constraints().closure()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> (Schema, TypeInterner) {
        let mut tys = TypeInterner::new();
        let schema = Schema::parse(s, &mut tys).expect("parse");
        (schema, tys)
    }

    #[test]
    fn figure_1a_book_schema() {
        // The paper's Figure 1(a): Title required, Author minOccurs=1,
        // Chapter is a complex child (required here).
        let (schema, tys) =
            parse("element Book = Title, Author+, Chapter\nelement Author = LastName, FirstName?");
        let set = schema.infer_closed();
        let t = |n: &str| tys.lookup(n).unwrap();
        assert!(set.has_required_child(t("Book"), t("Title")));
        assert!(set.has_required_child(t("Book"), t("Author")));
        // Inferred transitively: every Book has a LastName descendant.
        assert!(set.has_required_descendant(t("Book"), t("LastName")));
        assert!(!set.has_required_child(t("Book"), t("LastName")));
        // Optional content yields nothing.
        assert!(!set.has_required_child(t("Author"), t("FirstName")));
    }

    #[test]
    fn optional_multiplicities_do_not_infer() {
        let (schema, tys) = parse("element A = B?, C*, D+");
        let set = schema.infer_constraints();
        let t = |n: &str| tys.lookup(n).unwrap();
        assert!(!set.has_required_child(t("A"), t("B")));
        assert!(!set.has_required_child(t("A"), t("C")));
        assert!(set.has_required_child(t("A"), t("D")));
    }

    #[test]
    fn classes_become_cooccurrences() {
        let (schema, tys) = parse("class Employee : Person\nelement Person = Name");
        let set = schema.infer_closed();
        let t = |n: &str| tys.lookup(n).unwrap();
        assert!(set.has_cooccurrence(t("Employee"), t("Person")));
        // Constraint transfer through the class.
        assert!(set.has_required_child(t("Employee"), t("Name")));
    }

    #[test]
    fn empty_content_allowed() {
        let (schema, _) = parse("element Leaf =");
        assert_eq!(schema.elements.len(), 1);
        assert!(schema.elements[0].content.is_empty());
        assert!(schema.infer_constraints().is_empty());
    }

    #[test]
    fn parse_errors_with_line_numbers() {
        let mut tys = TypeInterner::new();
        for (input, bad_line) in [
            ("element A", 1),
            ("element A = B\nclass X Y", 2),
            ("whatever", 1),
            ("element A = B,,C", 1),
            ("element A = +", 1),
        ] {
            match Schema::parse(input, &mut tys) {
                Err(Error::SchemaParse { line, .. }) => assert_eq!(line, bad_line, "{input}"),
                other => panic!("expected SchemaParse error for {input:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn comments_skipped() {
        let (schema, _) = parse("# a comment\nelement A = B # trailing\n\n");
        assert_eq!(schema.elements.len(), 1);
    }
}
