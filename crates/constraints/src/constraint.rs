//! The constraint datatype.

use std::fmt;
use tpq_base::{Json, TypeId};

/// One integrity constraint (Figure 1(b) of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Constraint {
    /// `t1 -> t2`: every `t1` node has a *child* of type `t2`.
    RequiredChild(TypeId, TypeId),
    /// `t1 ->> t2`: every `t1` node has a *descendant* of type `t2`.
    RequiredDescendant(TypeId, TypeId),
    /// `t1 ~ t2`: every node of type `t1` is *also* of type `t2`.
    CoOccurrence(TypeId, TypeId),
}

impl Constraint {
    /// The left-hand (constrained) type.
    pub fn lhs(self) -> TypeId {
        match self {
            Constraint::RequiredChild(a, _)
            | Constraint::RequiredDescendant(a, _)
            | Constraint::CoOccurrence(a, _) => a,
        }
    }

    /// The right-hand (required) type.
    pub fn rhs(self) -> TypeId {
        match self {
            Constraint::RequiredChild(_, b)
            | Constraint::RequiredDescendant(_, b)
            | Constraint::CoOccurrence(_, b) => b,
        }
    }

    /// Whether this constraint is trivial (implied by every database), i.e.
    /// a reflexive co-occurrence `t ~ t`.
    pub fn is_trivial(self) -> bool {
        matches!(self, Constraint::CoOccurrence(a, b) if a == b)
    }

    /// JSON form: `{"kind": "->", "lhs": 0, "rhs": 1}` with the kind spelled
    /// as the DSL arrow (`->`, `->>`, `~`).
    pub fn to_json(self) -> Json {
        let kind = match self {
            Constraint::RequiredChild(..) => "->",
            Constraint::RequiredDescendant(..) => "->>",
            Constraint::CoOccurrence(..) => "~",
        };
        Json::object(vec![
            ("kind", Json::Str(kind.to_string())),
            ("lhs", Json::Int(self.lhs().0 as i64)),
            ("rhs", Json::Int(self.rhs().0 as i64)),
        ])
    }

    /// Inverse of [`Constraint::to_json`].
    pub fn from_json(json: &Json) -> Option<Constraint> {
        let side = |key| {
            json.get(key).and_then(Json::as_i64).and_then(|i| u32::try_from(i).ok()).map(TypeId)
        };
        let (lhs, rhs) = (side("lhs")?, side("rhs")?);
        Some(match json.get("kind")?.as_str()? {
            "->" => Constraint::RequiredChild(lhs, rhs),
            "->>" => Constraint::RequiredDescendant(lhs, rhs),
            "~" => Constraint::CoOccurrence(lhs, rhs),
            _ => return None,
        })
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::RequiredChild(a, b) => write!(f, "{a} -> {b}"),
            Constraint::RequiredDescendant(a, b) => write!(f, "{a} ->> {b}"),
            Constraint::CoOccurrence(a, b) => write!(f, "{a} ~ {b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let c = Constraint::RequiredChild(TypeId(1), TypeId(2));
        assert_eq!(c.lhs(), TypeId(1));
        assert_eq!(c.rhs(), TypeId(2));
    }

    #[test]
    fn trivial_detection() {
        assert!(Constraint::CoOccurrence(TypeId(1), TypeId(1)).is_trivial());
        assert!(!Constraint::CoOccurrence(TypeId(1), TypeId(2)).is_trivial());
        assert!(!Constraint::RequiredChild(TypeId(1), TypeId(1)).is_trivial());
    }

    #[test]
    fn json_round_trips() {
        for c in [
            Constraint::RequiredChild(TypeId(0), TypeId(1)),
            Constraint::RequiredDescendant(TypeId(2), TypeId(3)),
            Constraint::CoOccurrence(TypeId(4), TypeId(4)),
        ] {
            let text = c.to_json().to_string_compact();
            let back = Constraint::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(c, back);
        }
        assert_eq!(Constraint::from_json(&Json::Null), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Constraint::RequiredChild(TypeId(0), TypeId(1)).to_string(), "t0 -> t1");
        assert_eq!(Constraint::RequiredDescendant(TypeId(0), TypeId(1)).to_string(), "t0 ->> t1");
        assert_eq!(Constraint::CoOccurrence(TypeId(0), TypeId(1)).to_string(), "t0 ~ t1");
    }
}
