//! The constraint datatype.

use serde::{Deserialize, Serialize};
use std::fmt;
use tpq_base::TypeId;

/// One integrity constraint (Figure 1(b) of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Constraint {
    /// `t1 -> t2`: every `t1` node has a *child* of type `t2`.
    RequiredChild(TypeId, TypeId),
    /// `t1 ->> t2`: every `t1` node has a *descendant* of type `t2`.
    RequiredDescendant(TypeId, TypeId),
    /// `t1 ~ t2`: every node of type `t1` is *also* of type `t2`.
    CoOccurrence(TypeId, TypeId),
}

impl Constraint {
    /// The left-hand (constrained) type.
    pub fn lhs(self) -> TypeId {
        match self {
            Constraint::RequiredChild(a, _)
            | Constraint::RequiredDescendant(a, _)
            | Constraint::CoOccurrence(a, _) => a,
        }
    }

    /// The right-hand (required) type.
    pub fn rhs(self) -> TypeId {
        match self {
            Constraint::RequiredChild(_, b)
            | Constraint::RequiredDescendant(_, b)
            | Constraint::CoOccurrence(_, b) => b,
        }
    }

    /// Whether this constraint is trivial (implied by every database), i.e.
    /// a reflexive co-occurrence `t ~ t`.
    pub fn is_trivial(self) -> bool {
        matches!(self, Constraint::CoOccurrence(a, b) if a == b)
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::RequiredChild(a, b) => write!(f, "{a} -> {b}"),
            Constraint::RequiredDescendant(a, b) => write!(f, "{a} ->> {b}"),
            Constraint::CoOccurrence(a, b) => write!(f, "{a} ~ {b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let c = Constraint::RequiredChild(TypeId(1), TypeId(2));
        assert_eq!(c.lhs(), TypeId(1));
        assert_eq!(c.rhs(), TypeId(2));
    }

    #[test]
    fn trivial_detection() {
        assert!(Constraint::CoOccurrence(TypeId(1), TypeId(1)).is_trivial());
        assert!(!Constraint::CoOccurrence(TypeId(1), TypeId(2)).is_trivial());
        assert!(!Constraint::RequiredChild(TypeId(1), TypeId(1)).is_trivial());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Constraint::RequiredChild(TypeId(0), TypeId(1)).to_string(), "t0 -> t1");
        assert_eq!(
            Constraint::RequiredDescendant(TypeId(0), TypeId(1)).to_string(),
            "t0 ->> t1"
        );
        assert_eq!(Constraint::CoOccurrence(TypeId(0), TypeId(1)).to_string(), "t0 ~ t1");
    }
}
