//! A line-oriented DSL for constraint sets.
//!
//! One constraint per line; `#` starts a comment; blank lines are skipped.
//!
//! ```text
//! # every book has a title child and a last name somewhere below
//! Book -> Title
//! Book ->> LastName
//! Employee ~ Person
//! ```

use crate::constraint::Constraint;
use crate::set::ConstraintSet;
use tpq_base::{failpoint, Error, Result, TypeInterner};

/// Parse a constraint file, interning type names into `types`.
pub fn parse_constraints(input: &str, types: &mut TypeInterner) -> Result<ConstraintSet> {
    failpoint::hit("parse.constraints")?;
    let mut set = ConstraintSet::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let c = parse_line(line, types)
            .map_err(|message| Error::ConstraintParse { line: lineno + 1, message })?;
        set.insert(c);
    }
    Ok(set)
}

fn parse_line(line: &str, types: &mut TypeInterner) -> std::result::Result<Constraint, String> {
    // Longest operator first so `->>` is not read as `->` + `>`.
    for (op, make) in [
        ("->>", Constraint::RequiredDescendant as fn(_, _) -> _),
        ("->", Constraint::RequiredChild as fn(_, _) -> _),
        ("~", Constraint::CoOccurrence as fn(_, _) -> _),
    ] {
        if let Some(i) = line.find(op) {
            let lhs = line[..i].trim();
            let rhs = line[i + op.len()..].trim();
            if lhs.is_empty() || rhs.is_empty() {
                return Err(format!("missing operand around '{op}'"));
            }
            if !is_name(lhs) || !is_name(rhs) {
                return Err(format!("invalid type name in '{line}'"));
            }
            return Ok(make(types.intern(lhs), types.intern(rhs)));
        }
    }
    Err(format!("no constraint operator ('->', '->>', '~') in '{line}'"))
}

fn is_name(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_three_kinds() {
        let mut tys = TypeInterner::new();
        let s =
            parse_constraints("Book -> Title\nBook ->> LastName\nEmployee ~ Person\n", &mut tys)
                .unwrap();
        let (book, title) = (tys.lookup("Book").unwrap(), tys.lookup("Title").unwrap());
        let last = tys.lookup("LastName").unwrap();
        let (emp, person) = (tys.lookup("Employee").unwrap(), tys.lookup("Person").unwrap());
        assert!(s.has_required_child(book, title));
        assert!(s.has_required_descendant(book, last));
        assert!(s.has_cooccurrence(emp, person));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let mut tys = TypeInterner::new();
        let s = parse_constraints("# header\n\n  a -> b # trailing\n", &mut tys).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn descendant_not_misread_as_child() {
        let mut tys = TypeInterner::new();
        let s = parse_constraints("a ->> b", &mut tys).unwrap();
        let (a, b) = (tys.lookup("a").unwrap(), tys.lookup("b").unwrap());
        assert!(s.has_required_descendant(a, b));
        assert!(!s.has_required_child(a, b));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let mut tys = TypeInterner::new();
        let err = parse_constraints("a -> b\nbogus line\n", &mut tys).unwrap_err();
        match err {
            Error::ConstraintParse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn missing_operand_rejected() {
        let mut tys = TypeInterner::new();
        assert!(parse_constraints("-> b", &mut tys).is_err());
        assert!(parse_constraints("a ->", &mut tys).is_err());
        assert!(parse_constraints("a ~ ", &mut tys).is_err());
        assert!(parse_constraints("3a ~ b", &mut tys).is_err());
    }

    #[test]
    fn malformed_inputs_error_instead_of_panicking() {
        // Robustness battery: adversarial lines (operator soup, stray
        // unicode, embedded NULs, comment edge cases) must all come back
        // as ConstraintParse errors with a line number — never a panic or
        // a slicing error.
        let cases = [
            "->",
            "->>",
            "~",
            "a -> -> b",
            "a ->> -> b",
            "-> a -> b",
            "a b",
            "a <- b",
            "a → b", // non-ASCII arrow
            "\u{0}a -> b",
            "a -> b\u{0}",
            "# comment\n~\n",
            "a#b -> c", // comment starts mid-token, leaving "a"
            "a ~ b ~ c",
        ];
        for case in cases {
            let mut tys = TypeInterner::new();
            let got = parse_constraints(case, &mut tys);
            let err = got.expect_err(&format!("{case:?} must fail"));
            match err {
                Error::ConstraintParse { line, .. } => assert!(line >= 1, "{case:?}"),
                other => panic!("{case:?}: expected ConstraintParse, got {other:?}"),
            }
        }
    }

    #[test]
    fn parse_constraints_failpoint_injects_an_error() {
        let _fp = failpoint::arm_for_thread("parse.constraints", failpoint::Action::Err, 1);
        let mut tys = TypeInterner::new();
        let err = parse_constraints("a -> b", &mut tys).unwrap_err();
        assert_eq!(err, Error::Injected { point: "parse.constraints".into() });
        assert!(parse_constraints("a -> b", &mut tys).is_ok(), "one-shot");
    }
}
