//! Integrity constraints on tree-structured databases (Sections 2.2 and 5
//! of the paper).
//!
//! Three constraint forms are supported, exactly the class for which the
//! paper proves uniqueness of the minimal equivalent query:
//!
//! * `t1 -> t2` — **required child**: every `t1` node has a child of type
//!   `t2` (paper notation `t1 → t2`);
//! * `t1 ->> t2` — **required descendant**: every `t1` node has a
//!   descendant of type `t2` (paper notation `t1 →→ t2`);
//! * `t1 ~ t2` — **co-occurrence**: every node of type `t1` is also of type
//!   `t2` (paper notation `t1 — t2`; directed).
//!
//! The crate provides:
//!
//! * [`Constraint`] and the hash-indexed repository [`ConstraintSet`]
//!   (Section 6.1: "constraints are organized in a hash table for efficient
//!   retrieval");
//! * the **logical closure** required by augmentation and CDM
//!   (Section 5.2: "we assume that Σ is a logically closed set of ICs");
//! * a line-oriented constraint DSL ([`parse_constraints`]);
//! * a DTD-flavoured [`Schema`] language from which constraints are
//!   *inferred* as Section 2.2 describes;
//! * [`repair()`](fn@repair) — extend a document so that it satisfies a constraint set
//!   (used to build IC-satisfying databases for semantic equivalence
//!   testing), and [`satisfies`] to check.

pub mod constraint;
pub mod parse;
pub mod repair;
pub mod schema;
pub mod set;

pub use constraint::Constraint;
pub use parse::parse_constraints;
pub use repair::{repair, satisfies};
pub use schema::Schema;
pub use set::ConstraintSet;
