//! The hash-indexed constraint repository and its logical closure.
//!
//! Section 6.1 of the paper: "Constraints are organized in a hash table for
//! efficient retrieval during the minimization process. Given an
//! information content at a node, CDM considers each pair of arguments ...
//! and uses them as a key to access the hash table". Membership queries
//! ([`ConstraintSet::has_required_child`] etc.) are O(1) hash probes — this
//! is what makes CDM independent of the repository size (Figure 8(a)).

use crate::constraint::Constraint;
use tpq_base::{FxHashMap, FxHashSet, TypeId};

/// Which of the three constraint kinds a pair belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Child,
    Desc,
    Cooc,
}

/// A set of integrity constraints with O(1) pair lookups and per-type
/// adjacency lists in both directions.
#[derive(Debug, Clone, Default)]
pub struct ConstraintSet {
    child: FxHashSet<(TypeId, TypeId)>,
    desc: FxHashSet<(TypeId, TypeId)>,
    cooc: FxHashSet<(TypeId, TypeId)>,
    child_by_lhs: FxHashMap<TypeId, Vec<TypeId>>,
    child_by_rhs: FxHashMap<TypeId, Vec<TypeId>>,
    desc_by_lhs: FxHashMap<TypeId, Vec<TypeId>>,
    desc_by_rhs: FxHashMap<TypeId, Vec<TypeId>>,
    cooc_by_lhs: FxHashMap<TypeId, Vec<TypeId>>,
    cooc_by_rhs: FxHashMap<TypeId, Vec<TypeId>>,
}

impl ConstraintSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a constraint; returns `true` if it was new. Trivial
    /// constraints (`t ~ t`) are ignored.
    pub fn insert(&mut self, c: Constraint) -> bool {
        if c.is_trivial() {
            return false;
        }
        let (kind, a, b) = match c {
            Constraint::RequiredChild(a, b) => (Kind::Child, a, b),
            Constraint::RequiredDescendant(a, b) => (Kind::Desc, a, b),
            Constraint::CoOccurrence(a, b) => (Kind::Cooc, a, b),
        };
        let (set, by_lhs, by_rhs) = match kind {
            Kind::Child => (&mut self.child, &mut self.child_by_lhs, &mut self.child_by_rhs),
            Kind::Desc => (&mut self.desc, &mut self.desc_by_lhs, &mut self.desc_by_rhs),
            Kind::Cooc => (&mut self.cooc, &mut self.cooc_by_lhs, &mut self.cooc_by_rhs),
        };
        if !set.insert((a, b)) {
            return false;
        }
        by_lhs.entry(a).or_default().push(b);
        by_rhs.entry(b).or_default().push(a);
        true
    }

    /// O(1): is `t1 -> t2` in the set?
    #[inline]
    pub fn has_required_child(&self, t1: TypeId, t2: TypeId) -> bool {
        self.child.contains(&(t1, t2))
    }

    /// O(1): is `t1 ->> t2` in the set?
    #[inline]
    pub fn has_required_descendant(&self, t1: TypeId, t2: TypeId) -> bool {
        self.desc.contains(&(t1, t2))
    }

    /// O(1): is `t1 ~ t2` in the set?
    #[inline]
    pub fn has_cooccurrence(&self, t1: TypeId, t2: TypeId) -> bool {
        self.cooc.contains(&(t1, t2))
    }

    /// Types `t2` with `t1 -> t2`.
    pub fn required_children_of(&self, t1: TypeId) -> &[TypeId] {
        self.child_by_lhs.get(&t1).map_or(&[], Vec::as_slice)
    }

    /// Types `t2` with `t1 ->> t2`.
    pub fn required_descendants_of(&self, t1: TypeId) -> &[TypeId] {
        self.desc_by_lhs.get(&t1).map_or(&[], Vec::as_slice)
    }

    /// Types `t2` with `t1 ~ t2`.
    pub fn cooccurrences_of(&self, t1: TypeId) -> &[TypeId] {
        self.cooc_by_lhs.get(&t1).map_or(&[], Vec::as_slice)
    }

    /// Number of (non-trivial) constraints.
    pub fn len(&self) -> usize {
        self.child.len() + self.desc.len() + self.cooc.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over every constraint (unordered).
    pub fn iter(&self) -> impl Iterator<Item = Constraint> + '_ {
        self.child
            .iter()
            .map(|&(a, b)| Constraint::RequiredChild(a, b))
            .chain(self.desc.iter().map(|&(a, b)| Constraint::RequiredDescendant(a, b)))
            .chain(self.cooc.iter().map(|&(a, b)| Constraint::CoOccurrence(a, b)))
    }

    /// The logical closure of this set (Section 5.2).
    ///
    /// Inference rules (fixpoint over a worklist):
    ///
    /// 1. `a -> b   ⟹ a ->> b`
    /// 2. `a ->> b, b ->> c ⟹ a ->> c`
    /// 3. `a ~ b, b ~ c ⟹ a ~ c`
    /// 4. `a ~ b, b -> c ⟹ a -> c` (likewise `->>`)
    /// 5. `a -> b, b ~ c ⟹ a -> c` (likewise `->>`)
    ///
    /// The closure has at most `O(T²)` constraints over `T` participating
    /// types (three pair-sets), matching the paper's quadratic size bound.
    pub fn closure(&self) -> ConstraintSet {
        let _span = tpq_obs::span!("constraints.closure");
        let mut out = self.clone();
        let mut work: Vec<Constraint> = out.iter().collect();
        while let Some(c) = work.pop() {
            let mut derived: Vec<Constraint> = Vec::new();
            match c {
                Constraint::RequiredChild(a, b) => {
                    // Rule 1.
                    derived.push(Constraint::RequiredDescendant(a, b));
                    // Rule 4 (join on the left): x ~ a, a -> b ⟹ x -> b.
                    for &x in out.cooc_by_rhs.get(&a).map_or(&[][..], Vec::as_slice) {
                        derived.push(Constraint::RequiredChild(x, b));
                    }
                    // Rule 5 (join on the right): a -> b, b ~ c ⟹ a -> c.
                    for &c2 in out.cooc_by_lhs.get(&b).map_or(&[][..], Vec::as_slice) {
                        derived.push(Constraint::RequiredChild(a, c2));
                    }
                }
                Constraint::RequiredDescendant(a, b) => {
                    // Rule 2, both join directions.
                    for &c2 in out.desc_by_lhs.get(&b).map_or(&[][..], Vec::as_slice) {
                        derived.push(Constraint::RequiredDescendant(a, c2));
                    }
                    for &x in out.desc_by_rhs.get(&a).map_or(&[][..], Vec::as_slice) {
                        derived.push(Constraint::RequiredDescendant(x, b));
                    }
                    // Rule 4 for ->>.
                    for &x in out.cooc_by_rhs.get(&a).map_or(&[][..], Vec::as_slice) {
                        derived.push(Constraint::RequiredDescendant(x, b));
                    }
                    // Rule 5 for ->>.
                    for &c2 in out.cooc_by_lhs.get(&b).map_or(&[][..], Vec::as_slice) {
                        derived.push(Constraint::RequiredDescendant(a, c2));
                    }
                }
                Constraint::CoOccurrence(a, b) => {
                    // Rule 3, both directions.
                    for &c2 in out.cooc_by_lhs.get(&b).map_or(&[][..], Vec::as_slice) {
                        derived.push(Constraint::CoOccurrence(a, c2));
                    }
                    for &x in out.cooc_by_rhs.get(&a).map_or(&[][..], Vec::as_slice) {
                        derived.push(Constraint::CoOccurrence(x, b));
                    }
                    // Rule 4: a ~ b with b -> c / b ->> c.
                    for &c2 in out.child_by_lhs.get(&b).map_or(&[][..], Vec::as_slice) {
                        derived.push(Constraint::RequiredChild(a, c2));
                    }
                    for &c2 in out.desc_by_lhs.get(&b).map_or(&[][..], Vec::as_slice) {
                        derived.push(Constraint::RequiredDescendant(a, c2));
                    }
                    // Rule 5: x -> a / x ->> a with a ~ b.
                    for &x in out.child_by_rhs.get(&a).map_or(&[][..], Vec::as_slice) {
                        derived.push(Constraint::RequiredChild(x, b));
                    }
                    for &x in out.desc_by_rhs.get(&a).map_or(&[][..], Vec::as_slice) {
                        derived.push(Constraint::RequiredDescendant(x, b));
                    }
                }
            }
            for d in derived {
                if out.insert(d) {
                    work.push(d);
                }
            }
        }
        out
    }

    /// Whether the set equals its own closure.
    pub fn is_closed(&self) -> bool {
        self.closure().len() == self.len()
    }

    /// Whether a finite tree can satisfy the set for nodes of the types it
    /// mentions: a cycle in the closed required-descendant relation (in
    /// particular `t ->> t`) forces an infinite tree.
    ///
    /// Call on the closure; on a non-closed set this may miss cycles.
    pub fn is_finitely_satisfiable(&self) -> bool {
        !self.desc.iter().any(|&(a, b)| a == b || self.desc.contains(&(b, a)))
    }
}

impl PartialEq for ConstraintSet {
    /// Two repositories are equal when they hold the same constraints; the
    /// adjacency lists are derived data and their ordering is ignored.
    fn eq(&self, other: &Self) -> bool {
        self.child == other.child && self.desc == other.desc && self.cooc == other.cooc
    }
}

impl Eq for ConstraintSet {}

impl FromIterator<Constraint> for ConstraintSet {
    /// Build from an iterator of constraints (trivial ones are dropped).
    fn from_iter<I: IntoIterator<Item = Constraint>>(iter: I) -> Self {
        let mut s = ConstraintSet::new();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Constraint::*;

    fn t(i: u32) -> TypeId {
        TypeId(i)
    }

    #[test]
    fn insert_and_lookup() {
        let mut s = ConstraintSet::new();
        assert!(s.insert(RequiredChild(t(0), t(1))));
        assert!(!s.insert(RequiredChild(t(0), t(1))), "duplicate");
        assert!(s.has_required_child(t(0), t(1)));
        assert!(!s.has_required_child(t(1), t(0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn trivial_cooccurrence_rejected() {
        let mut s = ConstraintSet::new();
        assert!(!s.insert(CoOccurrence(t(3), t(3))));
        assert!(s.is_empty());
    }

    #[test]
    fn adjacency_lists() {
        let s = ConstraintSet::from_iter([
            RequiredChild(t(0), t(1)),
            RequiredChild(t(0), t(2)),
            RequiredDescendant(t(0), t(3)),
            CoOccurrence(t(1), t(4)),
        ]);
        let mut kids = s.required_children_of(t(0)).to_vec();
        kids.sort();
        assert_eq!(kids, vec![t(1), t(2)]);
        assert_eq!(s.required_descendants_of(t(0)), &[t(3)]);
        assert_eq!(s.cooccurrences_of(t(1)), &[t(4)]);
        assert!(s.required_children_of(t(9)).is_empty());
    }

    #[test]
    fn closure_child_implies_descendant() {
        let s = ConstraintSet::from_iter([RequiredChild(t(0), t(1))]).closure();
        assert!(s.has_required_descendant(t(0), t(1)));
    }

    #[test]
    fn closure_descendant_transitivity() {
        let s = ConstraintSet::from_iter([
            RequiredDescendant(t(0), t(1)),
            RequiredDescendant(t(1), t(2)),
            RequiredDescendant(t(2), t(3)),
        ])
        .closure();
        assert!(s.has_required_descendant(t(0), t(3)));
        assert!(s.has_required_descendant(t(1), t(3)));
        assert!(!s.has_required_descendant(t(3), t(0)));
    }

    #[test]
    fn closure_child_then_descendant_chains() {
        let s = ConstraintSet::from_iter([RequiredChild(t(0), t(1)), RequiredChild(t(1), t(2))])
            .closure();
        // Children do not compose into children...
        assert!(!s.has_required_child(t(0), t(2)));
        // ...but do compose into descendants.
        assert!(s.has_required_descendant(t(0), t(2)));
    }

    #[test]
    fn closure_cooccurrence_transfers_constraints() {
        // Employee ~ Person, Person -> Name  ⟹  Employee -> Name.
        let s = ConstraintSet::from_iter([CoOccurrence(t(0), t(1)), RequiredChild(t(1), t(2))])
            .closure();
        assert!(s.has_required_child(t(0), t(2)));
        assert!(s.has_required_descendant(t(0), t(2)));
    }

    #[test]
    fn closure_rhs_cooccurrence_widens_targets() {
        // a -> b, b ~ c  ⟹  a -> c (the required child is also a c).
        let s = ConstraintSet::from_iter([RequiredChild(t(0), t(1)), CoOccurrence(t(1), t(2))])
            .closure();
        assert!(s.has_required_child(t(0), t(2)));
    }

    #[test]
    fn closure_cooccurrence_transitive() {
        let s = ConstraintSet::from_iter([CoOccurrence(t(0), t(1)), CoOccurrence(t(1), t(2))])
            .closure();
        assert!(s.has_cooccurrence(t(0), t(2)));
        assert!(!s.has_cooccurrence(t(2), t(0)), "co-occurrence is directed");
    }

    #[test]
    fn closure_is_idempotent() {
        let s = ConstraintSet::from_iter([
            RequiredChild(t(0), t(1)),
            RequiredDescendant(t(1), t(2)),
            CoOccurrence(t(2), t(3)),
            CoOccurrence(t(3), t(4)),
            RequiredChild(t(4), t(5)),
        ])
        .closure();
        assert!(s.is_closed());
        assert_eq!(s.closure().len(), s.len());
    }

    #[test]
    fn closure_size_is_quadratic_bounded() {
        // A chain of n descendant constraints closes to n(n+1)/2 pairs.
        let n = 20u32;
        let s =
            ConstraintSet::from_iter((0..n).map(|i| RequiredDescendant(t(i), t(i + 1)))).closure();
        assert_eq!(s.len(), (n * (n + 1) / 2) as usize);
    }

    #[test]
    fn finite_satisfiability_detects_cycles() {
        let ok = ConstraintSet::from_iter([RequiredDescendant(t(0), t(1))]).closure();
        assert!(ok.is_finitely_satisfiable());
        let cyc = ConstraintSet::from_iter([
            RequiredDescendant(t(0), t(1)),
            RequiredDescendant(t(1), t(0)),
        ])
        .closure();
        assert!(!cyc.is_finitely_satisfiable());
        let selfloop = ConstraintSet::from_iter([RequiredChild(t(0), t(0))]).closure();
        assert!(!selfloop.is_finitely_satisfiable());
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let a = ConstraintSet::from_iter([
            RequiredChild(t(0), t(1)),
            RequiredDescendant(t(2), t(3)),
            CoOccurrence(t(4), t(5)),
        ]);
        let b = ConstraintSet::from_iter([
            CoOccurrence(t(4), t(5)),
            RequiredChild(t(0), t(1)),
            RequiredDescendant(t(2), t(3)),
        ]);
        assert_eq!(a, b);
        let mut c = b.clone();
        c.insert(RequiredChild(t(9), t(1)));
        assert_ne!(a, c);
        // Kind matters: a -> b is not a ->> b.
        let d = ConstraintSet::from_iter([RequiredChild(t(0), t(1))]);
        let e = ConstraintSet::from_iter([RequiredDescendant(t(0), t(1))]);
        assert_ne!(d, e);
    }

    #[test]
    fn iter_round_trips() {
        let cs =
            [RequiredChild(t(0), t(1)), RequiredDescendant(t(2), t(3)), CoOccurrence(t(4), t(5))];
        let s = ConstraintSet::from_iter(cs);
        let mut back: Vec<_> = s.iter().collect();
        back.sort();
        let mut want = cs.to_vec();
        want.sort();
        assert_eq!(back, want);
    }
}
