//! Checking and establishing constraint satisfaction on documents.
//!
//! Constraint-dependent minimization is only sound on databases that
//! satisfy the constraints, so the test suite needs a way to *build* such
//! databases: [`repair`] extends an arbitrary document (adding nodes and
//! types, never removing) until it satisfies a closed constraint set.
//! [`satisfies`] is the corresponding checker.

use crate::set::ConstraintSet;
use tpq_base::{Error, Result, TypeSet};
use tpq_data::{DataNodeId, Document};

/// Whether `doc` satisfies every constraint in `set`.
pub fn satisfies(doc: &Document, set: &ConstraintSet) -> bool {
    // types_below[v] = union of type sets of proper descendants of v.
    let mut types_below: Vec<TypeSet> = vec![TypeSet::new(); doc.len()];
    let mut order = doc.pre_order();
    order.reverse(); // children before parents
    for &id in &order {
        let mut below = TypeSet::new();
        for &c in &doc.node(id).children {
            below.union_with(&doc.node(c).types);
            below.union_with(&types_below[c.index()]);
        }
        types_below[id.index()] = below;
    }
    for id in doc.ids() {
        let node = doc.node(id);
        for t in node.types.iter() {
            for &u in set.cooccurrences_of(t) {
                if !node.types.contains(u) {
                    return false;
                }
            }
            for &u in set.required_children_of(t) {
                if !node.children.iter().any(|&c| doc.node(c).types.contains(u)) {
                    return false;
                }
            }
            for &u in set.required_descendants_of(t) {
                if !types_below[id.index()].contains(u) {
                    return false;
                }
            }
        }
    }
    true
}

/// Extend `doc` (adding nodes and types only) so that it satisfies `set`.
///
/// `set` must be logically closed and finitely satisfiable; otherwise an
/// [`Error::InvalidConstraints`] is returned. The repaired document is
/// returned; the input is untouched.
pub fn repair(doc: &Document, set: &ConstraintSet) -> Result<Document> {
    if !set.is_closed() {
        return Err(Error::InvalidConstraints(
            "repair requires a logically closed constraint set".into(),
        ));
    }
    if !set.is_finitely_satisfiable() {
        return Err(Error::InvalidConstraints(
            "constraint set has a required-descendant cycle; no finite tree satisfies it".into(),
        ));
    }
    let mut doc = doc.clone();
    // Phase 1: co-occurrence types, for every existing node. With a closed
    // set one pass per node suffices (t ~ u, u ~ v implies t ~ v is already
    // in the set).
    for id in doc.ids().collect::<Vec<_>>() {
        expand_cooccurrences(&mut doc, id, set);
    }
    // Phase 2: structural requirements, processing new nodes as they appear.
    let mut queue: Vec<DataNodeId> = doc.ids().collect();
    let mut head = 0;
    while head < queue.len() {
        let id = queue[head];
        head += 1;
        let types: Vec<_> = doc.node(id).types.iter().collect();
        for t in types {
            for &u in set.required_children_of(t) {
                let have = doc.node(id).children.iter().any(|&c| doc.node(c).types.contains(u));
                if !have {
                    let child = doc.add_child(id, u);
                    expand_cooccurrences(&mut doc, child, set);
                    queue.push(child);
                }
            }
            for &u in set.required_descendants_of(t) {
                if !subtree_has_type(&doc, id, u) {
                    let child = doc.add_child(id, u);
                    expand_cooccurrences(&mut doc, child, set);
                    queue.push(child);
                }
            }
        }
    }
    debug_assert!(satisfies(&doc, set));
    Ok(doc)
}

fn expand_cooccurrences(doc: &mut Document, id: DataNodeId, set: &ConstraintSet) {
    let mut add = Vec::new();
    for t in doc.node(id).types.iter() {
        for &u in set.cooccurrences_of(t) {
            add.push(u);
        }
    }
    for u in add {
        doc.add_type(id, u);
    }
}

fn subtree_has_type(doc: &Document, id: DataNodeId, ty: tpq_base::TypeId) -> bool {
    let mut stack: Vec<DataNodeId> = doc.node(id).children.clone();
    while let Some(n) = stack.pop() {
        if doc.node(n).types.contains(ty) {
            return true;
        }
        stack.extend_from_slice(&doc.node(n).children);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint::*;
    use tpq_base::{TypeId, TypeInterner};
    use tpq_data::parse_xml;

    fn t(i: u32) -> TypeId {
        TypeId(i)
    }

    #[test]
    fn satisfies_detects_missing_child() {
        let mut tys = TypeInterner::new();
        let doc = parse_xml("<Book><Author/></Book>", &mut tys).unwrap();
        let book = tys.lookup("Book").unwrap();
        let title = tys.intern("Title");
        let set = ConstraintSet::from_iter([RequiredChild(book, title)]);
        assert!(!satisfies(&doc, &set));
        let ok = parse_xml("<Book><Author/><Title/></Book>", &mut tys).unwrap();
        assert!(satisfies(&ok, &set));
    }

    #[test]
    fn satisfies_checks_descendants_not_just_children() {
        let mut tys = TypeInterner::new();
        let doc = parse_xml("<Book><Author><LastName/></Author></Book>", &mut tys).unwrap();
        let book = tys.lookup("Book").unwrap();
        let last = tys.lookup("LastName").unwrap();
        let desc = ConstraintSet::from_iter([RequiredDescendant(book, last)]);
        assert!(satisfies(&doc, &desc));
        let child = ConstraintSet::from_iter([RequiredChild(book, last)]);
        assert!(!satisfies(&doc, &child), "grandchild does not satisfy a child IC");
    }

    #[test]
    fn satisfies_checks_cooccurrence() {
        let mut tys = TypeInterner::new();
        let doc = parse_xml("<Employee/>", &mut tys).unwrap();
        let emp = tys.lookup("Employee").unwrap();
        let person = tys.intern("Person");
        let set = ConstraintSet::from_iter([CoOccurrence(emp, person)]);
        assert!(!satisfies(&doc, &set));
        let ok = parse_xml(r#"<Employee also="Person"/>"#, &mut tys).unwrap();
        assert!(satisfies(&ok, &set));
    }

    #[test]
    fn repair_adds_missing_structure() {
        let mut tys = TypeInterner::new();
        let doc = parse_xml("<Book/>", &mut tys).unwrap();
        let book = tys.lookup("Book").unwrap();
        let (title, author, last) =
            (tys.intern("Title"), tys.intern("Author"), tys.intern("LastName"));
        let set = ConstraintSet::from_iter([
            RequiredChild(book, title),
            RequiredChild(book, author),
            RequiredChild(author, last),
        ])
        .closure();
        let fixed = repair(&doc, &set).unwrap();
        assert!(satisfies(&fixed, &set));
        assert!(fixed.len() >= 4, "Book, Title, Author, LastName");
        fixed.validate().unwrap();
    }

    #[test]
    fn repair_adds_cooccurrence_types_everywhere() {
        let mut tys = TypeInterner::new();
        let doc = parse_xml("<Org><Employee/><Employee/></Org>", &mut tys).unwrap();
        let emp = tys.lookup("Employee").unwrap();
        let person = tys.intern("Person");
        let set = ConstraintSet::from_iter([CoOccurrence(emp, person)]).closure();
        let fixed = repair(&doc, &set).unwrap();
        assert!(satisfies(&fixed, &set));
        assert_eq!(fixed.len(), doc.len(), "no nodes needed, only types");
    }

    #[test]
    fn repair_satisfies_constraints_on_nodes_it_adds() {
        // a ->> b, b -> c: repairing an <a/> must produce the whole chain.
        let set =
            ConstraintSet::from_iter([RequiredDescendant(t(0), t(1)), RequiredChild(t(1), t(2))])
                .closure();
        let doc = Document::new(t(0));
        let fixed = repair(&doc, &set).unwrap();
        assert!(satisfies(&fixed, &set));
        assert!(fixed.len() >= 3);
    }

    #[test]
    fn repair_rejects_unclosed_sets() {
        let set = ConstraintSet::from_iter([RequiredChild(t(0), t(1))]); // not closed
        let doc = Document::new(t(0));
        assert!(repair(&doc, &set).is_err());
    }

    #[test]
    fn repair_rejects_descendant_cycles() {
        let set = ConstraintSet::from_iter([
            RequiredDescendant(t(0), t(1)),
            RequiredDescendant(t(1), t(0)),
        ])
        .closure();
        let doc = Document::new(t(0));
        assert!(repair(&doc, &set).is_err());
    }

    #[test]
    fn repair_is_idempotent_on_satisfying_documents() {
        let set = ConstraintSet::from_iter([RequiredChild(t(0), t(1))]).closure();
        let doc = repair(&Document::new(t(0)), &set).unwrap();
        let again = repair(&doc, &set).unwrap();
        assert_eq!(doc, again);
    }

    #[test]
    fn empty_set_is_always_satisfied() {
        let doc = Document::new(t(0));
        let set = ConstraintSet::new();
        assert!(satisfies(&doc, &set));
        assert_eq!(repair(&doc, &set).unwrap(), doc);
    }
}
