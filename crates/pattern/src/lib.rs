//! Tree pattern queries (Section 2.1 and 3 of the paper).
//!
//! A [`TreePattern`] is a rooted tree whose nodes carry a *type* (and,
//! after chasing co-occurrence constraints, possibly extra types), whose
//! edges are either **child** (`/`) or **descendant** (`//`), and in which
//! exactly one node carries the output marker `*`.
//!
//! The crate provides:
//!
//! * an arena-based mutable pattern representation with tombstone removal
//!   and compaction ([`pattern`]);
//! * a concise XPath-like DSL, parser and printer ([`parse`], [`mod@print`]):
//!   `Articles/Article*[/Title][//Paragraph]//Section`;
//! * rooted-tree isomorphism and a canonical form ([`iso`]), used to verify
//!   the paper's uniqueness theorems (4.1 and 5.1);
//! * structural validation ([`TreePattern::validate`]).

#![warn(missing_docs)]

pub mod condition;
pub mod iso;
pub mod node;
pub mod parse;
pub mod pattern;
pub mod print;
pub mod xpath;

pub use condition::{entails, satisfiable, satisfied_by, Condition};
pub use iso::{canonical_form, isomorphic, CanonicalKey};
pub use node::{EdgeKind, NodeId, PatternNode};
pub use parse::{parse_pattern, MAX_BRACKET_DEPTH};
pub use pattern::TreePattern;
pub use xpath::parse_xpath;
