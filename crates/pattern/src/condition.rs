//! Value-based conditions on pattern nodes and their entailment —
//! Section 7 of the paper ("the price of a book always be less than
//! $100").
//!
//! A pattern node may carry a conjunction of [`Condition`]s over named
//! attributes. A data node matches only if its attribute values satisfy
//! every condition. During minimization (Section 7's prescription), a
//! node `v` may map onto a node `u` only when "the conditions at `u`
//! logically entail those at `v`" — [`entails`] decides that by interval
//! reasoning per attribute:
//!
//! * integer conditions are normalized to non-strict bounds
//!   (`< v` ≡ `<= v-1`), then summarized as `lo`/`hi`/`=`/`!=` facts;
//! * an unsatisfiable premise set entails everything (a node that can
//!   never match makes any mapping vacuously sound);
//! * the check is *conservative* where completeness would require
//!   enumerating large integer ranges (a missed entailment can only make
//!   the minimized query larger, never wrong).

use std::fmt;
use tpq_base::{Cmp, Json, TypeId, Value};

/// One atomic condition: `attr ∘ value`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Condition {
    /// The attribute name (interned in the shared [`tpq_base::TypeInterner`]).
    pub attr: TypeId,
    /// The comparison operator.
    pub op: Cmp,
    /// The right-hand value.
    pub value: Value,
}

impl Condition {
    /// Construct a condition.
    pub fn new(attr: TypeId, op: Cmp, value: Value) -> Self {
        Condition { attr, op, value }
    }

    /// Normalize strict integer bounds to non-strict ones so that
    /// summaries are canonical (`< v` → `<= v-1`, `> v` → `>= v+1`).
    pub fn normalized(&self) -> Condition {
        if let Value::Int(v) = self.value {
            match self.op {
                Cmp::Lt => {
                    return Condition::new(self.attr, Cmp::Le, Value::Int(v.saturating_sub(1)))
                }
                Cmp::Gt => {
                    return Condition::new(self.attr, Cmp::Ge, Value::Int(v.saturating_add(1)))
                }
                _ => {}
            }
        }
        self.clone()
    }

    /// Does the single attribute value `value` satisfy this condition?
    pub fn eval(&self, value: &Value) -> bool {
        self.op.eval(value, &self.value)
    }

    /// JSON form: `{"attr": 3, "op": "<=", "value": 100}`.
    pub fn to_json(&self) -> Json {
        let value = match &self.value {
            Value::Int(i) => Json::Int(*i),
            Value::Str(s) => Json::Str(s.clone()),
        };
        Json::object(vec![
            ("attr", Json::Int(self.attr.0 as i64)),
            ("op", Json::Str(self.op.token().to_string())),
            ("value", value),
        ])
    }

    /// Inverse of [`Condition::to_json`].
    pub fn from_json(json: &Json) -> Option<Condition> {
        let attr = TypeId(u32::try_from(json.get("attr")?.as_i64()?).ok()?);
        let op = Cmp::from_token(json.get("op")?.as_str()?)?;
        let value = match json.get("value")? {
            Json::Int(i) => Value::Int(*i),
            Json::Str(s) => Value::Str(s.clone()),
            _ => return None,
        };
        Some(Condition { attr, op, value })
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}{}", self.attr, self.op, self.value)
    }
}

/// Do `attrs` (a node's attribute assignment; first match per name wins)
/// satisfy every condition in `conds`? A referenced attribute that is
/// absent fails the condition.
pub fn satisfied_by(conds: &[Condition], attrs: &[(TypeId, Value)]) -> bool {
    conds.iter().all(|c| attrs.iter().find(|(a, _)| *a == c.attr).is_some_and(|(_, v)| c.eval(v)))
}

/// Per-attribute summary of a (normalized) premise set.
#[derive(Debug, Default, Clone)]
struct Summary {
    /// `attr >= lo`.
    lo: Option<i64>,
    /// `attr <= hi`.
    hi: Option<i64>,
    /// `attr = v` (any type).
    eq: Option<Value>,
    /// `attr != v` facts.
    nes: Vec<Value>,
    /// Integer ordering constraints present (pins the attribute to Int).
    has_int_bounds: bool,
}

impl Summary {
    fn add(&mut self, c: &Condition) {
        match (c.op, &c.value) {
            (Cmp::Eq, v) => match &self.eq {
                Some(prev) if prev != v => {
                    // Conflicting equalities: encode as an empty interval.
                    self.lo = Some(1);
                    self.hi = Some(0);
                    self.has_int_bounds = true;
                }
                _ => self.eq = Some(v.clone()),
            },
            (Cmp::Ne, v) => self.nes.push(v.clone()),
            (Cmp::Le, Value::Int(v)) => {
                self.hi = Some(self.hi.map_or(*v, |h| h.min(*v)));
                self.has_int_bounds = true;
            }
            (Cmp::Ge, Value::Int(v)) => {
                self.lo = Some(self.lo.map_or(*v, |l| l.max(*v)));
                self.has_int_bounds = true;
            }
            // Lt/Gt are normalized away; string ordering is rejected by
            // the parser. Treat a stray one as unsatisfiable-ish by an
            // empty interval (conservative).
            (Cmp::Lt | Cmp::Gt | Cmp::Le | Cmp::Ge, _) => {
                self.lo = Some(1);
                self.hi = Some(0);
                self.has_int_bounds = true;
            }
        }
    }

    /// Is any value consistent with this summary?
    fn satisfiable(&self) -> bool {
        if let (Some(l), Some(h)) = (self.lo, self.hi) {
            if l > h {
                return false;
            }
        }
        if let Some(eq) = &self.eq {
            if self.nes.contains(eq) {
                return false;
            }
            match eq {
                Value::Int(v) => {
                    if self.lo.is_some_and(|l| *v < l) || self.hi.is_some_and(|h| *v > h) {
                        return false;
                    }
                }
                Value::Str(_) => {
                    if self.has_int_bounds {
                        return false;
                    }
                }
            }
        }
        // Ne-exhaustion of a small closed interval.
        if let (Some(l), Some(h)) = (self.lo, self.hi) {
            let width = h.saturating_sub(l);
            if width <= 1024 && (l..=h).all(|v| self.nes.contains(&Value::Int(v))) {
                return false;
            }
        }
        true
    }

    /// Does this summary force `goal` (already normalized) to hold?
    fn implies(&self, goal: &Condition) -> bool {
        // A pinned value decides everything.
        if let Some(eq) = &self.eq {
            return goal.eval(eq);
        }
        match (goal.op, &goal.value) {
            (Cmp::Le, Value::Int(v)) => self.hi.is_some_and(|h| h <= *v),
            (Cmp::Ge, Value::Int(v)) => self.lo.is_some_and(|l| l >= *v),
            (Cmp::Eq, Value::Int(v)) => self.lo == Some(*v) && self.hi == Some(*v),
            (Cmp::Ne, v) => {
                if self.nes.contains(v) {
                    return true;
                }
                match v {
                    Value::Int(i) => {
                        self.lo.is_some_and(|l| l > *i) || self.hi.is_some_and(|h| h < *i)
                    }
                    // The value is pinned to an integer by ordering
                    // premises, so it cannot equal any string.
                    Value::Str(_) => self.has_int_bounds,
                }
            }
            (Cmp::Eq, Value::Str(_)) => false,
            // Normalized goals contain no Lt/Gt; unreachable but safe.
            _ => false,
        }
    }
}

fn summarize(premises: &[Condition]) -> tpq_base::FxHashMap<TypeId, Summary> {
    let mut map: tpq_base::FxHashMap<TypeId, Summary> = tpq_base::FxHashMap::default();
    for p in premises {
        let n = p.normalized();
        map.entry(n.attr).or_default().add(&n);
    }
    map
}

/// Is the conjunction `conds` satisfiable by some attribute assignment?
/// (Conservative: may answer `true` for some exotic unsatisfiable sets;
/// never answers `false` for a satisfiable one.)
pub fn satisfiable(conds: &[Condition]) -> bool {
    summarize(conds).values().all(Summary::satisfiable)
}

/// Does the conjunction `premises` logically entail every condition in
/// `goals`? (Conservative in the `false` direction; exact for pinned
/// values, interval bounds and disequalities.)
pub fn entails(premises: &[Condition], goals: &[Condition]) -> bool {
    if goals.is_empty() {
        return true;
    }
    let summaries = summarize(premises);
    // Ex falso: an unsatisfiable premise set entails everything.
    if summaries.values().any(|s| !s.satisfiable()) {
        return true;
    }
    goals.iter().all(|g| {
        let g = g.normalized();
        summaries.get(&g.attr).is_some_and(|s| s.implies(&g))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(i: u32) -> TypeId {
        TypeId(i)
    }

    fn c(a: u32, op: Cmp, v: i64) -> Condition {
        Condition::new(attr(a), op, Value::Int(v))
    }

    fn cs(a: u32, op: Cmp, s: &str) -> Condition {
        Condition::new(attr(a), op, Value::Str(s.into()))
    }

    #[test]
    fn interval_entailment() {
        // price < 50 entails price < 100.
        assert!(entails(&[c(0, Cmp::Lt, 50)], &[c(0, Cmp::Lt, 100)]));
        assert!(!entails(&[c(0, Cmp::Lt, 100)], &[c(0, Cmp::Lt, 50)]));
        // price <= 99 entails price < 100 (integer normalization).
        assert!(entails(&[c(0, Cmp::Le, 99)], &[c(0, Cmp::Lt, 100)]));
        // price <= 100 does NOT entail price < 100.
        assert!(!entails(&[c(0, Cmp::Le, 100)], &[c(0, Cmp::Lt, 100)]));
        // 10 <= price <= 20 entails price > 5 and price != 30.
        let premises = [c(0, Cmp::Ge, 10), c(0, Cmp::Le, 20)];
        assert!(entails(&premises, &[c(0, Cmp::Gt, 5)]));
        assert!(entails(&premises, &[c(0, Cmp::Ne, 30)]));
        assert!(!entails(&premises, &[c(0, Cmp::Ne, 15)]));
    }

    #[test]
    fn equality_pins_everything() {
        let premises = [c(0, Cmp::Eq, 42)];
        assert!(entails(&premises, &[c(0, Cmp::Le, 42)]));
        assert!(entails(&premises, &[c(0, Cmp::Ge, 42)]));
        assert!(entails(&premises, &[c(0, Cmp::Ne, 41)]));
        assert!(entails(&premises, &[c(0, Cmp::Eq, 42)]));
        assert!(!entails(&premises, &[c(0, Cmp::Eq, 43)]));
        // Bounds pinning to a point imply equality.
        assert!(entails(&[c(0, Cmp::Ge, 7), c(0, Cmp::Le, 7)], &[c(0, Cmp::Eq, 7)]));
    }

    #[test]
    fn attributes_are_independent() {
        assert!(!entails(&[c(0, Cmp::Lt, 10)], &[c(1, Cmp::Lt, 10)]));
        assert!(entails(
            &[c(0, Cmp::Lt, 10), c(1, Cmp::Eq, 3)],
            &[c(0, Cmp::Le, 9), c(1, Cmp::Ne, 4)],
        ));
    }

    #[test]
    fn empty_goal_set_always_entailed() {
        assert!(entails(&[], &[]));
        assert!(entails(&[c(0, Cmp::Eq, 1)], &[]));
        assert!(!entails(&[], &[c(0, Cmp::Eq, 1)]));
    }

    #[test]
    fn unsatisfiable_premises_entail_everything() {
        let contradiction = [c(0, Cmp::Ge, 10), c(0, Cmp::Le, 5)];
        assert!(!satisfiable(&contradiction));
        assert!(entails(&contradiction, &[c(1, Cmp::Eq, 99)]));
        let eq_conflict = [c(0, Cmp::Eq, 1), c(0, Cmp::Eq, 2)];
        assert!(!satisfiable(&eq_conflict));
        assert!(entails(&eq_conflict, &[cs(3, Cmp::Eq, "x")]));
    }

    #[test]
    fn string_conditions() {
        let premises = [cs(0, Cmp::Eq, "en")];
        assert!(entails(&premises, &[cs(0, Cmp::Ne, "fr")]));
        assert!(entails(&premises, &[cs(0, Cmp::Eq, "en")]));
        assert!(!entails(&premises, &[cs(0, Cmp::Eq, "fr")]));
        // Ne alone entails only itself.
        assert!(entails(&[cs(0, Cmp::Ne, "fr")], &[cs(0, Cmp::Ne, "fr")]));
        assert!(!entails(&[cs(0, Cmp::Ne, "fr")], &[cs(0, Cmp::Ne, "de")]));
    }

    #[test]
    fn int_bounds_preclude_string_values() {
        // price >= 0 forces an integer, so price != "gratis" holds.
        assert!(entails(&[c(0, Cmp::Ge, 0)], &[cs(0, Cmp::Ne, "gratis")]));
        // And a string equality premise conflicts with integer bounds.
        assert!(!satisfiable(&[cs(0, Cmp::Eq, "gratis"), c(0, Cmp::Ge, 0)]));
    }

    #[test]
    fn ne_exhaustion_detected_on_small_ranges() {
        let conds = [
            c(0, Cmp::Ge, 1),
            c(0, Cmp::Le, 3),
            c(0, Cmp::Ne, 1),
            c(0, Cmp::Ne, 2),
            c(0, Cmp::Ne, 3),
        ];
        assert!(!satisfiable(&conds));
    }

    #[test]
    fn satisfied_by_checks_values() {
        let attrs = vec![(attr(0), Value::Int(95)), (attr(1), Value::Str("en".into()))];
        assert!(satisfied_by(&[c(0, Cmp::Lt, 100)], &attrs));
        assert!(satisfied_by(&[c(0, Cmp::Lt, 100), cs(1, Cmp::Eq, "en")], &attrs));
        assert!(!satisfied_by(&[c(0, Cmp::Gt, 100)], &attrs));
        assert!(!satisfied_by(&[c(2, Cmp::Eq, 1)], &attrs), "missing attribute fails");
        assert!(satisfied_by(&[], &attrs));
    }

    #[test]
    fn normalization_is_idempotent() {
        let strict = c(0, Cmp::Lt, 10);
        let norm = strict.normalized();
        assert_eq!(norm.op, Cmp::Le);
        assert_eq!(norm.value, Value::Int(9));
        assert_eq!(norm.normalized(), norm);
        // Strings pass through.
        let s = cs(0, Cmp::Eq, "x");
        assert_eq!(s.normalized(), s);
    }
}
