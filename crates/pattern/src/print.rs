//! Printers for tree patterns: the DSL form (round-trips through the
//! parser) and a multi-line ASCII tree for human inspection.

use crate::node::{self as tpq_pattern_node, EdgeKind, NodeId};
use crate::pattern::TreePattern;
use std::fmt::Write as _;
use tpq_base::TypeInterner;

/// Render `pattern` in DSL form, e.g.
/// `Articles/Article*[/Title][//Paragraph]/Section`.
///
/// Single-child nodes print their child as a spine continuation; multi-child
/// nodes print all but the last child as bracketed branches. The output
/// parses back (via [`crate::parse_pattern`]) to an isomorphic pattern.
pub fn to_dsl(pattern: &TreePattern, types: &TypeInterner) -> String {
    let mut out = String::new();
    write_node(pattern, types, pattern.root(), &mut out);
    out
}

fn write_node(p: &TreePattern, types: &TypeInterner, start: NodeId, out: &mut String) {
    // The spine is emitted iteratively (deep chains must not recurse);
    // only bracketed branches recurse.
    let mut id = start;
    loop {
        let node = p.node(id);
        out.push_str(types.name(node.primary));
        if node.output {
            out.push('*');
        }
        write_conditions(node, types, out);
        let children: Vec<NodeId> =
            node.children.iter().copied().filter(|&c| p.is_alive(c)).collect();
        if children.is_empty() {
            return;
        }
        let (branches, spine) = children.split_at(children.len() - 1);
        for &b in branches {
            out.push('[');
            out.push_str(p.node(b).edge.separator());
            write_node(p, types, b, out);
            out.push(']');
        }
        let s = spine[0];
        out.push_str(p.node(s).edge.separator());
        id = s;
    }
}

/// Render `pattern` as an indented multi-line tree, one node per line.
///
/// ```text
/// Articles
/// ├─/─ Article *
/// │    ├─/─ Title
/// │    └─//─ Paragraph
/// ```
pub fn to_tree_string(pattern: &TreePattern, types: &TypeInterner) -> String {
    let mut out = String::new();
    let root = pattern.root();
    describe(pattern, types, root, &mut out);
    out.push('\n');
    let children: Vec<NodeId> = alive_children(pattern, root);
    for (i, &c) in children.iter().enumerate() {
        write_subtree(pattern, types, c, "", i + 1 == children.len(), &mut out);
    }
    out
}

fn write_conditions(node: &tpq_pattern_node::PatternNode, types: &TypeInterner, out: &mut String) {
    if node.conditions.is_empty() {
        return;
    }
    out.push('{');
    for (i, c) in node.conditions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}{}{}", types.name(c.attr), c.op, c.value);
    }
    out.push('}');
}

fn alive_children(p: &TreePattern, id: NodeId) -> Vec<NodeId> {
    p.node(id).children.iter().copied().filter(|&c| p.is_alive(c)).collect()
}

fn describe(p: &TreePattern, types: &TypeInterner, id: NodeId, out: &mut String) {
    let node = p.node(id);
    out.push_str(types.name(node.primary));
    if node.types.len() > 1 {
        let extras: Vec<&str> =
            node.types.iter().filter(|&t| t != node.primary).map(|t| types.name(t)).collect();
        let _ = write!(out, " (+{})", extras.join(",+"));
    }
    if node.output {
        out.push_str(" *");
    }
    if !node.conditions.is_empty() {
        out.push(' ');
        write_conditions(node, types, out);
    }
    if node.temporary {
        out.push_str(" [temp]");
    }
}

fn write_subtree(
    p: &TreePattern,
    types: &TypeInterner,
    id: NodeId,
    prefix: &str,
    last: bool,
    out: &mut String,
) {
    let connector = if last { "└─" } else { "├─" };
    let edge = match p.node(id).edge {
        EdgeKind::Child => "/─ ",
        EdgeKind::Descendant => "//─ ",
    };
    out.push_str(prefix);
    out.push_str(connector);
    out.push_str(edge);
    describe(p, types, id, out);
    out.push('\n');
    let child_prefix = format!("{prefix}{}", if last { "    " } else { "│   " });
    let children = alive_children(p, id);
    for (i, &c) in children.iter().enumerate() {
        write_subtree(p, types, c, &child_prefix, i + 1 == children.len(), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iso::isomorphic;
    use crate::parse::parse_pattern;
    use tpq_base::TypeInterner;

    fn round_trip(s: &str) {
        let mut tys = TypeInterner::new();
        let p = parse_pattern(s, &mut tys).unwrap();
        let printed = to_dsl(&p, &tys);
        let q = parse_pattern(&printed, &mut tys).unwrap();
        assert!(isomorphic(&p, &q), "{s} -> {printed} not isomorphic");
    }

    #[test]
    fn dsl_round_trips() {
        for s in [
            "a",
            "a/b",
            "a//b",
            "a*[/b][//c]/d",
            "Articles/Article*[/Title][//Paragraph]/Section//Paragraph",
            "a[/b[//c][/d]]//e",
            "x[/y*]//z",
        ] {
            round_trip(s);
        }
    }

    #[test]
    fn single_child_prints_as_spine() {
        let mut tys = TypeInterner::new();
        let p = parse_pattern("a/b//c", &mut tys).unwrap();
        assert_eq!(to_dsl(&p, &tys), "a*/b//c");
    }

    #[test]
    fn multi_child_prints_branches_then_spine() {
        let mut tys = TypeInterner::new();
        let p = parse_pattern("a[/b][//c]/d", &mut tys).unwrap();
        assert_eq!(to_dsl(&p, &tys), "a*[/b][//c]/d");
    }

    #[test]
    fn tree_string_contains_every_type_name() {
        let mut tys = TypeInterner::new();
        let p = parse_pattern("Org*[/Dept//Mgr][//Project]", &mut tys).unwrap();
        let art = to_tree_string(&p, &tys);
        for name in ["Org", "Dept", "Mgr", "Project"] {
            assert!(art.contains(name), "missing {name} in:\n{art}");
        }
        assert!(art.contains('*'));
    }

    #[test]
    fn tree_string_marks_temporaries_and_extra_types() {
        let mut tys = TypeInterner::new();
        let mut p = parse_pattern("a/b", &mut tys).unwrap();
        let extra = tys.intern("ghost");
        let b = p.node(p.root()).children[0];
        p.node_mut(b).types.insert(extra);
        let t = p.add_temp_child(p.root(), crate::EdgeKind::Descendant, extra);
        let _ = t;
        let art = to_tree_string(&p, &tys);
        assert!(art.contains("[temp]"));
        assert!(art.contains("(+ghost)"));
    }
}
