//! An XPath front-end for tree patterns.
//!
//! Tree patterns are the core of XPath's descendant/child fragment
//! (`XP^{/,//,[]}` in the literature). This module parses a practical
//! XPath subset directly into a [`TreePattern`]:
//!
//! ```text
//! //Articles/Article[Title][.//Paragraph][@lang='en']//Section
//! ```
//!
//! * `/` and `//` are child and descendant axes; a leading axis is
//!   allowed and ignored (patterns float anywhere in the forest);
//! * a predicate `[p]` holds a relative path (`[Title]`, `[Sub/Leaf]`,
//!   `[.//Deep]`, `[./Kid]`) or an attribute comparison
//!   (`[@price < 100]`, `[@lang = 'en']`, with `!=`, `<`, `<=`, `>`,
//!   `>=` and single- or double-quoted strings);
//! * the **last step of the main path** is the output node — XPath's
//!   selection semantics — so `//a/b[c]` marks `b`.
//!
//! Not supported (rejected with an error): wildcards (`*` as a name
//! test), other axes (`parent::` etc.), `|` unions, positional
//! predicates, and functions.

use crate::condition::Condition;
use crate::node::EdgeKind;
use crate::parse::MAX_BRACKET_DEPTH;
use crate::pattern::TreePattern;
use crate::NodeId;
use tpq_base::{failpoint, Cmp, Error, Result, TypeInterner, Value};

/// Parse an XPath expression into a tree pattern.
pub fn parse_xpath(input: &str, types: &mut TypeInterner) -> Result<TreePattern> {
    failpoint::hit("parse.xpath")?;
    let mut p = XPathParser { input: input.as_bytes(), pos: 0, types, depth: 0 };
    p.skip_ws();
    let axis = p.leading_axis();
    let _ = axis; // leading axis is irrelevant: patterns float
    let (mut pattern, mut last) = p.parse_step(None)?;
    loop {
        p.skip_ws();
        match p.try_axis() {
            Some(edge) => {
                let (pat, me) = p.parse_step(Some((pattern, last, edge)))?;
                pattern = pat;
                last = me;
            }
            None => break,
        }
    }
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing input after XPath expression"));
    }
    pattern.set_output(last);
    pattern.validate()?;
    Ok(pattern)
}

struct XPathParser<'a> {
    input: &'a [u8],
    pos: usize,
    types: &'a mut TypeInterner,
    /// Predicate nesting depth, bounded by [`MAX_BRACKET_DEPTH`]. The
    /// main path and relative paths are consumed iteratively; only
    /// `[...]` predicates recurse (`parse_step` ↔ `parse_relative_path`).
    depth: usize,
}

impl XPathParser<'_> {
    fn err(&self, message: &str) -> Error {
        Error::PatternParse { offset: self.pos, message: message.to_owned() }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn leading_axis(&mut self) -> Option<EdgeKind> {
        self.try_axis()
    }

    fn try_axis(&mut self) -> Option<EdgeKind> {
        self.skip_ws();
        if !self.eat(b'/') {
            return None;
        }
        if self.eat(b'/') {
            Some(EdgeKind::Descendant)
        } else {
            Some(EdgeKind::Child)
        }
    }

    fn parse_name(&mut self) -> Result<String> {
        self.skip_ws();
        if self.peek() == Some(b'*') {
            return Err(self.err("wildcard name tests are not supported"));
        }
        let start = self.pos;
        match self.peek() {
            Some(b) if b.is_ascii_alphabetic() || b == b'_' => self.pos += 1,
            _ => return Err(self.err("expected an element name")),
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let name = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
        if self.input[self.pos..].starts_with(b"::") {
            return Err(self.err(&format!("axis '{name}::' is not supported")));
        }
        Ok(name)
    }

    /// One step: name + predicates. `attach` is `(pattern, parent, edge)`.
    fn parse_step(
        &mut self,
        attach: Option<(TreePattern, NodeId, EdgeKind)>,
    ) -> Result<(TreePattern, NodeId)> {
        let name = self.parse_name()?;
        let ty = self.types.intern(&name);
        let (mut pattern, me) = match attach {
            None => {
                let p = TreePattern::new(ty);
                let root = p.root();
                (p, root)
            }
            Some((mut p, parent, edge)) => {
                let id = p.add_child(parent, edge, ty);
                (p, id)
            }
        };
        loop {
            self.skip_ws();
            if !self.eat(b'[') {
                break;
            }
            self.skip_ws();
            if self.peek() == Some(b'@') {
                self.pos += 1;
                let cond = self.parse_attr_comparison()?;
                pattern.node_mut(me).conditions.push(cond);
            } else {
                if self.depth >= MAX_BRACKET_DEPTH {
                    return Err(self.err("predicate nesting too deep"));
                }
                self.depth += 1;
                pattern = self.parse_relative_path(pattern, me)?;
                self.depth -= 1;
            }
            self.skip_ws();
            if !self.eat(b']') {
                return Err(self.err("expected ']' closing predicate"));
            }
        }
        if self.peek() == Some(b'|') {
            return Err(self.err("union '|' is not supported"));
        }
        Ok((pattern, me))
    }

    /// `[Title]`, `[Sub/Leaf]`, `[./Kid]`, `[.//Deep//Deeper]`.
    fn parse_relative_path(
        &mut self,
        mut pattern: TreePattern,
        anchor: NodeId,
    ) -> Result<TreePattern> {
        self.skip_ws();
        let first_edge = if self.eat(b'.') {
            // `./x` or `.//x`
            self.try_axis().ok_or_else(|| self.err("expected '/' or '//' after '.'"))?
        } else {
            // Bare `x` means child.
            EdgeKind::Child
        };
        let (pat, mut cur) = self.parse_step(Some((pattern, anchor, first_edge)))?;
        pattern = pat;
        while let Some(edge) = self.try_axis() {
            let (pat, me) = self.parse_step(Some((pattern, cur, edge)))?;
            pattern = pat;
            cur = me;
        }
        Ok(pattern)
    }

    /// `@name op literal` (the `@` is already consumed).
    fn parse_attr_comparison(&mut self) -> Result<Condition> {
        let attr_name = self.parse_name()?;
        let attr = self.types.intern(&attr_name);
        self.skip_ws();
        let op = if self.eat(b'!') {
            if !self.eat(b'=') {
                return Err(self.err("expected '=' after '!'"));
            }
            Cmp::Ne
        } else if self.eat(b'<') {
            if self.eat(b'=') {
                Cmp::Le
            } else {
                Cmp::Lt
            }
        } else if self.eat(b'>') {
            if self.eat(b'=') {
                Cmp::Ge
            } else {
                Cmp::Gt
            }
        } else if self.eat(b'=') {
            Cmp::Eq
        } else {
            return Err(self.err("expected a comparison operator after '@attr'"));
        };
        self.skip_ws();
        let value = match self.peek() {
            Some(q @ (b'\'' | b'"')) => {
                self.pos += 1;
                let start = self.pos;
                while self.peek().is_some() && self.peek() != Some(q) {
                    self.pos += 1;
                }
                if self.peek() != Some(q) {
                    return Err(self.err("unterminated string literal"));
                }
                let s = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                self.pos += 1;
                Value::Str(s)
            }
            _ => {
                let start = self.pos;
                if self.peek() == Some(b'-') {
                    self.pos += 1;
                }
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
                // The slice holds only '-' and ASCII digits; lossy decode
                // keeps even a broken slice on the Err path below.
                let text = String::from_utf8_lossy(&self.input[start..self.pos]);
                let n: i64 =
                    text.parse().map_err(|_| self.err("expected a number or quoted string"))?;
                Value::Int(n)
            }
        };
        if matches!(value, Value::Str(_)) && matches!(op, Cmp::Lt | Cmp::Le | Cmp::Gt | Cmp::Ge) {
            return Err(self.err("ordering comparisons require numeric literals"));
        }
        Ok(Condition::new(attr, op, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iso::isomorphic;
    use crate::parse::parse_pattern;

    fn xp(s: &str) -> (TreePattern, TypeInterner) {
        let mut tys = TypeInterner::new();
        let p = parse_xpath(s, &mut tys).expect("xpath parse");
        (p, tys)
    }

    fn same(xpath: &str, dsl: &str) {
        let mut tys = TypeInterner::new();
        let a = parse_xpath(xpath, &mut tys).unwrap();
        let b = parse_pattern(dsl, &mut tys).unwrap();
        assert!(isomorphic(&a, &b), "{xpath} != {dsl}");
    }

    #[test]
    fn simple_paths() {
        same("/a/b", "a/b*");
        same("//a//b", "a//b*");
        same("a/b//c", "a/b//c*");
        same("a", "a*");
    }

    #[test]
    fn output_is_the_last_main_step() {
        let (p, tys) = xp("//Articles/Article[Title]//Section");
        assert_eq!(tys.name(p.node(p.output()).primary), "Section");
    }

    #[test]
    fn predicates_translate_to_branches() {
        same("a[b][.//c]/d", "a[/b][//c]/d*");
        same("a[b/c]", "a*/b/c");
    }

    #[test]
    fn nested_predicate_paths() {
        let mut tys = TypeInterner::new();
        let a = parse_xpath("a[b/c][.//d//e]", &mut tys).unwrap();
        let b = parse_pattern("a*[/b/c]//d//e", &mut tys).unwrap();
        assert!(isomorphic(&a, &b));
        let c = parse_xpath("a[./b]", &mut tys).unwrap();
        let d = parse_pattern("a*/b", &mut tys).unwrap();
        assert!(isomorphic(&c, &d));
    }

    #[test]
    fn attribute_predicates_become_conditions() {
        let (p, tys) = xp("//Book[@price < 100][@lang = 'en']/Title");
        let root = p.root();
        let conds = &p.node(root).conditions;
        assert_eq!(conds.len(), 2);
        assert_eq!(conds[0].attr, tys.lookup("price").unwrap());
        assert_eq!(conds[0].op, Cmp::Lt);
        assert_eq!(conds[1].value, Value::Str("en".into()));
    }

    #[test]
    fn double_quoted_strings_work() {
        let (p, _) = xp(r#"Book[@lang = "en"]"#);
        assert_eq!(p.node(p.root()).conditions.len(), 1);
    }

    #[test]
    fn minimization_works_on_xpath_input() {
        // The intro example, in XPath clothes.
        let mut tys = TypeInterner::new();
        let q = parse_xpath("//Dept[.//DBProject]//Manager//DBProject", &mut tys).unwrap();
        // XPath marks the last step (DBProject), so the redundant branch
        // differs from the DSL version — here the bare [.//DBProject]
        // predicate is still foldable.
        assert_eq!(q.size(), 4);
    }

    #[test]
    fn unsupported_features_are_rejected() {
        let mut tys = TypeInterner::new();
        for bad in
            ["//*", "a|b", "parent::a", "a[1]", "a[@x < 'str']", "a[", "a[@x]", "a[]", "", "a/"]
        {
            assert!(parse_xpath(bad, &mut tys).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        same("  a [ b ] [ .//c ] / d ", "a[/b][//c]/d*");
    }

    #[test]
    fn deep_predicate_nesting_is_rejected_not_overflowed() {
        let deep = 4 * MAX_BRACKET_DEPTH;
        let mut s = String::from("a");
        for _ in 0..deep {
            s.push_str("[a");
        }
        s.push_str(&"]".repeat(deep));
        let mut tys = TypeInterner::new();
        let err = parse_xpath(&s, &mut tys).unwrap_err();
        assert!(err.to_string().contains("nesting too deep"), "{err}");
        // A long *relative path* inside one predicate is iterative and
        // stays fine at any length.
        let mut s = String::from("a[b");
        for _ in 0..50_000 {
            s.push_str("/b");
        }
        s.push(']');
        assert!(parse_xpath(&s, &mut tys).is_ok());
    }
}
