//! Parser for the tree pattern DSL.
//!
//! The DSL is an XPath-like, order-free notation for tree patterns:
//!
//! ```text
//! pattern := sep? node
//! node    := NAME '*'? branch* spine?
//! branch  := '[' sep node ']'
//! spine   := sep node
//! sep     := '//' | '/'
//! NAME    := [A-Za-z_][A-Za-z0-9_.-]*
//! ```
//!
//! `/` introduces a child edge, `//` a descendant edge. Branches in `[...]`
//! must spell their edge explicitly (`[/Title]`, `[//Paragraph]`). At most
//! one node may carry the output marker `*`; if none does, the root is the
//! output node.
//!
//! Example (Figure 2(a) of the paper):
//!
//! ```text
//! Articles/Article*[/Title][/Paragraph]/Section//Paragraph
//! ```

use crate::node::EdgeKind;
use crate::pattern::TreePattern;
use crate::NodeId;
use tpq_base::{failpoint, Error, Result, TypeInterner};

/// Maximum `[...]` nesting depth. The spine is parsed iteratively, so
/// only bracket nesting recurses; this bound keeps adversarial inputs
/// (`a[/a[/a[...`) from overflowing the stack while staying far above
/// anything a realistic query generator emits. Each level costs a few
/// sizable parser frames, so the cap must fit comfortably inside the
/// 2 MiB stacks spawned threads get by default.
pub const MAX_BRACKET_DEPTH: usize = 256;

/// Parse `input` into a [`TreePattern`], interning type names into `types`.
pub fn parse_pattern(input: &str, types: &mut TypeInterner) -> Result<TreePattern> {
    failpoint::hit("parse.pattern")?;
    let mut p = Parser { input: input.as_bytes(), pos: 0, types, star: None, depth: 0 };
    p.skip_ws();
    // A leading separator before the root is tolerated and ignored, so both
    // `/a/b` and `a/b` parse.
    let _ = p.try_separator();
    let (mut pattern, _) = p.parse_node(None)?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing input after pattern"));
    }
    if let Some(star) = p.star {
        pattern.set_output(star);
    }
    pattern.validate()?;
    Ok(pattern)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    types: &'a mut TypeInterner,
    star: Option<NodeId>,
    /// Current bracket nesting depth, bounded by [`MAX_BRACKET_DEPTH`].
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> Error {
        Error::PatternParse { offset: self.pos, message: message.to_owned() }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// `//` or `/`, if present.
    fn try_separator(&mut self) -> Option<EdgeKind> {
        self.skip_ws();
        if !self.eat(b'/') {
            return None;
        }
        if self.eat(b'/') {
            Some(EdgeKind::Descendant)
        } else {
            Some(EdgeKind::Child)
        }
    }

    /// One `attr op value` condition inside `{...}`.
    fn parse_condition(&mut self) -> Result<crate::condition::Condition> {
        use tpq_base::{Cmp, Value};
        let attr_name = self.parse_name()?;
        let attr = self.types.intern(&attr_name);
        self.skip_ws();
        let op = if self.eat(b'!') {
            if !self.eat(b'=') {
                return Err(self.err("expected '=' after '!'"));
            }
            Cmp::Ne
        } else if self.eat(b'<') {
            if self.eat(b'=') {
                Cmp::Le
            } else {
                Cmp::Lt
            }
        } else if self.eat(b'>') {
            if self.eat(b'=') {
                Cmp::Ge
            } else {
                Cmp::Gt
            }
        } else if self.eat(b'=') {
            Cmp::Eq
        } else {
            return Err(self.err("expected a comparison operator"));
        };
        self.skip_ws();
        let value = if self.peek() == Some(b'"') {
            self.pos += 1;
            let start = self.pos;
            while self.peek().is_some() && self.peek() != Some(b'"') {
                self.pos += 1;
            }
            if self.peek() != Some(b'"') {
                return Err(self.err("unterminated string value"));
            }
            let s = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
            self.pos += 1;
            Value::Str(s)
        } else {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            let text = String::from_utf8_lossy(&self.input[start..self.pos]);
            let n: i64 =
                text.parse().map_err(|_| self.err("expected an integer or quoted string value"))?;
            Value::Int(n)
        };
        if matches!(value, Value::Str(_)) && matches!(op, Cmp::Lt | Cmp::Le | Cmp::Gt | Cmp::Ge) {
            return Err(self.err("ordering comparisons require integer values"));
        }
        Ok(crate::condition::Condition::new(attr, op, value))
    }

    fn parse_name(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        match self.peek() {
            Some(b) if b.is_ascii_alphabetic() || b == b'_' => self.pos += 1,
            _ => return Err(self.err("expected a type name")),
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    /// Parse one node and its subtree (branches plus spine). `attach` is
    /// `(pattern-so-far, parent, edge)`; `None` means this is the root.
    /// The spine is consumed iteratively so deep chains cannot overflow
    /// the stack; only bracket nesting recurses.
    fn parse_node(
        &mut self,
        attach: Option<(TreePattern, NodeId, EdgeKind)>,
    ) -> Result<(TreePattern, NodeId)> {
        let (mut pattern, first) = self.parse_single(attach)?;
        let mut cur = first;
        while let Some(edge) = self.try_separator() {
            let (p, me) = self.parse_single(Some((pattern, cur, edge)))?;
            pattern = p;
            cur = me;
        }
        Ok((pattern, first))
    }

    /// One node: name, `*`/condition groups, bracketed branches — no
    /// spine continuation.
    fn parse_single(
        &mut self,
        attach: Option<(TreePattern, NodeId, EdgeKind)>,
    ) -> Result<(TreePattern, NodeId)> {
        let name = self.parse_name()?;
        let ty = self.types.intern(&name);
        let (mut pattern, me) = match attach {
            None => {
                let p = TreePattern::new(ty);
                let root = p.root();
                (p, root)
            }
            Some((mut p, parent, edge)) => {
                let id = p.add_child(parent, edge, ty);
                (p, id)
            }
        };
        // `*` marker and `{...}` condition groups, in any order.
        loop {
            self.skip_ws();
            if self.eat(b'*') {
                if self.star.is_some() {
                    return Err(self.err("more than one output marker '*'"));
                }
                self.star = Some(me);
            } else if self.peek() == Some(b'{') {
                self.pos += 1;
                loop {
                    let cond = self.parse_condition()?;
                    pattern.node_mut(me).conditions.push(cond);
                    self.skip_ws();
                    if self.eat(b',') {
                        continue;
                    }
                    if self.eat(b'}') {
                        break;
                    }
                    return Err(self.err("expected ',' or '}' in condition group"));
                }
            } else {
                break;
            }
        }
        // Branches.
        loop {
            self.skip_ws();
            if !self.eat(b'[') {
                break;
            }
            let edge = self
                .try_separator()
                .ok_or_else(|| self.err("branch must start with '/' or '//'"))?;
            if self.depth >= MAX_BRACKET_DEPTH {
                return Err(self.err("bracket nesting too deep"));
            }
            self.depth += 1;
            let (p, _) = self.parse_node(Some((pattern, me, edge)))?;
            self.depth -= 1;
            pattern = p;
            self.skip_ws();
            if !self.eat(b']') {
                return Err(self.err("expected ']' to close branch"));
            }
        }
        Ok((pattern, me))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::EdgeKind;

    fn parse(s: &str) -> (TreePattern, TypeInterner) {
        let mut tys = TypeInterner::new();
        let p = parse_pattern(s, &mut tys).expect("parse");
        (p, tys)
    }

    #[test]
    fn single_node_defaults_output_to_root() {
        let (p, tys) = parse("Book");
        assert_eq!(p.size(), 1);
        assert_eq!(p.output(), p.root());
        assert_eq!(tys.name(p.node(p.root()).primary), "Book");
    }

    #[test]
    fn chain_with_both_edge_kinds() {
        let (p, tys) = parse("a/b//c");
        assert_eq!(p.size(), 3);
        let b = p.node(p.root()).children[0];
        let c = p.node(b).children[0];
        assert_eq!(p.node(b).edge, EdgeKind::Child);
        assert_eq!(p.node(c).edge, EdgeKind::Descendant);
        assert_eq!(tys.name(p.node(c).primary), "c");
    }

    #[test]
    fn branches_and_spine() {
        let (p, _) = parse("Articles/Article*[/Title][//Paragraph]/Section//Paragraph");
        assert_eq!(p.size(), 6);
        let article = p.node(p.root()).children[0];
        assert_eq!(p.output(), article);
        assert_eq!(p.node(article).children.len(), 3);
        let kinds: Vec<_> = p.node(article).children.iter().map(|&c| p.node(c).edge).collect();
        assert_eq!(kinds, vec![EdgeKind::Child, EdgeKind::Descendant, EdgeKind::Child]);
    }

    #[test]
    fn leading_separator_tolerated() {
        let (p, _) = parse("//a/b");
        assert_eq!(p.size(), 2);
    }

    #[test]
    fn whitespace_tolerated() {
        let (p, _) = parse("  a [ /b ] [ //c ] / d ");
        assert_eq!(p.size(), 4);
    }

    #[test]
    fn nested_branches() {
        let (p, _) = parse("a[/b[//c][/d]]//e");
        assert_eq!(p.size(), 5);
        let b = p.node(p.root()).children[0];
        assert_eq!(p.node(b).children.len(), 2);
    }

    #[test]
    fn star_deep_in_branch() {
        let (p, tys) = parse("a[/b/c*]//d");
        let b = p.node(p.root()).children[0];
        let c = p.node(b).children[0];
        assert_eq!(p.output(), c);
        assert_eq!(tys.name(p.node(c).primary), "c");
    }

    #[test]
    fn errors() {
        let mut tys = TypeInterner::new();
        assert!(parse_pattern("", &mut tys).is_err());
        assert!(parse_pattern("a*[/b*]", &mut tys).is_err(), "two stars");
        assert!(parse_pattern("a[b]", &mut tys).is_err(), "branch without separator");
        assert!(parse_pattern("a/b]", &mut tys).is_err(), "trailing junk");
        assert!(parse_pattern("a[/b", &mut tys).is_err(), "unclosed branch");
        assert!(parse_pattern("a//", &mut tys).is_err(), "dangling separator");
        assert!(parse_pattern("3x", &mut tys).is_err(), "bad name start");
    }

    #[test]
    fn conditions_parse() {
        use tpq_base::{Cmp, Value};
        let (p, tys) = parse(r#"Book*{price<100}{lang="en"}/Title"#);
        let root = p.root();
        let conds = &p.node(root).conditions;
        assert_eq!(conds.len(), 2);
        assert_eq!(conds[0].attr, tys.lookup("price").unwrap());
        assert_eq!(conds[0].op, Cmp::Lt);
        assert_eq!(conds[0].value, Value::Int(100));
        assert_eq!(conds[1].attr, tys.lookup("lang").unwrap());
        assert_eq!(conds[1].op, Cmp::Eq);
        assert_eq!(conds[1].value, Value::Str("en".into()));
    }

    #[test]
    fn condition_group_with_commas_and_all_operators() {
        use tpq_base::Cmp;
        let (p, _) = parse("a{x=1, y!=2, z<3, w<=4, v>5, u>=-6}");
        let ops: Vec<Cmp> = p.node(p.root()).conditions.iter().map(|c| c.op).collect();
        assert_eq!(ops, vec![Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge]);
        assert_eq!(p.node(p.root()).conditions[5].value, tpq_base::Value::Int(-6));
    }

    #[test]
    fn conditions_before_star_allowed() {
        let (p, _) = parse("a{x=1}*/b");
        assert_eq!(p.output(), p.root());
        assert_eq!(p.node(p.root()).conditions.len(), 1);
    }

    #[test]
    fn condition_errors() {
        let mut tys = TypeInterner::new();
        for bad in [
            "a{x<\"s\"}", // string ordering
            "a{x}",       // missing operator
            "a{x=}",      // missing value
            "a{x=1",      // unterminated group
            "a{x=\"unterminated}",
            "a{x!1}", // bad operator
        ] {
            assert!(parse_pattern(bad, &mut tys).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn conditioned_round_trip() {
        let mut tys = TypeInterner::new();
        let p =
            parse_pattern(r#"Book*{price<=99,lang="en"}[/Title{len>3}]//Para"#, &mut tys).unwrap();
        let printed = crate::print::to_dsl(&p, &tys);
        let q = parse_pattern(&printed, &mut tys).unwrap();
        assert!(crate::iso::isomorphic(&p, &q), "{printed}");
    }

    #[test]
    fn same_name_interns_to_same_type() {
        let (p, _) = parse("a//a//a");
        let ids: Vec<_> = p.alive_ids().map(|id| p.node(id).primary).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn deep_bracket_nesting_is_rejected_not_overflowed() {
        // Bracket nesting recurses, so it is depth-limited: an adversarial
        // input must come back as a parse error, never a stack overflow.
        let deep = 4 * MAX_BRACKET_DEPTH;
        let mut s = String::from("a");
        for _ in 0..deep {
            s.push_str("[/a");
        }
        s.push_str(&"]".repeat(deep));
        let mut tys = TypeInterner::new();
        let err = parse_pattern(&s, &mut tys).unwrap_err();
        assert!(err.to_string().contains("nesting too deep"), "{err}");
        // Nesting up to half the limit parses fine.
        let ok_depth = MAX_BRACKET_DEPTH / 2;
        let mut s = String::from("a");
        for _ in 0..ok_depth {
            s.push_str("[/a");
        }
        s.push_str(&"]".repeat(ok_depth));
        let p = parse_pattern(&s, &mut tys).unwrap();
        assert_eq!(p.size(), ok_depth + 1);
    }

    #[test]
    fn parse_pattern_failpoint_injects_an_error() {
        let _fp = tpq_base::failpoint::arm_for_thread(
            "parse.pattern",
            tpq_base::failpoint::Action::Err,
            1,
        );
        let mut tys = TypeInterner::new();
        let err = parse_pattern("a/b", &mut tys).unwrap_err();
        assert_eq!(err, Error::Injected { point: "parse.pattern".into() });
        // One-shot: the next parse succeeds.
        assert!(parse_pattern("a/b", &mut tys).is_ok());
    }

    #[test]
    fn very_deep_chains_parse_without_overflow() {
        // The spine is parsed iteratively; 100k-deep chains must work.
        let depth = 100_000;
        let mut s = String::from("a");
        for _ in 1..depth {
            s.push_str("/a");
        }
        let (p, _) = parse(&s);
        assert_eq!(p.size(), depth);
        assert_eq!(p.max_depth(), depth - 1);
        assert_eq!(p.post_order().len(), depth);
        assert_eq!(p.subtree_size(p.root()), depth);
    }
}
