//! The arena-based tree pattern.

use crate::condition::Condition;
use crate::node::{EdgeKind, NodeId, PatternNode};
use tpq_base::{Error, Json, Result, TypeId, TypeSet};

/// A tree pattern query.
///
/// Nodes live in a flat arena; removal tombstones the node and
/// [`compact`](TreePattern::compact) renumbers. Exactly one alive node
/// carries the output marker `*` (the root by default).
///
/// ```
/// use tpq_pattern::{TreePattern, EdgeKind};
/// use tpq_base::TypeInterner;
/// let mut tys = TypeInterner::new();
/// let (a, b, c) = (tys.intern("a"), tys.intern("b"), tys.intern("c"));
/// let mut q = TreePattern::new(a);
/// let n1 = q.add_child(q.root(), EdgeKind::Child, b);
/// let _n2 = q.add_child(n1, EdgeKind::Descendant, c);
/// assert_eq!(q.size(), 3);
/// q.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreePattern {
    nodes: Vec<PatternNode>,
    root: NodeId,
    output: NodeId,
}

impl TreePattern {
    /// A single-node pattern of type `ty`; the root is the output node.
    pub fn new(ty: TypeId) -> Self {
        let mut root = PatternNode::new(ty, None, EdgeKind::Child);
        root.output = true;
        TreePattern { nodes: vec![root], root: NodeId(0), output: NodeId(0) }
    }

    /// The root node id.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The output (`*`) node id.
    #[inline]
    pub fn output(&self) -> NodeId {
        self.output
    }

    /// Move the output marker to `id`.
    ///
    /// # Panics
    /// Panics if `id` is dead.
    pub fn set_output(&mut self, id: NodeId) {
        assert!(self.nodes[id.index()].alive, "output node must be alive");
        let old = self.output;
        self.nodes[old.index()].output = false;
        self.nodes[id.index()].output = true;
        self.output = id;
    }

    /// Borrow a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &PatternNode {
        &self.nodes[id.index()]
    }

    /// Mutably borrow a node.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut PatternNode {
        &mut self.nodes[id.index()]
    }

    /// Whether `id` is alive (not removed).
    #[inline]
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes[id.index()].alive
    }

    /// Add a child of type `ty` under `parent` with the given edge kind.
    pub fn add_child(&mut self, parent: NodeId, edge: EdgeKind, ty: TypeId) -> NodeId {
        debug_assert!(self.nodes[parent.index()].alive, "parent must be alive");
        let id = NodeId(u32::try_from(self.nodes.len()).expect("pattern too large"));
        self.nodes.push(PatternNode::new(ty, Some(parent), edge));
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Add a *temporary* child (augmentation, Section 5.2).
    pub fn add_temp_child(&mut self, parent: NodeId, edge: EdgeKind, ty: TypeId) -> NodeId {
        let id = self.add_child(parent, edge, ty);
        self.nodes[id.index()].temporary = true;
        id
    }

    /// Number of alive nodes (the paper's "size of a tree query").
    pub fn size(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Arena length including tombstones.
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Iterate over alive node ids in arena order.
    pub fn alive_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().enumerate().filter(|(_, n)| n.alive).map(|(i, _)| NodeId(i as u32))
    }

    /// All alive leaves.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.alive_ids().filter(|&id| self.node(id).is_leaf()).collect()
    }

    /// Alive node ids in post-order (children before parents). Iterative:
    /// safe on arbitrarily deep patterns.
    pub fn post_order(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.size());
        enum Step {
            Enter(NodeId),
            Exit(NodeId),
        }
        let mut stack = vec![Step::Enter(self.root)];
        while let Some(step) = stack.pop() {
            match step {
                Step::Enter(id) => {
                    if !self.is_alive(id) {
                        continue;
                    }
                    stack.push(Step::Exit(id));
                    for &c in self.node(id).children.iter().rev() {
                        stack.push(Step::Enter(c));
                    }
                }
                Step::Exit(id) => out.push(id),
            }
        }
        out
    }

    /// Alive node ids in pre-order (parents before children).
    pub fn pre_order(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.size());
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            if !self.is_alive(id) {
                continue;
            }
            out.push(id);
            // Push in reverse so children pop in insertion order.
            for &c in self.node(id).children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Iterate over the proper ancestors of `id`, nearest first.
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors { pattern: self, current: self.node(id).parent }
    }

    /// Whether `anc` is a **proper** ancestor of `desc` in the pattern tree.
    pub fn is_proper_ancestor(&self, anc: NodeId, desc: NodeId) -> bool {
        self.ancestors(desc).any(|a| a == anc)
    }

    /// Depth of `id` (root has depth 0).
    pub fn depth(&self, id: NodeId) -> usize {
        self.ancestors(id).count()
    }

    /// Maximum depth over alive nodes (single DFS, O(n)).
    pub fn max_depth(&self) -> usize {
        let mut max = 0;
        let mut stack = vec![(self.root, 0usize)];
        while let Some((id, d)) = stack.pop() {
            if !self.is_alive(id) {
                continue;
            }
            max = max.max(d);
            for &c in &self.node(id).children {
                stack.push((c, d + 1));
            }
        }
        max
    }

    /// Maximum fanout (number of alive children) over alive nodes.
    pub fn max_fanout(&self) -> usize {
        self.alive_ids()
            .map(|id| self.node(id).children.iter().filter(|&&c| self.is_alive(c)).count())
            .max()
            .unwrap_or(0)
    }

    /// Number of alive nodes in the subtree rooted at `id` (inclusive).
    pub fn subtree_size(&self, id: NodeId) -> usize {
        if !self.is_alive(id) {
            return 0;
        }
        let mut count = 0;
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            if !self.is_alive(n) {
                continue;
            }
            count += 1;
            stack.extend_from_slice(&self.node(n).children);
        }
        count
    }

    /// Remove an alive leaf. Errors if `id` is not an alive leaf, is the
    /// root, or is the output node (a `*` node can never be redundant).
    pub fn remove_leaf(&mut self, id: NodeId) -> Result<()> {
        let node = &self.nodes[id.index()];
        if !node.alive {
            return Err(Error::InvalidPattern(format!("{id} is already removed")));
        }
        if !node.is_leaf() {
            return Err(Error::InvalidPattern(format!("{id} is not a leaf")));
        }
        if id == self.root {
            return Err(Error::InvalidPattern("cannot remove the root".into()));
        }
        if id == self.output {
            return Err(Error::InvalidPattern("cannot remove the output node".into()));
        }
        let parent = node.parent.expect("non-root has a parent");
        self.nodes[parent.index()].children.retain(|&c| c != id);
        self.nodes[id.index()].alive = false;
        Ok(())
    }

    /// Remove a whole subtree (used when stripping augmentation temps and by
    /// partial elimination orderings). Errors if the subtree contains the
    /// output node or the root.
    pub fn remove_subtree(&mut self, id: NodeId) -> Result<()> {
        if id == self.root {
            return Err(Error::InvalidPattern("cannot remove the root subtree".into()));
        }
        if !self.is_alive(id) {
            return Err(Error::InvalidPattern(format!("{id} is already removed")));
        }
        if id == self.output || self.is_proper_ancestor(id, self.output) {
            return Err(Error::InvalidPattern("subtree contains the output node".into()));
        }
        let parent = self.nodes[id.index()].parent.expect("non-root has a parent");
        self.nodes[parent.index()].children.retain(|&c| c != id);
        self.kill_recursive(id);
        Ok(())
    }

    fn kill_recursive(&mut self, id: NodeId) {
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            let children = std::mem::take(&mut self.nodes[n.index()].children);
            self.nodes[n.index()].alive = false;
            stack.extend(children);
        }
    }

    /// Strip every temporary node (and its temporary descendants) and every
    /// chase-added extra type, restoring an augmentation-free pattern.
    ///
    /// Augmentation only ever adds temporary *leaves* under original nodes
    /// (Section 5.2 applies ICs to original nodes only), so temporary nodes
    /// never have original descendants.
    pub fn strip_temporaries(&mut self) {
        let temps: Vec<NodeId> = self
            .alive_ids()
            .filter(|&id| {
                self.node(id).temporary
                    && self.node(id).parent.is_none_or(|p| !self.node(p).temporary)
            })
            .collect();
        for t in temps {
            self.remove_subtree(t).expect("temporary subtree is removable");
        }
        for id in 0..self.nodes.len() {
            let n = &mut self.nodes[id];
            if n.alive {
                n.types = tpq_base::TypeSet::singleton(n.primary);
            }
        }
    }

    /// Compact the arena: drop tombstones and renumber. Returns the new
    /// pattern and the old-id → new-id mapping.
    pub fn compact(&self) -> (TreePattern, Vec<Option<NodeId>>) {
        let mut mapping: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut next = 0u32;
        // Pre-order so the new root is index 0 and parents precede children.
        for id in self.pre_order() {
            mapping[id.index()] = Some(NodeId(next));
            next += 1;
        }
        let mut nodes = Vec::with_capacity(next as usize);
        for id in self.pre_order() {
            let old = self.node(id);
            nodes.push(PatternNode {
                primary: old.primary,
                types: old.types.clone(),
                conditions: old.conditions.clone(),
                parent: old.parent.map(|p| mapping[p.index()].expect("parent alive")),
                edge: old.edge,
                children: old
                    .children
                    .iter()
                    .filter(|&&c| self.is_alive(c))
                    .map(|&c| mapping[c.index()].expect("child alive"))
                    .collect(),
                output: old.output,
                temporary: old.temporary,
                alive: true,
            });
        }
        let new = TreePattern {
            nodes,
            root: mapping[self.root.index()].expect("root alive"),
            output: mapping[self.output.index()].expect("output alive"),
        };
        (new, mapping)
    }

    /// JSON form of the whole arena, tombstones included, so that
    /// [`TreePattern::from_json`] reproduces the pattern exactly
    /// (`from_json(to_json(q)) == q` under full structural equality).
    pub fn to_json(&self) -> Json {
        let nodes = self
            .nodes
            .iter()
            .map(|n| {
                Json::object(vec![
                    ("primary", Json::Int(n.primary.0 as i64)),
                    ("types", Json::Array(n.types.iter().map(|t| Json::Int(t.0 as i64)).collect())),
                    ("parent", n.parent.map_or(Json::Null, |p| Json::Int(p.0 as i64))),
                    ("edge", Json::Str(n.edge.separator().to_string())),
                    (
                        "children",
                        Json::Array(n.children.iter().map(|c| Json::Int(c.0 as i64)).collect()),
                    ),
                    (
                        "conditions",
                        Json::Array(n.conditions.iter().map(Condition::to_json).collect()),
                    ),
                    ("output", Json::Bool(n.output)),
                    ("temporary", Json::Bool(n.temporary)),
                    ("alive", Json::Bool(n.alive)),
                ])
            })
            .collect();
        Json::object(vec![
            ("nodes", Json::Array(nodes)),
            ("root", Json::Int(self.root.0 as i64)),
            ("output", Json::Int(self.output.0 as i64)),
        ])
    }

    /// Inverse of [`TreePattern::to_json`]. Validates the reconstructed
    /// pattern before returning it.
    pub fn from_json(json: &Json) -> Result<TreePattern> {
        fn node_id(json: &Json) -> Option<NodeId> {
            Some(NodeId(u32::try_from(json.as_i64()?).ok()?))
        }
        let bad = |what: &str| Error::InvalidPattern(format!("pattern json: {what}"));

        let raw_nodes =
            json.get("nodes").and_then(Json::as_array).ok_or_else(|| bad("missing nodes array"))?;
        let mut nodes = Vec::with_capacity(raw_nodes.len());
        for raw in raw_nodes {
            let primary = raw
                .get("primary")
                .and_then(Json::as_i64)
                .and_then(|i| u32::try_from(i).ok())
                .map(TypeId)
                .ok_or_else(|| bad("bad primary type"))?;
            let types: TypeSet = raw
                .get("types")
                .and_then(Json::as_array)
                .ok_or_else(|| bad("bad type set"))?
                .iter()
                .map(|t| {
                    t.as_i64()
                        .and_then(|i| u32::try_from(i).ok())
                        .map(TypeId)
                        .ok_or_else(|| bad("bad type id"))
                })
                .collect::<Result<_>>()?;
            let parent = match raw.get("parent") {
                Some(Json::Null) | None => None,
                Some(p) => Some(node_id(p).ok_or_else(|| bad("bad parent id"))?),
            };
            let edge = match raw.get("edge").and_then(Json::as_str) {
                Some("/") => EdgeKind::Child,
                Some("//") => EdgeKind::Descendant,
                _ => return Err(bad("bad edge kind")),
            };
            let children = raw
                .get("children")
                .and_then(Json::as_array)
                .ok_or_else(|| bad("bad child list"))?
                .iter()
                .map(|c| node_id(c).ok_or_else(|| bad("bad child id")))
                .collect::<Result<_>>()?;
            let conditions = match raw.get("conditions").and_then(Json::as_array) {
                Some(conds) => conds
                    .iter()
                    .map(|c| Condition::from_json(c).ok_or_else(|| bad("bad condition")))
                    .collect::<Result<_>>()?,
                None => Vec::new(),
            };
            let flag = |key: &str| raw.get(key).and_then(Json::as_bool).unwrap_or_default();
            nodes.push(PatternNode {
                primary,
                types,
                parent,
                edge,
                children,
                conditions,
                output: flag("output"),
                temporary: flag("temporary"),
                alive: raw.get("alive").and_then(Json::as_bool).unwrap_or(true),
            });
        }
        let root = json
            .get("root")
            .and_then(node_id)
            .filter(|r| r.index() < nodes.len())
            .ok_or_else(|| bad("bad root id"))?;
        let output = json
            .get("output")
            .and_then(node_id)
            .filter(|o| o.index() < nodes.len())
            .ok_or_else(|| bad("bad output id"))?;
        for n in &nodes {
            for &c in n.children.iter().chain(n.parent.iter()) {
                if c.index() >= nodes.len() {
                    return Err(bad("node id out of range"));
                }
            }
        }
        let pattern = TreePattern { nodes, root, output };
        pattern.validate()?;
        Ok(pattern)
    }

    /// Check every structural invariant; used defensively at public API
    /// boundaries and extensively in tests.
    pub fn validate(&self) -> Result<()> {
        if !self.is_alive(self.root) {
            return Err(Error::InvalidPattern("root is dead".into()));
        }
        if self.node(self.root).parent.is_some() {
            return Err(Error::InvalidPattern("root has a parent".into()));
        }
        if !self.is_alive(self.output) {
            return Err(Error::InvalidPattern("output node is dead".into()));
        }
        let mut marked = 0usize;
        let mut reachable = 0usize;
        for id in self.pre_order() {
            reachable += 1;
            let n = self.node(id);
            if n.output {
                marked += 1;
                if id != self.output {
                    return Err(Error::InvalidPattern(format!(
                        "{id} is marked but output field says {}",
                        self.output
                    )));
                }
            }
            if !n.types.contains(n.primary) {
                return Err(Error::InvalidPattern(format!(
                    "{id}: type set does not contain the primary type"
                )));
            }
            for &c in &n.children {
                if !self.is_alive(c) {
                    return Err(Error::InvalidPattern(format!("{id} has dead child {c}")));
                }
                if self.node(c).parent != Some(id) {
                    return Err(Error::InvalidPattern(format!(
                        "child {c} of {id} has a mismatched parent link"
                    )));
                }
            }
            if let Some(p) = n.parent {
                if !self.is_alive(p) {
                    return Err(Error::InvalidPattern(format!("{id} has dead parent {p}")));
                }
                if !self.node(p).children.contains(&id) {
                    return Err(Error::InvalidPattern(format!(
                        "{id} missing from parent {p}'s child list"
                    )));
                }
            }
        }
        if marked != 1 {
            return Err(Error::InvalidPattern(format!("{marked} output markers (want 1)")));
        }
        if reachable != self.size() {
            return Err(Error::InvalidPattern(format!(
                "{reachable} reachable alive nodes but {} alive in arena",
                self.size()
            )));
        }
        Ok(())
    }
}

/// Iterator over proper ancestors, nearest first. See
/// [`TreePattern::ancestors`].
pub struct Ancestors<'a> {
    pattern: &'a TreePattern,
    current: Option<NodeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.current?;
        self.current = self.pattern.node(id).parent;
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpq_base::TypeInterner;

    fn chain() -> (TreePattern, Vec<NodeId>) {
        // a / b // c / d
        let mut tys = TypeInterner::new();
        let ids = tys.intern_all(["a", "b", "c", "d"]);
        let mut q = TreePattern::new(ids[0]);
        let b = q.add_child(q.root(), EdgeKind::Child, ids[1]);
        let c = q.add_child(b, EdgeKind::Descendant, ids[2]);
        let d = q.add_child(c, EdgeKind::Child, ids[3]);
        (q, vec![NodeId(0), b, c, d])
    }

    #[test]
    fn build_and_sizes() {
        let (q, ids) = chain();
        assert_eq!(q.size(), 4);
        assert_eq!(q.leaves(), vec![ids[3]]);
        assert_eq!(q.depth(ids[3]), 3);
        assert_eq!(q.max_depth(), 3);
        assert_eq!(q.max_fanout(), 1);
        q.validate().unwrap();
    }

    #[test]
    fn orders_are_consistent() {
        let (q, ids) = chain();
        assert_eq!(q.pre_order(), ids);
        let mut rev = ids.clone();
        rev.reverse();
        assert_eq!(q.post_order(), rev);
    }

    #[test]
    fn ancestors_nearest_first() {
        let (q, ids) = chain();
        let anc: Vec<_> = q.ancestors(ids[3]).collect();
        assert_eq!(anc, vec![ids[2], ids[1], ids[0]]);
        assert!(q.is_proper_ancestor(ids[0], ids[3]));
        assert!(!q.is_proper_ancestor(ids[3], ids[0]));
        assert!(!q.is_proper_ancestor(ids[1], ids[1]));
    }

    #[test]
    fn remove_leaf_rules() {
        let (mut q, ids) = chain();
        // Not a leaf.
        assert!(q.remove_leaf(ids[1]).is_err());
        // Output node (root by default) cannot be removed even if leaf-like.
        assert!(q.remove_leaf(ids[0]).is_err());
        q.remove_leaf(ids[3]).unwrap();
        assert_eq!(q.size(), 3);
        assert!(q.remove_leaf(ids[3]).is_err(), "double removal rejected");
        // c is now a leaf.
        q.remove_leaf(ids[2]).unwrap();
        assert_eq!(q.size(), 2);
        q.validate().unwrap();
    }

    #[test]
    fn cannot_remove_output_leaf() {
        let (mut q, ids) = chain();
        q.set_output(ids[3]);
        assert!(q.remove_leaf(ids[3]).is_err());
    }

    #[test]
    fn remove_subtree_protects_output() {
        let (mut q, ids) = chain();
        q.set_output(ids[2]);
        assert!(q.remove_subtree(ids[1]).is_err(), "contains output");
        q.set_output(ids[0]);
        q.remove_subtree(ids[1]).unwrap();
        assert_eq!(q.size(), 1);
        q.validate().unwrap();
    }

    #[test]
    fn compact_renumbers_and_preserves_shape() {
        let (mut q, ids) = chain();
        let mut tys = TypeInterner::new();
        tys.intern_all(["a", "b", "c", "d", "e"]);
        let e = q.add_child(ids[1], EdgeKind::Descendant, TypeId(4));
        q.remove_leaf(ids[3]).unwrap();
        q.remove_leaf(ids[2]).unwrap();
        let (c, mapping) = q.compact();
        assert_eq!(c.size(), 3);
        assert_eq!(c.arena_len(), 3);
        assert_eq!(mapping[ids[3].index()], None);
        let new_e = mapping[e.index()].unwrap();
        assert_eq!(c.node(new_e).primary, TypeId(4));
        assert_eq!(c.node(new_e).edge, EdgeKind::Descendant);
        c.validate().unwrap();
    }

    #[test]
    fn strip_temporaries_removes_temp_subtrees_and_extra_types() {
        let (mut q, ids) = chain();
        let t = q.add_temp_child(ids[1], EdgeKind::Descendant, TypeId(9));
        let _t2 = q.add_temp_child(t, EdgeKind::Child, TypeId(10));
        q.node_mut(ids[2]).types.insert(TypeId(11));
        assert_eq!(q.size(), 6);
        q.strip_temporaries();
        assert_eq!(q.size(), 4);
        assert_eq!(q.node(ids[2]).types.len(), 1);
        q.validate().unwrap();
    }

    #[test]
    fn validate_catches_double_output() {
        let (mut q, ids) = chain();
        q.node_mut(ids[2]).output = true; // corrupt directly
        assert!(q.validate().is_err());
    }

    #[test]
    fn set_output_moves_marker() {
        let (mut q, ids) = chain();
        q.set_output(ids[2]);
        assert!(q.node(ids[2]).output);
        assert!(!q.node(ids[0]).output);
        assert_eq!(q.output(), ids[2]);
        q.validate().unwrap();
    }

    #[test]
    fn json_round_trip_preserves_tombstones_and_flags() {
        let (mut q, ids) = chain();
        let t = q.add_temp_child(ids[1], EdgeKind::Descendant, TypeId(9));
        q.node_mut(t).types.insert(TypeId(11));
        q.remove_leaf(ids[3]).unwrap();
        q.set_output(ids[2]);
        let text = q.to_json().to_string_pretty();
        let back = TreePattern::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(q, back);
        assert_eq!(back.arena_len(), q.arena_len(), "tombstones survive");
    }

    #[test]
    fn from_json_rejects_garbage() {
        for text in [
            "{}",
            r#"{"nodes": [], "root": 0, "output": 0}"#,
            r#"{"nodes": [{"primary": 0, "types": [0], "parent": 7, "edge": "/",
                 "children": [], "conditions": [], "output": true,
                 "temporary": false, "alive": true}], "root": 0, "output": 0}"#,
        ] {
            let json = Json::parse(text).unwrap();
            assert!(TreePattern::from_json(&json).is_err(), "accepted: {text}");
        }
    }

    #[test]
    fn subtree_size_counts_inclusively() {
        let (q, ids) = chain();
        assert_eq!(q.subtree_size(ids[0]), 4);
        assert_eq!(q.subtree_size(ids[2]), 2);
        assert_eq!(q.subtree_size(ids[3]), 1);
    }
}
