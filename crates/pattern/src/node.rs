//! Pattern node and edge primitives.

use crate::condition::Condition;
use std::fmt;
use tpq_base::{TypeId, TypeSet};

/// Index of a node inside a [`TreePattern`](crate::TreePattern) arena.
///
/// Ids are stable across leaf removal (tombstones) but are invalidated by
/// [`TreePattern::compact`](crate::TreePattern::compact).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a usize, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The two edge kinds of a tree pattern (Section 3: single edges are *child*
/// edges, double edges are *descendant* edges).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeKind {
    /// `/` — the child must be directly contained in the parent.
    Child,
    /// `//` — the child must be a proper descendant of the parent.
    Descendant,
}

impl EdgeKind {
    /// DSL separator for this edge kind.
    pub fn separator(self) -> &'static str {
        match self {
            EdgeKind::Child => "/",
            EdgeKind::Descendant => "//",
        }
    }
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.separator())
    }
}

/// One node of a tree pattern.
///
/// `primary` is the type the query was written with; `types` additionally
/// holds co-occurrence types merged in by the chase (Section 5.2) and always
/// contains `primary`. `temporary` marks nodes added by augmentation — they
/// are never candidates for removal and are stripped after ACIM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternNode {
    /// The query type of this node.
    pub primary: TypeId,
    /// All types associated with the node (`⊇ {primary}` while alive).
    pub types: TypeSet,
    /// Parent link; `None` for the root.
    pub parent: Option<NodeId>,
    /// Kind of the edge from the parent (meaningless for the root, kept as
    /// [`EdgeKind::Child`]).
    pub edge: EdgeKind,
    /// Children in insertion order.
    pub children: Vec<NodeId>,
    /// Value-based conditions on the node (conjunction; Section 7).
    pub conditions: Vec<Condition>,
    /// Whether this node carries the output marker `*`.
    pub output: bool,
    /// Whether this node was added by augmentation (temporary).
    pub temporary: bool,
    /// Tombstone flag; dead nodes are skipped by every traversal.
    pub alive: bool,
}

impl PatternNode {
    /// A fresh, alive, non-temporary node of type `ty`.
    pub fn new(ty: TypeId, parent: Option<NodeId>, edge: EdgeKind) -> Self {
        PatternNode {
            primary: ty,
            types: TypeSet::singleton(ty),
            parent,
            edge,
            children: Vec::new(),
            conditions: Vec::new(),
            output: false,
            temporary: false,
            alive: true,
        }
    }

    /// Whether the node currently has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_separators() {
        assert_eq!(EdgeKind::Child.separator(), "/");
        assert_eq!(EdgeKind::Descendant.separator(), "//");
        assert_eq!(EdgeKind::Descendant.to_string(), "//");
    }

    #[test]
    fn new_node_contains_primary_type() {
        let n = PatternNode::new(TypeId(7), None, EdgeKind::Child);
        assert!(n.types.contains(TypeId(7)));
        assert!(n.alive);
        assert!(!n.temporary);
        assert!(n.is_leaf());
    }

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(NodeId(3).index(), 3);
    }
}
