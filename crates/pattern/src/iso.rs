//! Rooted-tree isomorphism and canonical forms.
//!
//! The paper's uniqueness theorems (4.1, 5.1) state that minimal equivalent
//! queries are unique *up to isomorphism*. Two patterns are isomorphic when
//! a bijection between their alive nodes preserves the parent relation, the
//! edge kinds, the full type sets, the output marker and the temporary flag.
//!
//! We decide this with the classic canonical-encoding construction: encode
//! every subtree as a string in which sibling encodings are sorted, then
//! compare root encodings. Sorting makes sibling order immaterial — tree
//! patterns are unordered (Section 2.1: "we do not consider order in our
//! queries").

use crate::node::NodeId;
use crate::pattern::TreePattern;
use std::fmt::Write as _;

/// A canonical, order-independent encoding of `pattern`.
///
/// Equal canonical forms ⇔ isomorphic patterns. Built bottom-up over an
/// iterative post-order (no recursion), so depth is not stack-bounded;
/// note the encoding of a chain is quadratic in its length, as with any
/// string-based canonical form.
pub fn canonical_form(pattern: &TreePattern) -> String {
    let mut enc: Vec<Option<String>> = vec![None; pattern.arena_len()];
    for id in pattern.post_order() {
        let s = encode_node(pattern, id, &enc);
        enc[id.index()] = Some(s);
    }
    enc[pattern.root().index()].take().expect("root encoded")
}

fn encode_node(p: &TreePattern, id: NodeId, enc: &[Option<String>]) -> String {
    let node = p.node(id);
    let mut s = String::new();
    s.push('(');
    // Full type set, not just the primary type: augmentation-added types are
    // semantically meaningful while present.
    for t in node.types.iter() {
        let _ = write!(s, "{},", t.0);
    }
    if node.output {
        s.push('*');
    }
    if node.temporary {
        s.push('!');
    }
    if !node.conditions.is_empty() {
        let mut conds: Vec<String> = node
            .conditions
            .iter()
            .map(|c| c.normalized())
            .map(|c| format!("{}{}{};", c.attr.0, c.op, c.value))
            .collect();
        conds.sort_unstable();
        conds.dedup();
        s.push('{');
        for c in conds {
            s.push_str(&c);
        }
        s.push('}');
    }
    let mut kids: Vec<String> = node
        .children
        .iter()
        .filter(|&&c| p.is_alive(c))
        .map(|&c| {
            let mut k = String::new();
            k.push_str(p.node(c).edge.separator());
            k.push_str(enc[c.index()].as_deref().expect("post-order: child encoded"));
            k
        })
        .collect();
    kids.sort_unstable();
    for k in kids {
        s.push_str(&k);
    }
    s.push(')');
    s
}

/// An exact cache key for a pattern: two patterns have equal keys **iff**
/// they are isomorphic (within one type interner). Wraps the canonical
/// string encoding of [`canonical_form`], so no hash collisions are
/// possible — batch memo caches can trust equality.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalKey(String);

impl CanonicalKey {
    /// The underlying canonical encoding.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Rebuild a key from a canonical encoding captured earlier with
    /// [`CanonicalKey::as_str`] — the deserialization half of cache
    /// snapshots.
    ///
    /// The string is **not** re-validated: the caller must guarantee it
    /// came from [`canonical_form`] under the *same* [`TypeId`] ↔ name
    /// assignment (same interner, or one restored to an identical state).
    /// A key rebuilt under a different assignment can collide with a
    /// different pattern's key and serve wrong cached answers.
    ///
    /// [`TypeId`]: tpq_base::TypeId
    pub fn from_canonical_string(encoding: String) -> CanonicalKey {
        CanonicalKey(encoding)
    }
}

impl TreePattern {
    /// A hashable canonical key, built on the [`canonical_form`] encoding:
    /// equal keys ⇔ isomorphic patterns. Cost is one canonical encoding
    /// (roughly `O(n log n)` string work for an `n`-node pattern —
    /// quadratic on pure chains); cache it when keying repeated lookups.
    pub fn canonical_key(&self) -> CanonicalKey {
        CanonicalKey(canonical_form(self))
    }
}

/// Whether two patterns are isomorphic (as unordered, typed, marked trees).
pub fn isomorphic(a: &TreePattern, b: &TreePattern) -> bool {
    // Cheap pre-checks before encoding.
    if a.size() != b.size() {
        return false;
    }
    canonical_form(a) == canonical_form(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_pattern;
    use tpq_base::TypeInterner;

    fn p(s: &str, tys: &mut TypeInterner) -> TreePattern {
        parse_pattern(s, tys).unwrap()
    }

    #[test]
    fn sibling_order_is_immaterial() {
        let mut tys = TypeInterner::new();
        let a = p("r*[/a][//b]/c", &mut tys);
        let b = p("r*[//b][/c]/a", &mut tys);
        assert!(isomorphic(&a, &b));
    }

    #[test]
    fn edge_kind_distinguishes() {
        let mut tys = TypeInterner::new();
        let a = p("r/a", &mut tys);
        let b = p("r//a", &mut tys);
        assert!(!isomorphic(&a, &b));
    }

    #[test]
    fn output_position_distinguishes() {
        let mut tys = TypeInterner::new();
        let a = p("r*/a", &mut tys);
        let b = p("r/a*", &mut tys);
        assert!(!isomorphic(&a, &b));
    }

    #[test]
    fn type_distinguishes() {
        let mut tys = TypeInterner::new();
        let a = p("r/a", &mut tys);
        let b = p("r/b", &mut tys);
        assert!(!isomorphic(&a, &b));
    }

    #[test]
    fn size_mismatch_short_circuits() {
        let mut tys = TypeInterner::new();
        let a = p("r/a", &mut tys);
        let b = p("r/a/a", &mut tys);
        assert!(!isomorphic(&a, &b));
    }

    #[test]
    fn identical_deep_trees_match_after_tombstoning() {
        let mut tys = TypeInterner::new();
        let mut a = p("r*[/a][/b/c]//d", &mut tys);
        let b_full = p("r*[/a][/b/c]//d", &mut tys);
        // Remove and re-add a node: ids differ, isomorphism holds.
        let d = *a
            .leaves()
            .iter()
            .find(|&&l| a.node(l).primary == b_full.node(b_full.leaves()[2]).primary)
            .unwrap();
        let ty = a.node(d).primary;
        let edge = a.node(d).edge;
        let parent = a.node(d).parent.unwrap();
        a.remove_leaf(d).unwrap();
        a.add_child(parent, edge, ty);
        assert!(isomorphic(&a, &b_full));
    }

    #[test]
    fn temporary_flag_distinguishes() {
        let mut tys = TypeInterner::new();
        let mut a = p("r", &mut tys);
        let mut b = p("r", &mut tys);
        let t = tys.intern("x");
        a.add_child(a.root(), crate::EdgeKind::Child, t);
        b.add_temp_child(b.root(), crate::EdgeKind::Child, t);
        assert!(!isomorphic(&a, &b));
    }

    #[test]
    fn extra_types_distinguish() {
        let mut tys = TypeInterner::new();
        let a = p("r/a", &mut tys);
        let mut b = p("r/a", &mut tys);
        let extra = tys.intern("zz");
        let child = b.node(b.root()).children[0];
        b.node_mut(child).types.insert(extra);
        assert!(!isomorphic(&a, &b));
    }

    #[test]
    fn canonical_form_is_stable_under_clone() {
        let mut tys = TypeInterner::new();
        let a = p("r*[/a][//b[/c]]/d", &mut tys);
        assert_eq!(canonical_form(&a), canonical_form(&a.clone()));
    }

    #[test]
    fn canonical_key_agrees_with_isomorphism() {
        let mut tys = TypeInterner::new();
        let a = p("r*[/a][//b]/c", &mut tys);
        let b = p("r*[//b][/c]/a", &mut tys);
        let c = p("r*[//b][/c]/d", &mut tys);
        assert_eq!(a.canonical_key(), b.canonical_key());
        assert_ne!(a.canonical_key(), c.canonical_key());
        assert_eq!(a.canonical_key().as_str(), canonical_form(&a));
        // Usable as a hash-map key.
        let mut map = std::collections::HashMap::new();
        map.insert(a.canonical_key(), 1);
        assert_eq!(map.get(&b.canonical_key()), Some(&1));
    }
}
