//! Edge-case tests for the epoll reactor engine (Linux-only): framing
//! across partial reads, pipelining order under out-of-order pool
//! completion, write-queue backpressure isolation, and parity with the
//! `--threaded` fallback engine.
//!
//! The general protocol battery in `server.rs` already runs against the
//! reactor (it is the default engine); this file covers the behaviors
//! only an event loop can get wrong.

#![cfg(target_os = "linux")]

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};
use tpq_serve::{ServeConfig, ServeHandle, ServeSummary, Server};

fn start(
    mut config: ServeConfig,
) -> (SocketAddr, ServeHandle, std::thread::JoinHandle<ServeSummary>) {
    config.addr = "127.0.0.1:0".to_owned();
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local_addr");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, thread)
}

fn connect(addr: SocketAddr) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    BufReader::new(stream)
}

fn minimized_of(response: &str) -> String {
    let json = tpq_base::Json::parse(response).expect("response JSON");
    json.get("minimized")
        .and_then(tpq_base::Json::as_str)
        .unwrap_or_else(|| panic!("no 'minimized' in {response}"))
        .to_owned()
}

#[test]
fn partial_lines_reassemble_across_wakeups() {
    // One request delivered in five separate writes with pauses between
    // them: each write lands as its own epoll edge, none of them ends in
    // a newline until the last, and the reactor must buffer the partial
    // frame without answering or closing.
    let (addr, handle, thread) = start(ServeConfig::default());
    let mut conn = connect(addr);
    let request = r#"{"query": "Book*[/Title][/Publisher]", "constraints": "Book -> Publisher"}"#;
    let bytes = format!("{request}\n").into_bytes();
    for chunk in bytes.chunks(bytes.len() / 4) {
        conn.get_mut().write_all(chunk).expect("write chunk");
        conn.get_mut().flush().unwrap();
        std::thread::sleep(Duration::from_millis(30));
    }
    let mut response = String::new();
    conn.read_line(&mut response).expect("read");
    assert_eq!(minimized_of(response.trim_end()), "Book*/Title");

    // A second split request on the same connection still frames right.
    let (a, b) = request.split_at(10);
    conn.get_mut().write_all(a.as_bytes()).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    conn.get_mut().write_all(b.as_bytes()).unwrap();
    conn.get_mut().write_all(b"\n").unwrap();
    let mut response = String::new();
    conn.read_line(&mut response).expect("read");
    assert_eq!(minimized_of(response.trim_end()), "Book*/Title");

    drop(conn);
    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn pipelined_responses_come_back_in_request_order() {
    // 40 distinct requests in ONE write, against several pool workers:
    // completions can finish in any order, but the sequence machinery
    // must deliver responses in request order.
    let (addr, handle, thread) = start(ServeConfig { jobs: 4, ..ServeConfig::default() });
    let mut conn = connect(addr);
    let mut batch = String::new();
    for i in 0..40 {
        // Distinct unminimizable queries: the response echoes the type
        // name, which is what we key the order check on.
        batch.push_str(&format!("{{\"query\": \"Q{i}*/R{i}\"}}\n"));
    }
    conn.get_mut().write_all(batch.as_bytes()).expect("write batch");
    for i in 0..40 {
        let mut response = String::new();
        conn.read_line(&mut response).expect("read");
        let minimized = minimized_of(response.trim_end());
        assert_eq!(minimized, format!("Q{i}*/R{i}"), "response {i} out of order");
    }
    drop(conn);
    handle.shutdown();
    let summary = thread.join().unwrap();
    assert_eq!(summary.requests_ok, 40);
}

#[test]
fn slow_reader_trips_backpressure_without_stalling_others() {
    // Client A floods verbs that produce output but never reads, until
    // the server's write queue for that one connection crosses the high
    // water mark and input processing pauses. Client B must still get
    // prompt answers, and must be able to observe the stall counter.
    // Afterwards A drains everything and every response is intact.
    let (addr, handle, thread) = start(ServeConfig::default());
    let mut slow = connect(addr);
    const FLOOD: usize = 3000;
    let mut batch = String::new();
    for _ in 0..FLOOD {
        batch.push_str("METRICS\n");
    }
    slow.get_mut().write_all(batch.as_bytes()).expect("write flood");

    // Give the reactor a moment to fill A's socket and its write queue.
    let mut fast = connect(addr);
    let t0 = Instant::now();
    let stalled = loop {
        writeln!(fast.get_mut(), "METRICS").unwrap();
        let mut stalls: Option<u64> = None;
        loop {
            let mut line = String::new();
            fast.read_line(&mut line).expect("fast read");
            if line.starts_with("# EOF") {
                break;
            }
            if let Some(v) = line.trim_end().strip_prefix("tpq_serve_backpressure_stalls_total ") {
                stalls = v.parse().ok();
            }
        }
        match stalls {
            Some(n) if n > 0 => break n,
            _ if t0.elapsed() > Duration::from_secs(20) => break 0,
            _ => std::thread::sleep(Duration::from_millis(25)),
        }
    };
    assert!(stalled > 0, "write queue never hit the high-water mark");
    // The fast client kept getting full expositions while A was stalled
    // (the loop above would have timed out otherwise). Now drain A: once
    // it reads, the queue empties, processing resumes, and all FLOOD
    // expositions arrive, each correctly framed.
    let mut eofs = 0usize;
    let mut line = String::new();
    while eofs < FLOOD {
        line.clear();
        slow.read_line(&mut line).expect("slow drain");
        assert!(!line.is_empty(), "connection closed early after {eofs} expositions");
        if line.starts_with("# EOF") {
            eofs += 1;
        }
    }
    drop(slow);
    drop(fast);
    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn threaded_fallback_still_serves() {
    // `--threaded` bypasses the reactor; the protocol must not care.
    let (addr, handle, thread) = start(ServeConfig { threaded: true, ..ServeConfig::default() });
    let mut conn = connect(addr);
    writeln!(conn.get_mut(), "PING").unwrap();
    let mut line = String::new();
    conn.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), r#"{"ok":true}"#);
    writeln!(conn.get_mut(), r#"{{"query": "a*[/b][/b]"}}"#).unwrap();
    line.clear();
    conn.read_line(&mut line).unwrap();
    assert_eq!(minimized_of(line.trim_end()), "a*/b");
    drop(conn);
    handle.shutdown();
    let summary = thread.join().unwrap();
    assert_eq!(summary.requests_ok, 1);
}

#[test]
fn eof_with_responses_in_flight_still_answers_nothing_lost() {
    // Write pipelined requests and immediately shut down the sending
    // half: the reactor sees EOF while pool work is outstanding, and
    // must flush every response before closing.
    let (addr, handle, thread) = start(ServeConfig { jobs: 2, ..ServeConfig::default() });
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut batch = String::new();
    for i in 0..8 {
        batch.push_str(&format!("{{\"query\": \"E{i}*/F{i}\"}}\n"));
    }
    (&stream).write_all(batch.as_bytes()).expect("write");
    stream.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::new();
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line).expect("read") == 0 {
            break; // server closed after flushing
        }
        responses.push(line.trim_end().to_owned());
    }
    assert_eq!(responses.len(), 8, "every pipelined request answered before close");
    for (i, response) in responses.iter().enumerate() {
        assert_eq!(minimized_of(response), format!("E{i}*/F{i}"));
    }
    handle.shutdown();
    thread.join().unwrap();
}
