//! Integration tests for the serve layer: real sockets, real threads.
//!
//! Every test starts its own [`Server`] on an ephemeral loopback port,
//! drives it over TCP, and shuts it down via the handle or the
//! `SHUTDOWN` verb. Fault-injection tests live in `faults.rs` (their own
//! process) because failpoints arm process-wide.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;
use tpq_base::TypeInterner;
use tpq_constraints::parse_constraints;
use tpq_core::{minimize_with, Strategy};
use tpq_pattern::{parse_pattern, print::to_dsl};
use tpq_serve::{ServeConfig, ServeHandle, ServeSummary, Server};

/// Start a server with `config` (addr forced to an ephemeral loopback
/// port) and return its address, handle, and run-thread join handle.
fn start(
    mut config: ServeConfig,
) -> (SocketAddr, ServeHandle, std::thread::JoinHandle<ServeSummary>) {
    config.addr = "127.0.0.1:0".to_owned();
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local_addr");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, thread)
}

fn connect(addr: SocketAddr) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    BufReader::new(stream)
}

/// Send one line, read one response line.
fn round_trip(conn: &mut BufReader<TcpStream>, line: &str) -> String {
    writeln!(conn.get_mut(), "{line}").expect("write");
    let mut response = String::new();
    conn.read_line(&mut response).expect("read");
    assert!(response.ends_with('\n'), "unterminated response: {response:?}");
    response.trim_end().to_owned()
}

/// What the library itself answers for `(query, constraints)` — the
/// sequential ground truth the server must reproduce byte-for-byte.
fn expected_minimization(query: &str, constraints: &str) -> String {
    let mut types = TypeInterner::new();
    let ics = parse_constraints(constraints, &mut types).expect("constraints");
    let q = parse_pattern(query, &mut types).expect("query");
    let out = minimize_with(&q, &ics, Strategy::default());
    to_dsl(&out.pattern, &types)
}

/// Pull the `"minimized"` field out of a raw response line.
fn minimized_of(response: &str) -> String {
    let json = tpq_base::Json::parse(response).expect("response JSON");
    json.get("minimized")
        .and_then(tpq_base::Json::as_str)
        .unwrap_or_else(|| panic!("no 'minimized' in {response}"))
        .to_owned()
}

fn error_kind_of(response: &str) -> String {
    let json = tpq_base::Json::parse(response).expect("response JSON");
    json.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(tpq_base::Json::as_str)
        .unwrap_or_else(|| panic!("no error kind in {response}"))
        .to_owned()
}

/// The worked examples the concurrency tests replay. Mixed constraint
/// sets on purpose: they exercise several shared engines at once.
const CASES: &[(&str, &str)] = &[
    ("Book*[/Title][/Publisher]", "Book -> Publisher"),
    ("Book*[/Title][/Publisher][//Title]", "Book -> Publisher"),
    ("OrgUnit*[/Dept/Researcher//DBProject]//Dept//DBProject", ""),
    ("Articles[/Article//Paragraph]/Article*//Section//Paragraph", "Section ->> Paragraph"),
    ("a*[/b][/c][//d]", "a -> b\na -> c"),
    ("x[/y]/x*[/y]//z", ""),
];

#[test]
fn ping_answers_ok() {
    let (addr, handle, thread) = start(ServeConfig::default());
    let mut conn = connect(addr);
    assert_eq!(round_trip(&mut conn, "PING"), r#"{"ok":true}"#);
    drop(conn);
    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn minimizes_one_request_like_the_library() {
    let (addr, handle, thread) = start(ServeConfig::default());
    let mut conn = connect(addr);
    let response = round_trip(
        &mut conn,
        r#"{"query": "Book*[/Title][/Publisher]", "constraints": "Book -> Publisher"}"#,
    );
    assert_eq!(
        minimized_of(&response),
        expected_minimization("Book*[/Title][/Publisher]", "Book -> Publisher"),
    );
    let json = tpq_base::Json::parse(&response).unwrap();
    let stats = json.get("stats").expect("stats");
    assert_eq!(stats.get("input_nodes").and_then(tpq_base::Json::as_i64), Some(3));
    assert_eq!(stats.get("output_nodes").and_then(tpq_base::Json::as_i64), Some(2));
    drop(conn);
    handle.shutdown();
    let summary = thread.join().unwrap();
    assert_eq!(summary.requests_ok, 1);
    assert_eq!(summary.requests_failed, 0);
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let (addr, handle, thread) = start(ServeConfig::default());
    let mut conn = connect(addr);
    // Write every request before reading any response.
    for (query, constraints) in CASES {
        writeln!(
            conn.get_mut(),
            r#"{{"query": {}, "constraints": {}}}"#,
            tpq_base::Json::Str((*query).to_owned()).to_string_compact(),
            tpq_base::Json::Str((*constraints).to_owned()).to_string_compact(),
        )
        .unwrap();
    }
    for (query, constraints) in CASES {
        let mut response = String::new();
        conn.read_line(&mut response).unwrap();
        assert_eq!(
            minimized_of(response.trim_end()),
            expected_minimization(query, constraints),
            "query {query}"
        );
    }
    drop(conn);
    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn eight_concurrent_clients_match_the_sequential_answers() {
    let expected: Vec<String> = CASES.iter().map(|(q, c)| expected_minimization(q, c)).collect();
    let (addr, handle, thread) = start(ServeConfig { jobs: 4, ..ServeConfig::default() });
    std::thread::scope(|scope| {
        for client in 0..8 {
            let expected = &expected;
            scope.spawn(move || {
                let mut conn = connect(addr);
                // Each client walks the cases from a different offset so
                // engines and caches are hit in interleaved orders.
                for i in 0..CASES.len() {
                    let idx = (client + i) % CASES.len();
                    let (query, constraints) = CASES[idx];
                    let line = format!(
                        r#"{{"query": {}, "constraints": {}}}"#,
                        tpq_base::Json::Str(query.to_owned()).to_string_compact(),
                        tpq_base::Json::Str(constraints.to_owned()).to_string_compact(),
                    );
                    let response = round_trip(&mut conn, &line);
                    assert_eq!(
                        minimized_of(&response),
                        expected[idx],
                        "client {client}, query {query}"
                    );
                }
            });
        }
    });
    handle.shutdown();
    let summary = thread.join().unwrap();
    assert_eq!(summary.requests_ok, (8 * CASES.len()) as u64);
    assert_eq!(summary.requests_failed, 0);
    assert_eq!(summary.accepted, 8);
}

#[test]
fn malformed_lines_get_typed_errors_and_the_connection_survives() {
    let (addr, handle, thread) = start(ServeConfig::default());
    let mut conn = connect(addr);
    for (line, kind) in [
        ("{", "bad-request"),                   // truncated JSON
        (r#"{"query": "a*""#, "bad-request"),   // truncated string
        ("[1,2]", "bad-request"),               // not an object
        (r#"{"quarry": "a*"}"#, "bad-request"), // unknown field
        (r#"{}"#, "bad-request"),               // missing query
        (r#"{"query": 7}"#, "bad-request"),     // wrong type
        (r#"{"query": "a*", "deadline_ms": "soon"}"#, "bad-request"),
        (r#"{"query": "a*", "strategy": "fastest"}"#, "bad-request"),
        ("HELLO", "bad-request"),          // unknown verb
        (r#"{"query": "a*[/"}"#, "parse"), // bad DSL
        (r#"{"query": "a*", "constraints": "b <- c"}"#, "parse"),
    ] {
        let response = round_trip(&mut conn, line);
        assert_eq!(error_kind_of(&response), kind, "line {line:?} -> {response}");
    }
    // The same connection still answers good requests afterwards.
    let response = round_trip(&mut conn, r#"{"query": "a*[/b]"}"#);
    assert_eq!(minimized_of(&response), expected_minimization("a*[/b]", ""));
    drop(conn);
    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn oversized_line_is_rejected_and_the_connection_closed() {
    let (addr, handle, thread) =
        start(ServeConfig { max_line_bytes: 1024, ..ServeConfig::default() });
    let mut conn = connect(addr);
    // 4 KiB of garbage with no newline: the server must not buffer it all.
    conn.get_mut().write_all(&[b'x'; 4096]).unwrap();
    let mut response = String::new();
    conn.read_line(&mut response).unwrap();
    assert_eq!(error_kind_of(response.trim_end()), "bad-request");
    assert!(response.contains("exceeds 1024 bytes"), "{response}");
    // Connection is closed afterwards: next read sees EOF.
    let mut rest = String::new();
    assert_eq!(conn.read_line(&mut rest).unwrap(), 0, "expected EOF, got {rest:?}");
    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn non_utf8_line_is_rejected() {
    let (addr, handle, thread) = start(ServeConfig::default());
    let mut conn = connect(addr);
    conn.get_mut().write_all(b"\xff\xfe{}\n").unwrap();
    let mut response = String::new();
    conn.read_line(&mut response).unwrap();
    assert_eq!(error_kind_of(response.trim_end()), "bad-request");
    assert!(response.contains("UTF-8"), "{response}");
    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn per_request_budget_trips_without_dropping_the_connection() {
    let (addr, handle, thread) = start(ServeConfig::default());
    let mut conn = connect(addr);
    // An uncached query with a one-step budget cannot finish.
    let response =
        round_trip(&mut conn, r#"{"query": "BudgetCase*[/BA][/BB][//BC]//BD", "budget": 1}"#);
    assert_eq!(error_kind_of(&response), "budget");
    // Same connection, same query, no budget: fine.
    let response = round_trip(&mut conn, r#"{"query": "BudgetCase*[/BA][/BB][//BC]//BD"}"#);
    assert_eq!(
        minimized_of(&response),
        expected_minimization("BudgetCase*[/BA][/BB][//BC]//BD", "")
    );
    drop(conn);
    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn zero_deadline_trips_on_a_large_query() {
    let (addr, handle, thread) = start(ServeConfig::default());
    let mut conn = connect(addr);
    // A 40-node descendant chain: containment work far exceeds the
    // 128-step interval between wall-clock reads, so a 0 ms deadline
    // must trip.
    let chain = (0..40).map(|i| format!("DL{i}")).collect::<Vec<_>>().join("//");
    let line = format!(
        r#"{{"query": {}, "deadline_ms": 0}}"#,
        tpq_base::Json::Str(chain).to_string_compact()
    );
    let response = round_trip(&mut conn, &line);
    assert_eq!(error_kind_of(&response), "budget", "{response}");
    drop(conn);
    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn server_deadline_caps_request_asks() {
    // Server ceiling 0 ms: even a request asking for a huge deadline trips.
    let (addr, handle, thread) =
        start(ServeConfig { deadline_ms: Some(0), ..ServeConfig::default() });
    let mut conn = connect(addr);
    let chain = (0..40).map(|i| format!("SC{i}")).collect::<Vec<_>>().join("//");
    let line = format!(
        r#"{{"query": {}, "deadline_ms": 60000}}"#,
        tpq_base::Json::Str(chain).to_string_compact()
    );
    let response = round_trip(&mut conn, &line);
    assert_eq!(error_kind_of(&response), "budget", "{response}");
    drop(conn);
    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn connections_over_the_limit_are_refused() {
    let (addr, handle, thread) = start(ServeConfig { max_conns: 1, ..ServeConfig::default() });
    let mut first = connect(addr);
    // Round-trip guarantees the accept loop has registered this connection.
    assert_eq!(round_trip(&mut first, "PING"), r#"{"ok":true}"#);
    let mut second = connect(addr);
    let mut response = String::new();
    second.read_line(&mut response).unwrap();
    assert_eq!(error_kind_of(response.trim_end()), "overloaded");
    drop(first);
    handle.shutdown();
    let summary = thread.join().unwrap();
    assert_eq!(summary.refused, 1);
}

#[test]
fn stats_verb_reports_server_and_observability_state() {
    let (addr, handle, thread) = start(ServeConfig::default());
    let mut conn = connect(addr);
    round_trip(&mut conn, r#"{"query": "StatsCase*[/SA][/SB]"}"#);
    let response = round_trip(&mut conn, "STATS");
    let json = tpq_base::Json::parse(&response).expect("STATS JSON");
    assert!(json.get("uptime_ms").is_some());
    let connections = json.get("connections").expect("connections");
    assert_eq!(connections.get("active").and_then(tpq_base::Json::as_i64), Some(1));
    let requests = json.get("requests").expect("requests");
    assert!(requests.get("ok").and_then(tpq_base::Json::as_i64).unwrap() >= 1);
    let pool = json.get("pool").expect("pool");
    assert!(pool.get("workers").and_then(tpq_base::Json::as_i64).unwrap() >= 1);
    assert!(
        json.get("events_dropped").and_then(tpq_base::Json::as_i64).is_some(),
        "STATS must report event-ring losses"
    );
    assert!(json.get("obs").is_some(), "STATS must embed the obs registry");
    assert!(response.contains("serve.request"), "obs registry lists serve counters");
    // Overload and warm-restart observability: shed totals by reason, the
    // queue bound, and the restore outcome are always present.
    let shed = json.get("shed").expect("shed block");
    for reason in ["queue_full", "injected", "drain", "total"] {
        assert!(shed.get(reason).and_then(tpq_base::Json::as_i64).is_some(), "shed.{reason}");
    }
    assert!(shed.get("queue_limit").and_then(tpq_base::Json::as_i64).unwrap() >= 1);
    let snapshot = json.get("snapshot").expect("snapshot block");
    assert_eq!(
        snapshot.get("restore").and_then(tpq_base::Json::as_str),
        Some("cold"),
        "no --restore configured means a cold start"
    );
    drop(conn);
    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn shutdown_verb_drains_the_server() {
    let (addr, _handle, thread) = start(ServeConfig::default());
    // A second, idle connection must not wedge the drain.
    let idle = connect(addr);
    let mut conn = connect(addr);
    let response = round_trip(&mut conn, "SHUTDOWN");
    assert!(response.contains("\"draining\":true"), "{response}");
    let summary = thread.join().unwrap();
    assert_eq!(summary.accepted, 2);
    drop(idle);
    // The listener is gone: new connections fail or are immediately closed.
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(stream) => {
            stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut buffer = Vec::new();
            let n = (&stream).read_to_end(&mut buffer).unwrap_or(0);
            assert_eq!(n, 0, "post-shutdown connection should see EOF");
        }
    }
}

#[test]
fn handle_shutdown_reports_summary_totals() {
    let (addr, handle, thread) = start(ServeConfig::default());
    let mut conn = connect(addr);
    round_trip(&mut conn, r#"{"query": "SummaryCase*[/QA]"}"#);
    round_trip(&mut conn, "{");
    drop(conn);
    handle.shutdown();
    assert!(handle.is_shutdown());
    let summary = thread.join().unwrap();
    assert_eq!(summary.accepted, 1);
    assert_eq!(summary.requests_ok, 1);
    assert_eq!(summary.requests_failed, 1);
}

/// Pull the appended `"trace"` field out of a raw response line.
fn trace_of(response: &str) -> String {
    let json = tpq_base::Json::parse(response).expect("response JSON");
    json.get("trace")
        .and_then(tpq_base::Json::as_str)
        .unwrap_or_else(|| panic!("no 'trace' in {response}"))
        .to_owned()
}

/// Send `METRICS` and read the multi-line exposition up to its `# EOF`
/// terminator (exclusive).
fn scrape_metrics(conn: &mut BufReader<TcpStream>) -> Vec<String> {
    writeln!(conn.get_mut(), "METRICS").expect("write");
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        conn.read_line(&mut line).expect("read metrics line");
        let line = line.trim_end().to_owned();
        if line == "# EOF" {
            return lines;
        }
        lines.push(line);
    }
}

#[test]
fn metrics_verb_returns_wellformed_prometheus_exposition() {
    let (addr, handle, thread) = start(ServeConfig::default());
    let mut conn = connect(addr);
    // Generate some traffic so counters and histograms are non-empty.
    round_trip(&mut conn, r#"{"query": "MetricsCase*[/MA][/MB]"}"#);
    let lines = scrape_metrics(&mut conn);
    assert!(!lines.is_empty());
    let mut declared = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("metric name").to_owned();
            let kind = parts.next().expect("metric kind");
            assert!(matches!(kind, "counter" | "gauge" | "histogram"), "{line}");
            // Every metric ships a description: the line right above a
            // # TYPE must be a # HELP for the same metric.
            let help = i.checked_sub(1).and_then(|prev| lines.get(prev));
            let expected = format!("# HELP {name} ");
            match help {
                Some(help) if help.starts_with(&expected) => {
                    assert!(help.len() > expected.len(), "empty HELP for {name}")
                }
                other => panic!("missing # HELP above {line}: found {other:?}"),
            }
            declared.push(name);
            continue;
        }
        if line.starts_with("# HELP ") {
            continue; // validated alongside its # TYPE line above
        }
        assert!(!line.starts_with('#'), "unexpected comment: {line}");
        // Sample lines: `name[{labels}] value`, names under the tpq_ prefix.
        assert!(line.starts_with("tpq_"), "unprefixed sample: {line}");
        let value = line.rsplit(' ').next().expect("sample value");
        assert!(value.parse::<f64>().is_ok() || value == "+Inf", "unparseable value in {line}");
    }
    assert!(!declared.is_empty(), "no # TYPE headers in the exposition");
    let mut sorted = declared.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), declared.len(), "duplicate metric names: {declared:?}");
    assert!(declared.iter().any(|n| n == "tpq_serve_inflight"));
    assert!(declared.iter().any(|n| n == "tpq_serve_uptime_seconds"));
    assert!(declared.iter().any(|n| n == "tpq_serve_request_ok_total"));
    // The overload / warm-restart gauges are part of the contract, and
    // none of them may collide with an existing metric name (the dedup
    // assertion above covers the whole exposition).
    for gauge in [
        "tpq_serve_queue_depth",
        "tpq_serve_queue_limit",
        "tpq_serve_snapshot_restored",
        "tpq_serve_snapshot_rejected",
        "tpq_serve_snapshot_bytes",
        "tpq_serve_snapshot_age_seconds",
    ] {
        assert!(declared.iter().any(|n| n == gauge), "missing gauge {gauge}: {declared:?}");
    }
    // Line framing resumes after # EOF: the connection is still usable.
    assert_eq!(round_trip(&mut conn, "PING"), r#"{"ok":true}"#);
    drop(conn);
    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn responses_carry_distinct_per_request_trace_ids() {
    let (addr, handle, thread) = start(ServeConfig::default());
    let mut conn = connect(addr);
    let first = trace_of(&round_trip(&mut conn, r#"{"query": "TraceCase*[/TA]"}"#));
    let second = trace_of(&round_trip(&mut conn, r#"{"query": "TraceCase*[/TB]"}"#));
    for trace in [&first, &second] {
        assert_eq!(trace.len(), 16, "trace is 16 hex digits: {trace}");
        assert!(trace.chars().all(|c| c.is_ascii_hexdigit()), "{trace}");
    }
    assert_ne!(first, second, "each request gets its own trace id");
    // Error responses carry a trace too, outside the stable error object.
    let error = round_trip(&mut conn, r#"{"query": "((("}"#);
    assert_eq!(error_kind_of(&error), "parse");
    assert_eq!(trace_of(&error).len(), 16);
    drop(conn);
    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn slow_query_log_records_trace_and_phase_breakdown() {
    let path = std::env::temp_dir().join(format!(
        "tpq-serve-slow-{}-{:?}.log",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&path);
    let (addr, handle, thread) = start(ServeConfig {
        slow_ms: Some(0), // every request is "slow"
        slow_log: Some(path.clone()),
        ..ServeConfig::default()
    });
    let mut conn = connect(addr);
    let response = round_trip(
        &mut conn,
        r#"{"query": "SlowCase*[/LA][/LB]", "constraints": "SlowCase -> LA"}"#,
    );
    let trace = trace_of(&response);
    drop(conn);
    handle.shutdown();
    thread.join().unwrap();
    let log = std::fs::read_to_string(&path).expect("slow log file");
    let entry = log
        .lines()
        .find(|l| l.contains(&trace))
        .unwrap_or_else(|| panic!("no slow-log line for trace {trace} in {log:?}"));
    let json = tpq_base::Json::parse(entry).expect("slow-log line is JSON");
    assert_eq!(json.get("trace").and_then(tpq_base::Json::as_str), Some(trace.as_str()));
    assert!(json.get("elapsed_ms").and_then(tpq_base::Json::as_f64).is_some());
    let phases = json.get("phases_us").expect("phases_us");
    for phase in ["parse", "minimize", "render"] {
        assert!(phases.get(phase).and_then(tpq_base::Json::as_f64).is_some(), "{phase}");
    }
    assert!(json.get("request").and_then(tpq_base::Json::as_str).unwrap().contains("SlowCase"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn request_counters_survive_a_registry_reset() {
    // reset() isolates counter assertions from whatever ran earlier in
    // this binary; servers in other tests may still add counts
    // concurrently, so the assertion is a floor.
    tpq_obs::reset();
    let (addr, handle, thread) = start(ServeConfig::default());
    let mut conn = connect(addr);
    round_trip(&mut conn, r#"{"query": "ResetCase*[/RA]"}"#);
    let report = tpq_obs::report();
    assert!(report.counter("serve.request.ok") >= 1);
    drop(conn);
    handle.shutdown();
    thread.join().unwrap();
}
