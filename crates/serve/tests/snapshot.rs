//! Robustness tests for warm-restart snapshots: round-trip of all three
//! cache layers, rejection of damaged files, and atomicity of the write.
//!
//! The caches and the serve-layer interner are process-wide, so every
//! test here serializes on one mutex, uses type names unique to itself,
//! and clears the shared caches to simulate the cold half of a restart.
//! (Within one process the global interner is append-only, so the
//! restore-time identity check always passes — exactly the same reason
//! it passes for a fresh process restoring at startup.)

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};
use tpq_base::failpoint::{self, Action};
use tpq_core::{clear_shared_caches, shared_engine, Strategy};
use tpq_pattern::parse_pattern;
use tpq_serve::{global_types, restore_snapshot, write_snapshot, ServeConfig, Server};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|p| p.into_inner())
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tpq-snapshot-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Warm the shared caches with this test's unique types and return the
/// DSL the engine memoized.
fn warm(query: &str, constraints: &str) -> (tpq_constraints::ConstraintSet, String) {
    let mut types = global_types().lock().unwrap();
    let ics = tpq_constraints::parse_constraints(constraints, &mut types).expect("constraints");
    let q = parse_pattern(query, &mut types).expect("query");
    drop(types);
    // The one-shot path populates the closure LRU; the engine path
    // populates the shared-engine LRU and its canonical-pattern memo.
    let one_shot = tpq_core::minimize(&q, &ics).pattern;
    let engine = shared_engine(&ics, Strategy::default());
    let cached = engine.minimize(&q);
    let types = global_types().lock().unwrap();
    assert_eq!(
        tpq_pattern::print::to_dsl(&one_shot, &types),
        tpq_pattern::print::to_dsl(&cached, &types)
    );
    (ics, tpq_pattern::print::to_dsl(&cached, &types))
}

#[test]
fn round_trip_restores_all_three_cache_layers() {
    let _guard = lock();
    clear_shared_caches();
    let (ics, minimized) =
        warm("SnapRtA*[/SnapRtB][/SnapRtC][//SnapRtD]", "SnapRtA -> SnapRtC\nSnapRtA ->> SnapRtD");

    let path = temp_path("round-trip.json");
    let stats = {
        let types = global_types().lock().unwrap();
        write_snapshot(&path, &types).expect("write")
    };
    assert_eq!(stats.engines, 1);
    assert_eq!(stats.patterns, 1);
    assert_eq!(stats.closures, 1, "the one-shot call populated the closure LRU");
    assert!(stats.bytes > 0 && stats.created_unix_ms > 0);

    // Cold half of the restart: every cache layer emptied.
    clear_shared_caches();
    assert!(tpq_core::export_engines().is_empty());
    assert!(tpq_core::export_closures().is_empty());

    let restored = {
        let mut types = global_types().lock().unwrap();
        restore_snapshot(&path, &mut types).expect("restore")
    };
    assert_eq!((restored.engines, restored.patterns, restored.closures), (1, 1, 1));
    assert_eq!(restored.created_unix_ms, stats.created_unix_ms);

    // The restored engine must answer the query from the memo (a cache
    // hit) with the exact pre-restart minimization.
    let q = {
        let mut types = global_types().lock().unwrap();
        parse_pattern("SnapRtA*[/SnapRtB][/SnapRtC][//SnapRtD]", &mut types).unwrap()
    };
    let engine = shared_engine(&ics, Strategy::default());
    let out = engine.minimize_cached_guarded(&q, &tpq_base::Guard::unlimited()).unwrap();
    assert!(out.cache_hit, "restored memo must hit on the pre-restart query");
    let types = global_types().lock().unwrap();
    assert_eq!(tpq_pattern::print::to_dsl(&out.pattern, &types), minimized);
    drop(types);

    // The closure layer restored too: export shows the original pair.
    let closures = tpq_core::export_closures();
    assert_eq!(closures.len(), 1);
    assert_eq!(closures[0].0, ics);
    clear_shared_caches();
}

#[test]
fn damaged_snapshots_are_rejected_and_the_server_starts_cold() {
    let _guard = lock();
    clear_shared_caches();
    warm("SnapDmgA*[/SnapDmgB][/SnapDmgC]", "SnapDmgA -> SnapDmgC");
    let good = temp_path("damaged-good.json");
    {
        let types = global_types().lock().unwrap();
        write_snapshot(&good, &types).expect("write");
    }
    let text = std::fs::read_to_string(&good).unwrap();

    // Truncation (torn write the rename should have prevented).
    let truncated = temp_path("damaged-truncated.json");
    std::fs::write(&truncated, &text[..text.len() / 2]).unwrap();
    // One flipped byte inside the payload (bit rot): checksum mismatch.
    let corrupt = temp_path("damaged-corrupt.json");
    std::fs::write(&corrupt, text.replacen("SnapDmgB", "SnapDmgX", 1)).unwrap();
    // A future schema version this build does not read.
    let wrong_version = temp_path("damaged-version.json");
    std::fs::write(&wrong_version, text.replacen("\"schema\":1", "\"schema\":99", 1)).unwrap();
    // Not JSON at all.
    let garbage = temp_path("damaged-garbage.json");
    std::fs::write(&garbage, "not json at all\n").unwrap();
    let missing = temp_path("damaged-missing.json");
    let _ = std::fs::remove_file(&missing);

    clear_shared_caches();
    for (path, needle) in [
        (&truncated, "JSON"),
        (&corrupt, "checksum"),
        (&wrong_version, "schema version 99"),
        (&garbage, "JSON"),
        (&missing, "cannot read"),
    ] {
        let err = {
            let mut types = global_types().lock().unwrap();
            restore_snapshot(path, &mut types).expect_err("must reject")
        };
        assert!(
            err.reason.contains(needle),
            "{}: reason {:?} should mention {needle:?}",
            path.display(),
            err.reason
        );
        assert!(
            tpq_core::export_engines().is_empty() && tpq_core::export_closures().is_empty(),
            "a rejected restore must leave the caches untouched"
        );
    }

    // The server boots cold — never crashes — on each damaged file, and
    // reports the right outcome; a missing file is a plain cold start.
    for (path, outcome) in
        [(&corrupt, "rejected"), (&wrong_version, "rejected"), (&missing, "cold")]
    {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".into(),
            jobs: 1,
            restore: Some(path.clone()),
            ..ServeConfig::default()
        })
        .expect("bind must survive a damaged snapshot");
        assert_eq!(server.handle().restore_status().outcome, outcome, "{}", path.display());
    }
    clear_shared_caches();
}

#[test]
fn snapshot_write_is_atomic_under_a_midwrite_failpoint() {
    let _guard = lock();
    clear_shared_caches();
    warm("SnapAtomA*[/SnapAtomB][/SnapAtomC]", "SnapAtomA -> SnapAtomC");
    let path = temp_path("atomic.json");
    {
        let types = global_types().lock().unwrap();
        write_snapshot(&path, &types).expect("first write");
    }
    let before = std::fs::read_to_string(&path).unwrap();

    // Second write crashes (failpoint) after the tmp file exists but
    // before the rename: the previous snapshot must survive intact and
    // no tmp debris may remain.
    let fp = failpoint::arm("snapshot.write", Action::Err, 1);
    let err = {
        let types = global_types().lock().unwrap();
        write_snapshot(&path, &types).expect_err("failpoint must surface as an error")
    };
    drop(fp);
    assert!(err.to_string().contains("injected"), "{err}");
    assert_eq!(std::fs::read_to_string(&path).unwrap(), before, "prior snapshot intact");
    assert!(!path.with_file_name("atomic.json.tmp").exists(), "tmp file cleaned up");

    // And the surviving file still restores.
    clear_shared_caches();
    let mut types = global_types().lock().unwrap();
    restore_snapshot(&path, &mut types).expect("snapshot survived the torn write");
    drop(types);
    clear_shared_caches();
}

#[test]
fn restore_failpoint_rejects_cleanly() {
    let _guard = lock();
    clear_shared_caches();
    warm("SnapRfA*[/SnapRfB]", "");
    let path = temp_path("read-failpoint.json");
    {
        let types = global_types().lock().unwrap();
        write_snapshot(&path, &types).expect("write");
    }
    clear_shared_caches();
    let fp = failpoint::arm("snapshot.read", Action::Err, 1);
    let err = {
        let mut types = global_types().lock().unwrap();
        restore_snapshot(&path, &mut types).expect_err("armed read failpoint")
    };
    drop(fp);
    assert!(err.reason.contains("injected"), "{err}");
    // Second attempt (failpoint disarmed) succeeds — the rejection left
    // nothing broken behind.
    let mut types = global_types().lock().unwrap();
    restore_snapshot(&path, &mut types).expect("restore after disarm");
    drop(types);
    clear_shared_caches();
}
