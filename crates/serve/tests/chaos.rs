//! The chaos battery: concurrent load against a live server under armed
//! failpoints, tripping guards, saturated admission queues, and a
//! kill-and-restart mid-traffic — asserting the robustness invariants:
//!
//! * the server **never returns a wrong minimization**, no matter what
//!   is being shed or injected around the request;
//! * every refused request carries a **typed** `overloaded` (or
//!   `injected`) error — nothing is silently dropped, including requests
//!   still buffered at drain time;
//! * retrying clients ride out overload **and** a full server restart;
//! * a server restored from the dying server's snapshot answers the old
//!   working set from its memo (cache hits) where a cold server would
//!   miss.
//!
//! Failpoints arm process-wide and the caches are process-wide, so the
//! tests serialize on one mutex and use type names unique to each test.
//! Everything is seeded — reruns shed the same requests the same way.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};
use tpq_base::failpoint::{self, Action};
use tpq_base::{Json, TypeInterner};
use tpq_core::{clear_shared_caches, minimize_with, Strategy};
use tpq_pattern::{parse_pattern, print::to_dsl};
use tpq_serve::{Client, RetryPolicy, ServeConfig, ServeHandle, ServeSummary, Server};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|p| p.into_inner())
}

fn start(
    mut config: ServeConfig,
) -> (SocketAddr, ServeHandle, std::thread::JoinHandle<ServeSummary>) {
    config.addr = "127.0.0.1:0".to_owned();
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local_addr");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, thread)
}

fn connect(addr: SocketAddr) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    BufReader::new(stream)
}

fn round_trip(conn: &mut BufReader<TcpStream>, line: &str) -> String {
    writeln!(conn.get_mut(), "{line}").expect("write");
    let mut response = String::new();
    conn.read_line(&mut response).expect("read");
    response.trim_end().to_owned()
}

/// Ground truth computed sequentially by the library itself.
fn expected_minimization(query: &str, constraints: &str) -> String {
    let mut types = TypeInterner::new();
    let ics = tpq_constraints::parse_constraints(constraints, &mut types).expect("constraints");
    let q = parse_pattern(query, &mut types).expect("query");
    to_dsl(&minimize_with(&q, &ics, Strategy::default()).pattern, &types)
}

/// A pattern far too large to minimize inside a 150ms deadline in a test
/// build: `branches` identical deep chains hanging off one root. Sent
/// with `"deadline_ms": 150` it occupies exactly one pool worker for the
/// full deadline, then answers a typed `budget` error — the
/// deterministic way to plug a `jobs = 1` server.
fn plug_query(prefix: &str, branches: usize, depth: usize) -> String {
    let chain: String =
        (0..depth).map(|d| format!("/{prefix}T{}", d % 8)).collect::<Vec<_>>().concat();
    let mut q = format!("{prefix}Root*");
    for _ in 0..branches {
        q.push('[');
        q.push_str(&chain);
        q.push(']');
    }
    q
}

fn request_line(query: &str, constraints: &str, deadline_ms: Option<u64>) -> String {
    let mut members = vec![("query", Json::Str(query.to_owned()))];
    if !constraints.is_empty() {
        members.push(("constraints", Json::Str(constraints.to_owned())));
    }
    if let Some(ms) = deadline_ms {
        members.push(("deadline_ms", Json::Int(ms as i64)));
    }
    Json::object(members).to_string_compact()
}

fn error_kind_of(response: &str) -> Option<String> {
    Json::parse(response).ok()?.get("error")?.get("kind")?.as_str().map(str::to_owned)
}

/// Saturate a `jobs = 1, queue_depth = 2` server: one plug request holds
/// the worker, one burst request is admitted into the queue, and every
/// other concurrent request must be shed with a typed `overloaded` error
/// carrying a `retry_after_ms` hint. No response may ever be a wrong
/// minimization, and the shed arithmetic is exact.
#[test]
fn saturated_queue_sheds_typed_errors_and_never_wrong_answers() {
    let _guard = lock();
    clear_shared_caches();
    let (addr, handle, thread) =
        start(ServeConfig { jobs: 1, queue_depth: 2, ..ServeConfig::default() });

    let small_q = "ChaosShedA*[/ChaosShedB][/ChaosShedB][//ChaosShedC]";
    let expected = expected_minimization(small_q, "");
    let plug = plug_query("ChaosShed", 60, 30);

    // Plug the single worker...
    let mut plug_conn = connect(addr);
    writeln!(plug_conn.get_mut(), "{}", request_line(&plug, "", Some(150))).unwrap();
    std::thread::sleep(Duration::from_millis(50)); // worker now occupied
                                                   // ...then burst 6 concurrent requests against queue_depth = 2.
    const BURST: usize = 6;
    let burst: Vec<_> = (0..BURST)
        .map(|_| {
            let line = request_line(small_q, "", None);
            std::thread::spawn(move || {
                let mut conn = connect(addr);
                round_trip(&mut conn, &line)
            })
        })
        .collect();
    let responses: Vec<String> = burst.into_iter().map(|t| t.join().unwrap()).collect();

    let mut oks = 0;
    let mut sheds = 0;
    for response in &responses {
        match error_kind_of(response) {
            None => {
                let json = Json::parse(response).unwrap();
                assert_eq!(
                    json.get("minimized").and_then(Json::as_str),
                    Some(expected.as_str()),
                    "an admitted request answered a WRONG minimization: {response}"
                );
                oks += 1;
            }
            Some(kind) => {
                assert_eq!(kind, "overloaded", "sheds must be typed overloaded: {response}");
                let hint = Json::parse(response)
                    .unwrap()
                    .get("error")
                    .and_then(|e| e.get("retry_after_ms"))
                    .and_then(Json::as_i64);
                assert!(hint.is_some_and(|ms| ms >= 1), "shed without retry hint: {response}");
                sheds += 1;
            }
        }
    }
    // Exact arithmetic: the plug holds inflight slot 1, one burst request
    // takes slot 2 (the bound), the other five observe a full queue.
    assert_eq!(oks, 1, "exactly one burst request fits the queue: {responses:?}");
    assert_eq!(sheds, BURST - 1);

    // The plug itself answers a typed budget error — the guard tripped.
    let mut plug_response = String::new();
    plug_conn.read_line(&mut plug_response).unwrap();
    assert_eq!(error_kind_of(plug_response.trim_end()).as_deref(), Some("budget"));

    // Same storm again, but through retrying clients: everyone succeeds
    // once the plug drains, and nobody gets a wrong answer.
    let mut plug_conn = connect(addr);
    writeln!(plug_conn.get_mut(), "{}", request_line(&plug, "", Some(150))).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let retried: Vec<_> = (0..BURST)
        .map(|i| {
            let req = Json::object(vec![("query", Json::Str(small_q.to_owned()))]);
            std::thread::spawn(move || {
                let mut client = Client::new(
                    addr.to_string(),
                    RetryPolicy {
                        retries: 10,
                        backoff_ms: 30,
                        seed: 42 + i as u64,
                        ..RetryPolicy::default()
                    },
                );
                client.query(&req).expect("retrying client must eventually succeed")
            })
        })
        .collect();
    let mut retried_more_than_once = 0;
    for t in retried {
        let outcome = t.join().unwrap();
        assert_eq!(outcome.minimized, expected);
        if outcome.attempts > 1 {
            retried_more_than_once += 1;
        }
    }
    assert!(
        retried_more_than_once >= 1,
        "with the worker plugged, at least one client must have been shed and retried"
    );

    // Server-side accounting agrees.
    let mut conn = connect(addr);
    let stats = Json::parse(&round_trip(&mut conn, "STATS")).unwrap();
    let shed = stats.get("shed").expect("shed block in STATS");
    assert!(shed.get("queue_full").and_then(Json::as_i64).unwrap() >= sheds as i64);
    assert_eq!(shed.get("queue_limit").and_then(Json::as_i64), Some(2));

    handle.shutdown();
    let summary = thread.join().unwrap();
    assert!(summary.requests_shed >= sheds as u64);
    clear_shared_caches();
}

/// The armed `serve.shed` failpoint forces one `injected` refusal; a
/// retrying client absorbs it (`injected` is retryable) and the refusal
/// is counted under its own reason.
#[test]
fn injected_shed_is_typed_and_retried() {
    let _guard = lock();
    clear_shared_caches();
    let (addr, handle, thread) = start(ServeConfig { jobs: 1, ..ServeConfig::default() });
    let fp = failpoint::arm("serve.shed", Action::Err, 1);
    let req = Json::object(vec![("query", Json::Str("ChaosInjA*[/ChaosInjB][/ChaosInjB]".into()))]);
    let mut client = Client::new(
        addr.to_string(),
        RetryPolicy { retries: 3, backoff_ms: 10, seed: 7, ..RetryPolicy::default() },
    );
    let outcome = client.query(&req).expect("client retries through the injected shed");
    drop(fp);
    assert_eq!(outcome.attempts, 2, "first attempt injected, second served");
    assert_eq!(outcome.minimized, expected_minimization("ChaosInjA*[/ChaosInjB][/ChaosInjB]", ""));

    let mut conn = connect(addr);
    let stats = Json::parse(&round_trip(&mut conn, "STATS")).unwrap();
    assert_eq!(stats.get("shed").and_then(|s| s.get("injected")).and_then(Json::as_i64), Some(1));
    handle.shutdown();
    thread.join().unwrap();
    clear_shared_caches();
}

/// Satellite (a), the drain contract: requests already buffered behind a
/// `SHUTDOWN` are answered with typed errors — counted as drain sheds —
/// never silently dropped with the socket.
#[test]
fn drain_answers_every_buffered_request_with_a_typed_error() {
    let _guard = lock();
    clear_shared_caches();
    let (addr, _handle, thread) = start(ServeConfig { jobs: 1, ..ServeConfig::default() });

    let q = "ChaosDrainA*[/ChaosDrainB][/ChaosDrainB]";
    let expected = expected_minimization(q, "");
    let mut conn = connect(addr);
    // One write: a request, the shutdown, then two more requests the
    // server will already have buffered when it processes SHUTDOWN.
    let payload = format!(
        "{}\nSHUTDOWN\n{}\n{}\n",
        request_line(q, "", None),
        request_line(q, "", None),
        request_line(q, "", None)
    );
    conn.get_mut().write_all(payload.as_bytes()).unwrap();

    let mut lines = Vec::new();
    let mut line = String::new();
    while conn.read_line(&mut line).unwrap() > 0 {
        lines.push(line.trim_end().to_owned());
        line.clear();
    }
    assert_eq!(lines.len(), 4, "request + ack + two drain errors, got {lines:?}");
    assert_eq!(
        Json::parse(&lines[0]).unwrap().get("minimized").and_then(Json::as_str),
        Some(expected.as_str()),
        "the pre-shutdown request is served normally"
    );
    assert!(lines[1].contains("\"draining\":true"), "{}", lines[1]);
    for drained in &lines[2..] {
        assert_eq!(error_kind_of(drained).as_deref(), Some("overloaded"), "{drained}");
        assert!(drained.contains("draining"), "{drained}");
    }

    let summary = thread.join().unwrap();
    assert_eq!(summary.requests_ok, 1);
    assert!(summary.requests_shed >= 2, "both buffered requests counted as drain sheds");
    clear_shared_caches();
}

/// The full chaos cycle: kill a snapshotting server mid-traffic, restart
/// it from the snapshot on the same port, and assert (1) every retrying
/// client survives the restart with a correct answer, and (2) the
/// restored server answers the old working set from its memo — cache
/// hits where a cold start would miss.
#[test]
fn kill_and_restore_mid_traffic_keeps_clients_whole_and_the_cache_warm() {
    let _guard = lock();
    clear_shared_caches();
    let snap = std::env::temp_dir()
        .join(format!("tpq-chaos-tests-{}", std::process::id()))
        .join("kill-restore.json");
    std::fs::create_dir_all(snap.parent().unwrap()).unwrap();
    let _ = std::fs::remove_file(&snap);

    const QUERIES: usize = 12;
    let constraints = "ChaosKrA -> ChaosKrC";
    let queries: Vec<String> =
        (0..QUERIES).map(|i| format!("ChaosKrA*[/ChaosKrB{i}][/ChaosKrB{i}][/ChaosKrC]")).collect();
    let expected: Vec<String> =
        queries.iter().map(|q| expected_minimization(q, constraints)).collect();

    let (addr, handle, thread) =
        start(ServeConfig { jobs: 2, snapshot: Some(snap.clone()), ..ServeConfig::default() });

    // Wave 1 warms the memo through real traffic.
    let mut warm_client = Client::new(addr.to_string(), RetryPolicy::default());
    for (q, want) in queries.iter().zip(&expected) {
        let req = Json::object(vec![
            ("query", Json::Str(q.clone())),
            ("constraints", Json::Str(constraints.to_owned())),
        ]);
        assert_eq!(&warm_client.query(&req).expect("warm-up").minimized, want);
    }

    // Wave 2 is mid-flight when the server dies: clients must retry
    // through drain sheds, connection refusals while the port is down,
    // and the restart — and still get correct answers.
    let wave2: Vec<_> = (0..QUERIES)
        .map(|i| {
            let q = queries[i].clone();
            let want = expected[i].clone();
            let addr = addr.to_string();
            std::thread::spawn(move || {
                let req = Json::object(vec![
                    ("query", Json::Str(q)),
                    ("constraints", Json::Str("ChaosKrA -> ChaosKrC".to_owned())),
                ]);
                let mut client = Client::new(
                    addr,
                    RetryPolicy {
                        retries: 40,
                        backoff_ms: 25,
                        max_backoff_ms: 400,
                        seed: 1000 + i as u64,
                        ..RetryPolicy::default()
                    },
                );
                let outcome = client.query(&req).expect("client must survive the restart");
                assert_eq!(outcome.minimized, want, "wrong answer across the restart");
                outcome.attempts
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(3));
    handle.shutdown();
    let summary = thread.join().unwrap();
    assert_eq!(summary.snapshot_written.as_deref(), Some(snap.as_path()));

    // Simulate the process restart: cold caches, then a server restored
    // from the snapshot, bound to the SAME port the clients are retrying.
    clear_shared_caches();
    let server = {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match Server::bind(ServeConfig {
                addr: addr.to_string(),
                jobs: 2,
                restore: Some(snap.clone()),
                ..ServeConfig::default()
            }) {
                Ok(server) => break server,
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => panic!("could not rebind {addr}: {e}"),
            }
        }
    };
    let status = server.handle().restore_status().clone();
    assert_eq!(status.outcome, "restored");
    assert!(
        status.stats.patterns >= QUERIES,
        "snapshot must carry the whole warmed working set ({} < {QUERIES})",
        status.stats.patterns
    );
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run().expect("restored server run"));

    for t in wave2 {
        t.join().expect("wave-2 client panicked");
    }

    // The restored-beats-cold invariant, per request: replaying the old
    // working set hits the restored memo on the FIRST touch.
    let mut replay = Client::new(addr.to_string(), RetryPolicy::default());
    for (q, want) in queries.iter().zip(&expected) {
        let req = Json::object(vec![
            ("query", Json::Str(q.clone())),
            ("constraints", Json::Str(constraints.to_owned())),
        ]);
        let outcome = replay.query(&req).expect("replay");
        assert_eq!(&outcome.minimized, want);
        assert!(outcome.cache_hit, "restored server must answer {q} from the memo");
    }

    handle.shutdown();
    thread.join().unwrap();
    let _ = std::fs::remove_file(&snap);
    clear_shared_caches();
}
