//! Fault-injection tests for the serve layer.
//!
//! Kept in their own test binary (own process): failpoints arm
//! process-wide, and the hit comes from a pool worker thread, so
//! thread-scoped arming cannot be used and parallel tests in the same
//! process would race. One test function keeps the sequence
//! deterministic.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;
use tpq_base::failpoint::{self, Action};
use tpq_serve::{ServeConfig, Server};

fn round_trip(conn: &mut BufReader<TcpStream>, line: &str) -> String {
    writeln!(conn.get_mut(), "{line}").expect("write");
    let mut response = String::new();
    conn.read_line(&mut response).expect("read");
    response.trim_end().to_owned()
}

fn error_kind_of(response: &str) -> String {
    tpq_base::Json::parse(response)
        .ok()
        .and_then(|j| j.get("error")?.get("kind")?.as_str().map(str::to_owned))
        .unwrap_or_else(|| panic!("no error kind in {response}"))
}

/// One poisoned request must answer with a typed error while every other
/// request — on the same connection, on others, before and after — is
/// served normally, and the server must still drain cleanly.
#[test]
fn injected_worker_faults_poison_one_request_only() {
    let dir = std::env::temp_dir().join(format!("tpq-serve-faults-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dump = dir.join("flight.jsonl");
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        jobs: 2,
        flight_dump: Some(dump.clone()),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run().expect("run"));

    let stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut conn = BufReader::new(stream);

    // Baseline: the query works.
    let ok = round_trip(&mut conn, r#"{"query": "Fault*[/FA][/FB]"}"#);
    assert!(ok.contains("\"minimized\""), "{ok}");

    // Case 1: the worker minimizing the next request panics.
    let _fp = failpoint::arm("pool.task", Action::Panic, 1);
    let poisoned = round_trip(&mut conn, r#"{"query": "Fault*[/FA][/FB]"}"#);
    assert_eq!(error_kind_of(&poisoned), "panic", "{poisoned}");
    assert!(poisoned.contains("injected panic"), "{poisoned}");

    // The panic triggered an automatic flight-recorder dump, and the
    // crashing request is the last record in the black box.
    let dumped = std::fs::read_to_string(&dump).expect("panic triggered a flight dump");
    let last = dumped.lines().last().expect("dump has records");
    let record = tpq_base::Json::parse(last).expect("record JSON");
    assert_eq!(record.get("outcome").and_then(tpq_base::Json::as_str), Some("panic"), "{last}");

    // The same connection keeps working, as does a fresh one.
    let after = round_trip(&mut conn, r#"{"query": "Fault*[/FA][/FB]"}"#);
    assert!(after.contains("\"minimized\""), "{after}");
    let stream2 = TcpStream::connect(addr).unwrap();
    stream2.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut conn2 = BufReader::new(stream2);
    let other = round_trip(&mut conn2, r#"{"query": "Fault2*[/FC]"}"#);
    assert!(other.contains("\"minimized\""), "{other}");

    // Case 2: the worker reports an injected error instead of panicking.
    let _fp = failpoint::arm("pool.task", Action::Err, 1);
    let injected = round_trip(&mut conn, r#"{"query": "Fault*[/FA][/FB]"}"#);
    assert_eq!(error_kind_of(&injected), "injected", "{injected}");
    let recovered = round_trip(&mut conn, r#"{"query": "Fault*[/FA][/FB]"}"#);
    assert!(recovered.contains("\"minimized\""), "{recovered}");

    // Case 3: a dump torn mid-write (crash modeled by the flight.dump
    // failpoint) must fail without clobbering the panic-time black box.
    let before = std::fs::read_to_string(&dump).unwrap();
    let _fp = failpoint::arm("flight.dump", Action::Err, 1);
    handle.dump_flight().expect_err("armed failpoint fails the dump");
    assert_eq!(std::fs::read_to_string(&dump).unwrap(), before, "old dump survives");
    assert!(!dump.with_file_name("flight.jsonl.tmp").exists(), "torn tmp removed");
    // Disarmed, the dump goes through and now includes the later records.
    let written = handle.dump_flight().expect("dump after disarm");
    assert!(written >= 6, "all requests so far are in the ring: {written}");

    drop(conn);
    drop(conn2);
    handle.shutdown();
    let summary = thread.join().unwrap();
    assert_eq!(summary.requests_ok, 4);
    assert_eq!(summary.requests_failed, 2);
    let _ = std::fs::remove_dir_all(&dir);
}
