//! Integration tests for the flight recorder surface: the `TIMELINE`
//! verb, the `STATS` window/flight blocks, the `tpq_*_1m` gauges, and
//! explicit dumps through [`ServeHandle::dump_flight`]. Both engines are
//! covered — the flight recorder is on by default in each.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;
use tpq_base::Json;
use tpq_serve::{ServeConfig, ServeHandle, ServeSummary, Server};

fn start(
    mut config: ServeConfig,
) -> (SocketAddr, ServeHandle, std::thread::JoinHandle<ServeSummary>) {
    config.addr = "127.0.0.1:0".to_owned();
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local_addr");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, thread)
}

fn connect(addr: SocketAddr) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    BufReader::new(stream)
}

fn round_trip(conn: &mut BufReader<TcpStream>, line: &str) -> String {
    writeln!(conn.get_mut(), "{line}").expect("write");
    let mut response = String::new();
    conn.read_line(&mut response).expect("read");
    response.trim_end().to_owned()
}

/// Send a `TIMELINE` line and collect the JSON records up to `# EOF`.
fn scrape_timeline(conn: &mut BufReader<TcpStream>, verb: &str) -> Vec<Json> {
    writeln!(conn.get_mut(), "{verb}").expect("write");
    let mut records = Vec::new();
    loop {
        let mut line = String::new();
        conn.read_line(&mut line).expect("read timeline line");
        let line = line.trim_end();
        if line == "# EOF" {
            return records;
        }
        records.push(Json::parse(line).unwrap_or_else(|e| panic!("bad record {line:?}: {e}")));
    }
}

fn str_of<'j>(record: &'j Json, field: &str) -> &'j str {
    record
        .get(field)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("no string '{field}' in {record:?}"))
}

fn int_of(record: &Json, field: &str) -> i64 {
    record
        .get(field)
        .and_then(Json::as_i64)
        .unwrap_or_else(|| panic!("no int '{field}' in {record:?}"))
}

/// Drive one server through a mixed workload and check the timeline
/// records it hands back. Shared by the per-engine tests below.
fn check_timeline(config: ServeConfig) {
    let (addr, handle, thread) = start(config);
    let mut conn = connect(addr);

    // Two identical requests (the second hits the canonical-pattern memo
    // cache), one parse failure, one bare-verb round trip for contrast.
    let ok = round_trip(&mut conn, r#"{"query": "Flight*[/FA][/FB]", "strategy": "cim"}"#);
    assert!(ok.contains("\"minimized\""), "{ok}");
    let again = round_trip(&mut conn, r#"{"query": "Flight*[/FA][/FB]", "strategy": "cim"}"#);
    assert!(again.contains("\"minimized\""), "{again}");
    let bad = round_trip(&mut conn, r#"{"query": "((("}"#);
    assert!(bad.contains("\"error\""), "{bad}");
    assert_eq!(round_trip(&mut conn, "PING"), r#"{"ok":true}"#);

    let records = scrape_timeline(&mut conn, "TIMELINE");
    assert_eq!(records.len(), 3, "three requests, verbs not recorded: {records:?}");

    // Records come back oldest first with gap-free seqs.
    let seqs: Vec<i64> = records.iter().map(|r| int_of(r, "seq")).collect();
    assert_eq!(seqs, vec![0, 1, 2]);

    let first = &records[0];
    assert_eq!(str_of(first, "verb"), "minimize");
    assert_eq!(str_of(first, "outcome"), "ok");
    assert_eq!(str_of(first, "strategy"), "cim");
    assert_eq!(str_of(first, "trace").len(), 16, "trace ids are 16 hex digits");
    let phases = first.get("phases_ns").expect("phases_ns");
    let parse = phases.get("parse").and_then(Json::as_i64).expect("parse phase");
    let minimize = phases.get("minimize").and_then(Json::as_i64).expect("minimize phase");
    assert!(parse > 0, "parse phase timed: {first:?}");
    assert!(minimize > 0, "minimize phase timed: {first:?}");
    assert!(int_of(first, "total_ns") >= parse + minimize, "total covers the phases");
    assert!(int_of(first, "bytes_in") > 0 && int_of(first, "bytes_out") > 0);
    assert_eq!(first.get("shed"), Some(&Json::Bool(false)));

    // The repeat was answered from cache; the parse failure is typed and
    // never reached a strategy.
    assert_eq!(records[1].get("cache_hit"), Some(&Json::Bool(true)), "{records:?}");
    assert_eq!(str_of(&records[2], "outcome"), "parse");
    assert_eq!(str_of(&records[2], "strategy"), "-");

    // A count argument trims to the newest records, still oldest first.
    let newest = scrape_timeline(&mut conn, "TIMELINE 2");
    assert_eq!(newest.iter().map(|r| int_of(r, "seq")).collect::<Vec<_>>(), vec![1, 2]);
    // Reads are non-destructive: a second full drain sees everything.
    assert_eq!(scrape_timeline(&mut conn, "TIMELINE").len(), 3);

    // A malformed count is a single-line typed error, not a hang.
    let err = round_trip(&mut conn, "TIMELINE zero");
    assert!(err.contains("bad-request"), "{err}");

    drop(conn);
    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn timeline_returns_phase_timed_records_threaded_engine() {
    check_timeline(ServeConfig { threaded: true, ..ServeConfig::default() });
}

#[cfg(target_os = "linux")]
#[test]
fn timeline_returns_phase_timed_records_reactor_engine() {
    check_timeline(ServeConfig { threaded: false, ..ServeConfig::default() });
}

#[test]
fn stats_and_metrics_surface_the_rolling_window() {
    let (addr, handle, thread) = start(ServeConfig::default());
    let mut conn = connect(addr);
    for _ in 0..3 {
        let ok = round_trip(&mut conn, r#"{"query": "Window*[/WA][/WB]"}"#);
        assert!(ok.contains("\"minimized\""), "{ok}");
    }
    let bad = round_trip(&mut conn, r#"{"query": "((("}"#);
    assert!(bad.contains("\"error\""), "{bad}");

    let stats = Json::parse(&round_trip(&mut conn, "STATS")).expect("stats JSON");
    let window = stats.get("window").expect("window block");
    assert!(int_of(window, "seconds") >= 1);
    assert_eq!(int_of(window, "ok"), 3);
    assert_eq!(int_of(window, "requests"), 4);
    let errors = window.get("errors").expect("errors by kind");
    assert_eq!(errors.get("parse").and_then(Json::as_i64), Some(1));
    assert_eq!(int_of(window, "shed"), 0);
    let rate = window.get("request_rate").and_then(Json::as_f64).expect("request_rate");
    assert!(rate > 0.0, "window rate positive after traffic");
    let p50 = window.get("p50_us").and_then(Json::as_f64).expect("p50_us");
    let p99 = window.get("p99_us").and_then(Json::as_f64).expect("p99_us");
    assert!(p50 > 0.0 && p99 >= p50, "quantiles ordered: p50={p50} p99={p99}");

    let flight = stats.get("flight").expect("flight block");
    assert_eq!(int_of(flight, "recorded"), 4);
    assert_eq!(int_of(flight, "dropped"), 0);
    assert!(int_of(flight, "capacity") > 0);

    // The same window feeds the 1m gauges in the Prometheus exposition.
    writeln!(conn.get_mut(), "METRICS").expect("write");
    let mut gauges = Vec::new();
    loop {
        let mut line = String::new();
        conn.read_line(&mut line).expect("read metrics line");
        let line = line.trim_end();
        if line == "# EOF" {
            break;
        }
        gauges.push(line.to_owned());
    }
    for name in [
        "tpq_serve_request_rate_1m",
        "tpq_serve_error_rate_1m",
        "tpq_serve_shed_rate_1m",
        "tpq_serve_request_p50_seconds_1m",
        "tpq_serve_request_p95_seconds_1m",
        "tpq_serve_request_p99_seconds_1m",
        "tpq_serve_flight_recorded",
        "tpq_serve_flight_dropped",
    ] {
        assert!(gauges.iter().any(|l| l.starts_with(&format!("{name} "))), "missing gauge {name}");
    }
    let recorded = gauges
        .iter()
        .find_map(|l| l.strip_prefix("tpq_serve_flight_recorded "))
        .and_then(|v| v.parse::<f64>().ok())
        .expect("flight recorded gauge value");
    assert!(recorded >= 4.0, "gauge tracks the ring: {recorded}");

    drop(conn);
    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn dump_flight_writes_the_black_box_through_the_handle() {
    let dir = std::env::temp_dir().join(format!("tpq-serve-flight-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dump = dir.join("flight.jsonl");
    let (addr, handle, thread) =
        start(ServeConfig { flight_dump: Some(dump.clone()), ..ServeConfig::default() });
    let mut conn = connect(addr);
    let ok = round_trip(&mut conn, r#"{"query": "Dump*[/DA][/DB]"}"#);
    assert!(ok.contains("\"minimized\""), "{ok}");

    let written = handle.dump_flight().expect("dump via handle");
    assert_eq!(written, 1);
    let text = std::fs::read_to_string(&dump).expect("dump file");
    let record = Json::parse(text.lines().next().expect("one record")).expect("record JSON");
    assert_eq!(str_of(&record, "outcome"), "ok");
    assert!(!dump.with_file_name("flight.jsonl.tmp").exists(), "tmp renamed away");

    drop(conn);
    handle.shutdown();
    thread.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn top_once_renders_a_frame_from_a_live_server() {
    let (addr, handle, thread) = start(ServeConfig::default());
    let mut conn = connect(addr);
    let ok = round_trip(&mut conn, r#"{"query": "Top*[/TA][/TB]"}"#);
    assert!(ok.contains("\"minimized\""), "{ok}");

    let config = tpq_serve::TopConfig { addr: addr.to_string(), once: true, ..Default::default() };
    let mut out = Vec::new();
    tpq_serve::top::run(&config, &mut out).expect("top --once");
    let frame = String::from_utf8(out).expect("utf8 frame");
    assert!(frame.starts_with("tpq top — "), "{frame}");
    assert!(frame.contains("timeline: 1 records sampled"), "{frame}");
    assert!(frame.contains("requests: 1 ok"), "{frame}");
    let slow = frame.lines().find(|l| l.starts_with("  slow:")).expect("slow line");
    assert!(slow.contains("outcome=ok"), "{slow}");
    assert!(!frame.contains('\x1b'), "--once frames carry no escape codes");

    drop(conn);
    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn dump_flight_without_a_configured_path_is_an_error() {
    let (addr, handle, thread) = start(ServeConfig::default());
    let err = handle.dump_flight().expect_err("no --flight-dump configured");
    assert!(err.to_string().contains("flight-dump"), "{err}");
    let mut conn = connect(addr);
    assert_eq!(round_trip(&mut conn, "PING"), r#"{"ok":true}"#);
    drop(conn);
    handle.shutdown();
    thread.join().unwrap();
}
