//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response line per request, in order. A
//! request is either a JSON object or one of five bare verbs:
//!
//! * `PING` — liveness probe, answered with `{"ok":true}`;
//! * `STATS` — server + observability snapshot as one JSON object
//!   (counters are cumulative since process start; the `window` block is
//!   the rolling last-minute view);
//! * `METRICS` — the same snapshot in Prometheus text exposition format.
//!   A multi-line response: it ends with a `# EOF` line, after which
//!   normal line framing resumes;
//! * `TIMELINE [n]` — the newest `n` (default 50) completed-request
//!   flight records, one JSON object per line, oldest first, terminated
//!   by `# EOF` exactly like `METRICS`. Each record carries the request's
//!   trace id, strategy, outcome, byte sizes, and per-phase nanosecond
//!   timings (see `docs/OBSERVABILITY.md` for the schema);
//! * `SHUTDOWN` — acknowledge, then drain the server gracefully.
//!
//! A minimization request:
//!
//! ```json
//! {"query": "Book*[/Title][/Publisher]", "constraints": "Book -> Publisher"}
//! ```
//!
//! with optional fields `"syntax"` (`"dsl"`, the default, or `"xpath"`),
//! `"strategy"` (`"full"`, `"cim"`, `"acim"`, `"cdm"`), `"deadline_ms"`
//! and `"budget"` (non-negative integers, capped by the server's own
//! limits). Unknown fields are rejected so client typos surface as
//! errors instead of silently ignored options.
//!
//! A successful response (the server appends a per-request `trace` id —
//! 16 hex digits — to every minimization response; quote it when
//! correlating with the slow-query log or drained decision events):
//!
//! ```json
//! {"minimized": "Book*/Title", "stats": {"input_nodes": 3, "output_nodes": 2,
//!  "cache_hit": false, "micros": 41.0, "cim_removed": 1, "cdm_removed": 0},
//!  "trace": "000000000000002a"}
//! ```
//!
//! A failure (always a single line, always this shape plus the same
//! appended `trace` field):
//!
//! ```json
//! {"error": {"kind": "parse", "message": "pattern parse error at byte 3: …"}}
//! ```
//!
//! `kind` is one of `bad-request` (malformed JSON / wrong types /
//! unknown fields / oversized line), `parse` (query or constraint text),
//! `invalid` (structurally invalid input), `budget` (deadline, step
//! budget or cancellation tripped), `panic` (the worker minimizing this
//! request panicked; other requests are unaffected), `injected` (an
//! armed failpoint fired), or `overloaded`.
//!
//! `overloaded` is sent in three situations: a connection refused at
//! `--max-conns` (sent once, then the connection closes), a request
//! **shed** by admission control because the in-server request queue is
//! at its `--queue-depth` high-water mark (the connection stays open),
//! or a request still buffered when the server drains. Shed responses
//! carry an extra `retry_after_ms` hint inside the error object:
//!
//! ```json
//! {"error": {"kind": "overloaded", "message": "…", "retry_after_ms": 50}}
//! ```
//!
//! Only `overloaded` and `injected` are **retryable** (see
//! [`ProtoError::is_retryable`]): the request was never minimized, so
//! resending it is safe and may succeed. `bad-request`, `parse`,
//! `invalid` and `budget` are deterministic verdicts about the request
//! itself, and `panic` is evidence the request crashes a worker —
//! retrying any of them wastes server capacity.

use std::time::Duration;
use tpq_base::{Error, Json};
use tpq_core::Strategy;

/// Upper bound on one request line (bytes), protecting the server from
/// unbounded buffering. Longer lines are answered with a `bad-request`
/// error and the connection is closed (framing can no longer be trusted).
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// Query syntax selector for [`Request::syntax`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Syntax {
    /// The pattern DSL (`Book*[/Title]//Section`), the default.
    #[default]
    Dsl,
    /// The XPath subset (`//Book[Title]//Section`).
    Xpath,
}

/// One parsed minimization request.
#[derive(Debug, Clone, Default)]
pub struct Request {
    /// Query text, in the syntax named by `syntax`.
    pub query: String,
    /// Constraint lines (`A -> B`, `A ->> B`, `A ~ B`), possibly empty.
    pub constraints: String,
    /// Query syntax (`"syntax"` field; defaults to the DSL).
    pub syntax: Syntax,
    /// Minimization strategy (`"strategy"` field; `None` = server default).
    pub strategy: Option<Strategy>,
    /// Per-request wall-clock deadline (capped by the server's).
    pub deadline_ms: Option<u64>,
    /// Per-request step budget (capped by the server's).
    pub budget: Option<u64>,
}

impl Request {
    /// Parse one request line (already known not to be a verb). Returns
    /// a `bad-request` [`ProtoError`] on malformed JSON, wrong types or
    /// unknown fields.
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        let value = Json::parse(line).map_err(|e| ProtoError::bad_request(e.to_string()))?;
        let Json::Object(members) = value else {
            return Err(ProtoError::bad_request("request must be a JSON object"));
        };
        let mut req = Request::default();
        let mut saw_query = false;
        for (key, value) in &members {
            match key.as_str() {
                "query" => {
                    req.query = expect_str(value, "query")?.to_owned();
                    saw_query = true;
                }
                "constraints" => req.constraints = expect_str(value, "constraints")?.to_owned(),
                "syntax" => {
                    req.syntax = match expect_str(value, "syntax")? {
                        "dsl" => Syntax::Dsl,
                        "xpath" => Syntax::Xpath,
                        other => {
                            return Err(ProtoError::bad_request(format!(
                                "unknown syntax '{other}' (expected dsl or xpath)"
                            )))
                        }
                    };
                }
                "strategy" => {
                    let text = expect_str(value, "strategy")?;
                    req.strategy = Some(text.parse::<Strategy>().map_err(ProtoError::bad_request)?);
                }
                "deadline_ms" => req.deadline_ms = Some(expect_u64(value, "deadline_ms")?),
                "budget" => req.budget = Some(expect_u64(value, "budget")?),
                other => {
                    return Err(ProtoError::bad_request(format!("unknown field '{other}'")));
                }
            }
        }
        if !saw_query {
            return Err(ProtoError::bad_request("missing required field 'query'"));
        }
        Ok(req)
    }
}

fn expect_str<'a>(value: &'a Json, field: &str) -> Result<&'a str, ProtoError> {
    value
        .as_str()
        .ok_or_else(|| ProtoError::bad_request(format!("field '{field}' must be a string")))
}

fn expect_u64(value: &Json, field: &str) -> Result<u64, ProtoError> {
    value.as_i64().and_then(|n| u64::try_from(n).ok()).ok_or_else(|| {
        ProtoError::bad_request(format!("field '{field}' must be a non-negative integer"))
    })
}

/// A protocol-level failure, rendered as the `{"error": …}` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Stable machine-readable category (see the module docs).
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// Backoff hint for shed requests: how long a well-behaved client
    /// should wait before retrying. Only set on `overloaded` errors from
    /// admission control; rendered as `retry_after_ms` in the error
    /// object when present.
    pub retry_after_ms: Option<u64>,
}

impl ProtoError {
    /// A `bad-request` error (malformed JSON, wrong types, protocol abuse).
    pub fn bad_request(message: impl Into<String>) -> ProtoError {
        ProtoError { kind: "bad-request", message: message.into(), retry_after_ms: None }
    }

    /// An `overloaded` error (connection or request refused by a limit).
    pub fn overloaded(message: impl Into<String>) -> ProtoError {
        ProtoError { kind: "overloaded", message: message.into(), retry_after_ms: None }
    }

    /// An `overloaded` error carrying a `retry_after_ms` backoff hint —
    /// what admission control sends for a shed request.
    pub fn overloaded_retry_after(message: impl Into<String>, retry_after_ms: u64) -> ProtoError {
        ProtoError {
            kind: "overloaded",
            message: message.into(),
            retry_after_ms: Some(retry_after_ms),
        }
    }

    /// Whether a client may safely resend the request after seeing this
    /// error kind. True exactly for `overloaded` (the server refused the
    /// request before doing any work) and `injected` (a deterministic
    /// test fault); see the module docs for why the other kinds must not
    /// be retried.
    pub fn is_retryable_kind(kind: &str) -> bool {
        matches!(kind, "overloaded" | "injected")
    }

    /// [`ProtoError::is_retryable_kind`] for this error.
    pub fn is_retryable(&self) -> bool {
        Self::is_retryable_kind(self.kind)
    }

    /// Classify a workspace [`Error`] into a protocol error.
    pub fn from_error(e: &Error) -> ProtoError {
        let kind = match e {
            Error::PatternParse { .. }
            | Error::XmlParse { .. }
            | Error::ConstraintParse { .. }
            | Error::SchemaParse { .. } => "parse",
            Error::InvalidPattern(_) | Error::InvalidDocument(_) | Error::InvalidConstraints(_) => {
                "invalid"
            }
            Error::Budget { .. } => "budget",
            Error::Injected { .. } => "injected",
            Error::WorkerPanic { .. } => "panic",
        };
        ProtoError { kind, message: e.to_string(), retry_after_ms: None }
    }

    /// The single-line JSON rendering of this error.
    pub fn to_json(&self) -> Json {
        let mut inner = vec![
            ("kind", Json::Str(self.kind.to_owned())),
            ("message", Json::Str(self.message.clone())),
        ];
        if let Some(ms) = self.retry_after_ms {
            inner.push(("retry_after_ms", Json::Int(ms as i64)));
        }
        Json::object(vec![("error", Json::object(inner))])
    }
}

/// Render a successful minimization as the response object.
pub fn success_response(
    minimized_dsl: String,
    input_nodes: usize,
    output_nodes: usize,
    cache_hit: bool,
    stats: &tpq_core::MinimizeStats,
    elapsed: Duration,
) -> Json {
    Json::object(vec![
        ("minimized", Json::Str(minimized_dsl)),
        (
            "stats",
            Json::object(vec![
                ("input_nodes", Json::Int(input_nodes as i64)),
                ("output_nodes", Json::Int(output_nodes as i64)),
                ("cache_hit", Json::Bool(cache_hit)),
                ("micros", Json::Float(elapsed.as_secs_f64() * 1e6)),
                ("cim_removed", Json::Int(stats.cim_removed as i64)),
                ("cdm_removed", Json::Int(stats.cdm_removed as i64)),
                ("redundancy_tests", Json::Int(stats.redundancy_tests as i64)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_parses() {
        let r = Request::parse(r#"{"query": "a*[/b]"}"#).unwrap();
        assert_eq!(r.query, "a*[/b]");
        assert_eq!(r.constraints, "");
        assert_eq!(r.syntax, Syntax::Dsl);
        assert_eq!(r.strategy, None);
        assert_eq!(r.deadline_ms, None);
    }

    #[test]
    fn full_request_parses() {
        let r = Request::parse(
            r#"{"query": "//Book[Title]", "constraints": "Book -> Title",
                "syntax": "xpath", "strategy": "acim", "deadline_ms": 250, "budget": 100}"#,
        )
        .unwrap();
        assert_eq!(r.syntax, Syntax::Xpath);
        assert_eq!(r.strategy, Some(Strategy::AcimOnly));
        assert_eq!(r.deadline_ms, Some(250));
        assert_eq!(r.budget, Some(100));
    }

    #[test]
    fn malformed_requests_are_bad_requests() {
        for bad in [
            "",                                          // empty
            "{",                                         // truncated JSON
            r#"{"query": "a*""#,                         // truncated string + object
            "[1, 2]",                                    // not an object
            "42",                                        // not an object
            r#""query""#,                                // bare string
            r#"{"quarry": "a*"}"#,                       // unknown field
            r#"{}"#,                                     // missing query
            r#"{"query": 7}"#,                           // wrong type
            r#"{"query": "a*", "deadline_ms": -1}"#,     // negative integer
            r#"{"query": "a*", "deadline_ms": "soon"}"#, // wrong type
            r#"{"query": "a*", "strategy": "fastest"}"#, // unknown strategy
            r#"{"query": "a*", "syntax": "sql"}"#,       // unknown syntax
            r#"{"query": "a*"} {"query": "b*"}"#,        // trailing garbage
        ] {
            let e = Request::parse(bad).unwrap_err();
            assert_eq!(e.kind, "bad-request", "{bad:?} -> {e:?}");
        }
    }

    #[test]
    fn error_kinds_classify_workspace_errors() {
        use tpq_base::BudgetResource;
        let cases = [
            (Error::PatternParse { offset: 0, message: "x".into() }, "parse"),
            (Error::ConstraintParse { line: 1, message: "x".into() }, "parse"),
            (Error::InvalidPattern("x".into()), "invalid"),
            (Error::Budget { resource: BudgetResource::Deadline, spent: 2, limit: 1 }, "budget"),
            (Error::Injected { point: "chase.step".into() }, "injected"),
            (Error::WorkerPanic { message: "boom".into() }, "panic"),
        ];
        for (error, kind) in cases {
            assert_eq!(ProtoError::from_error(&error).kind, kind, "{error}");
        }
    }

    #[test]
    fn error_response_shape_is_stable() {
        let text = ProtoError::bad_request("nope").to_json().to_string_compact();
        assert_eq!(text, r#"{"error":{"kind":"bad-request","message":"nope"}}"#);
    }

    #[test]
    fn shed_errors_carry_the_retry_hint() {
        let text = ProtoError::overloaded_retry_after("full", 75).to_json().to_string_compact();
        assert_eq!(text, r#"{"error":{"kind":"overloaded","message":"full","retry_after_ms":75}}"#);
        // The hint is strictly opt-in: plain errors keep the two-field shape.
        assert!(!ProtoError::overloaded("full").to_json().to_string_compact().contains("retry"));
    }

    #[test]
    fn only_overloaded_and_injected_are_retryable() {
        for kind in ["overloaded", "injected"] {
            assert!(ProtoError::is_retryable_kind(kind), "{kind}");
        }
        for kind in ["bad-request", "parse", "invalid", "budget", "panic", "made-up"] {
            assert!(!ProtoError::is_retryable_kind(kind), "{kind}");
        }
        assert!(ProtoError::overloaded_retry_after("q", 1).is_retryable());
        assert!(!ProtoError::bad_request("x").is_retryable());
    }

    #[test]
    fn success_response_shape_is_stable() {
        let json = success_response(
            "a*".into(),
            3,
            1,
            true,
            &tpq_core::MinimizeStats::default(),
            Duration::from_micros(5),
        );
        assert_eq!(json.get("minimized").and_then(Json::as_str), Some("a*"));
        let stats = json.get("stats").unwrap();
        assert_eq!(stats.get("input_nodes").and_then(Json::as_i64), Some(3));
        assert_eq!(stats.get("output_nodes").and_then(Json::as_i64), Some(1));
        assert_eq!(stats.get("cache_hit").and_then(Json::as_bool), Some(true));
    }
}
