//! The TCP server: socket lifecycle, request dispatch, shutdown.
//!
//! Two I/O engines share everything in this module. The default (Linux)
//! engine is the epoll reactor in [`crate::reactor`]: one thread
//! multiplexes every socket and CPU-bound minimization fans out to the
//! [`tpq_base::pool::TaskPool`], whose completions re-enter the reactor
//! through an eventfd. The `--threaded` fallback in
//! `Server::run_threaded` dedicates one thread per connection instead.
//! Either way `--jobs` bounds CPU concurrency independently of
//! `--max-conns` (socket concurrency), and the protocol semantics —
//! verbs, admission control, tracing, drain — live here, engine-neutral.
//! Engines come from [`tpq_core::shared_engine`], so every connection
//! shares one constraint closure and one canonical-pattern memo cache
//! per constraint set, and all queries are interned through one
//! process-wide [`TypeInterner`] (see [`global_types`]).
//!
//! Shutdown is cooperative: [`ServeHandle::shutdown`] (or a SIGTERM /
//! ctrl-c when signal handling is installed, or the `SHUTDOWN` protocol
//! verb) makes the accept loop stop taking connections; handlers finish
//! the request they are on, answer it, and close; [`Server::run`] then
//! waits for the active-connection count to drain (bounded by
//! [`ServeConfig::drain_ms`]) before joining the worker pool.

use crate::proto::{success_response, ProtoError, Request, Syntax, DEFAULT_MAX_LINE_BYTES};
use crate::snapshot::SnapshotStats;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};
use tpq_base::pool::TaskPool;
use tpq_base::{failpoint, Guard, Json, TypeInterner};
use tpq_constraints::parse_constraints;
use tpq_core::{shared_engine, Strategy};
use tpq_pattern::print::to_dsl;
use tpq_pattern::{parse_pattern, parse_xpath};

/// How often blocked loops (accept, idle reads, drain) re-check the
/// shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Read timeout on connection sockets; bounds how long an idle
/// connection takes to notice a server shutdown.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Server tunables. `Default` gives a loopback development server.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Minimization worker threads (`0` = available parallelism).
    pub jobs: usize,
    /// Maximum simultaneous connections; excess connections receive one
    /// `overloaded` error line and are closed.
    pub max_conns: usize,
    /// Server-wide per-request wall-clock deadline (ms). A request's own
    /// `deadline_ms` may tighten but never exceed it.
    pub deadline_ms: Option<u64>,
    /// Server-wide per-request step budget; same capping rule.
    pub budget: Option<u64>,
    /// Strategy for requests that do not name one.
    pub strategy: Strategy,
    /// Upper bound on one request line, in bytes.
    pub max_line_bytes: usize,
    /// How long [`Server::run`] waits for in-flight connections to finish
    /// after shutdown is requested, in milliseconds.
    pub drain_ms: u64,
    /// Install SIGINT/SIGTERM handlers that trigger graceful shutdown
    /// (the `tpq serve` CLI sets this; tests drive shutdown explicitly).
    pub handle_signals: bool,
    /// Slow-query threshold in milliseconds: a request taking at least
    /// this long is logged with its trace id and per-phase breakdown.
    /// `None` disables the slow-query log.
    pub slow_ms: Option<u64>,
    /// Where the slow-query log goes: a file path (appended, created if
    /// missing) or `None` for stderr.
    pub slow_log: Option<std::path::PathBuf>,
    /// Admission-queue bound: requests in flight (executing *or* waiting
    /// on a pool worker) beyond this are shed with a typed `overloaded`
    /// error carrying a `retry_after_ms` hint — before they are parsed,
    /// so a shed request costs almost nothing. Distinct from
    /// [`max_conns`](ServeConfig::max_conns), which gates *connections*
    /// at accept time.
    pub queue_depth: usize,
    /// Write a warm-restart cache snapshot here after the drain completes
    /// (atomically: tmp sibling + rename). `None` disables.
    pub snapshot: Option<PathBuf>,
    /// Restore a snapshot from here at bind time. A missing file is a
    /// normal cold start; a corrupt, truncated, wrong-version or
    /// interner-incompatible file is *rejected* (logged, counted) and the
    /// server starts cold — it never crashes or restores partially.
    pub restore: Option<PathBuf>,
    /// Use the legacy thread-per-connection engine instead of the epoll
    /// reactor (the `--threaded` CLI flag). Ignored off Linux, where the
    /// threaded engine is the only one available.
    pub threaded: bool,
    /// Where the flight recorder dumps its black box (atomically: tmp
    /// sibling + rename) when a worker panics or SIGUSR1 arrives. `None`
    /// disables dumping; the in-memory ring and the `TIMELINE` verb stay
    /// on regardless.
    pub flight_dump: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7878".to_owned(),
            jobs: 0,
            max_conns: 64,
            deadline_ms: None,
            budget: None,
            strategy: Strategy::default(),
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            drain_ms: 5_000,
            handle_signals: false,
            slow_ms: None,
            slow_log: None,
            queue_depth: 256,
            snapshot: None,
            restore: None,
            threaded: false,
            flight_dump: None,
        }
    }
}

/// What one server lifetime did; returned by [`Server::run`].
#[derive(Debug, Clone, Default)]
pub struct ServeSummary {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections refused at the `max_conns` limit.
    pub refused: u64,
    /// Requests answered successfully.
    pub requests_ok: u64,
    /// Requests answered with an error response.
    pub requests_failed: u64,
    /// Requests shed with a typed `overloaded` / `injected` error
    /// (admission queue, armed failpoint, or drain flush); a subset of
    /// [`requests_failed`](ServeSummary::requests_failed).
    pub requests_shed: u64,
    /// Where the drain-time snapshot landed, when one was configured and
    /// the write succeeded.
    pub snapshot_written: Option<PathBuf>,
}

/// What the `--restore` attempt at bind time did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreStatus {
    /// `"cold"` (no snapshot configured, or the file does not exist yet),
    /// `"restored"`, or `"rejected"`.
    pub outcome: &'static str,
    /// What the restored snapshot contained (zeroed unless restored).
    pub stats: SnapshotStats,
    /// Why the snapshot was rejected, when it was.
    pub reason: Option<String>,
}

impl Default for RestoreStatus {
    fn default() -> RestoreStatus {
        RestoreStatus { outcome: "cold", stats: SnapshotStats::default(), reason: None }
    }
}

/// Shared mutable server state: counters, the worker pool, config.
/// Crate-visible so the epoll reactor drives the same counters and
/// request path as the threaded engine.
pub(crate) struct ServerState {
    pub(crate) shutdown: AtomicBool,
    pub(crate) active: AtomicUsize,
    /// Requests currently being processed (the `serve.inflight` gauge).
    pub(crate) inflight: AtomicUsize,
    pub(crate) accepted: AtomicU64,
    pub(crate) refused: AtomicU64,
    pub(crate) requests_ok: AtomicU64,
    pub(crate) requests_failed: AtomicU64,
    /// Requests shed at the admission queue (`queue_depth` exceeded).
    pub(crate) shed_queue_full: AtomicU64,
    /// Requests shed by the armed `serve.shed` failpoint.
    pub(crate) shed_injected: AtomicU64,
    /// Buffered requests answered with a typed error during drain.
    pub(crate) shed_drain: AtomicU64,
    pub(crate) pool: TaskPool,
    pub(crate) config: ServeConfig,
    pub(crate) started: Instant,
    /// Open slow-query log file (`None` = log to stderr).
    slow_log: Option<Mutex<std::fs::File>>,
    /// What `--restore` did at bind time (immutable afterwards).
    restore: RestoreStatus,
    /// The always-on flight recorder both engines feed; drained by the
    /// `TIMELINE` verb, dumped on worker panic or SIGUSR1.
    pub(crate) flight: tpq_obs::FlightRecorder,
    /// The rolling 60-second window behind the STATS `window` block and
    /// the `tpq_*_1m` METRICS gauges.
    pub(crate) window: tpq_obs::RollingWindow,
}

impl ServerState {
    pub(crate) fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
            || (self.config.handle_signals && crate::signal::triggered())
    }

    /// Total requests shed across all three reasons.
    pub(crate) fn requests_shed(&self) -> u64 {
        self.shed_queue_full.load(Ordering::Relaxed)
            + self.shed_injected.load(Ordering::Relaxed)
            + self.shed_drain.load(Ordering::Relaxed)
    }
}

/// A clonable handle that can observe and stop a running [`Server`].
#[derive(Clone)]
pub struct ServeHandle {
    state: Arc<ServerState>,
}

impl ServeHandle {
    /// Request graceful shutdown: stop accepting, drain in-flight work.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::Release);
    }

    /// Has shutdown been requested (by any route)?
    pub fn is_shutdown(&self) -> bool {
        self.state.shutdown_requested()
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.state.active.load(Ordering::Acquire)
    }

    /// What the `--restore` attempt at bind time did.
    pub fn restore_status(&self) -> &RestoreStatus {
        &self.state.restore
    }

    /// Dump the flight recorder to the configured `--flight-dump` path
    /// right now, returning the number of records written. Errors when no
    /// dump path was configured. This is the programmatic twin of sending
    /// the process SIGUSR1.
    pub fn dump_flight(&self) -> std::io::Result<usize> {
        match &self.state.config.flight_dump {
            Some(path) => self.state.flight.dump(path),
            None => Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                "no --flight-dump path configured",
            )),
        }
    }
}

/// The process-wide [`TypeInterner`] behind every request the serve layer
/// parses. One interner for the whole process keeps [`TypeId`]s globally
/// consistent, which is what makes sharing canonical-key memo caches
/// across connections (and across [`Server`] instances in tests) sound.
///
/// [`TypeId`]: tpq_base::TypeId
pub fn global_types() -> &'static Mutex<TypeInterner> {
    static TYPES: OnceLock<Mutex<TypeInterner>> = OnceLock::new();
    TYPES.get_or_init(|| Mutex::new(TypeInterner::new()))
}

/// Lock the global interner, recovering from a poisoned lock (the
/// interner is append-only, so a panic mid-intern leaves it usable).
fn lock_types() -> std::sync::MutexGuard<'static, TypeInterner> {
    global_types().lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A bound, not-yet-running minimization server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Bind the listen socket and spawn the worker pool. Also enables the
    /// `tpq-obs` layer so the `STATS` verb has data to report.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let jobs = if config.jobs == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.jobs
        };
        tpq_obs::set_enabled(true);
        if config.handle_signals {
            crate::signal::install();
        }
        let slow_log = match &config.slow_log {
            Some(path) => {
                Some(Mutex::new(std::fs::OpenOptions::new().create(true).append(true).open(path)?))
            }
            None => None,
        };
        let restore = restore_at_bind(config.restore.as_deref());
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                shutdown: AtomicBool::new(false),
                active: AtomicUsize::new(0),
                inflight: AtomicUsize::new(0),
                accepted: AtomicU64::new(0),
                refused: AtomicU64::new(0),
                requests_ok: AtomicU64::new(0),
                requests_failed: AtomicU64::new(0),
                shed_queue_full: AtomicU64::new(0),
                shed_injected: AtomicU64::new(0),
                shed_drain: AtomicU64::new(0),
                pool: TaskPool::new(jobs),
                config,
                started: Instant::now(),
                slow_log,
                restore,
                flight: tpq_obs::FlightRecorder::default(),
                window: tpq_obs::RollingWindow::new(),
            }),
        })
    }

    /// The address actually bound (resolves `:0` to the chosen port).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for observing and stopping this server from other threads.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle { state: Arc::clone(&self.state) }
    }

    /// Serve until shutdown is requested, then drain and return totals.
    ///
    /// On Linux this runs the epoll reactor ([`crate::reactor`]) unless
    /// [`ServeConfig::threaded`] asks for the legacy engine; elsewhere the
    /// threaded engine is the only one. Minimization work runs on the
    /// shared worker pool either way. Returns after in-flight connections
    /// finish (bounded by [`ServeConfig::drain_ms`]).
    pub fn run(self) -> std::io::Result<ServeSummary> {
        #[cfg(target_os = "linux")]
        if !self.state.config.threaded {
            return crate::reactor::run(self.listener, self.state);
        }
        self.run_threaded()
    }

    /// The thread-per-connection engine: one dedicated handler thread per
    /// accepted socket, blocking reads with a short timeout to notice
    /// shutdown.
    fn run_threaded(self) -> std::io::Result<ServeSummary> {
        self.listener.set_nonblocking(true)?;
        while !self.state.shutdown_requested() {
            if self.state.config.handle_signals && crate::signal::take_usr1() {
                maybe_dump_flight(&self.state, "SIGUSR1");
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let state = Arc::clone(&self.state);
                    if state.active.load(Ordering::Acquire) >= state.config.max_conns {
                        refuse_connection(&state, stream);
                        continue;
                    }
                    state.active.fetch_add(1, Ordering::AcqRel);
                    state.accepted.fetch_add(1, Ordering::Relaxed);
                    tpq_obs::incr("serve.conn.accepted", 1);
                    std::thread::spawn(move || {
                        let _active = ActiveGuard(&state);
                        handle_connection(&state, stream);
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL_INTERVAL),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Refuse new connections from here on; drain the in-flight ones.
        // Handlers notice the shutdown flag, answer the line they are on,
        // flush any further buffered lines with typed drain errors, and
        // close — so every request a client finished sending gets *some*
        // response before the socket goes away.
        drop(self.listener);
        let drain_deadline = Instant::now() + Duration::from_millis(self.state.config.drain_ms);
        while self.state.active.load(Ordering::Acquire) > 0 && Instant::now() < drain_deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(finalize(&self.state))
    }
}

/// Join the worker pool, write the drain-time snapshot if one is
/// configured, and summarize the server lifetime. Shared epilogue of both
/// engines — by the time it runs no socket I/O remains.
pub(crate) fn finalize(state: &ServerState) -> ServeSummary {
    state.pool.shutdown();
    // With the pool joined the cache layers are quiescent: snapshot
    // them for the next boot's --restore.
    let snapshot_written = match &state.config.snapshot {
        Some(path) => match crate::snapshot::write_snapshot(path, &lock_types()) {
            Ok(stats) => {
                tpq_obs::incr("snapshot.write.patterns", stats.patterns as u64);
                Some(path.clone())
            }
            Err(e) => {
                eprintln!("tpq-serve: snapshot write to {} failed: {e}", path.display());
                None
            }
        },
        None => None,
    };
    ServeSummary {
        accepted: state.accepted.load(Ordering::Relaxed),
        refused: state.refused.load(Ordering::Relaxed),
        requests_ok: state.requests_ok.load(Ordering::Relaxed),
        requests_failed: state.requests_failed.load(Ordering::Relaxed),
        requests_shed: state.requests_shed(),
        snapshot_written,
    }
}

/// Decrements the active-connection count when the handler exits, even
/// if it panics.
struct ActiveGuard<'a>(&'a ServerState);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Attempt the bind-time snapshot restore. A missing file is a normal
/// cold start (first boot of a `--restore`d deployment); anything else
/// that fails validation is *rejected* — logged to stderr, counted, and
/// the server starts cold.
fn restore_at_bind(path: Option<&std::path::Path>) -> RestoreStatus {
    let Some(path) = path else {
        return RestoreStatus::default();
    };
    if !path.exists() {
        return RestoreStatus::default();
    }
    match crate::snapshot::restore_snapshot(path, &mut lock_types()) {
        Ok(stats) => RestoreStatus { outcome: "restored", stats, reason: None },
        Err(e) => {
            eprintln!("tpq-serve: restore from {} failed: {e}; starting cold", path.display());
            RestoreStatus {
                outcome: "rejected",
                stats: SnapshotStats::default(),
                reason: Some(e.reason),
            }
        }
    }
}

/// Tell an over-limit client why it is being dropped. The stream must
/// still be in blocking mode (freshly accepted sockets are).
pub(crate) fn refuse_connection(state: &ServerState, mut stream: TcpStream) {
    state.refused.fetch_add(1, Ordering::Relaxed);
    tpq_obs::incr("serve.conn.refused", 1);
    let error = ProtoError::overloaded(format!(
        "connection limit of {} reached, try again later",
        state.config.max_conns
    ));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = writeln!(stream, "{}", error.to_json());
}

/// What the dispatcher wants done with the connection after a line.
pub(crate) enum Flow {
    /// Send this response and keep reading.
    Respond(Json),
    /// Send this pre-rendered multi-line text verbatim (the `METRICS`
    /// exposition) and keep reading. The text carries its own `# EOF`
    /// terminator line so clients can re-frame the stream.
    Raw(String),
    /// Blank line: nothing to send.
    Skip,
    /// Send this response, then trigger graceful server shutdown.
    Shutdown(Json),
}

/// Serve one connection: split the byte stream into lines, dispatch each,
/// write one response line per request.
fn handle_connection(state: &ServerState, mut stream: TcpStream) {
    let t_conn = Instant::now();
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut buffer: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    'conn: loop {
        // Process every complete line already buffered.
        while let Some(newline) = buffer.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buffer.drain(..=newline).collect();
            let Ok(text) = std::str::from_utf8(&line[..line.len() - 1]) else {
                let e = ProtoError::bad_request("request line is not valid UTF-8");
                let _ = writeln!(stream, "{}", e.to_json());
                break 'conn;
            };
            match dispatch(state, text.trim()) {
                Flow::Skip => {}
                Flow::Respond(json) => {
                    if writeln!(stream, "{json}").is_err() {
                        break 'conn;
                    }
                }
                Flow::Raw(text) => {
                    if stream.write_all(text.as_bytes()).is_err() {
                        break 'conn;
                    }
                }
                Flow::Shutdown(json) => {
                    let _ = writeln!(stream, "{json}");
                    state.shutdown.store(true, Ordering::Release);
                    flush_buffered_on_drain(state, &mut stream, &mut buffer);
                    break 'conn;
                }
            }
            if state.shutdown_requested() {
                // Drained: the in-flight line was answered above; every
                // further buffered line gets a typed drain error instead
                // of vanishing with the socket.
                flush_buffered_on_drain(state, &mut stream, &mut buffer);
                break 'conn;
            }
        }
        // Refuse to buffer a line past the cap — framing is gone, close.
        if buffer.len() > state.config.max_line_bytes {
            let e = ProtoError::bad_request(format!(
                "request line exceeds {} bytes",
                state.config.max_line_bytes
            ));
            let _ = writeln!(stream, "{}", e.to_json());
            state.requests_failed.fetch_add(1, Ordering::Relaxed);
            tpq_obs::incr("serve.request.error", 1);
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // client closed
            Ok(n) => buffer.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if state.shutdown_requested() && buffer.is_empty() {
                    break; // idle connection during drain
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    tpq_obs::record_duration("serve.conn", t_conn.elapsed());
}

/// Satellite of the drain contract: a connection closing because the
/// server is draining answers every *complete* line still sitting in its
/// read buffer with a typed `overloaded` error (reason `drain`) instead
/// of silently dropping it. A trailing partial line was never a request
/// the client finished sending, so it closes unanswered.
fn flush_buffered_on_drain(state: &ServerState, stream: &mut TcpStream, buffer: &mut Vec<u8>) {
    while let Some(newline) = buffer.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = buffer.drain(..=newline).collect();
        let is_request = match std::str::from_utf8(&line[..line.len() - 1]) {
            Ok(text) => !text.trim().is_empty(),
            Err(_) => true, // garbage still deserves a response line
        };
        if !is_request {
            continue;
        }
        let e = drain_shed_error(state, line.len() - 1);
        if writeln!(stream, "{}", e.to_json()).is_err() {
            return;
        }
    }
}

/// Count one buffered request shed by the drain (flight record
/// included; `line_len` is the shed line's size sans newline) and build
/// its typed error. Both engines answer such requests with this instead
/// of letting them vanish with the socket.
pub(crate) fn drain_shed_error(state: &ServerState, line_len: usize) -> ProtoError {
    state.shed_drain.fetch_add(1, Ordering::Relaxed);
    state.requests_failed.fetch_add(1, Ordering::Relaxed);
    tpq_obs::incr("serve.shed.drain", 1);
    tpq_obs::incr("serve.request.error", 1);
    let e = ProtoError::overloaded(
        "server is draining; request was not processed — retry against the restarted server",
    );
    record_flight(
        state,
        FlightDraft::shed(line_len, &e, Instant::now()),
        rendered_len(&e.to_json()),
        false,
    );
    e
}

/// Route one trimmed request line (threaded engine): verbs answer
/// synchronously, JSON requests run to completion on this thread.
fn dispatch(state: &ServerState, line: &str) -> Flow {
    match dispatch_verb(state, line) {
        Some(flow) => flow,
        None => Flow::Respond(handle_request(state, line)),
    }
}

/// The engine-neutral half of dispatch: answer protocol verbs (and the
/// cheap rejections) synchronously, or return `None` for a JSON
/// minimization request, which each engine executes its own way — the
/// threaded engine inline, the reactor on a pool worker.
pub(crate) fn dispatch_verb(state: &ServerState, line: &str) -> Option<Flow> {
    if line.is_empty() {
        return Some(Flow::Skip);
    }
    match line {
        "PING" => Some(Flow::Respond(Json::object(vec![("ok", Json::Bool(true))]))),
        "STATS" => Some(Flow::Respond(stats_json(state))),
        "METRICS" => Some(Flow::Raw(metrics_text(state))),
        "SHUTDOWN" => {
            tpq_obs::incr("serve.shutdown", 1);
            Some(Flow::Shutdown(Json::object(vec![
                ("ok", Json::Bool(true)),
                ("draining", Json::Bool(true)),
            ])))
        }
        _ if line == "TIMELINE" || line.starts_with("TIMELINE ") => {
            Some(timeline_flow(state, line["TIMELINE".len()..].trim()))
        }
        _ if !line.starts_with('{') => Some(Flow::Respond(
            ProtoError::bad_request(format!(
                "unknown verb '{}' (expected PING, STATS, METRICS, TIMELINE, SHUTDOWN or a JSON object)",
                line.chars().take(32).collect::<String>()
            ))
            .to_json(),
        )),
        _ => None,
    }
}

/// How many flight records a bare `TIMELINE` (no count) returns.
const DEFAULT_TIMELINE_RECORDS: usize = 50;

/// The `TIMELINE [n]` verb: the newest `n` flight records (default
/// [`DEFAULT_TIMELINE_RECORDS`], oldest first) as JSON lines, terminated
/// by `# EOF` exactly like `METRICS`. Reads are non-destructive — the
/// ring keeps its contents for the crash dump — so pollers deduplicate
/// by the records' `seq` field.
fn timeline_flow(state: &ServerState, arg: &str) -> Flow {
    let n = if arg.is_empty() {
        DEFAULT_TIMELINE_RECORDS
    } else {
        match arg.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                return Flow::Respond(
                    ProtoError::bad_request(format!(
                        "TIMELINE count must be a positive integer, got '{arg}'"
                    ))
                    .to_json(),
                )
            }
        }
    };
    let mut text = tpq_obs::flight_to_json_lines(&state.flight.recent(n));
    text.push_str("# EOF\n");
    Flow::Raw(text)
}

/// The `METRICS` verb: the whole tpq-obs registry plus the server gauges
/// in Prometheus text exposition format, terminated by a `# EOF` line so
/// clients of the line-framed protocol know where the exposition ends.
fn metrics_text(state: &ServerState) -> String {
    let inflight = state.inflight.load(Ordering::Acquire);
    // Queue depth = requests waiting for (not holding) a pool worker.
    let queued = inflight.saturating_sub(state.pool.size());
    let snapshot_age_seconds = match state.restore.outcome {
        "restored" => {
            let now_ms = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_millis() as u64);
            now_ms.saturating_sub(state.restore.stats.created_unix_ms) as f64 / 1e3
        }
        _ => 0.0,
    };
    let window = state.window.snapshot();
    let gauges = [
        ("serve.inflight", inflight as f64),
        ("serve.connections.active", state.active.load(Ordering::Acquire) as f64),
        ("serve.uptime_seconds", state.started.elapsed().as_secs_f64()),
        ("serve.queue.depth", queued as f64),
        ("serve.queue.limit", state.config.queue_depth as f64),
        ("serve.snapshot.restored", f64::from(u8::from(state.restore.outcome == "restored"))),
        ("serve.snapshot.rejected", f64::from(u8::from(state.restore.outcome == "rejected"))),
        ("serve.snapshot.bytes", state.restore.stats.bytes as f64),
        ("serve.snapshot.age_seconds", snapshot_age_seconds),
        // The rolling 60-second window: RED rates and latency quantiles.
        ("serve.request.rate_1m", window.request_rate()),
        ("serve.error.rate_1m", window.error_rate()),
        ("serve.shed.rate_1m", window.shed_rate()),
        ("serve.request.p50_seconds_1m", window.p50_ns as f64 / 1e9),
        ("serve.request.p95_seconds_1m", window.p95_ns as f64 / 1e9),
        ("serve.request.p99_seconds_1m", window.p99_ns as f64 / 1e9),
        // Flight-recorder health.
        ("serve.flight.recorded", state.flight.recorded() as f64),
        ("serve.flight.dropped", state.flight.dropped() as f64),
    ];
    let mut text = tpq_obs::prometheus(&gauges);
    text.push_str("# EOF\n");
    text
}

/// The `STATS` verb: server totals plus the whole tpq-obs registry.
fn stats_json(state: &ServerState) -> Json {
    Json::object(vec![
        ("uptime_ms", Json::Int(state.started.elapsed().as_millis() as i64)),
        (
            "connections",
            Json::object(vec![
                ("active", Json::Int(state.active.load(Ordering::Acquire) as i64)),
                ("accepted", Json::Int(state.accepted.load(Ordering::Relaxed) as i64)),
                ("refused", Json::Int(state.refused.load(Ordering::Relaxed) as i64)),
            ]),
        ),
        (
            "requests",
            Json::object(vec![
                ("ok", Json::Int(state.requests_ok.load(Ordering::Relaxed) as i64)),
                ("error", Json::Int(state.requests_failed.load(Ordering::Relaxed) as i64)),
                ("inflight", Json::Int(state.inflight.load(Ordering::Acquire) as i64)),
            ]),
        ),
        (
            "shed",
            Json::object(vec![
                ("queue_full", Json::Int(state.shed_queue_full.load(Ordering::Relaxed) as i64)),
                ("injected", Json::Int(state.shed_injected.load(Ordering::Relaxed) as i64)),
                ("drain", Json::Int(state.shed_drain.load(Ordering::Relaxed) as i64)),
                ("total", Json::Int(state.requests_shed() as i64)),
                ("queue_limit", Json::Int(state.config.queue_depth as i64)),
            ]),
        ),
        (
            "snapshot",
            Json::object(vec![
                ("restore", Json::Str(state.restore.outcome.to_owned())),
                ("restored_engines", Json::Int(state.restore.stats.engines as i64)),
                ("restored_patterns", Json::Int(state.restore.stats.patterns as i64)),
                ("restored_closures", Json::Int(state.restore.stats.closures as i64)),
                ("bytes", Json::Int(state.restore.stats.bytes as i64)),
                ("created_unix_ms", Json::Int(state.restore.stats.created_unix_ms as i64)),
            ]),
        ),
        (
            "pool",
            Json::object(vec![
                ("workers", Json::Int(state.pool.size() as i64)),
                ("executed", Json::Int(state.pool.executed() as i64)),
            ]),
        ),
        ("window", window_json(&state.window.snapshot())),
        (
            "flight",
            Json::object(vec![
                ("recorded", Json::Int(state.flight.recorded() as i64)),
                ("dropped", Json::Int(state.flight.dropped() as i64)),
                ("capacity", Json::Int(state.flight.capacity() as i64)),
            ]),
        ),
        // Event-ring losses, surfaced top-level (and inside the obs
        // report) so clients notice silent event loss without digging.
        ("events_dropped", Json::Int(tpq_obs::events_dropped() as i64)),
        ("obs", tpq_obs::report().to_json()),
    ])
}

/// The STATS `window` block: the rolling 60-second RED view. `seconds`
/// is the covered span (grows to 60 after the first minute); quantiles
/// are in microseconds, matching the response `stats.micros` field.
fn window_json(w: &tpq_obs::WindowStats) -> Json {
    let errors: Vec<(&str, Json)> =
        w.errors.iter().map(|&(kind, n)| (kind, Json::Int(n as i64))).collect();
    Json::object(vec![
        ("seconds", Json::Int(w.seconds as i64)),
        ("requests", Json::Int(w.requests() as i64)),
        ("ok", Json::Int(w.ok as i64)),
        ("errors", Json::object(errors)),
        ("shed", Json::Int(w.shed as i64)),
        ("request_rate", Json::Float(w.request_rate())),
        ("error_rate", Json::Float(w.error_rate())),
        ("shed_rate", Json::Float(w.shed_rate())),
        ("p50_us", Json::Float(w.p50_ns as f64 / 1e3)),
        ("p95_us", Json::Float(w.p95_ns as f64 / 1e3)),
        ("p99_us", Json::Float(w.p99_ns as f64 / 1e3)),
    ])
}

/// The effective per-request limit for one resource: the tighter of the
/// request's ask and the server's ceiling.
fn effective_limit(requested: Option<u64>, ceiling: Option<u64>) -> Option<u64> {
    match (requested, ceiling) {
        (Some(r), Some(c)) => Some(r.min(c)),
        (r, c) => r.or(c),
    }
}

/// Per-phase wall-clock breakdown of one request, for the slow-query log.
#[derive(Debug, Default, Clone, Copy)]
struct Phases {
    parse: Duration,
    minimize: Duration,
    render: Duration,
}

/// The protocol spelling of a strategy, for flight records.
fn strategy_name(strategy: Strategy) -> &'static str {
    match strategy {
        Strategy::CdmThenAcim => "full",
        Strategy::CimOnly => "cim",
        Strategy::AcimOnly => "acim",
        Strategy::CdmOnly => "cdm",
    }
}

/// Milliseconds since the Unix epoch, for flight-record timestamps.
fn now_unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

/// A [`tpq_obs::FlightRecord`] in the making: everything the request
/// path knows before the response is rendered onto the wire. The engine
/// finishing the delivery fills in `bytes_out` and the backpressure flag
/// via [`record_flight`] — the reactor only knows those at completion
/// delivery, after the pool worker is long gone.
#[derive(Debug, Clone)]
pub(crate) struct FlightDraft {
    trace: u64,
    strategy: &'static str,
    queue_ns: u64,
    parse_ns: u64,
    minimize_ns: u64,
    render_ns: u64,
    total_ns: u64,
    bytes_in: u64,
    outcome: &'static str,
    cache_hit: bool,
    shed: bool,
}

impl FlightDraft {
    /// A draft for a request shed before it was parsed (admission queue,
    /// injected fault, or drain flush): no trace, no phases, just the
    /// arrival size, the shed outcome and the (tiny) time spent.
    pub(crate) fn shed(line_len: usize, error: &ProtoError, t0: Instant) -> FlightDraft {
        FlightDraft {
            trace: 0,
            strategy: "-",
            queue_ns: 0,
            parse_ns: 0,
            minimize_ns: 0,
            render_ns: 0,
            total_ns: t0.elapsed().as_nanos() as u64,
            bytes_in: line_len as u64 + 1,
            outcome: error.kind,
            cache_hit: false,
            shed: true,
        }
    }
}

/// Finalize one request's flight record: feed the rolling window, push
/// the record into the ring, and — when the request crashed its worker —
/// dump the black box while the evidence is still in it. Called by both
/// engines at the point where response size and backpressure state are
/// known (write time for the threaded engine, completion delivery for
/// the reactor).
pub(crate) fn record_flight(
    state: &ServerState,
    draft: FlightDraft,
    bytes_out: u64,
    backpressure: bool,
) {
    if draft.outcome == "ok" {
        state.window.record_ok(draft.total_ns);
    } else {
        state.window.record_error(draft.outcome, draft.shed, draft.total_ns);
    }
    let crashed = draft.outcome == "panic";
    state.flight.record(tpq_obs::FlightRecord {
        seq: 0, // assigned by the ring
        t_unix_ms: now_unix_ms(),
        trace: draft.trace,
        verb: "minimize",
        strategy: draft.strategy,
        queue_ns: draft.queue_ns,
        parse_ns: draft.parse_ns,
        minimize_ns: draft.minimize_ns,
        render_ns: draft.render_ns,
        total_ns: draft.total_ns,
        bytes_in: draft.bytes_in,
        bytes_out,
        outcome: draft.outcome,
        cache_hit: draft.cache_hit,
        shed: draft.shed,
        backpressure,
    });
    if crashed {
        maybe_dump_flight(state, "worker panic");
    }
}

/// Dump the flight ring to the configured `--flight-dump` path (no-op
/// without one). `reason` is for the stderr note only.
pub(crate) fn maybe_dump_flight(state: &ServerState, reason: &str) {
    let Some(path) = &state.config.flight_dump else {
        return;
    };
    match state.flight.dump(path) {
        Ok(n) => {
            eprintln!(
                "tpq-serve: flight recorder dumped {n} records to {} ({reason})",
                path.display()
            );
        }
        Err(e) => {
            eprintln!("tpq-serve: flight dump to {} failed: {e} ({reason})", path.display());
        }
    }
}

/// The framed size of a response: its compact rendering plus the newline.
fn rendered_len(json: &Json) -> u64 {
    json.to_string_compact().len() as u64 + 1
}

/// Decrements the in-flight request gauge when the request finishes,
/// even if the handler panics.
struct InflightGuard<'a>(&'a ServerState);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Answer one minimization request line on the calling thread (threaded
/// engine): admission control, then the full [`process_request`] path.
fn handle_request(state: &ServerState, line: &str) -> Json {
    let t0 = Instant::now();
    let n_prev = state.inflight.fetch_add(1, Ordering::AcqRel);
    let _inflight = InflightGuard(state);
    // Admission control, before the request is even parsed: shedding has
    // to be cheaper than serving, or it does not protect anything. The
    // fetch_add-then-compare makes the queue_depth bound exact under
    // concurrency (each admitted request observed a distinct n_prev).
    if let Some(shed) = admission_check(state, n_prev) {
        state.requests_failed.fetch_add(1, Ordering::Relaxed);
        tpq_obs::incr("serve.request.error", 1);
        let json = shed.to_json();
        record_flight(state, FlightDraft::shed(line.len(), &shed, t0), rendered_len(&json), false);
        return json;
    }
    let (json, draft) = process_request(state, line, t0, false);
    // The threaded engine writes from this thread, so delivery size is
    // known right here and backpressure does not exist (writes block).
    record_flight(state, draft, rendered_len(&json), false);
    json
}

/// Execute one *admitted* minimization request: mint its trace id
/// (echoed back as the `trace` response field), minimize, bump the
/// outcome counters, feed the slow-query log, and assemble the request's
/// [`FlightDraft`] (the caller records it once delivery size and
/// backpressure are known). `run_inline` says whether the caller already
/// sits on a pool worker (the reactor) — then the minimization runs
/// right here behind the same `pool.task` failpoint and panic shield a
/// [`TaskPool::run`] round-trip would apply — or should block on
/// [`TaskPool::run`] (the threaded engine). `t0` is the request's
/// arrival time; time between `t0` and this call is queue time.
pub(crate) fn process_request(
    state: &ServerState,
    line: &str,
    t0: Instant,
    run_inline: bool,
) -> (Json, FlightDraft) {
    let queue_ns = t0.elapsed().as_nanos() as u64;
    let trace = tpq_obs::fresh_trace_id();
    let _scope = tpq_obs::trace_scope(trace);
    let mut phases = Phases::default();
    let mut draft = FlightDraft {
        trace,
        strategy: "-",
        queue_ns,
        parse_ns: 0,
        minimize_ns: 0,
        render_ns: 0,
        total_ns: 0,
        bytes_in: line.len() as u64 + 1,
        outcome: "ok",
        cache_hit: false,
        shed: false,
    };
    let result = minimize_request(state, line, t0, &mut phases, run_inline, &mut draft);
    let elapsed = t0.elapsed();
    tpq_obs::record_duration("serve.request", elapsed);
    maybe_log_slow(state, line, trace, elapsed, &phases);
    draft.parse_ns = phases.parse.as_nanos() as u64;
    draft.minimize_ns = phases.minimize.as_nanos() as u64;
    draft.render_ns = phases.render.as_nanos() as u64;
    draft.total_ns = elapsed.as_nanos() as u64;
    let json = match result {
        Ok(json) => {
            state.requests_ok.fetch_add(1, Ordering::Relaxed);
            tpq_obs::incr("serve.request.ok", 1);
            json
        }
        Err(e) => {
            state.requests_failed.fetch_add(1, Ordering::Relaxed);
            tpq_obs::incr("serve.request.error", 1);
            draft.outcome = e.kind;
            e.to_json()
        }
    };
    (with_trace(json, trace), draft)
}

/// The admission decision for a request that observed `n_prev` requests
/// already in flight. `None` admits; `Some` is the typed shed error:
/// `overloaded` + `retry_after_ms` when the queue bound is exceeded, or
/// the armed `serve.shed` failpoint's `injected` error (the chaos
/// battery's way of forcing sheds without real overload).
pub(crate) fn admission_check(state: &ServerState, n_prev: usize) -> Option<ProtoError> {
    if let Err(e) = failpoint::hit("serve.shed") {
        state.shed_injected.fetch_add(1, Ordering::Relaxed);
        tpq_obs::incr("serve.shed.injected", 1);
        return Some(ProtoError::from_error(&e));
    }
    if n_prev >= state.config.queue_depth {
        state.shed_queue_full.fetch_add(1, Ordering::Relaxed);
        tpq_obs::incr("serve.shed.queue_full", 1);
        // Back off proportionally to how far past the bound we are,
        // capped: deep overload should not translate into minutes-long
        // client sleeps.
        let excess = (n_prev - state.config.queue_depth) as u64;
        let retry_after_ms = 25u64.saturating_mul(excess + 1).min(1_000);
        return Some(ProtoError::overloaded_retry_after(
            format!(
                "admission queue full ({} requests in flight, bound {})",
                n_prev, state.config.queue_depth
            ),
            retry_after_ms,
        ));
    }
    None
}

/// Append the request's trace id to a response object (success and error
/// responses alike), leaving the established inner shapes untouched.
fn with_trace(json: Json, trace: u64) -> Json {
    match json {
        Json::Object(mut members) => {
            members.push(("trace".to_owned(), Json::Str(tpq_obs::trace_hex(trace))));
            Json::Object(members)
        }
        other => other,
    }
}

/// Write one slow-query log line when the request crossed the configured
/// threshold: trace id, total latency, per-phase breakdown and the
/// (truncated) request line, as one JSON object per line.
fn maybe_log_slow(state: &ServerState, line: &str, trace: u64, elapsed: Duration, phases: &Phases) {
    let Some(slow_ms) = state.config.slow_ms else {
        return;
    };
    if elapsed.as_millis() < u128::from(slow_ms) {
        return;
    }
    tpq_obs::incr("serve.request.slow", 1);
    const MAX_LOGGED_QUERY: usize = 512;
    let truncated: String = line.chars().take(MAX_LOGGED_QUERY).collect();
    let entry = Json::object(vec![
        ("trace", Json::Str(tpq_obs::trace_hex(trace))),
        ("elapsed_ms", Json::Float(elapsed.as_secs_f64() * 1e3)),
        (
            "phases_us",
            Json::object(vec![
                ("parse", Json::Float(phases.parse.as_secs_f64() * 1e6)),
                ("minimize", Json::Float(phases.minimize.as_secs_f64() * 1e6)),
                ("render", Json::Float(phases.render.as_secs_f64() * 1e6)),
            ]),
        ),
        ("request", Json::Str(truncated)),
    ])
    .to_string_compact();
    match &state.slow_log {
        Some(file) => {
            let mut file = file.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            let _ = writeln!(file, "{entry}");
        }
        None => eprintln!("tpq-serve slow query: {entry}"),
    }
}

/// Parse, guard and minimize one request, recording the per-phase
/// breakdown into `phases`. The minimization itself runs on the worker
/// pool (`run_inline = false`) or on the calling thread behind the same
/// failpoint-and-shield contract (`run_inline = true`; see
/// [`run_shielded`]).
fn minimize_request(
    state: &ServerState,
    line: &str,
    t0: Instant,
    phases: &mut Phases,
    run_inline: bool,
    draft: &mut FlightDraft,
) -> Result<Json, ProtoError> {
    let t_parse = Instant::now();
    let req = Request::parse(line)?;
    // Parse constraints before the query, under the process-wide
    // interner, so equal constraint text always produces equal
    // constraint sets (the shared-engine and memo-cache key).
    let (query, ics) = {
        let mut types = lock_types();
        let ics = parse_constraints(&req.constraints, &mut types)
            .map_err(|e| ProtoError::from_error(&e))?;
        let query = match req.syntax {
            Syntax::Dsl => parse_pattern(&req.query, &mut types),
            Syntax::Xpath => parse_xpath(&req.query, &mut types),
        }
        .map_err(|e| ProtoError::from_error(&e))?;
        (query, ics)
    };
    phases.parse = t_parse.elapsed();
    let strategy = req.strategy.unwrap_or(state.config.strategy);
    draft.strategy = strategy_name(strategy);
    let guard = {
        let mut builder = Guard::builder();
        if let Some(ms) = effective_limit(req.deadline_ms, state.config.deadline_ms) {
            builder = builder.deadline_ms(ms);
        }
        if let Some(steps) = effective_limit(req.budget, state.config.budget) {
            builder = builder.budget(steps);
        }
        builder.build()
    };
    let engine = shared_engine(&ics, strategy);
    let input_nodes = query.size();
    // Trace identity is thread-local: carry the request's id onto
    // whichever pool worker executes the minimization.
    let trace = tpq_obs::current_trace();
    let t_min = Instant::now();
    let work = move || {
        let _scope = tpq_obs::trace_scope(trace);
        engine.minimize_cached_guarded(&query, &guard)
    };
    let out = if run_inline { run_shielded(work) } else { state.pool.run(work) }
        .map_err(|e| ProtoError::from_error(&e))?;
    phases.minimize = t_min.elapsed();
    draft.cache_hit = out.cache_hit;
    let t_render = Instant::now();
    let minimized = to_dsl(&out.pattern, &lock_types());
    phases.render = t_render.elapsed();
    Ok(success_response(
        minimized,
        input_nodes,
        out.pattern.size(),
        out.cache_hit,
        &out.stats,
        t0.elapsed(),
    ))
}

/// Run `f` on the calling thread under exactly the contract a
/// [`TaskPool`] worker would apply: the `pool.task` failpoint fires
/// first, inside a `catch_unwind` shield, so an injected or genuine
/// panic becomes an [`Error::WorkerPanic`] instead of unwinding the
/// caller. The reactor executes minimizations through this after
/// [`TaskPool::spawn`] has already moved them onto a worker (a nested
/// `pool.run` would deadlock a single-worker pool).
///
/// [`Error::WorkerPanic`]: tpq_base::Error::WorkerPanic
fn run_shielded<R, F>(f: F) -> tpq_base::Result<R>
where
    F: FnOnce() -> tpq_base::Result<R>,
{
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        failpoint::hit("pool.task")?;
        f()
    })) {
        Ok(result) => result,
        Err(payload) => {
            Err(tpq_base::Error::WorkerPanic { message: tpq_base::pool::panic_message(payload) })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_limit_takes_the_tighter_bound() {
        assert_eq!(effective_limit(None, None), None);
        assert_eq!(effective_limit(Some(5), None), Some(5));
        assert_eq!(effective_limit(None, Some(7)), Some(7));
        assert_eq!(effective_limit(Some(5), Some(7)), Some(5));
        assert_eq!(effective_limit(Some(9), Some(7)), Some(7), "server ceiling wins");
    }

    #[test]
    fn default_config_is_a_loopback_dev_server() {
        let c = ServeConfig::default();
        assert!(c.addr.starts_with("127.0.0.1"));
        assert!(!c.handle_signals);
        assert_eq!(c.max_line_bytes, DEFAULT_MAX_LINE_BYTES);
    }
}
