//! Graceful-shutdown signals (SIGINT / SIGTERM) without a libc crate.
//!
//! `std` already links the platform C library, so on Unix we declare the
//! two symbols we need ourselves. The handler only performs an atomic
//! store (the short list of async-signal-safe operations), and the serve
//! accept loop polls the flag. On non-Unix platforms installation is a
//! no-op and shutdown is driven by [`ServeHandle::shutdown`] or the
//! `SHUTDOWN` protocol verb.
//!
//! [`ServeHandle::shutdown`]: crate::ServeHandle::shutdown

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

/// Has a shutdown signal been delivered since [`install`] was called?
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::Acquire)
}

#[cfg(unix)]
mod imp {
    use super::TRIGGERED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        TRIGGERED.store(true, Ordering::Release);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Install the SIGINT/SIGTERM handlers (idempotent; no-op off Unix).
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_idempotent() {
        install();
        install();
        let _ = triggered(); // flag is readable after installation
    }
}
