//! Operator signals (SIGINT / SIGTERM / SIGUSR1) without a libc crate.
//!
//! `std` already links the platform C library, so on Unix we declare the
//! symbols we need ourselves. Handlers only perform an atomic store (the
//! short list of async-signal-safe operations), and the serve loops poll
//! the flags: SIGINT/SIGTERM request graceful shutdown, SIGUSR1 requests
//! a flight-recorder dump ([`take_usr1`]). On non-Unix platforms
//! installation is a no-op and shutdown is driven by
//! [`ServeHandle::shutdown`] or the `SHUTDOWN` protocol verb.
//!
//! [`ServeHandle::shutdown`]: crate::ServeHandle::shutdown

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);
static USR1_PENDING: AtomicBool = AtomicBool::new(false);

/// Has a shutdown signal been delivered since [`install`] was called?
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::Acquire)
}

/// Consume a pending SIGUSR1 delivery, if any. SIGUSR1 is the operator's
/// "dump the flight recorder now" knob: the serve loops poll this and
/// write the black box to the configured `--flight-dump` path. Clearing
/// on read means one signal produces one dump.
pub fn take_usr1() -> bool {
    USR1_PENDING.swap(false, Ordering::AcqRel)
}

#[cfg(unix)]
mod imp {
    use super::{TRIGGERED, USR1_PENDING};
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    #[cfg(any(target_os = "linux", target_os = "android"))]
    const SIGUSR1: i32 = 10;
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    const SIGUSR1: i32 = 30;

    extern "C" fn on_signal(_signum: i32) {
        TRIGGERED.store(true, Ordering::Release);
    }

    extern "C" fn on_usr1(_signum: i32) {
        USR1_PENDING.store(true, Ordering::Release);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
            signal(SIGUSR1, on_usr1);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Install the SIGINT/SIGTERM handlers (idempotent; no-op off Unix).
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_idempotent() {
        install();
        install();
        let _ = triggered(); // flag is readable after installation
    }

    #[test]
    fn take_usr1_consumes_the_pending_flag() {
        // Simulate a delivery by storing directly (raising a real signal
        // would race with other tests in this process).
        USR1_PENDING.store(true, Ordering::Release);
        assert!(take_usr1());
        assert!(!take_usr1(), "one delivery yields exactly one dump");
    }
}
