//! `tpq-serve` — a long-running tree-pattern-query minimization service.
//!
//! This crate turns the one-shot minimization pipeline of [`tpq_core`]
//! into a resident server: a TCP listener speaking a newline-delimited
//! JSON protocol (one request line in, one response line out; see
//! [`proto`]), multiplexing every connection onto a shared
//! [`TaskPool`](tpq_base::TaskPool) of minimization workers. On Linux
//! the socket side is a single-threaded epoll reactor ([`reactor`]) —
//! edge-triggered nonblocking I/O, request pipelining, bounded write
//! queues with backpressure — with a thread-per-connection engine behind
//! the `--threaded` flag (and as the only engine off Linux).
//!
//! Because minimal tree pattern queries are unique up to isomorphism
//! (Theorem 5.1 of *Minimization of Tree Pattern Queries*), answers are
//! memoizable: the server routes all requests with the same constraint
//! set and strategy to one process-wide [`BatchMinimizer`] engine
//! ([`tpq_core::shared_engine`]), so a hot query is answered from the
//! canonical-pattern cache without re-running the chase.
//!
//! Robustness properties, each covered by an integration test:
//!
//! * a worker panic while minimizing one request answers *that* request
//!   with `{"error":{"kind":"panic",…}}` and affects nothing else;
//! * per-request deadlines and step budgets ([`tpq_base::Guard`]) trip as
//!   `kind: "budget"` errors, again per-request;
//! * oversized or malformed lines are answered with `bad-request`;
//! * shutdown (SIGTERM / ctrl-c / the `SHUTDOWN` verb /
//!   [`ServeHandle::shutdown`]) stops accepting, drains in-flight
//!   requests — flushing every already-buffered line with a typed
//!   `overloaded` error rather than dropping it — and joins the pool;
//! * a bounded admission queue sheds excess *requests* (typed
//!   `overloaded` errors carrying a `retry_after_ms` hint) before they
//!   consume pool slots, distinct from the accept-time connection gate;
//! * the cache layers can be snapshotted on drain and restored at the
//!   next boot ([`snapshot`]), so a restarted server answers its hot
//!   queries from the memo immediately instead of re-minimizing;
//! * [`client`] implements the matching retry discipline: exponential
//!   backoff with deterministic jitter, honoring the server's
//!   `retry_after_ms` hints, retrying only `overloaded` / `injected`
//!   failures under a propagated deadline.
//!
//! # Example
//!
//! Start a server on an ephemeral port and round-trip one request:
//!
//! ```
//! use std::io::{BufRead, BufReader, Write};
//! use tpq_serve::{ServeConfig, Server};
//!
//! let server = Server::bind(ServeConfig {
//!     addr: "127.0.0.1:0".into(),
//!     ..ServeConfig::default()
//! }).unwrap();
//! let addr = server.local_addr().unwrap();
//! let handle = server.handle();
//! let thread = std::thread::spawn(move || server.run().unwrap());
//!
//! let mut conn = std::net::TcpStream::connect(addr).unwrap();
//! writeln!(conn, r#"{{"query": "Book*[/Title][/Publisher]", "constraints": "Book -> Publisher"}}"#)
//!     .unwrap();
//! let mut line = String::new();
//! BufReader::new(conn.try_clone().unwrap()).read_line(&mut line).unwrap();
//! assert!(line.contains("\"minimized\""));
//!
//! handle.shutdown();
//! let summary = thread.join().unwrap();
//! assert_eq!(summary.requests_ok, 1);
//! ```
//!
//! [`BatchMinimizer`]: tpq_core::BatchMinimizer

#![warn(missing_docs)]

pub mod client;
pub mod proto;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod server;
pub mod signal;
pub mod snapshot;
pub mod top;

pub use client::{Client, ClientError, QueryOutcome, RetryPolicy};
pub use proto::{ProtoError, Request, Syntax, DEFAULT_MAX_LINE_BYTES};
pub use server::{global_types, RestoreStatus, ServeConfig, ServeHandle, ServeSummary, Server};
pub use snapshot::{restore_snapshot, write_snapshot, RestoreError, SnapshotStats};
pub use top::TopConfig;
