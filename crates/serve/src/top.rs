//! `tpq top` — a live terminal dashboard over a running `tpq serve`.
//!
//! Plain TCP and plain ANSI: the dashboard polls the server's own
//! protocol (`STATS` for the totals and the rolling window, `TIMELINE`
//! for recent per-request flight records) at a fixed interval and
//! redraws one frame — RED rates, windowed latency quantiles, inflight
//! and connection gauges, cache-hit rate over the sampled records,
//! shed / backpressure counts, and the slowest recent requests with
//! their per-phase breakdown. No terminal library, no raw mode: live
//! mode clears the screen with the two classic escape sequences and a
//! ctrl-c ends it like any foreground process.
//!
//! `--once` renders a single frame with no escape codes and exits —
//! every line has a stable `key:` prefix, so scripts and CI smoke jobs
//! can assert on the frame (`timeline: N records sampled`, `window:`,
//! …) without scraping a moving TUI.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;
use tpq_base::Json;

/// Tunables for [`run`]. `Default` polls loopback once a second.
#[derive(Debug, Clone)]
pub struct TopConfig {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Redraw interval in milliseconds (live mode).
    pub interval_ms: u64,
    /// Render one plain frame (no escape codes) and exit.
    pub once: bool,
    /// How many flight records to sample per frame (`TIMELINE n`).
    pub timeline: usize,
}

impl Default for TopConfig {
    fn default() -> TopConfig {
        TopConfig {
            addr: "127.0.0.1:7878".to_owned(),
            interval_ms: 1_000,
            once: false,
            timeline: 50,
        }
    }
}

/// One polled snapshot: the parsed `STATS` object and the sampled
/// `TIMELINE` flight records (oldest first, as the server sends them).
struct Sample {
    stats: Json,
    timeline: Vec<Json>,
}

/// Poll `STATS` + `TIMELINE` over one short-lived connection.
fn poll(config: &TopConfig) -> std::io::Result<Sample> {
    let stream = TcpStream::connect(&config.addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_nodelay(true).ok();
    let mut conn = BufReader::new(stream);
    writeln!(conn.get_mut(), "STATS")?;
    let mut line = String::new();
    conn.read_line(&mut line)?;
    let stats = Json::parse(line.trim_end())
        .map_err(|e| std::io::Error::other(format!("bad STATS response: {e}")))?;
    writeln!(conn.get_mut(), "TIMELINE {}", config.timeline.max(1))?;
    let mut timeline = Vec::new();
    loop {
        let mut line = String::new();
        if conn.read_line(&mut line)? == 0 {
            return Err(std::io::Error::other("connection closed mid-TIMELINE"));
        }
        let line = line.trim_end();
        if line == "# EOF" {
            break;
        }
        if let Ok(record) = Json::parse(line) {
            timeline.push(record);
        }
    }
    Ok(Sample { stats, timeline })
}

fn int_at(json: &Json, path: &[&str]) -> i64 {
    let mut node = json;
    for field in path {
        match node.get(field) {
            Some(next) => node = next,
            None => return 0,
        }
    }
    node.as_i64().unwrap_or(0)
}

fn float_at(json: &Json, path: &[&str]) -> f64 {
    let mut node = json;
    for field in path {
        match node.get(field) {
            Some(next) => node = next,
            None => return 0.0,
        }
    }
    node.as_f64().unwrap_or(0.0)
}

/// Nanoseconds as a human-scaled duration (`412us`, `3.1ms`, `2.4s`).
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.0}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Render one dashboard frame from a polled sample. Pure — all the
/// formatting (and nothing else) lives here, so tests and `--once`
/// exercise the exact frame the live loop draws.
fn render_frame(addr: &str, stats: &Json, timeline: &[Json]) -> String {
    let mut out = String::new();
    let uptime_s = int_at(stats, &["uptime_ms"]) as f64 / 1e3;
    out.push_str(&format!("tpq top — {addr} — up {uptime_s:.0}s\n"));

    let seconds = int_at(stats, &["window", "seconds"]);
    out.push_str(&format!(
        "window: {:.1} req/s  {:.2} err/s  {:.2} shed/s  (last {seconds}s)\n",
        float_at(stats, &["window", "request_rate"]),
        float_at(stats, &["window", "error_rate"]),
        float_at(stats, &["window", "shed_rate"]),
    ));
    out.push_str(&format!(
        "latency: p50 {}  p95 {}  p99 {}\n",
        fmt_ns(float_at(stats, &["window", "p50_us"]) * 1e3),
        fmt_ns(float_at(stats, &["window", "p95_us"]) * 1e3),
        fmt_ns(float_at(stats, &["window", "p99_us"]) * 1e3),
    ));
    if let Some(Json::Object(kinds)) = stats.get("window").and_then(|w| w.get("errors")) {
        if !kinds.is_empty() {
            let list: Vec<String> =
                kinds.iter().map(|(k, n)| format!("{k}={}", n.as_i64().unwrap_or(0))).collect();
            out.push_str(&format!("errors: {}\n", list.join("  ")));
        }
    }

    out.push_str(&format!(
        "inflight: {}  connections: {} active / {} accepted / {} refused  queue limit: {}\n",
        int_at(stats, &["requests", "inflight"]),
        int_at(stats, &["connections", "active"]),
        int_at(stats, &["connections", "accepted"]),
        int_at(stats, &["connections", "refused"]),
        int_at(stats, &["shed", "queue_limit"]),
    ));

    out.push_str(&format!(
        "requests: {} ok  {} failed  {} shed ({} queue-full, {} injected, {} drain)\n",
        int_at(stats, &["requests", "ok"]),
        int_at(stats, &["requests", "error"]),
        int_at(stats, &["shed", "total"]),
        int_at(stats, &["shed", "queue_full"]),
        int_at(stats, &["shed", "injected"]),
        int_at(stats, &["shed", "drain"]),
    ));

    let sampled = timeline.len();
    let hits = timeline
        .iter()
        .filter(|r| r.get("cache_hit").and_then(Json::as_bool) == Some(true))
        .count();
    let stalls = timeline
        .iter()
        .filter(|r| r.get("backpressure").and_then(Json::as_bool) == Some(true))
        .count();
    let hit_pct = if sampled == 0 { 0.0 } else { hits as f64 * 100.0 / sampled as f64 };
    out.push_str(&format!(
        "cache: {hits}/{sampled} sampled hits ({hit_pct:.0}%)  backpressure: {stalls} sampled\n"
    ));
    out.push_str(&format!(
        "flight: {} recorded  {} dropped  capacity {}\n",
        int_at(stats, &["flight", "recorded"]),
        int_at(stats, &["flight", "dropped"]),
        int_at(stats, &["flight", "capacity"]),
    ));
    out.push_str(&format!("timeline: {sampled} records sampled\n"));

    // Slowest sampled requests, with the per-phase story for each.
    let mut slowest: Vec<&Json> = timeline.iter().collect();
    slowest.sort_by_key(|r| std::cmp::Reverse(int_at(r, &["total_ns"])));
    for record in slowest.into_iter().take(5) {
        let trace = record
            .get("trace")
            .and_then(Json::as_str)
            .map_or_else(|| "-".repeat(16), str::to_owned);
        out.push_str(&format!(
            "  slow: trace={trace} strategy={} outcome={} total={} queue={} parse={} minimize={} render={} bytes={}/{}\n",
            record.get("strategy").and_then(Json::as_str).unwrap_or("-"),
            record.get("outcome").and_then(Json::as_str).unwrap_or("?"),
            fmt_ns(int_at(record, &["total_ns"]) as f64),
            fmt_ns(int_at(record, &["phases_ns", "queue"]) as f64),
            fmt_ns(int_at(record, &["phases_ns", "parse"]) as f64),
            fmt_ns(int_at(record, &["phases_ns", "minimize"]) as f64),
            fmt_ns(int_at(record, &["phases_ns", "render"]) as f64),
            int_at(record, &["bytes_in"]),
            int_at(record, &["bytes_out"]),
        ));
    }
    out
}

/// Run the dashboard against `config.addr`, writing frames to `out`.
///
/// With [`TopConfig::once`] set this polls once, writes one plain frame,
/// and returns. Otherwise it loops — clear screen, draw, sleep — until
/// the server goes away (the connection error is returned so the exit
/// says why) or the process is interrupted.
pub fn run(config: &TopConfig, out: &mut dyn Write) -> std::io::Result<()> {
    loop {
        let sample = poll(config)?;
        let frame = render_frame(&config.addr, &sample.stats, &sample.timeline);
        if config.once {
            out.write_all(frame.as_bytes())?;
            out.flush()?;
            return Ok(());
        }
        // Clear + home, then the frame; one write keeps flicker down.
        let mut painted = String::with_capacity(frame.len() + 8);
        painted.push_str("\x1b[2J\x1b[H");
        painted.push_str(&frame);
        painted.push_str(&format!("\n(poll every {}ms, ctrl-c to quit)\n", config.interval_ms));
        out.write_all(painted.as_bytes())?;
        out.flush()?;
        std::thread::sleep(Duration::from_millis(config.interval_ms.max(50)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_stats() -> Json {
        Json::parse(
            r#"{"uptime_ms": 12000,
                "connections": {"active": 2, "accepted": 9, "refused": 1},
                "requests": {"ok": 90, "error": 3, "inflight": 1},
                "shed": {"queue_full": 2, "injected": 0, "drain": 0, "total": 2, "queue_limit": 256},
                "window": {"seconds": 12, "requests": 93, "ok": 90,
                           "errors": {"parse": 2, "overloaded": 1}, "shed": 1,
                           "request_rate": 7.75, "error_rate": 0.25, "shed_rate": 0.08,
                           "p50_us": 420.0, "p95_us": 1300.0, "p99_us": 2500.0},
                "flight": {"recorded": 93, "dropped": 0, "capacity": 1024}}"#,
        )
        .unwrap()
    }

    fn fake_record(total_ns: i64, cache_hit: bool) -> Json {
        Json::parse(&format!(
            r#"{{"seq": 1, "trace": "00000000000000ff", "strategy": "full",
                 "outcome": "ok", "total_ns": {total_ns},
                 "phases_ns": {{"queue": 100, "parse": 2000, "minimize": 5000, "render": 300}},
                 "bytes_in": 48, "bytes_out": 120,
                 "cache_hit": {cache_hit}, "shed": false, "backpressure": false}}"#
        ))
        .unwrap()
    }

    #[test]
    fn frame_has_stable_machine_checkable_lines() {
        let timeline = vec![fake_record(8_000, false), fake_record(60_000, true)];
        let frame = render_frame("127.0.0.1:9", &fake_stats(), &timeline);
        assert!(frame.starts_with("tpq top — 127.0.0.1:9 — up 12s\n"), "{frame}");
        assert!(
            frame.contains("window: 7.8 req/s  0.25 err/s  0.08 shed/s  (last 12s)"),
            "{frame}"
        );
        assert!(frame.contains("latency: p50 420us  p95 1.3ms  p99 2.5ms"), "{frame}");
        assert!(frame.contains("errors: parse=2  overloaded=1"), "{frame}");
        assert!(frame.contains("requests: 90 ok  3 failed  2 shed"), "{frame}");
        assert!(frame.contains("cache: 1/2 sampled hits (50%)"), "{frame}");
        assert!(frame.contains("flight: 93 recorded  0 dropped  capacity 1024"), "{frame}");
        assert!(frame.contains("timeline: 2 records sampled"), "{frame}");
        assert!(!frame.contains('\x1b'), "a plain frame carries no escape codes");
    }

    #[test]
    fn slowest_requests_lead_the_slow_list() {
        let timeline = vec![fake_record(1_000, false), fake_record(9_000_000, false)];
        let frame = render_frame("x", &fake_stats(), &timeline);
        let first_slow = frame.lines().find(|l| l.starts_with("  slow:")).expect("slow lines");
        assert!(first_slow.contains("total=9.0ms"), "{first_slow}");
        assert!(first_slow.contains("minimize=5us"), "{first_slow}");
    }

    #[test]
    fn empty_sample_renders_without_dividing_by_zero() {
        let frame = render_frame("x", &fake_stats(), &[]);
        assert!(frame.contains("cache: 0/0 sampled hits (0%)"), "{frame}");
        assert!(frame.contains("timeline: 0 records sampled"), "{frame}");
        assert!(!frame.lines().any(|l| l.starts_with("  slow:")), "{frame}");
    }
}
