//! A retrying NDJSON client for `tpq serve` — the other half of the
//! server's load-shedding contract.
//!
//! The server refuses work in exactly two retryable shapes: a typed
//! `overloaded` error (admission-queue shed, connection-gate refusal,
//! drain flush) optionally carrying a `retry_after_ms` hint, and an
//! `injected` error from an armed failpoint. [`Client`] retries **only
//! those** (plus transport failures, by reconnecting): `invalid`,
//! `budget`, `bad-request` and friends are deterministic verdicts about
//! the request itself, and retrying them would just re-lose.
//!
//! Backoff is exponential with **equal jitter** from a seeded
//! [`SmallRng`], so a retry schedule is reproducible run-to-run — the
//! chaos battery depends on that. When the server sent a
//! `retry_after_ms` hint, the hint wins over the computed backoff.
//!
//! Deadlines propagate: [`RetryPolicy::deadline_ms`] bounds the *whole*
//! attempt sequence, and each attempt's request carries the remaining
//! budget as its per-request `deadline_ms`, so a server-side guard never
//! outlives the client that asked.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use tpq_base::{Json, SmallRng};

use crate::proto;

/// How [`Client`] retries refused or failed requests.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries *after* the first attempt (0 = try once).
    pub retries: u32,
    /// Base backoff before the first retry; doubles per retry.
    pub backoff_ms: u64,
    /// Ceiling on any single computed backoff (hints are capped too).
    pub max_backoff_ms: u64,
    /// Budget for the whole attempt sequence, propagated to the server
    /// as each attempt's per-request `deadline_ms`. `None` = unbounded.
    pub deadline_ms: Option<u64>,
    /// Seed for the jitter stream — same seed, same retry schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 4,
            backoff_ms: 25,
            max_backoff_ms: 1_000,
            deadline_ms: None,
            seed: 0,
        }
    }
}

/// A successful minimization, plus how hard the client had to work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// The minimized query, rendered in the DSL.
    pub minimized: String,
    /// Whether the server answered from its canonical-pattern memo.
    pub cache_hit: bool,
    /// Server-side microseconds spent minimizing.
    pub micros: u64,
    /// Trace id hex, when the server attached one.
    pub trace: Option<String>,
    /// Attempts consumed, including the successful one (1 = no retries).
    pub attempts: u32,
}

/// A request that failed past the retry budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientError {
    /// The server's error kind (`overloaded`, `invalid`, …), or the
    /// client-side kinds `transport` (connection failed past retries)
    /// and `deadline` (the policy deadline ran out between attempts).
    pub kind: String,
    /// Human-readable detail from the last attempt.
    pub message: String,
    /// Attempts consumed before giving up.
    pub attempts: u32,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} after {} attempt(s): {}", self.kind, self.attempts, self.message)
    }
}

impl std::error::Error for ClientError {}

/// The delay before retry number `attempt` (0-based): the server's
/// `retry_after_ms` hint when present, else exponential backoff with
/// equal jitter — half the doubled base deterministic, half drawn from
/// `rng`. Both halves respect [`RetryPolicy::max_backoff_ms`].
pub fn backoff_delay_ms(
    policy: &RetryPolicy,
    attempt: u32,
    hint_ms: Option<u64>,
    rng: &mut SmallRng,
) -> u64 {
    if let Some(hint) = hint_ms {
        return hint.min(policy.max_backoff_ms);
    }
    let base = policy.backoff_ms.saturating_mul(1u64 << attempt.min(16)).min(policy.max_backoff_ms);
    let half = base / 2;
    if half == 0 {
        return base;
    }
    half + rng.gen_range(0..half + 1)
}

/// A lazily connecting NDJSON client with the retry discipline above.
///
/// One [`Client`] holds at most one connection and reuses it across
/// queries; a transport error drops it and the next attempt reconnects.
/// Not `Sync` — use one client per thread (the chaos battery does).
pub struct Client {
    addr: String,
    policy: RetryPolicy,
    rng: SmallRng,
    conn: Option<BufReader<TcpStream>>,
}

impl Client {
    /// A client for the server at `addr` (e.g. `127.0.0.1:7171`).
    /// Connects on first use, not here.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> Client {
        let rng = SmallRng::seed_from_u64(policy.seed);
        Client { addr: addr.into(), policy, rng, conn: None }
    }

    /// Minimize one request, retrying per the policy. `request` is the
    /// protocol's request object (`{"query": …, "constraints": …, …}`);
    /// when the policy has a deadline, each attempt's copy carries the
    /// *remaining* budget as its `deadline_ms`, overriding any caller
    /// value.
    pub fn query(&mut self, request: &Json) -> Result<QueryOutcome, ClientError> {
        let started = Instant::now();
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let line = match self.remaining_ms(started, attempts) {
                Err(e) => return Err(e),
                Ok(Some(remaining)) => {
                    let mut members: Vec<(&str, Json)> = Vec::new();
                    if let Json::Object(pairs) = request {
                        for (k, v) in pairs {
                            if k != "deadline_ms" {
                                members.push((k.as_str(), v.clone()));
                            }
                        }
                    }
                    members.push(("deadline_ms", Json::Int(remaining as i64)));
                    Json::object(members).to_string_compact()
                }
                Ok(None) => request.to_string_compact(),
            };

            let (kind, message, hint) = match self.round_trip(&line) {
                Ok(response) => {
                    if let Some(minimized) = response.get("minimized").and_then(Json::as_str) {
                        let stats = response.get("stats");
                        // micros is rendered as a JSON float; as_f64
                        // accepts both number variants.
                        let micros = stats
                            .and_then(|s| s.get("micros"))
                            .and_then(Json::as_f64)
                            .unwrap_or(0.0);
                        return Ok(QueryOutcome {
                            minimized: minimized.to_owned(),
                            cache_hit: stats
                                .and_then(|s| s.get("cache_hit"))
                                .and_then(Json::as_bool)
                                .unwrap_or(false),
                            micros: micros.max(0.0) as u64,
                            trace: response.get("trace").and_then(Json::as_str).map(str::to_owned),
                            attempts,
                        });
                    }
                    let error = response.get("error");
                    let field = |name: &str| {
                        error.and_then(|e| e.get(name)).and_then(Json::as_str).map(str::to_owned)
                    };
                    let kind = field("kind").unwrap_or_else(|| "transport".to_owned());
                    let message =
                        field("message").unwrap_or_else(|| "malformed server response".to_owned());
                    let hint = error
                        .and_then(|e| e.get("retry_after_ms"))
                        .and_then(Json::as_i64)
                        .map(|ms| ms.max(0) as u64);
                    if !proto::ProtoError::is_retryable_kind(&kind) {
                        return Err(ClientError { kind, message, attempts });
                    }
                    (kind, message, hint)
                }
                // Transport errors (refused accept, reset, EOF) always
                // reconnect-and-retry: the connection gate closes
                // without a response line, and that refusal is exactly
                // the overload signal retries exist for.
                Err(e) => ("transport".to_owned(), e.to_string(), None),
            };

            if attempts > self.policy.retries {
                return Err(ClientError { kind, message, attempts });
            }
            let mut delay = backoff_delay_ms(&self.policy, attempts - 1, hint, &mut self.rng);
            if let Some(total) = self.policy.deadline_ms {
                let left = total.saturating_sub(started.elapsed().as_millis() as u64);
                if left == 0 {
                    return Err(ClientError {
                        kind: "deadline".to_owned(),
                        message: format!("deadline exhausted; last error: {kind}: {message}"),
                        attempts,
                    });
                }
                delay = delay.min(left);
            }
            std::thread::sleep(Duration::from_millis(delay));
        }
    }

    /// Remaining deadline budget before this attempt, or a `deadline`
    /// error when it is already gone.
    fn remaining_ms(&self, started: Instant, attempts: u32) -> Result<Option<u64>, ClientError> {
        match self.policy.deadline_ms {
            None => Ok(None),
            Some(total) => {
                let left = total.saturating_sub(started.elapsed().as_millis() as u64);
                if left == 0 {
                    Err(ClientError {
                        kind: "deadline".to_owned(),
                        message: format!("deadline of {total}ms exhausted"),
                        attempts,
                    })
                } else {
                    Ok(Some(left))
                }
            }
        }
    }

    /// Send one line, read one line. Any failure drops the connection so
    /// the next attempt dials fresh.
    fn round_trip(&mut self, line: &str) -> std::io::Result<Json> {
        let result = (|| {
            if self.conn.is_none() {
                let stream = TcpStream::connect(&self.addr)?;
                stream.set_nodelay(true)?;
                self.conn = Some(BufReader::new(stream));
            }
            let reader = self.conn.as_mut().expect("connection just ensured");
            reader.get_mut().write_all(line.as_bytes())?;
            reader.get_mut().write_all(b"\n")?;
            let mut response = String::new();
            if reader.read_line(&mut response)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            Json::parse(response.trim_end())
                .map_err(|e| std::io::Error::other(format!("unparseable response: {e}")))
        })();
        if result.is_err() {
            self.conn = None;
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy { retries: 3, backoff_ms: 40, max_backoff_ms: 200, deadline_ms: None, seed: 7 }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = policy();
        let mut rng = SmallRng::seed_from_u64(p.seed);
        // Equal jitter: delay for attempt n lies in [base/2, base] with
        // base = min(40 << n, 200).
        for (attempt, base) in [(0u32, 40u64), (1, 80), (2, 160), (3, 200), (10, 200)] {
            let d = backoff_delay_ms(&p, attempt, None, &mut rng);
            assert!(
                d >= base / 2 && d <= base,
                "attempt {attempt}: {d} outside [{}..{base}]",
                base / 2
            );
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let p = policy();
        let seq = |seed: u64| -> Vec<u64> {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..5).map(|a| backoff_delay_ms(&p, a, None, &mut rng)).collect()
        };
        assert_eq!(seq(7), seq(7));
        assert_ne!(seq(7), seq(8), "different seeds should jitter differently");
    }

    #[test]
    fn server_hint_overrides_computed_backoff_but_not_the_cap() {
        let p = policy();
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(backoff_delay_ms(&p, 0, Some(75), &mut rng), 75);
        assert_eq!(backoff_delay_ms(&p, 0, Some(10_000), &mut rng), p.max_backoff_ms);
    }

    #[test]
    fn zero_base_backoff_never_panics() {
        let p = RetryPolicy { backoff_ms: 0, ..policy() };
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(backoff_delay_ms(&p, 0, None, &mut rng), 0);
        assert_eq!(backoff_delay_ms(&p, 9, None, &mut rng), 0);
    }

    #[test]
    fn exhausted_deadline_is_a_client_side_error() {
        // Port 1 refuses immediately, so with an already-zero deadline the
        // client must fail fast with kind "deadline", never hanging.
        let mut client =
            Client::new("127.0.0.1:1", RetryPolicy { deadline_ms: Some(0), ..policy() });
        let req = Json::object(vec![("query", Json::Str("A*".into()))]);
        let err = client.query(&req).unwrap_err();
        assert_eq!(err.kind, "deadline");
    }
}
