//! The epoll event-loop engine behind `tpq serve` (Linux default).
//!
//! One thread owns every socket. An edge-triggered
//! [`Epoll`] instance multiplexes the listener, an
//! [`EventFd`] wakeup, and one nonblocking stream
//! per connection; CPU-bound minimization never runs on this thread —
//! admitted requests are handed to the shared
//! [`TaskPool`](tpq_base::TaskPool) with
//! [`spawn`](tpq_base::TaskPool::spawn), and finished responses re-enter
//! the loop through a completion queue plus an eventfd signal, so pool
//! workers never touch a socket.
//!
//! ```text
//!                         ┌───────────────────────────┐
//!   clients ──connect──▶  │       epoll_wait          │ ◀── eventfd ──┐
//!              accept     │  (listener, conns, wake)  │               │
//!                         └─────┬──────────────┬──────┘               │
//!                    readable   │              │ writable             │
//!                         ┌─────▼─────┐  ┌─────▼─────┐        ┌───────┴──────┐
//!                         │ per-conn  │  │ write     │        │ completion   │
//!                         │ line FSM  │  │ queues    │        │ queue (Mutex)│
//!                         └─────┬─────┘  └───────────┘        └───────▲──────┘
//!                      JSON req │ verbs answered inline               │
//!                         ┌─────▼─────────────────────────────────────┴──┐
//!                         │        TaskPool (minimization workers)       │
//!                         └──────────────────────────────────────────────┘
//! ```
//!
//! Per-connection state machine properties:
//!
//! * **Pipelining** — every responding line gets a sequence number at
//!   parse time; completions land in a per-connection `BTreeMap` and are
//!   promoted to the write queue strictly in sequence, so responses come
//!   back in request order even when pool workers finish out of order.
//!   Blank lines answer nothing and therefore take no sequence number.
//! * **Backpressure** — a connection whose write queue crosses
//!   the high-water mark stops having its input processed (and read) until
//!   the queue drains below the low-water mark; the stall is counted
//!   (`serve.backpressure.stalls`) and never blocks other connections.
//! * **Bounded accept** — the `max_conns` gate and the `queue_depth`
//!   admission check (with its `retry_after_ms` sheds) are the same code
//!   the threaded engine runs, in [`crate::server`].
//! * **Drain** — shutdown (verb, handle, or signal) stops the accept
//!   path, answers every buffered complete line with a typed
//!   `overloaded` drain error, flushes outstanding completions bounded
//!   by `drain_ms`, and only then joins the pool.
//!
//! Observability: `serve.epoll.wakeups` counts loop iterations,
//! `serve.epoll.ready` is a value histogram of ready events per wakeup,
//! and `serve.backpressure.stalls` counts high-water pauses; see
//! `docs/OBSERVABILITY.md`.

use crate::proto::ProtoError;
use crate::server::{
    admission_check, dispatch_verb, drain_shed_error, finalize, maybe_dump_flight, process_request,
    record_flight, refuse_connection, FlightDraft, Flow, ServeSummary, ServerState,
};
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tpq_base::fd::{
    Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLET, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};
use tpq_base::Json;

/// Idle `epoll_wait` timeout: how often the loop re-checks the shutdown
/// flag with no I/O happening (mirrors the threaded engine's poll tick).
const POLL_MS: i32 = 25;
/// Event token of the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// Event token of the completion-queue eventfd.
const TOKEN_WAKEUP: u64 = 1;
/// Connection slot `s` registers with token `TOKEN_BASE + s`.
const TOKEN_BASE: u64 = 2;
/// Write-queue high-water mark: a connection holding this many unsent
/// bytes is paused (stops being read) until it drains.
const HIGH_WATER: usize = 256 * 1024;
/// Write-queue low-water mark: a paused connection resumes below this.
const LOW_WATER: usize = 64 * 1024;
/// Ready-event buffer handed to each `epoll_wait`.
const EVENTS_PER_WAIT: usize = 1024;

/// A finished response traveling from a pool worker back to the reactor.
struct Completion {
    slot: usize,
    /// Slot generation at submit time; a mismatch at delivery means the
    /// connection died and the slot was reused — the response is dropped.
    gen: u64,
    /// Position in the connection's response order.
    seq: u64,
    bytes: Vec<u8>,
    /// Flight-record draft finalized at delivery time, when the response
    /// size and the connection's backpressure state are both known.
    /// `None` for responses that were already recorded at submit time.
    draft: Option<FlightDraft>,
}

/// The worker-facing half of the reactor: a locked completion queue and
/// the eventfd that wakes `epoll_wait` when something lands in it.
struct Shared {
    completions: Mutex<Vec<Completion>>,
    wake: EventFd,
}

impl Shared {
    /// Deliver one completed response and wake the loop.
    fn push(&self, completion: Completion) {
        self.completions.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).push(completion);
        self.wake.signal();
    }
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    started: Instant,
    /// Bytes read but not yet framed into lines.
    read_buf: Vec<u8>,
    /// Rendered responses awaiting the socket, in final order.
    write_buf: Vec<u8>,
    /// Prefix of `write_buf` already written to the socket.
    written: usize,
    /// Next sequence number to assign to a responding line.
    next_seq: u64,
    /// Sequence number the write queue is waiting on.
    next_write: u64,
    /// Out-of-order completions parked until their turn.
    pending: BTreeMap<u64, Vec<u8>>,
    /// Requests handed to the pool and not yet completed.
    outstanding: usize,
    /// An edge-triggered read readiness we deferred (paused, or batch
    /// limit) and must act on before waiting for another edge.
    read_ready: bool,
    /// Write queue over high water: input processing is suspended.
    paused: bool,
    /// Peer closed its write half; close once everything is answered.
    saw_eof: bool,
    /// Close as soon as outstanding work and the write queue drain.
    close_after_flush: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            started: Instant::now(),
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            next_seq: 0,
            next_write: 0,
            pending: BTreeMap::new(),
            outstanding: 0,
            read_ready: false,
            paused: false,
            saw_eof: false,
            close_after_flush: false,
        }
    }

    /// Claim the next position in the response order.
    fn take_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Park a completed response, then promote everything now in order
    /// onto the write queue.
    fn enqueue(&mut self, seq: u64, bytes: Vec<u8>) {
        self.pending.insert(seq, bytes);
        while let Some(bytes) = self.pending.remove(&self.next_write) {
            self.write_buf.extend_from_slice(&bytes);
            self.next_write += 1;
        }
    }

    /// Unsent bytes currently queued.
    fn queued_bytes(&self) -> usize {
        self.write_buf.len() - self.written
    }

    /// Write queued bytes until done or the socket would block. A fatal
    /// socket error comes back as `Err` and closes the connection.
    fn flush(&mut self) -> std::io::Result<()> {
        while self.written < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.written..]) {
                Ok(0) => return Err(ErrorKind::WriteZero.into()),
                Ok(n) => self.written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if self.written == self.write_buf.len() {
            self.write_buf.clear();
            self.written = 0;
        } else if self.written > LOW_WATER {
            // Reclaim the flushed prefix so a long-lived slow reader
            // does not pin an ever-growing buffer.
            self.write_buf.drain(..self.written);
            self.written = 0;
        }
        Ok(())
    }
}

/// One JSON response rendered exactly as the threaded engine's
/// `writeln!` would frame it.
fn response_line(json: &Json) -> Vec<u8> {
    let mut bytes = json.to_string_compact().into_bytes();
    bytes.push(b'\n');
    bytes
}

/// The event loop proper: slot table, epoll instance, shared state.
struct Reactor {
    epoll: Epoll,
    shared: Arc<Shared>,
    state: Arc<ServerState>,
    slots: Vec<Option<Conn>>,
    /// Generation per slot, bumped on close so stale completions (and
    /// stale ready events) for a reused slot are recognized and dropped.
    gens: Vec<u64>,
    free: Vec<usize>,
}

/// Serve on `listener` with the epoll engine until shutdown, then drain
/// and summarize. Called by [`crate::server::Server::run`]; everything
/// protocol-visible (verbs, admission, tracing, counters) is shared with
/// the threaded engine.
pub(crate) fn run(listener: TcpListener, state: Arc<ServerState>) -> std::io::Result<ServeSummary> {
    listener.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    let wake = EventFd::new()?;
    epoll.add(listener.as_raw_fd(), EPOLLIN | EPOLLET, TOKEN_LISTENER)?;
    epoll.add(wake.raw(), EPOLLIN | EPOLLET, TOKEN_WAKEUP)?;
    let mut reactor = Reactor {
        epoll,
        shared: Arc::new(Shared { completions: Mutex::new(Vec::new()), wake }),
        state,
        slots: Vec::new(),
        gens: Vec::new(),
        free: Vec::new(),
    };
    let mut events = vec![EpollEvent::default(); EVENTS_PER_WAIT];
    while !reactor.state.shutdown_requested() {
        if reactor.state.config.handle_signals && crate::signal::take_usr1() {
            maybe_dump_flight(&reactor.state, "SIGUSR1");
        }
        let n = reactor.epoll.wait(&mut events, POLL_MS)?;
        tpq_obs::incr("serve.epoll.wakeups", 1);
        if n > 0 {
            tpq_obs::record_value("serve.epoll.ready", n as u64);
        }
        for event in &events[..n] {
            match event.token() {
                TOKEN_LISTENER => reactor.accept_ready(&listener),
                TOKEN_WAKEUP => reactor.deliver_completions(),
                token => reactor.conn_event((token - TOKEN_BASE) as usize, event.events()),
            }
        }
    }
    drop(listener); // refuse new connections from here on
    reactor.drain();
    Ok(finalize(&reactor.state))
}

impl Reactor {
    /// Accept until the listener would block (edge-triggered contract),
    /// refusing connections over the `max_conns` gate. Freshly accepted
    /// sockets are blocking (Linux does not inherit `O_NONBLOCK`), which
    /// is exactly what [`refuse_connection`]'s timed write needs.
    fn accept_ready(&mut self, listener: &TcpListener) {
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if self.state.active.load(Ordering::Acquire) >= self.state.config.max_conns {
                        refuse_connection(&self.state, stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.state.active.fetch_add(1, Ordering::AcqRel);
                    self.state.accepted.fetch_add(1, Ordering::Relaxed);
                    tpq_obs::incr("serve.conn.accepted", 1);
                    let slot = self.free.pop().unwrap_or_else(|| {
                        self.slots.push(None);
                        self.gens.push(0);
                        self.slots.len() - 1
                    });
                    let fd = stream.as_raw_fd();
                    self.slots[slot] = Some(Conn::new(stream));
                    // ADD counts as an edge, so data that arrived before
                    // registration is reported by the next wait.
                    let registered = self.epoll.add(
                        fd,
                        EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET,
                        TOKEN_BASE + slot as u64,
                    );
                    if registered.is_err() {
                        self.close_conn(slot);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    /// Drain the eventfd and route every queued completion to its
    /// connection (unless the connection died first).
    fn deliver_completions(&mut self) {
        self.shared.wake.drain();
        let completions = std::mem::take(
            &mut *self.shared.completions.lock().unwrap_or_else(|poisoned| poisoned.into_inner()),
        );
        for completion in completions {
            if self.gens.get(completion.slot).copied() != Some(completion.gen) {
                // Connection closed; slot possibly reused. The request
                // still ran, so it still belongs in the flight recorder.
                if let Some(draft) = completion.draft {
                    record_flight(&self.state, draft, completion.bytes.len() as u64, false);
                }
                continue;
            }
            let Some(conn) = self.slots[completion.slot].as_mut() else {
                continue;
            };
            conn.outstanding -= 1;
            if let Some(draft) = completion.draft {
                record_flight(&self.state, draft, completion.bytes.len() as u64, conn.paused);
            }
            conn.enqueue(completion.seq, completion.bytes);
            self.pump(completion.slot);
        }
    }

    /// React to readiness on one connection.
    fn conn_event(&mut self, slot: usize, mask: u32) {
        if self.slots.get(slot).is_none_or(|c| c.is_none()) {
            return; // stale event for a closed slot
        }
        if mask & (EPOLLERR | EPOLLHUP) != 0 {
            self.close_conn(slot);
            return;
        }
        if mask & (EPOLLIN | EPOLLRDHUP) != 0 {
            let conn = self.slots[slot].as_mut().expect("checked above");
            if conn.paused {
                conn.read_ready = true; // act on the edge once resumed
            } else if self.read_conn(slot).is_err() {
                self.close_conn(slot);
                return;
            }
        }
        self.pump(slot);
    }

    /// Read until the socket would block, EOF, or the per-pass batch cap
    /// (the edge is remembered in `read_ready` when the cap stops us, so
    /// edge-triggered readiness is never lost).
    fn read_conn(&mut self, slot: usize) -> Result<(), ()> {
        let batch_cap = self.state.config.max_line_bytes.max(64 * 1024);
        let Some(conn) = self.slots[slot].as_mut() else {
            return Ok(());
        };
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if conn.read_buf.len() > batch_cap {
                conn.read_ready = true;
                break;
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.saw_eof = true;
                    break;
                }
                Ok(n) => conn.read_buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Err(()),
            }
        }
        Ok(())
    }

    /// The per-connection engine: process buffered lines, flush, resume
    /// from backpressure, re-read deferred edges — until nothing moves —
    /// then close if the connection is finished.
    fn pump(&mut self, slot: usize) {
        loop {
            self.process_lines(slot);
            let Some(conn) = self.slots[slot].as_mut() else {
                return;
            };
            if conn.flush().is_err() {
                self.close_conn(slot);
                return;
            }
            let conn = self.slots[slot].as_mut().expect("flush keeps the slot");
            if conn.paused && conn.queued_bytes() <= LOW_WATER {
                conn.paused = false;
                continue; // paused-over lines may now process
            }
            if !conn.paused && conn.read_ready && !conn.close_after_flush && !conn.saw_eof {
                conn.read_ready = false;
                if self.read_conn(slot).is_err() {
                    self.close_conn(slot);
                    return;
                }
                continue;
            }
            break;
        }
        let Some(conn) = self.slots[slot].as_mut() else {
            return;
        };
        if conn.saw_eof && !conn.paused {
            // All complete lines are processed (the loop above ran to a
            // standstill); whatever remains was never a finished request.
            conn.close_after_flush = true;
        }
        self.maybe_close(slot);
    }

    /// Frame and dispatch every complete line in the read buffer,
    /// stopping at backpressure, close, or shutdown.
    fn process_lines(&mut self, slot: usize) {
        let state = Arc::clone(&self.state);
        let shared = Arc::clone(&self.shared);
        let gen = self.gens[slot];
        let Some(conn) = self.slots[slot].as_mut() else {
            return;
        };
        loop {
            if conn.paused || conn.close_after_flush {
                return;
            }
            if conn.queued_bytes() >= HIGH_WATER {
                conn.paused = true;
                tpq_obs::incr("serve.backpressure.stalls", 1);
                return;
            }
            let Some(newline) = conn.read_buf.iter().position(|&b| b == b'\n') else {
                break;
            };
            let line: Vec<u8> = conn.read_buf.drain(..=newline).collect();
            let Ok(text) = std::str::from_utf8(&line[..line.len() - 1]) else {
                let e = ProtoError::bad_request("request line is not valid UTF-8");
                let seq = conn.take_seq();
                conn.enqueue(seq, response_line(&e.to_json()));
                conn.close_after_flush = true;
                return;
            };
            let text = text.trim();
            match dispatch_verb(&state, text) {
                Some(Flow::Skip) => {} // blank line: no response, no seq
                Some(Flow::Respond(json)) => {
                    let seq = conn.take_seq();
                    conn.enqueue(seq, response_line(&json));
                }
                Some(Flow::Raw(raw)) => {
                    let seq = conn.take_seq();
                    conn.enqueue(seq, raw.into_bytes());
                }
                Some(Flow::Shutdown(json)) => {
                    let seq = conn.take_seq();
                    conn.enqueue(seq, response_line(&json));
                    state.shutdown.store(true, Ordering::Release);
                    // The post-line shutdown check below flushes the
                    // rest of the buffer with typed drain errors.
                }
                None => {
                    let t0 = Instant::now();
                    let n_prev = state.inflight.fetch_add(1, Ordering::AcqRel);
                    if let Some(shed) = admission_check(&state, n_prev) {
                        state.inflight.fetch_sub(1, Ordering::AcqRel);
                        state.requests_failed.fetch_add(1, Ordering::Relaxed);
                        tpq_obs::incr("serve.request.error", 1);
                        let bytes = response_line(&shed.to_json());
                        record_flight(
                            &state,
                            FlightDraft::shed(text.len(), &shed, t0),
                            bytes.len() as u64,
                            false,
                        );
                        let seq = conn.take_seq();
                        conn.enqueue(seq, bytes);
                    } else {
                        let seq = conn.take_seq();
                        let worker_state = Arc::clone(&state);
                        let worker_shared = Arc::clone(&shared);
                        let line = text.to_owned();
                        let spawned = state.pool.spawn(move || {
                            let (json, draft) = process_request(&worker_state, &line, t0, true);
                            worker_state.inflight.fetch_sub(1, Ordering::AcqRel);
                            worker_shared.push(Completion {
                                slot,
                                gen,
                                seq,
                                bytes: response_line(&json),
                                draft: Some(draft),
                            });
                        });
                        match spawned {
                            Ok(()) => conn.outstanding += 1,
                            Err(e) => {
                                // Pool gone (shutdown race): answer here.
                                state.inflight.fetch_sub(1, Ordering::AcqRel);
                                state.requests_failed.fetch_add(1, Ordering::Relaxed);
                                tpq_obs::incr("serve.request.error", 1);
                                let proto = ProtoError::from_error(&e);
                                let bytes = response_line(&proto.to_json());
                                record_flight(
                                    &state,
                                    FlightDraft::shed(text.len(), &proto, t0),
                                    bytes.len() as u64,
                                    false,
                                );
                                conn.enqueue(seq, bytes);
                            }
                        }
                    }
                }
            }
            if state.shutdown_requested() {
                flush_buffered_as_drain(&state, conn);
                conn.close_after_flush = true;
                return;
            }
        }
        // Refuse to buffer a line past the cap — framing is gone, close.
        if conn.read_buf.len() > state.config.max_line_bytes {
            state.requests_failed.fetch_add(1, Ordering::Relaxed);
            tpq_obs::incr("serve.request.error", 1);
            let e = ProtoError::bad_request(format!(
                "request line exceeds {} bytes",
                state.config.max_line_bytes
            ));
            let seq = conn.take_seq();
            conn.enqueue(seq, response_line(&e.to_json()));
            conn.read_buf.clear();
            conn.close_after_flush = true;
        }
    }

    /// Close the connection once it has nothing left to say: no pool
    /// work outstanding, no parked completions, write queue flushed.
    fn maybe_close(&mut self, slot: usize) {
        let Some(conn) = self.slots[slot].as_ref() else {
            return;
        };
        if conn.close_after_flush
            && conn.outstanding == 0
            && conn.pending.is_empty()
            && conn.queued_bytes() == 0
        {
            self.close_conn(slot);
        }
    }

    /// Tear down one connection: record its lifetime, free the slot,
    /// bump the generation so in-flight completions are dropped.
    fn close_conn(&mut self, slot: usize) {
        let Some(conn) = self.slots[slot].take() else {
            return;
        };
        tpq_obs::record_duration("serve.conn", conn.started.elapsed());
        self.state.active.fetch_sub(1, Ordering::AcqRel);
        self.gens[slot] += 1;
        self.free.push(slot);
        // Dropping the stream closes the fd, which deregisters it.
    }

    /// Connections still open.
    fn open_conns(&self) -> usize {
        self.slots.iter().filter(|slot| slot.is_some()).count()
    }

    /// The drain phase: answer buffered lines with typed drain errors,
    /// keep the loop alive just long enough to flush outstanding
    /// completions and write queues (bounded by `drain_ms`), then force
    /// whatever is left.
    fn drain(&mut self) {
        let state = Arc::clone(&self.state);
        for slot in 0..self.slots.len() {
            if let Some(conn) = self.slots[slot].as_mut() {
                flush_buffered_as_drain(&state, conn);
                conn.close_after_flush = true;
                if conn.flush().is_err() {
                    self.close_conn(slot);
                    continue;
                }
                self.maybe_close(slot);
            }
        }
        let deadline = Instant::now() + Duration::from_millis(self.state.config.drain_ms);
        let mut events = vec![EpollEvent::default(); EVENTS_PER_WAIT];
        while self.open_conns() > 0 && Instant::now() < deadline {
            let n = match self.epoll.wait(&mut events, POLL_MS) {
                Ok(n) => n,
                Err(_) => break,
            };
            for event in &events[..n] {
                match event.token() {
                    TOKEN_LISTENER => {} // already closed
                    TOKEN_WAKEUP => self.deliver_completions(),
                    token => self.conn_event((token - TOKEN_BASE) as usize, event.events()),
                }
            }
        }
        for slot in 0..self.slots.len() {
            if self.slots[slot].is_some() {
                self.close_conn(slot); // drain deadline expired
            }
        }
    }
}

/// Reactor-side twin of the threaded engine's drain flush: every
/// complete line still buffered gets a typed `overloaded` drain error
/// (in order, via the normal sequence machinery) instead of vanishing.
fn flush_buffered_as_drain(state: &ServerState, conn: &mut Conn) {
    while let Some(newline) = conn.read_buf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = conn.read_buf.drain(..=newline).collect();
        let is_request = match std::str::from_utf8(&line[..line.len() - 1]) {
            Ok(text) => !text.trim().is_empty(),
            Err(_) => true, // garbage still deserves a response line
        };
        if !is_request {
            continue;
        }
        let e = drain_shed_error(state, line.len() - 1);
        let seq = conn.take_seq();
        conn.enqueue(seq, response_line(&e.to_json()));
    }
}
