//! Warm-restart snapshots of the three serve-layer cache levels.
//!
//! A snapshot captures, in one versioned and checksummed JSON file:
//!
//! 1. the **canonical-pattern memo** of every engine in the process-wide
//!    [`tpq_core::shared_engine`] LRU (keys as canonical encodings,
//!    minimized patterns as DSL text);
//! 2. the **closure LRU** of one-shot minimization
//!    ([`tpq_core::export_closures`]);
//! 3. the **type-interner name table**, in id order — the ground truth
//!    that makes the first two portable across processes.
//!
//! [`write_snapshot`] runs on server drain (`tpq serve --snapshot`);
//! [`restore_snapshot`] runs at bind (`--restore`). Restores are
//! **all-or-nothing and never trust the file**: a truncated, corrupt,
//! wrong-schema-version or interner-incompatible snapshot is rejected
//! with a [`RestoreError`] and the server simply starts cold.
//!
//! # Why the interner table must restore to the *identity* mapping
//!
//! Canonical keys embed raw [`TypeId`] numbers, and the
//! memo does not retain the input patterns the keys were computed from —
//! so keys cannot be re-encoded under a new id assignment. Instead the
//! snapshot carries the writer's full name table, and the restore interns
//! those names **in id order** into the target interner. If any name does
//! not land on its recorded id (the target interner already assigned ids
//! differently), the whole snapshot is rejected: under a shifted mapping
//! a stale key string could collide with a *different* future pattern's
//! key and serve a wrong minimization. A fresh process restoring at
//! startup (the `--restore` path) always passes this check, because a
//! fresh interner assigns ids sequentially from zero.
//!
//! Snapshots are integrity-checked (FNV-1a over the payload), not
//! authenticated: restore only files your own server wrote.

use std::fmt;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;
use tpq_base::{failpoint, Json, TypeId, TypeInterner};
use tpq_constraints::{parse_constraints, Constraint, ConstraintSet};
use tpq_core::{BatchMinimizer, Strategy};
use tpq_pattern::print::to_dsl;
use tpq_pattern::{parse_pattern, CanonicalKey, TreePattern};

/// Snapshot file schema version. Bump on any shape change; restores
/// reject every version but the current one.
pub const SCHEMA_VERSION: i64 = 1;

/// What a snapshot write or restore covered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Engines in the shared-engine LRU.
    pub engines: usize,
    /// Memoized canonical patterns summed over all engines.
    pub patterns: usize,
    /// Entries in the closure LRU.
    pub closures: usize,
    /// Snapshot file size in bytes.
    pub bytes: u64,
    /// When the snapshot was written (milliseconds since the Unix epoch).
    pub created_unix_ms: u64,
}

/// Why a snapshot was rejected. The server treats every variant the same
/// way — log it and start cold — but the reason names the first check
/// that failed, for operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreError {
    /// The first integrity or compatibility check that failed.
    pub reason: String,
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot rejected: {}", self.reason)
    }
}

impl std::error::Error for RestoreError {}

fn reject(reason: impl Into<String>) -> RestoreError {
    RestoreError { reason: reason.into() }
}

/// FNV-1a over the compact payload rendering — an integrity check against
/// torn writes and bit rot, not an authentication mechanism.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The serve-protocol spelling of a strategy (inverse of its `FromStr`).
fn strategy_name(strategy: Strategy) -> &'static str {
    match strategy {
        Strategy::CdmThenAcim => "full",
        Strategy::CimOnly => "cim",
        Strategy::AcimOnly => "acim",
        Strategy::CdmOnly => "cdm",
    }
}

/// One constraint as the name-based text line `parse_constraints` reads.
fn constraint_line(c: Constraint, types: &TypeInterner) -> String {
    let op = match c {
        Constraint::RequiredChild(..) => "->",
        Constraint::RequiredDescendant(..) => "->>",
        Constraint::CoOccurrence(..) => "~",
    };
    format!("{} {} {}", types.name(c.lhs()), op, types.name(c.rhs()))
}

/// A constraint set as sorted text lines (sorted so snapshot bytes are
/// deterministic — the underlying storage is hash-ordered).
fn constraint_lines(set: &ConstraintSet, types: &TypeInterner) -> Json {
    let mut lines: Vec<String> = set.iter().map(|c| constraint_line(c, types)).collect();
    lines.sort();
    Json::Array(lines.into_iter().map(Json::Str).collect())
}

/// Parse constraint text lines back into a set.
fn parse_lines(
    value: &Json,
    what: &str,
    types: &mut TypeInterner,
) -> Result<ConstraintSet, RestoreError> {
    let lines = value.as_array().ok_or_else(|| reject(format!("{what} must be an array")))?;
    let mut text = String::new();
    for line in lines {
        let line = line.as_str().ok_or_else(|| reject(format!("{what} holds a non-string")))?;
        text.push_str(line);
        text.push('\n');
    }
    parse_constraints(&text, types).map_err(|e| reject(format!("{what}: {e}")))
}

fn expect_str<'a>(value: Option<&'a Json>, what: &str) -> Result<&'a str, RestoreError> {
    value.and_then(Json::as_str).ok_or_else(|| reject(format!("missing string field '{what}'")))
}

/// Milliseconds since the Unix epoch, for snapshot provenance.
fn now_unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

/// Serialize the process-wide caches to `path`, atomically.
///
/// The file is written next to `path` as `<name>.tmp` and renamed into
/// place, so a crash (or the `snapshot.write` failpoint) mid-write never
/// leaves a partial snapshot where a restore would find it. `types` must
/// be the interner the cached data was built under — for the serve layer
/// that is [`crate::global_types`].
pub fn write_snapshot(path: &Path, types: &TypeInterner) -> std::io::Result<SnapshotStats> {
    let created_unix_ms = now_unix_ms();
    let closures = tpq_core::export_closures();
    let engines = tpq_core::export_engines();
    let mut stats = SnapshotStats {
        engines: engines.len(),
        closures: closures.len(),
        created_unix_ms,
        ..SnapshotStats::default()
    };

    let type_table =
        Json::Array(types.iter().map(|(_, name)| Json::Str(name.to_owned())).collect());
    let closure_entries = Json::Array(
        closures
            .iter()
            .map(|(input, closed)| {
                Json::object(vec![
                    ("input", constraint_lines(input, types)),
                    ("closed", constraint_lines(closed, types)),
                ])
            })
            .collect(),
    );
    let engine_entries = Json::Array(
        engines
            .iter()
            .map(|(ics, strategy, engine)| {
                let memo = engine.export_memo();
                stats.patterns += memo.len();
                Json::object(vec![
                    ("constraints", constraint_lines(ics, types)),
                    ("closed", constraint_lines(engine.constraints(), types)),
                    ("strategy", Json::Str(strategy_name(*strategy).to_owned())),
                    (
                        "memo",
                        Json::Array(
                            memo.iter()
                                .map(|(key, pattern)| {
                                    Json::object(vec![
                                        ("key", Json::Str(key.as_str().to_owned())),
                                        ("dsl", Json::Str(to_dsl(pattern, types))),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );
    let payload = Json::object(vec![
        ("created_unix_ms", Json::Int(created_unix_ms as i64)),
        ("types", type_table),
        ("closures", closure_entries),
        ("engines", engine_entries),
    ]);
    let payload_text = payload.to_string_compact();
    let file = Json::object(vec![
        ("schema", Json::Int(SCHEMA_VERSION)),
        ("checksum", Json::Str(format!("{:016x}", fnv1a64(payload_text.as_bytes())))),
        ("payload", payload),
    ]);
    let text = {
        let mut t = file.to_string_compact();
        t.push('\n');
        t
    };
    stats.bytes = text.len() as u64;

    let tmp = path.with_file_name(match path.file_name().and_then(|n| n.to_str()) {
        Some(name) => format!("{name}.tmp"),
        None => return Err(std::io::Error::other("snapshot path has no file name")),
    });
    let write_result = (|| -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        // The failpoint models a crash after the tmp file exists but
        // before the rename — the window atomicity must cover.
        failpoint::hit("snapshot.write").map_err(std::io::Error::other)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if let Err(e) = write_result {
        let _ = std::fs::remove_file(&tmp);
        tpq_obs::incr("snapshot.write.error", 1);
        return Err(e);
    }
    tpq_obs::incr("snapshot.write.ok", 1);
    Ok(stats)
}

/// Load a snapshot and seed the process-wide caches from it.
///
/// All validation happens before anything is committed: schema version,
/// payload checksum, the interner **identity check** (see the module
/// docs), and every embedded constraint line and pattern must parse. On
/// any failure the caches are untouched and the caller starts cold (the
/// target interner may retain benign extra name entries — it is
/// append-only, and names alone carry no cached answers).
pub fn restore_snapshot(
    path: &Path,
    types: &mut TypeInterner,
) -> Result<SnapshotStats, RestoreError> {
    let result = restore_inner(path, types);
    match &result {
        Ok(stats) => {
            tpq_obs::incr("snapshot.restore.ok", 1);
            tpq_obs::incr("snapshot.restore.patterns", stats.patterns as u64);
        }
        Err(_) => tpq_obs::incr("snapshot.restore.rejected", 1),
    }
    result
}

fn restore_inner(path: &Path, types: &mut TypeInterner) -> Result<SnapshotStats, RestoreError> {
    failpoint::hit("snapshot.read").map_err(|e| reject(e.to_string()))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| reject(format!("cannot read {}: {e}", path.display())))?;
    let bytes = text.len() as u64;
    let file = Json::parse(text.trim_end())
        .map_err(|e| reject(format!("not valid JSON (truncated?): {e}")))?;
    match file.get("schema").and_then(Json::as_i64) {
        Some(SCHEMA_VERSION) => {}
        Some(found) => {
            return Err(reject(format!(
                "schema version {found} (this build reads only {SCHEMA_VERSION})"
            )))
        }
        None => return Err(reject("missing schema version")),
    }
    let recorded = expect_str(file.get("checksum"), "checksum")?;
    let payload = file.get("payload").ok_or_else(|| reject("missing payload"))?;
    let actual = format!("{:016x}", fnv1a64(payload.to_string_compact().as_bytes()));
    if actual != recorded {
        return Err(reject(format!("checksum mismatch (recorded {recorded}, computed {actual})")));
    }
    let created_unix_ms =
        payload.get("created_unix_ms").and_then(Json::as_i64).unwrap_or_default().max(0) as u64;

    // The identity check: every recorded name must land on its recorded
    // id in the target interner. See the module docs for why anything
    // else must reject the whole file.
    let names = payload
        .get("types")
        .and_then(Json::as_array)
        .ok_or_else(|| reject("missing types table"))?;
    for (i, name) in names.iter().enumerate() {
        let name = name.as_str().ok_or_else(|| reject("types table holds a non-string"))?;
        let id = types.intern(name);
        if id != TypeId(i as u32) {
            return Err(reject(format!(
                "type '{name}' maps to {id}, snapshot recorded t{i} — \
                 the interner is not a fresh (or identically grown) one, \
                 so cached canonical keys would be unsound"
            )));
        }
    }

    // Parse everything into staging before committing anything.
    let mut staged_closures: Vec<(ConstraintSet, ConstraintSet)> = Vec::new();
    for entry in payload
        .get("closures")
        .and_then(Json::as_array)
        .ok_or_else(|| reject("missing closures"))?
    {
        let input = parse_lines(
            entry.get("input").ok_or_else(|| reject("closure entry missing input"))?,
            "closure input",
            types,
        )?;
        let closed = parse_lines(
            entry.get("closed").ok_or_else(|| reject("closure entry missing closed"))?,
            "closure closed",
            types,
        )?;
        staged_closures.push((input, closed));
    }

    struct StagedEngine {
        ics: ConstraintSet,
        closed: ConstraintSet,
        strategy: Strategy,
        memo: Vec<(CanonicalKey, TreePattern)>,
    }
    let mut staged_engines: Vec<StagedEngine> = Vec::new();
    let mut patterns = 0usize;
    for entry in
        payload.get("engines").and_then(Json::as_array).ok_or_else(|| reject("missing engines"))?
    {
        let ics = parse_lines(
            entry.get("constraints").ok_or_else(|| reject("engine entry missing constraints"))?,
            "engine constraints",
            types,
        )?;
        let closed = parse_lines(
            entry.get("closed").ok_or_else(|| reject("engine entry missing closed"))?,
            "engine closed set",
            types,
        )?;
        let strategy =
            expect_str(entry.get("strategy"), "strategy")?.parse::<Strategy>().map_err(reject)?;
        let mut memo = Vec::new();
        for m in entry
            .get("memo")
            .and_then(Json::as_array)
            .ok_or_else(|| reject("engine entry missing memo"))?
        {
            let key = expect_str(m.get("key"), "memo key")?.to_owned();
            let dsl = expect_str(m.get("dsl"), "memo dsl")?;
            let pattern = parse_pattern(dsl, types)
                .map_err(|e| reject(format!("memoized pattern '{dsl}': {e}")))?;
            memo.push((CanonicalKey::from_canonical_string(key), pattern));
        }
        patterns += memo.len();
        staged_engines.push(StagedEngine { ics, closed, strategy, memo });
    }

    // Commit. Exports are most-recently-used first and imports insert at
    // the LRU front, so committing in reverse re-creates the order.
    let stats = SnapshotStats {
        engines: staged_engines.len(),
        patterns,
        closures: staged_closures.len(),
        bytes,
        created_unix_ms,
    };
    for (input, closed) in staged_closures.into_iter().rev() {
        tpq_core::import_closure(input, closed);
    }
    for staged in staged_engines.into_iter().rev() {
        let engine = BatchMinimizer::from_parts(staged.closed, staged.strategy);
        engine.import_memo(staged.memo);
        tpq_core::seed_engine(staged.ics, staged.strategy, Arc::new(engine));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        // Reference value for the empty input (the FNV-1a offset basis)
        // pins the algorithm; the other cases pin sensitivity.
        assert_eq!(format!("{:016x}", fnv1a64(b"")), "cbf29ce484222325");
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in [Strategy::CdmThenAcim, Strategy::CimOnly, Strategy::AcimOnly, Strategy::CdmOnly] {
            assert_eq!(strategy_name(s).parse::<Strategy>().unwrap(), s);
        }
    }

    #[test]
    fn identity_check_rejects_a_mismatched_interner() {
        // A snapshot recorded under one interner must not restore into an
        // interner whose ids diverge. Build a real file, then restore it
        // into an interner that already assigned "B" the id 0.
        let dir = std::env::temp_dir().join(format!("tpq-snap-identity-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let mut writer_types = TypeInterner::new();
        writer_types.intern_all(["A", "B"]);
        write_snapshot(&path, &writer_types).unwrap();

        let mut fresh = TypeInterner::new();
        assert!(restore_snapshot(&path, &mut fresh).is_ok(), "fresh interner is the identity");

        let mut shifted = TypeInterner::new();
        shifted.intern("B");
        let err = restore_snapshot(&path, &mut shifted).unwrap_err();
        assert!(err.reason.contains("not a fresh"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
