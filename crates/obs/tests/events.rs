//! Integration tests for the structured-event layer: the global ring,
//! trace scoping, span attribution and the Prometheus sink.
//!
//! The registry (and its event ring) is process-global, so tests that
//! touch it serialize on one mutex and start from a clean slate.

use std::sync::{Mutex, MutexGuard};
use tpq_base::Json;
use tpq_obs::FieldValue::{Str, U64};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn fresh() {
    tpq_obs::set_enabled(true);
    tpq_obs::set_filter(Vec::new());
    tpq_obs::reset();
}

#[test]
fn events_carry_the_active_trace_id() {
    let _guard = serial();
    fresh();
    let trace = tpq_obs::fresh_trace_id();
    {
        let _scope = tpq_obs::trace_scope(trace);
        tpq_obs::event("test.traced", &[("node", U64(4)), ("op", Str("->"))]);
    }
    tpq_obs::event("test.untraced", &[]);
    let events = tpq_obs::drain_events();
    assert_eq!(events.len(), 2);
    assert_eq!(events[0].name, "test.traced");
    assert_eq!(events[0].trace, trace);
    assert_eq!(events[0].u64_field("node"), Some(4));
    assert_eq!(events[0].str_field("op"), Some("->"));
    assert_eq!(events[1].trace, 0);
    assert!(events[0].seq < events[1].seq, "seq preserves emission order");
}

#[test]
fn disabled_layer_records_no_events() {
    let _guard = serial();
    fresh();
    tpq_obs::set_enabled(false);
    tpq_obs::event("test.invisible", &[("k", U64(1))]);
    tpq_obs::set_enabled(true);
    assert!(tpq_obs::drain_events().is_empty());
}

#[test]
fn reset_clears_the_event_ring() {
    let _guard = serial();
    fresh();
    tpq_obs::event("test.doomed", &[]);
    tpq_obs::reset();
    assert!(tpq_obs::drain_events().is_empty());
    assert_eq!(tpq_obs::events_dropped(), 0);
}

#[test]
fn spans_emit_close_events_only_under_a_trace() {
    let _guard = serial();
    fresh();
    {
        let _s = tpq_obs::span!("test.anon_span");
    }
    let trace = tpq_obs::fresh_trace_id();
    {
        let _scope = tpq_obs::trace_scope(trace);
        let _s = tpq_obs::span!("test.traced_span");
    }
    let events = tpq_obs::drain_events();
    let spans: Vec<_> = events.iter().filter(|e| e.name == "span").collect();
    assert_eq!(spans.len(), 1, "only the traced span lands in the ring: {events:?}");
    assert_eq!(spans[0].trace, trace);
    assert_eq!(spans[0].str_field("span"), Some("test.traced_span"));
    assert!(spans[0].u64_field("ns").is_some());
}

#[test]
fn events_render_as_json_lines() {
    let _guard = serial();
    fresh();
    let trace = tpq_obs::fresh_trace_id();
    let _scope = tpq_obs::trace_scope(trace);
    tpq_obs::event("test.jsonl", &[("value", U64(11))]);
    let lines = tpq_obs::events_to_json_lines(&tpq_obs::drain_events());
    let parsed = Json::parse(lines.trim()).expect("each line is one JSON object");
    assert_eq!(parsed.get("name").and_then(Json::as_str), Some("test.jsonl"));
    assert_eq!(parsed.get("trace").and_then(Json::as_str).map(String::from).as_deref(), {
        Some(tpq_obs::trace_hex(trace)).as_deref()
    });
    assert_eq!(parsed.get("fields").and_then(|f| f.get("value")).and_then(Json::as_i64), Some(11));
}

#[test]
fn trace_ids_do_not_leak_across_threads() {
    let _guard = serial();
    fresh();
    let _scope = tpq_obs::trace_scope(tpq_obs::fresh_trace_id());
    let seen = std::thread::spawn(tpq_obs::current_trace).join().unwrap();
    assert_eq!(seen, 0, "trace scope is thread-local; propagation is explicit");
}

#[test]
fn prometheus_snapshot_covers_counters_histograms_and_gauges() {
    let _guard = serial();
    fresh();
    tpq_obs::incr("test.prom.hits", 3);
    tpq_obs::record_duration("test.prom.lat", std::time::Duration::from_micros(50));
    let text = tpq_obs::prometheus(&[("test.prom.inflight", 1.0)]);
    assert!(text.contains("# TYPE tpq_test_prom_hits_total counter"), "{text}");
    assert!(text.contains("tpq_test_prom_hits_total 3"), "{text}");
    assert!(text.contains("# TYPE tpq_test_prom_lat_seconds histogram"), "{text}");
    assert!(text.contains("tpq_test_prom_lat_seconds_count 1"), "{text}");
    assert!(text.contains("tpq_test_prom_inflight 1.0"), "{text}");
    // Well-formed: every non-comment line is `name{labels}? value`.
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (name, value) = (parts.next().unwrap(), parts.next().unwrap());
        assert!(parts.next().is_none(), "unexpected extra column: {line}");
        assert!(name.starts_with("tpq_"), "unprefixed metric: {line}");
        assert!(value.parse::<f64>().is_ok(), "non-numeric value: {line}");
    }
}
