//! Integration tests for the global observability registry.
//!
//! The registry is process-global, so every test takes `serial()` first —
//! the harness runs tests on multiple threads and these must not interleave
//! resets.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;
use tpq_obs::span;

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    // A panicking test poisons the lock; later tests still need to run.
    match LOCK.get_or_init(Mutex::default).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn fresh() -> MutexGuard<'static, ()> {
    let guard = serial();
    tpq_obs::set_enabled(true);
    tpq_obs::set_filter(Vec::new());
    tpq_obs::reset();
    guard
}

#[test]
fn concurrent_counter_increments_are_lossless() {
    let _guard = fresh();
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                let counter = tpq_obs::counter("test.concurrent");
                for _ in 0..PER_THREAD {
                    counter.add(1);
                }
            });
        }
    });
    assert_eq!(tpq_obs::report().counter("test.concurrent"), THREADS as u64 * PER_THREAD);
}

#[test]
fn histogram_percentiles_on_known_distribution() {
    let _guard = fresh();
    // 90 fast samples at ~1µs, 10 slow at ~1ms: p50 must sit in the fast
    // cluster, p99 in the slow one. Log-scale buckets are exact to ~12.5%.
    for _ in 0..90 {
        tpq_obs::record_duration("test.latency", Duration::from_micros(1));
    }
    for _ in 0..10 {
        tpq_obs::record_duration("test.latency", Duration::from_millis(1));
    }
    let json = tpq_obs::report().to_json();
    let spans = json.get("spans").and_then(|s| s.as_array()).unwrap();
    let span = spans
        .iter()
        .find(|s| s.get("name").and_then(|n| n.as_str()) == Some("test.latency"))
        .expect("span recorded");
    let p50 = span.get("p50_micros").and_then(|v| v.as_f64()).unwrap();
    let p99 = span.get("p99_micros").and_then(|v| v.as_f64()).unwrap();
    assert!((0.8..=1.3).contains(&p50), "p50 = {p50}µs");
    assert!((800.0..=1300.0).contains(&p99), "p99 = {p99}µs");
    assert_eq!(span.get("count").and_then(|v| v.as_i64()), Some(100));
}

#[test]
fn span_nesting_attributes_parents_and_self_time() {
    let _guard = fresh();
    {
        let _outer = span!("test.outer");
        std::thread::sleep(Duration::from_millis(4));
        for _ in 0..2 {
            let _inner = span!("test.inner");
            std::thread::sleep(Duration::from_millis(3));
        }
    }
    let report = tpq_obs::report();

    let outer = report.span("test.outer").expect("outer recorded");
    let inner = report.span("test.inner").expect("inner recorded");
    assert_eq!(outer.count, 1);
    assert_eq!(inner.count, 2);

    // The edge carries the correct parent.
    let edge = report.edge(Some("test.outer"), "test.inner").expect("edge");
    assert_eq!(edge.count, 2);
    assert!(report.edge(None, "test.outer").is_some(), "outer is a root");
    assert!(report.edge(None, "test.inner").is_none(), "inner is never a root");

    // Self time excludes children: outer slept ~4ms itself while children
    // took ~6ms, so outer.self must be well below outer.total.
    assert!(outer.total_ns >= inner.total_ns);
    assert!(
        outer.self_ns <= outer.total_ns - inner.total_ns + 2_000_000,
        "self {} vs total {} minus children {}",
        outer.self_ns,
        outer.total_ns,
        inner.total_ns
    );
    // And the parts roughly sum: children + self ≈ total.
    let reconstructed = outer.self_ns + inner.total_ns;
    assert!(
        reconstructed.abs_diff(outer.total_ns) < 2_000_000,
        "self+children = {reconstructed} vs total = {}",
        outer.total_ns
    );
}

#[test]
fn sibling_spans_attribute_to_the_same_parent() {
    let _guard = fresh();
    {
        let _root = span!("test.root");
        {
            let _a = span!("test.a");
        }
        {
            let _b = span!("test.b");
            let _nested = span!("test.nested");
        }
    }
    let report = tpq_obs::report();
    assert!(report.edge(Some("test.root"), "test.a").is_some());
    assert!(report.edge(Some("test.root"), "test.b").is_some());
    assert!(report.edge(Some("test.b"), "test.nested").is_some());
    assert!(report.edge(Some("test.a"), "test.nested").is_none());
}

#[test]
fn disabled_layer_records_nothing() {
    let _guard = fresh();
    tpq_obs::set_enabled(false);
    {
        let _s = span!("test.dark");
        tpq_obs::incr("test.dark_counter", 5);
    }
    tpq_obs::set_enabled(true);
    let report = tpq_obs::report();
    assert!(report.span("test.dark").is_none());
    assert_eq!(report.counter("test.dark_counter"), 0);
}

#[test]
fn filter_limits_spans_but_not_counters() {
    let _guard = fresh();
    tpq_obs::set_filter(vec!["test.kept".into()]);
    {
        let _kept = span!("test.kept.inner");
        let _dropped = span!("test.other");
        tpq_obs::incr("test.filtered_counter", 1);
    }
    tpq_obs::set_filter(Vec::new());
    let report = tpq_obs::report();
    assert!(report.span("test.kept.inner").is_some());
    assert!(report.span("test.other").is_none());
    assert_eq!(report.counter("test.filtered_counter"), 1);
}

#[test]
fn text_report_renders_tree_and_counters() {
    let _guard = fresh();
    {
        let _p = span!("test.parent");
        let _c = span!("test.child");
        tpq_obs::incr("test.visible", 3);
    }
    let text = tpq_obs::report().to_text();
    assert!(text.contains("test.parent"));
    assert!(text.contains("  test.child"), "child is indented:\n{text}");
    assert!(text.contains("test.visible"));
    let json_text = tpq_obs::report().to_json().to_string_pretty();
    let parsed = tpq_base::Json::parse(&json_text).expect("export is valid JSON");
    assert!(parsed.get("spans").is_some());
}

#[test]
fn spans_on_worker_threads_are_aggregated() {
    let _guard = fresh();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let _s = span!("test.worker");
            });
        }
    });
    assert_eq!(tpq_obs::report().span("test.worker").unwrap().count, 4);
}
