//! Lock-free log-scale latency histograms.
//!
//! Values (nanoseconds) are bucketed HDR-style: three mantissa bits per
//! power-of-two octave, so relative bucket error is bounded at ~12.5%
//! across the full `u64` range while the whole histogram is a fixed
//! 512-slot array of atomics. Percentile queries walk the buckets.

use std::sync::atomic::{AtomicU64, Ordering};

const MANTISSA_BITS: u32 = 3;
const SUB_BUCKETS: u64 = 1 << MANTISSA_BITS;
pub(crate) const BUCKETS: usize = 512;

/// Index of the bucket holding `value`.
#[inline]
fn bucket_of(value: u64) -> usize {
    let exp = 63 - (value | 1).leading_zeros();
    if exp < MANTISSA_BITS {
        value as usize
    } else {
        let shift = exp - MANTISSA_BITS;
        let sub = (value >> shift) & (SUB_BUCKETS - 1);
        (((exp - MANTISSA_BITS + 1) as u64 * SUB_BUCKETS) + sub) as usize
    }
}

/// Representative (upper-bound) value of bucket `idx`, the inverse of
/// [`bucket_of`] up to bucket granularity.
fn bucket_bound(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB_BUCKETS {
        return idx;
    }
    // `bucket_of` never produces an index above this (u64::MAX lands in
    // it), but `quantile()`'s fallback can ask for the last array slot;
    // the nominal bound of those trailing buckets exceeds u64::MAX, so
    // saturate instead of overflowing the shift.
    let max_idx = (64 - MANTISSA_BITS) as u64 * SUB_BUCKETS + (SUB_BUCKETS - 1);
    if idx >= max_idx {
        return u64::MAX;
    }
    let octave = idx / SUB_BUCKETS - 1;
    let sub = idx % SUB_BUCKETS;
    let shift = octave as u32;
    ((SUB_BUCKETS + sub) << shift) + (1u64 << shift) - 1
}

/// A concurrent log-scale histogram of `u64` samples (nanoseconds).
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    total: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [const { AtomicU64::new(0) }; BUCKETS],
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.counts[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample, 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]` (bucket upper bound — exact to
    /// the ~12.5% bucket width). 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        // Rank of the sample we want, 1-based, clamped.
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (idx, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_bound(idx);
            }
        }
        bucket_bound(BUCKETS - 1)
    }

    /// Occupied buckets as `(upper bound in ns, count)`, ascending. Feeds
    /// the Prometheus exposition, which needs the raw bucket layout rather
    /// than point quantiles.
    pub(crate) fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter_map(|(idx, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_bound(idx), n))
            })
            .collect()
    }

    /// Add every sample of `other` into `self`, bucket-wise. Exact: both
    /// histograms share the one fixed bucket layout, so merging loses no
    /// precision beyond what recording already lost. This is how the
    /// rolling window ([`crate::RollingWindow`]) turns 60 per-second
    /// histograms into one windowed quantile source.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter().zip(other.counts.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.total.fetch_add(other.total.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Reset to empty.
    pub fn clear(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.total.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..8u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_bound(v as usize), v);
        }
    }

    #[test]
    fn buckets_are_monotonic_and_tight() {
        let mut prev = 0usize;
        for exp in 3..63u32 {
            for step in [0u64, 1, 3] {
                let v = (1u64 << exp) + step * (1 << (exp - 3));
                let idx = bucket_of(v);
                assert!(idx >= prev, "bucket index decreased at {v}");
                prev = idx;
                let bound = bucket_bound(idx);
                assert!(bound >= v, "bound {bound} below value {v}");
                // Relative error bounded by one sub-bucket (~12.5%).
                assert!((bound - v) as f64 <= v as f64 / 8.0 + 1.0);
            }
        }
    }

    #[test]
    fn octave_boundaries_round_trip() {
        // The spot values each sit on (or next to) an octave boundary,
        // where off-by-one bucket math would bite first.
        for v in [0u64, 7, 8, 15, 16, u64::MAX] {
            let bound = bucket_bound(bucket_of(v));
            assert!(bound >= v, "bound {bound} below {v}");
            // Relative error bounded by one sub-bucket (12.5%).
            assert!(bound - v <= v / 8, "bound {bound} too loose for {v}");
        }
        // Every exact octave boundary across the range, and its neighbors.
        for exp in 0..64u32 {
            let b = 1u64 << exp;
            for v in [b - 1, b, b.saturating_add(1)] {
                let bound = bucket_bound(bucket_of(v));
                assert!(bound >= v, "bound {bound} below {v} (exp {exp})");
                assert!(bound - v <= v / 8 + 1, "bound {bound} too loose for {v}");
            }
        }
    }

    #[test]
    fn every_bucket_index_has_a_finite_bound() {
        // Exhaustive over the whole array: no index may overflow (buckets
        // past bucket_of(u64::MAX) saturate), and bounds never decrease.
        let mut prev = 0u64;
        for idx in 0..BUCKETS {
            let bound = bucket_bound(idx);
            assert!(bound >= prev, "bound regressed at index {idx}");
            prev = bound;
        }
        assert_eq!(bucket_bound(bucket_of(u64::MAX)), u64::MAX);
        assert_eq!(bucket_bound(BUCKETS - 1), u64::MAX, "fallback bucket saturates");
        // Populated buckets invert exactly: the bound lands back in the
        // bucket it describes.
        for idx in 0..=bucket_of(u64::MAX) {
            assert_eq!(bucket_of(bucket_bound(idx)), idx, "round trip broke at {idx}");
        }
    }

    #[test]
    fn quantiles_on_uniform_distribution() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((450..=570).contains(&p50), "p50 = {p50}");
        assert!((930..=1130).contains(&p99), "p99 = {p99}");
        assert!(h.quantile(1.0) >= 1000);
        assert_eq!(h.quantile(0.0), h.quantile(1e-9), "q=0 clamps to first sample");
    }

    #[test]
    fn quantiles_of_a_single_sample_pin_its_bucket_bound() {
        // Quantiles never interpolate: every q maps to some bucket's upper
        // bound. With one sample, every quantile is that sample's bound.
        let h = Histogram::default();
        h.record(100);
        let bound = bucket_bound(bucket_of(100));
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), bound, "q={q}");
        }
        assert!((100..=100 + 100 / 8).contains(&bound));
    }

    #[test]
    fn quantiles_of_a_two_bucket_distribution_switch_at_the_median() {
        let h = Histogram::default();
        h.record(10); // exact bucket: bound 10
        h.record(1000);
        let high = bucket_bound(bucket_of(1000));
        // rank = ceil(q·2) clamped to [1,2]: q ≤ 0.5 selects the low
        // sample's bucket, anything above selects the high one.
        assert_eq!(h.quantile(0.0), 10);
        assert_eq!(h.quantile(0.5), 10);
        assert_eq!(h.quantile(0.51), high);
        assert_eq!(h.quantile(0.95), high);
        assert_eq!(h.quantile(0.99), high);
        assert_eq!(h.quantile(1.0), high);
    }

    #[test]
    fn nonzero_buckets_expose_the_occupied_layout() {
        let h = Histogram::default();
        h.record(10);
        h.record(10);
        h.record(1000);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0], (10, 2));
        assert_eq!(buckets[1].1, 1);
        assert!(buckets[1].0 >= 1000);
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0), "bounds ascend");
    }

    #[test]
    fn quantiles_at_exact_bucket_boundaries() {
        // Samples sitting exactly on octave boundaries (8, 16, 32 are the
        // first sub-bucket of their octave, and exact bucket bounds at
        // 3 mantissa bits) must come back verbatim from every quantile
        // that selects them: p0 picks the first sample, p50 the middle,
        // p100 the last, with no off-by-one into a neighboring bucket.
        let h = Histogram::default();
        for v in [8u64, 16, 32] {
            h.record(v);
        }
        let bound = |v: u64| bucket_bound(bucket_of(v));
        assert_eq!(h.quantile(0.0), bound(8), "p0 selects the smallest sample's bucket");
        assert_eq!(h.quantile(0.5), bound(16), "p50 selects the middle sample's bucket");
        assert_eq!(h.quantile(1.0), bound(32), "p100 selects the largest sample's bucket");
        // 8 opens its octave and is its bucket's own upper bound.
        assert_eq!(bound(8), 8);
        // Values 0..8 are exact buckets: quantiles of exact values are exact.
        let exact = Histogram::default();
        for v in 0..8u64 {
            exact.record(v);
        }
        assert_eq!(exact.quantile(0.0), 0);
        assert_eq!(exact.quantile(0.5), 3, "rank ceil(0.5*8)=4 → 4th sample, value 3");
        assert_eq!(exact.quantile(1.0), 7);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn clear_resets() {
        let h = Histogram::default();
        h.record(5);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
    }
}
