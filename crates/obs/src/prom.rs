//! Prometheus text exposition of a registry snapshot.
//!
//! Mapping rules (also tabulated in `docs/OBSERVABILITY.md`):
//!
//! * every metric is prefixed `tpq_`; dots and dashes in the internal
//!   name become underscores (`serve.request.ok` → `tpq_serve_request_ok`);
//! * counters gain the conventional `_total` suffix and `# TYPE … counter`;
//! * per-span latency histograms are exported in seconds as
//!   `tpq_<name>_seconds` with cumulative `_bucket{le="…"}` lines, `_sum`
//!   and `_count` (`# TYPE … histogram`);
//! * value distributions ([`crate::record_value`]) export as suffix-free
//!   histograms with *raw* bucket bounds — they are dimensionless, so no
//!   seconds scaling applies;
//! * caller-supplied gauges (`serve.inflight`, `serve.uptime_seconds`)
//!   are emitted as-is with `# TYPE … gauge`.
//!
//! The suffix scheme keeps names collision-free: a counter and a
//! histogram may share an internal name and still export distinctly.

use crate::registry::Snapshot;
use std::fmt::Write as _;

/// `serve.request.ok` → `tpq_serve_request_ok`. Any character outside
/// Prometheus' `[a-zA-Z0-9_:]` set maps to `_`.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("tpq_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Render `snapshot` (plus caller-supplied gauges) as Prometheus text
/// exposition. Lines are sorted by metric name within each class so the
/// output is deterministic; the caller owns any framing terminator.
pub(crate) fn render(snapshot: &Snapshot, gauges: &[(&str, f64)]) -> String {
    let mut out = String::new();

    let mut gauges: Vec<_> = gauges.to_vec();
    gauges.sort_by(|a, b| a.0.cmp(b.0));
    for (name, value) in gauges {
        let name = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", fmt_f64(value));
    }

    let mut counters: Vec<_> = snapshot.counters.clone();
    counters.sort();
    for (name, value) in counters {
        let name = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {name}_total counter");
        let _ = writeln!(out, "{name}_total {value}");
    }

    // Event-ring losses are always exported, even at zero: silent event
    // loss is exactly what this counter exists to make visible.
    let _ = writeln!(out, "# TYPE tpq_events_dropped_total counter");
    let _ = writeln!(out, "tpq_events_dropped_total {}", snapshot.events_dropped);

    let mut histograms: Vec<_> = snapshot.histograms.iter().collect();
    histograms.sort_by_key(|(n, _)| *n);
    for (name, h) in histograms {
        if h.count() == 0 {
            continue;
        }
        let name = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {name}_seconds histogram");
        let mut cumulative = 0u64;
        for (bound_ns, count) in h.nonzero_buckets() {
            cumulative += count;
            let le = fmt_f64(bound_ns as f64 / 1e9);
            let _ = writeln!(out, "{name}_seconds_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_seconds_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "{name}_seconds_sum {}", fmt_f64(h.sum() as f64 / 1e9));
        let _ = writeln!(out, "{name}_seconds_count {}", h.count());
    }

    // Value distributions are dimensionless, so bucket bounds stay raw
    // (no seconds scaling) and the metric name carries no unit suffix.
    let mut values: Vec<_> = snapshot.values.iter().collect();
    values.sort_by_key(|(n, _)| *n);
    for (name, h) in values {
        if h.count() == 0 {
            continue;
        }
        let name = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in h.nonzero_buckets() {
            cumulative += count;
            let le = fmt_f64(bound as f64);
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "{name}_sum {}", fmt_f64(h.sum() as f64));
        let _ = writeln!(out, "{name}_count {}", h.count());
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;
    use std::sync::Arc;

    #[test]
    fn name_mapping_replaces_dots_and_dashes() {
        assert_eq!(prometheus_name("serve.request.ok"), "tpq_serve_request_ok");
        assert_eq!(prometheus_name("bad-request"), "tpq_bad_request");
        assert_eq!(prometheus_name("a:b"), "tpq_a:b");
    }

    #[test]
    fn exposition_is_well_formed_and_duplicate_free() {
        let h = Arc::new(Histogram::default());
        h.record(100);
        h.record(2_000_000);
        let snapshot = Snapshot {
            counters: vec![("serve.request.ok", 3), ("serve.request", 5)],
            spans: vec![],
            edges: vec![],
            histograms: vec![("serve.request", Arc::clone(&h)), ("empty", Default::default())],
            values: vec![("serve.epoll.ready", Arc::clone(&h)), ("idle", Default::default())],
            events_dropped: 7,
        };
        let text = render(&snapshot, &[("serve.inflight", 2.0), ("serve.uptime_seconds", 1.5)]);

        // Every # TYPE names a distinct metric.
        let mut typed: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("# TYPE "))
            .map(|l| l.split_whitespace().nth(2).unwrap())
            .collect();
        let before = typed.len();
        typed.sort_unstable();
        typed.dedup();
        assert_eq!(typed.len(), before, "duplicate metric names in exposition");

        assert!(text.contains("# TYPE tpq_serve_inflight gauge"));
        assert!(text.contains("tpq_serve_inflight 2.0"));
        assert!(text.contains("tpq_serve_request_ok_total 3"));
        assert!(text.contains("# TYPE tpq_events_dropped_total counter"));
        assert!(text.contains("tpq_events_dropped_total 7"));
        // Counter/histogram name collision resolved by suffixes.
        assert!(text.contains("tpq_serve_request_total 5"));
        assert!(text.contains("# TYPE tpq_serve_request_seconds histogram"));
        assert!(text.contains("tpq_serve_request_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("tpq_serve_request_seconds_count 2"));
        assert!(!text.contains("tpq_empty"), "empty histograms are omitted");
        // Value histograms export suffix-free with raw bucket bounds.
        assert!(text.contains("# TYPE tpq_serve_epoll_ready histogram"));
        assert!(text.contains("tpq_serve_epoll_ready_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("tpq_serve_epoll_ready_count 2"));
        assert!(!text.contains("tpq_idle"), "empty value histograms are omitted");

        // Bucket counts are cumulative and end at the total.
        let buckets: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("tpq_serve_request_seconds_bucket"))
            .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "buckets not cumulative: {buckets:?}");
        assert_eq!(*buckets.last().unwrap(), 2);
    }
}
