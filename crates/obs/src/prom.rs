//! Prometheus text exposition of a registry snapshot.
//!
//! Mapping rules (also tabulated in `docs/OBSERVABILITY.md`):
//!
//! * every metric is prefixed `tpq_`; dots and dashes in the internal
//!   name become underscores (`serve.request.ok` → `tpq_serve_request_ok`);
//! * counters gain the conventional `_total` suffix and `# TYPE … counter`;
//! * per-span latency histograms are exported in seconds as
//!   `tpq_<name>_seconds` with cumulative `_bucket{le="…"}` lines, `_sum`
//!   and `_count` (`# TYPE … histogram`);
//! * value distributions ([`crate::record_value`]) export as suffix-free
//!   histograms with *raw* bucket bounds — they are dimensionless, so no
//!   seconds scaling applies;
//! * caller-supplied gauges (`serve.inflight`, `serve.uptime_seconds`)
//!   are emitted as-is with `# TYPE … gauge`;
//! * every metric gets a `# HELP` line before its `# TYPE`: a curated
//!   description for the well-known names ([`help_for`]), a generated
//!   one naming the internal metric otherwise — scrapers never see a
//!   description-free metric.
//!
//! The suffix scheme keeps names collision-free: a counter and a
//! histogram may share an internal name and still export distinctly.

use crate::registry::Snapshot;
use std::fmt::Write as _;

/// The exposition class a `# HELP` fallback is generated for.
#[derive(Clone, Copy)]
enum Class {
    Gauge,
    Counter,
    SpanHistogram,
    ValueHistogram,
}

/// Curated descriptions for the workspace's well-known metric names
/// (keyed by the *internal* dotted name, before Prometheus mangling).
/// Names not listed here fall back to a generated class description, so
/// every exported metric carries a `# HELP` line either way.
fn help_for(internal: &str) -> Option<&'static str> {
    Some(match internal {
        // Serve gauges.
        "serve.inflight" => "Requests currently admitted and not yet answered.",
        "serve.connections.active" => "Connections currently open.",
        "serve.uptime_seconds" => "Seconds since the server started.",
        "serve.queue.depth" => "Requests waiting for a pool worker (inflight minus workers).",
        "serve.queue.limit" => "Admission-queue bound; requests beyond it are shed.",
        "serve.snapshot.restored" => "1 when the bind-time cache snapshot restore succeeded.",
        "serve.snapshot.rejected" => "1 when the bind-time cache snapshot was rejected.",
        "serve.snapshot.bytes" => "Size of the restored snapshot file in bytes.",
        "serve.snapshot.age_seconds" => "Age of the restored snapshot at scrape time.",
        // Rolling-window (1-minute) gauges.
        "serve.request.rate_1m" => "Requests per second over the rolling 60-second window.",
        "serve.error.rate_1m" => "Errored requests per second over the rolling 60-second window.",
        "serve.shed.rate_1m" => "Shed requests per second over the rolling 60-second window.",
        "serve.request.p50_seconds_1m" => {
            "Median request latency over the rolling 60-second window."
        }
        "serve.request.p95_seconds_1m" => {
            "95th-percentile request latency over the rolling 60-second window."
        }
        "serve.request.p99_seconds_1m" => {
            "99th-percentile request latency over the rolling 60-second window."
        }
        // Serve counters.
        "serve.request.ok" => "Requests answered successfully.",
        "serve.request.error" => "Requests answered with an error response.",
        "serve.request.slow" => "Requests at or over the slow-query log threshold.",
        "serve.conn.accepted" => "Connections accepted.",
        "serve.conn.refused" => "Connections refused at the max-conns limit.",
        "serve.shed.queue_full" => "Requests shed because the admission queue was full.",
        "serve.shed.injected" => "Requests shed by the armed serve.shed failpoint.",
        "serve.shed.drain" => "Buffered requests answered with a typed drain error at shutdown.",
        "serve.shutdown" => "SHUTDOWN protocol verbs received.",
        "serve.epoll.wakeups" => "Reactor event-loop iterations.",
        "serve.backpressure.stalls" => "Connections paused at the write-queue high-water mark.",
        "flight.dump.ok" => "Flight-recorder black-box dumps written.",
        "flight.dump.error" => {
            "Flight-recorder dumps that failed (torn writes leave the old file)."
        }
        "serve.flight.recorded" => "Flight records captured since the server started.",
        "serve.flight.dropped" => "Flight records lost to recorder lock contention.",
        "snapshot.write.ok" => "Cache snapshots written at drain time.",
        "snapshot.write.error" => "Cache snapshot writes that failed.",
        "snapshot.write.patterns" => "Patterns serialized into the drain-time cache snapshot.",
        "snapshot.restore.ok" => "Cache snapshots restored at bind time.",
        "snapshot.restore.rejected" => "Cache snapshot restores rejected by validation.",
        // Latency histograms.
        "serve.request" => "Request service time from arrival to response, in seconds.",
        "serve.conn" => "Connection lifetime, in seconds.",
        // Value histograms.
        "serve.epoll.ready" => "Ready events per reactor wakeup.",
        _ => return None,
    })
}

/// Write the `# HELP` line for one metric: curated text when the
/// internal name is known, a generated class description otherwise.
fn write_help(out: &mut String, metric: &str, internal: &str, class: Class) {
    match help_for(internal) {
        Some(text) => {
            let _ = writeln!(out, "# HELP {metric} {text}");
        }
        None => {
            let text = match class {
                Class::Gauge => format!("Current value of the '{internal}' gauge."),
                Class::Counter => {
                    format!("Cumulative count of '{internal}' events since process start.")
                }
                Class::SpanHistogram => {
                    format!("Latency distribution of '{internal}' spans, in seconds.")
                }
                Class::ValueHistogram => format!("Distribution of '{internal}' values."),
            };
            let _ = writeln!(out, "# HELP {metric} {text}");
        }
    }
}

/// `serve.request.ok` → `tpq_serve_request_ok`. Any character outside
/// Prometheus' `[a-zA-Z0-9_:]` set maps to `_`.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("tpq_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Render `snapshot` (plus caller-supplied gauges) as Prometheus text
/// exposition. Lines are sorted by metric name within each class so the
/// output is deterministic; the caller owns any framing terminator.
pub(crate) fn render(snapshot: &Snapshot, gauges: &[(&str, f64)]) -> String {
    let mut out = String::new();

    let mut gauges: Vec<_> = gauges.to_vec();
    gauges.sort_by(|a, b| a.0.cmp(b.0));
    for (name, value) in gauges {
        let internal = name;
        let name = prometheus_name(name);
        write_help(&mut out, &name, internal, Class::Gauge);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", fmt_f64(value));
    }

    let mut counters: Vec<_> = snapshot.counters.clone();
    counters.sort();
    for (name, value) in counters {
        let internal = name;
        let name = prometheus_name(name);
        write_help(&mut out, &format!("{name}_total"), internal, Class::Counter);
        let _ = writeln!(out, "# TYPE {name}_total counter");
        let _ = writeln!(out, "{name}_total {value}");
    }

    // Event-ring losses are always exported, even at zero: silent event
    // loss is exactly what this counter exists to make visible.
    let _ = writeln!(
        out,
        "# HELP tpq_events_dropped_total Events lost to ring write contention since the last reset."
    );
    let _ = writeln!(out, "# TYPE tpq_events_dropped_total counter");
    let _ = writeln!(out, "tpq_events_dropped_total {}", snapshot.events_dropped);

    let mut histograms: Vec<_> = snapshot.histograms.iter().collect();
    histograms.sort_by_key(|(n, _)| *n);
    for (name, h) in histograms {
        if h.count() == 0 {
            continue;
        }
        let internal = *name;
        let name = prometheus_name(name);
        write_help(&mut out, &format!("{name}_seconds"), internal, Class::SpanHistogram);
        let _ = writeln!(out, "# TYPE {name}_seconds histogram");
        let mut cumulative = 0u64;
        for (bound_ns, count) in h.nonzero_buckets() {
            cumulative += count;
            let le = fmt_f64(bound_ns as f64 / 1e9);
            let _ = writeln!(out, "{name}_seconds_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_seconds_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "{name}_seconds_sum {}", fmt_f64(h.sum() as f64 / 1e9));
        let _ = writeln!(out, "{name}_seconds_count {}", h.count());
    }

    // Value distributions are dimensionless, so bucket bounds stay raw
    // (no seconds scaling) and the metric name carries no unit suffix.
    let mut values: Vec<_> = snapshot.values.iter().collect();
    values.sort_by_key(|(n, _)| *n);
    for (name, h) in values {
        if h.count() == 0 {
            continue;
        }
        let internal = *name;
        let name = prometheus_name(name);
        write_help(&mut out, &name, internal, Class::ValueHistogram);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in h.nonzero_buckets() {
            cumulative += count;
            let le = fmt_f64(bound as f64);
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "{name}_sum {}", fmt_f64(h.sum() as f64));
        let _ = writeln!(out, "{name}_count {}", h.count());
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;
    use std::sync::Arc;

    #[test]
    fn name_mapping_replaces_dots_and_dashes() {
        assert_eq!(prometheus_name("serve.request.ok"), "tpq_serve_request_ok");
        assert_eq!(prometheus_name("bad-request"), "tpq_bad_request");
        assert_eq!(prometheus_name("a:b"), "tpq_a:b");
    }

    #[test]
    fn exposition_is_well_formed_and_duplicate_free() {
        let h = Arc::new(Histogram::default());
        h.record(100);
        h.record(2_000_000);
        let snapshot = Snapshot {
            counters: vec![("serve.request.ok", 3), ("serve.request", 5)],
            spans: vec![],
            edges: vec![],
            histograms: vec![("serve.request", Arc::clone(&h)), ("empty", Default::default())],
            values: vec![("serve.epoll.ready", Arc::clone(&h)), ("idle", Default::default())],
            events_dropped: 7,
        };
        let text = render(&snapshot, &[("serve.inflight", 2.0), ("serve.uptime_seconds", 1.5)]);

        // Every # TYPE names a distinct metric.
        let mut typed: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("# TYPE "))
            .map(|l| l.split_whitespace().nth(2).unwrap())
            .collect();
        let before = typed.len();
        typed.sort_unstable();
        typed.dedup();
        assert_eq!(typed.len(), before, "duplicate metric names in exposition");

        // Every # TYPE is immediately preceded by a # HELP for the same
        // metric (the CI scrape check enforces the same invariant live).
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let metric = rest.split_whitespace().next().unwrap();
                let prev = lines.get(i.wrapping_sub(1)).copied().unwrap_or("");
                assert!(
                    prev.starts_with(&format!("# HELP {metric} ")),
                    "no # HELP before '{line}' (saw '{prev}')"
                );
                assert!(
                    prev.len() > format!("# HELP {metric} ").len(),
                    "empty description for {metric}"
                );
            }
        }

        assert!(text.contains("# HELP tpq_serve_inflight Requests currently admitted"));
        assert!(text.contains("# TYPE tpq_serve_inflight gauge"));
        assert!(text.contains("tpq_serve_inflight 2.0"));
        assert!(text.contains("tpq_serve_request_ok_total 3"));
        assert!(text.contains("# TYPE tpq_events_dropped_total counter"));
        assert!(text.contains("tpq_events_dropped_total 7"));
        // Counter/histogram name collision resolved by suffixes.
        assert!(text.contains("tpq_serve_request_total 5"));
        assert!(text.contains("# TYPE tpq_serve_request_seconds histogram"));
        assert!(text.contains("tpq_serve_request_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("tpq_serve_request_seconds_count 2"));
        assert!(!text.contains("tpq_empty"), "empty histograms are omitted");
        // Value histograms export suffix-free with raw bucket bounds.
        assert!(text.contains("# TYPE tpq_serve_epoll_ready histogram"));
        assert!(text.contains("tpq_serve_epoll_ready_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("tpq_serve_epoll_ready_count 2"));
        assert!(!text.contains("tpq_idle"), "empty value histograms are omitted");

        // Bucket counts are cumulative and end at the total.
        let buckets: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("tpq_serve_request_seconds_bucket"))
            .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "buckets not cumulative: {buckets:?}");
        assert_eq!(*buckets.last().unwrap(), 2);
    }

    #[test]
    fn zero_count_value_histograms_are_omitted_entirely() {
        // A registered-but-empty value histogram (record_value was never
        // called, or reset() cleared it) must not leak any exposition
        // lines — no # HELP, no # TYPE, no +Inf bucket. Prometheus
        // histograms with zero observations are legal but noisy; the
        // contract here is omission.
        let snapshot = Snapshot {
            counters: vec![],
            spans: vec![],
            edges: vec![],
            histograms: vec![("quiet.span", Default::default())],
            values: vec![("quiet.values", Default::default())],
            events_dropped: 0,
        };
        let text = render(&snapshot, &[]);
        assert!(!text.contains("quiet_values"), "zero-count value histogram leaked:\n{text}");
        assert!(!text.contains("quiet_span"), "zero-count span histogram leaked:\n{text}");
        // The always-on loss counter is still the only counter present.
        assert!(text.contains("tpq_events_dropped_total 0"));
    }

    #[test]
    fn unknown_names_get_generated_help_descriptions() {
        let snapshot = Snapshot {
            counters: vec![("made.up.counter", 1)],
            spans: vec![],
            edges: vec![],
            histograms: vec![],
            values: vec![],
            events_dropped: 0,
        };
        let text = render(&snapshot, &[("made.up.gauge", 1.0)]);
        assert!(
            text.contains("# HELP tpq_made_up_counter_total Cumulative count of 'made.up.counter'")
        );
        assert!(text.contains("# HELP tpq_made_up_gauge Current value of the 'made.up.gauge'"));
    }
}
