//! Rolling per-second windows: RED rates and windowed latency quantiles.
//!
//! The cumulative counters everywhere else in this crate answer "since
//! boot"; a [`RollingWindow`] answers "in the last minute". It is a
//! 60-slot bucket wheel — one slot per wall-clock second, indexed by
//! `second % 60` — where each slot holds an ok count, per-kind error
//! counts, a shed count, and a latency [`Histogram`]. Recording locks
//! exactly one slot for a few dozen nanoseconds; a slot whose second has
//! rolled over is reset in place before the new sample lands, so stale
//! data ages out without any background sweeper.
//!
//! [`RollingWindow::snapshot`] merges every slot still inside the window
//! into one [`WindowStats`]: RED rates (requests, errors by kind, sheds,
//! per second) and p50/p95/p99 over the merged histogram
//! ([`Histogram::merge_from`]). `tpq serve` surfaces the snapshot in the
//! STATS `window` block and as `tpq_*_1m` gauges in METRICS.
//!
//! Every entry point has a deterministic `*_at` twin taking an explicit
//! second index — tests (and replay tooling) drive the wheel without
//! sleeping through real time; the clocked variants just pass seconds
//! elapsed since construction.

use crate::histogram::Histogram;
use std::sync::Mutex;
use std::time::Instant;

/// Window length in seconds (and the number of wheel slots).
pub const WINDOW_SECONDS: u64 = 60;

/// Marks a slot that has never held a sample.
const EMPTY: u64 = u64::MAX;

/// One second's worth of request outcomes.
struct Slot {
    /// Absolute second (since the wheel's epoch) this slot holds.
    second: u64,
    ok: u64,
    shed: u64,
    /// Error counts by protocol kind, unsorted, tiny.
    errors: Vec<(&'static str, u64)>,
    latency: Histogram,
}

impl Slot {
    fn reset_to(&mut self, second: u64) {
        self.second = second;
        self.ok = 0;
        self.shed = 0;
        self.errors.clear();
        self.latency.clear();
    }
}

/// A 60-slot per-second bucket wheel of request outcomes.
pub struct RollingWindow {
    slots: Vec<Mutex<Slot>>,
    epoch: Instant,
}

impl Default for RollingWindow {
    fn default() -> RollingWindow {
        RollingWindow::new()
    }
}

impl RollingWindow {
    /// A fresh, empty wheel; its epoch (second 0) is now.
    pub fn new() -> RollingWindow {
        RollingWindow {
            slots: (0..WINDOW_SECONDS)
                .map(|_| {
                    Mutex::new(Slot {
                        second: EMPTY,
                        ok: 0,
                        shed: 0,
                        errors: Vec::new(),
                        latency: Histogram::default(),
                    })
                })
                .collect(),
            epoch: Instant::now(),
        }
    }

    /// Seconds elapsed since the wheel's epoch (the current second index).
    pub fn now_second(&self) -> u64 {
        self.epoch.elapsed().as_secs()
    }

    /// Record one successful request with its total latency.
    pub fn record_ok(&self, latency_ns: u64) {
        self.record_ok_at(self.now_second(), latency_ns);
    }

    /// Deterministic twin of [`record_ok`](RollingWindow::record_ok):
    /// record into the slot for an explicit `second`.
    pub fn record_ok_at(&self, second: u64, latency_ns: u64) {
        let mut slot = self.slot(second);
        slot.ok += 1;
        slot.latency.record(latency_ns);
    }

    /// Record one failed request: its protocol error `kind`, whether it
    /// was a shed (admission queue / injected / drain), and its latency.
    pub fn record_error(&self, kind: &'static str, shed: bool, latency_ns: u64) {
        self.record_error_at(self.now_second(), kind, shed, latency_ns);
    }

    /// Deterministic twin of [`record_error`](RollingWindow::record_error).
    pub fn record_error_at(&self, second: u64, kind: &'static str, shed: bool, latency_ns: u64) {
        let mut slot = self.slot(second);
        match slot.errors.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, n)) => *n += 1,
            None => slot.errors.push((kind, 1)),
        }
        if shed {
            slot.shed += 1;
        }
        slot.latency.record(latency_ns);
    }

    /// Lock the wheel slot for `second`, resetting it in place when its
    /// previous occupant has aged out.
    fn slot(&self, second: u64) -> std::sync::MutexGuard<'_, Slot> {
        let idx = (second % WINDOW_SECONDS) as usize;
        let mut slot = self.slots[idx].lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        if slot.second != second {
            slot.reset_to(second);
        }
        slot
    }

    /// Merge everything inside the window ending at the current second.
    pub fn snapshot(&self) -> WindowStats {
        self.snapshot_at(self.now_second())
    }

    /// Deterministic twin of [`snapshot`](RollingWindow::snapshot): merge
    /// the window of [`WINDOW_SECONDS`] seconds ending at `now_second`
    /// inclusive. Slots older than the window — or newer, if a test
    /// recorded "in the future" — are excluded.
    pub fn snapshot_at(&self, now_second: u64) -> WindowStats {
        let merged = Histogram::default();
        let mut stats = WindowStats {
            seconds: (now_second + 1).min(WINDOW_SECONDS),
            ok: 0,
            shed: 0,
            errors: Vec::new(),
            p50_ns: 0,
            p95_ns: 0,
            p99_ns: 0,
        };
        for cell in &self.slots {
            let slot = cell.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            if slot.second == EMPTY
                || slot.second > now_second
                || now_second - slot.second >= WINDOW_SECONDS
            {
                continue;
            }
            stats.ok += slot.ok;
            stats.shed += slot.shed;
            for &(kind, n) in &slot.errors {
                match stats.errors.iter_mut().find(|(k, _)| *k == kind) {
                    Some((_, total)) => *total += n,
                    None => stats.errors.push((kind, n)),
                }
            }
            merged.merge_from(&slot.latency);
        }
        stats.errors.sort_by_key(|&(kind, _)| kind);
        stats.p50_ns = merged.quantile(0.50);
        stats.p95_ns = merged.quantile(0.95);
        stats.p99_ns = merged.quantile(0.99);
        stats
    }
}

/// One merged view of the last [`WINDOW_SECONDS`] (or fewer, early in the
/// process lifetime): RED counts and windowed latency quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowStats {
    /// Seconds the window covers — the rate denominator. Grows from 1 at
    /// boot up to [`WINDOW_SECONDS`], so early rates are not diluted by
    /// time that has not happened yet.
    pub seconds: u64,
    /// Successful requests in the window.
    pub ok: u64,
    /// Failed requests by protocol error kind, sorted by kind.
    pub errors: Vec<(&'static str, u64)>,
    /// Shed requests (a subset of the errors).
    pub shed: u64,
    /// Windowed median latency (ns; 0 when the window is empty).
    pub p50_ns: u64,
    /// Windowed 95th-percentile latency (ns).
    pub p95_ns: u64,
    /// Windowed 99th-percentile latency (ns).
    pub p99_ns: u64,
}

impl WindowStats {
    /// Failed requests in the window, all kinds.
    pub fn error_total(&self) -> u64 {
        self.errors.iter().map(|&(_, n)| n).sum()
    }

    /// All requests in the window (ok + errors).
    pub fn requests(&self) -> u64 {
        self.ok + self.error_total()
    }

    /// Requests per second over the window.
    pub fn request_rate(&self) -> f64 {
        self.requests() as f64 / self.seconds.max(1) as f64
    }

    /// Errors per second over the window.
    pub fn error_rate(&self) -> f64 {
        self.error_total() as f64 / self.seconds.max(1) as f64
    }

    /// Sheds per second over the window.
    pub fn shed_rate(&self) -> f64 {
        self.shed as f64 / self.seconds.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_reset_when_their_second_rolls_over() {
        let w = RollingWindow::new();
        // Latency values below 8 ns sit in exact histogram buckets, so
        // the quantile assertions are exact rather than ~12.5%-rounded.
        w.record_ok_at(3, 5);
        // Same wheel slot (3 + 60), one window later: the old sample must
        // not leak into the new second.
        w.record_ok_at(3 + WINDOW_SECONDS, 7);
        let s = w.snapshot_at(3 + WINDOW_SECONDS);
        assert_eq!(s.ok, 1);
        assert_eq!(s.p50_ns, 7);
    }

    #[test]
    fn rates_use_covered_seconds_not_the_full_window() {
        let w = RollingWindow::new();
        w.record_ok_at(0, 10);
        w.record_ok_at(1, 10);
        let s = w.snapshot_at(1);
        assert_eq!(s.seconds, 2);
        assert_eq!(s.requests(), 2);
        assert!((s.request_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn errors_aggregate_by_kind_and_track_sheds() {
        let w = RollingWindow::new();
        w.record_ok_at(5, 50);
        w.record_error_at(5, "overloaded", true, 1);
        w.record_error_at(6, "overloaded", true, 1);
        w.record_error_at(6, "parse", false, 30);
        let s = w.snapshot_at(6);
        assert_eq!(s.ok, 1);
        assert_eq!(s.errors, vec![("overloaded", 2), ("parse", 1)]);
        assert_eq!(s.shed, 2);
        assert_eq!(s.error_total(), 3);
        assert_eq!(s.requests(), 4);
    }

    #[test]
    fn clocked_entry_points_feed_the_current_second() {
        let w = RollingWindow::new();
        w.record_ok(1_000);
        w.record_error("budget", false, 2_000);
        let s = w.snapshot();
        assert_eq!(s.requests(), 2);
        assert_eq!(s.errors, vec![("budget", 1)]);
    }
}
