//! RAII span guards with thread-local parent attribution.
//!
//! Entering a span pushes a frame on a thread-local stack; dropping the
//! guard pops it, charges the elapsed time to the enclosing frame (so
//! parents can report *self* time, i.e. time not covered by children) and
//! records the completed span into the global registry together with its
//! parent's name.

use crate::registry::Registry;
use std::cell::RefCell;
use std::time::{Duration, Instant};

struct Frame {
    name: &'static str,
    /// Total time of directly-nested child spans, accumulated as they
    /// close.
    child: Duration,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Live span; records itself into the registry when dropped.
///
/// Inert (a no-op on drop) when observability is disabled or the span name
/// does not pass the `TPQ_TRACE` filter — the constructor then does one
/// relaxed atomic load and nothing else.
#[must_use = "a span measures the scope it is alive in; bind it to a variable"]
pub struct SpanGuard {
    active: bool,
    name: &'static str,
    start: Instant,
}

/// Enter a span. Prefer the [`span!`](crate::span!) macro, which reads
/// slightly better at call sites.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    let registry = Registry::global();
    if !registry.enabled.load(std::sync::atomic::Ordering::Relaxed) || !registry.span_allowed(name)
    {
        return SpanGuard { active: false, name, start: Instant::now() };
    }
    STACK.with(|stack| {
        stack.borrow_mut().push(Frame { name, child: Duration::ZERO });
    });
    SpanGuard { active: true, name, start: Instant::now() }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let elapsed = self.start.elapsed();
        let (child_time, parent) = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards are dropped in reverse creation order within a thread,
            // so the top frame is ours (unless a guard was moved across
            // threads — then we conservatively skip attribution).
            match stack.last() {
                Some(top) if top.name == self.name => {
                    let frame = stack.pop().expect("just observed");
                    if let Some(parent) = stack.last_mut() {
                        parent.child += elapsed;
                        (frame.child, Some(parent.name))
                    } else {
                        (frame.child, None)
                    }
                }
                _ => (Duration::ZERO, None),
            }
        });
        let self_time = elapsed.saturating_sub(child_time);
        Registry::global().record_span(self.name, parent, elapsed, self_time);
        // Attribute the span to the active request, if any: a per-request
        // latency breakdown falls out of the event ring without touching
        // the (request-agnostic) aggregates above.
        let trace = crate::event::current_trace();
        if trace != 0 {
            Registry::global().record_event(
                "span",
                trace,
                vec![
                    ("span", crate::FieldValue::Str(self.name)),
                    ("ns", crate::FieldValue::U64(elapsed.as_nanos() as u64)),
                ],
            );
        }
    }
}

/// Enter a span for the rest of the enclosing scope:
/// `let _s = span!("acim.tables");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}
