//! The flight recorder: a fixed-capacity, lock-light ring of completed
//! request records — the serve layer's black box.
//!
//! Counters say *how many*; the slow-query log says *what crossed a
//! threshold*; the flight recorder says *what just happened*, one
//! [`FlightRecord`] per completed request with its per-phase nanosecond
//! breakdown (queue / parse / minimize / render), byte counts, outcome
//! kind, and the cache-hit / shed / backpressure flags. The ring keeps
//! the most recent [`capacity`](FlightRecorder::capacity) records;
//! `tpq serve` drains it over the `TIMELINE` verb and dumps it to disk
//! ([`FlightRecorder::dump`]) on worker panic or SIGUSR1.
//!
//! Writes follow the same lock-light contract as the event ring: one
//! `try_lock` per record, and a contended push is *dropped* and counted
//! ([`FlightRecorder::dropped`]) rather than ever blocking a request
//! thread. Reads ([`FlightRecorder::recent`]) are non-destructive, so a
//! `TIMELINE` drain never erases the black box a later crash dump needs;
//! consumers deduplicate across polls by [`FlightRecord::seq`].

use std::collections::VecDeque;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use tpq_base::{failpoint, Json};

/// Default ring capacity: enough to hold several seconds of traffic at
/// serve-bench rates while keeping the resident set under ~256 KiB.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// One completed request, as the serve layer saw it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// Ring-assigned emission order (gap-free; gaps across `TIMELINE`
    /// polls mean records were evicted or dropped in between).
    pub seq: u64,
    /// Completion wall-clock time, milliseconds since the Unix epoch.
    pub t_unix_ms: u64,
    /// The request's trace id (`0` for requests shed before one was
    /// minted); rendered as 16 hex digits, matching response `trace`
    /// fields and the slow-query log.
    pub trace: u64,
    /// What kind of line this was (`"minimize"`; verbs are not recorded).
    pub verb: &'static str,
    /// Strategy the request ran under, or `"-"` when it never reached
    /// one (parse failures, sheds).
    pub strategy: &'static str,
    /// Nanoseconds between arrival and the start of processing (pool
    /// queue time under the reactor; ~0 on the threaded engine).
    pub queue_ns: u64,
    /// Nanoseconds parsing the request line, query and constraints.
    pub parse_ns: u64,
    /// Nanoseconds in the minimization engine (cache hits included).
    pub minimize_ns: u64,
    /// Nanoseconds rendering the minimized pattern back to DSL text.
    pub render_ns: u64,
    /// Nanoseconds from arrival to completion (the span the `serve.request`
    /// histogram records).
    pub total_ns: u64,
    /// Request line length in bytes (including the newline).
    pub bytes_in: u64,
    /// Response line length in bytes (including the newline).
    pub bytes_out: u64,
    /// `"ok"` or the error kind of the response (`"parse"`, `"budget"`,
    /// `"panic"`, `"overloaded"`, …).
    pub outcome: &'static str,
    /// Whether the minimization was answered from the canonical-pattern
    /// memo cache.
    pub cache_hit: bool,
    /// Whether the request was shed (admission queue, injected fault, or
    /// drain) instead of being processed.
    pub shed: bool,
    /// Whether the connection was paused over its write high-water mark
    /// when the response was delivered (reactor engine only).
    pub backpressure: bool,
}

impl FlightRecord {
    /// One-object JSON rendering; schema in `docs/OBSERVABILITY.md`.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("seq", Json::Int(self.seq as i64)),
            ("t_unix_ms", Json::Int(self.t_unix_ms as i64)),
            (
                "trace",
                if self.trace == 0 { Json::Null } else { Json::Str(crate::trace_hex(self.trace)) },
            ),
            ("verb", Json::Str(self.verb.to_owned())),
            ("strategy", Json::Str(self.strategy.to_owned())),
            (
                "phases_ns",
                Json::object(vec![
                    ("queue", Json::Int(self.queue_ns as i64)),
                    ("parse", Json::Int(self.parse_ns as i64)),
                    ("minimize", Json::Int(self.minimize_ns as i64)),
                    ("render", Json::Int(self.render_ns as i64)),
                ]),
            ),
            ("total_ns", Json::Int(self.total_ns as i64)),
            ("bytes_in", Json::Int(self.bytes_in as i64)),
            ("bytes_out", Json::Int(self.bytes_out as i64)),
            ("outcome", Json::Str(self.outcome.to_owned())),
            ("cache_hit", Json::Bool(self.cache_hit)),
            ("shed", Json::Bool(self.shed)),
            ("backpressure", Json::Bool(self.backpressure)),
        ])
    }
}

/// Render a batch of flight records as JSON lines (one compact object
/// per line, oldest first) — the `TIMELINE` payload and the dump format.
pub fn flight_to_json_lines(records: &[FlightRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json().to_string_compact());
        out.push('\n');
    }
    out
}

/// The seq-assigning interior of the recorder, behind one mutex.
struct Ring {
    records: VecDeque<FlightRecord>,
    next_seq: u64,
}

/// A fixed-capacity ring of [`FlightRecord`]s with lock-light writes.
pub struct FlightRecorder {
    ring: Mutex<Ring>,
    capacity: usize,
    /// Records lost to write-time lock contention (never to eviction).
    dropped: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` records (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            ring: Mutex::new(Ring { records: VecDeque::with_capacity(capacity), next_seq: 0 }),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    /// Ring capacity (oldest records are evicted past this).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record one completed request. The record's `seq` field is
    /// overwritten with the ring-assigned sequence number. When the ring
    /// lock is contended the record is dropped and counted instead of
    /// blocking — a request thread never waits on the recorder.
    pub fn record(&self, mut record: FlightRecord) {
        let Ok(mut ring) = self.ring.try_lock() else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        record.seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.records.len() == self.capacity {
            ring.records.pop_front();
        }
        ring.records.push_back(record);
    }

    /// The newest `n` records, oldest first. Non-destructive: the ring
    /// keeps everything for a later [`dump`](FlightRecorder::dump), and
    /// repeated polls overlap — deduplicate by [`FlightRecord::seq`].
    pub fn recent(&self, n: usize) -> Vec<FlightRecord> {
        let ring = self.ring.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let skip = ring.records.len().saturating_sub(n);
        ring.records.iter().skip(skip).cloned().collect()
    }

    /// Records pushed so far (dropped ones excluded).
    pub fn recorded(&self) -> u64 {
        let ring = self.ring.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        ring.next_seq
    }

    /// Records lost to write-time lock contention.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Dump the whole ring to `path` as JSON lines, atomically: the file
    /// is written next to `path` as `<name>.tmp` and renamed into place,
    /// so a crash (or the `flight.dump` failpoint) mid-write never
    /// clobbers a previous dump with a torn one. Returns the number of
    /// records written.
    pub fn dump(&self, path: &Path) -> std::io::Result<usize> {
        let records = self.recent(usize::MAX);
        let text = flight_to_json_lines(&records);
        let tmp = path.with_file_name(match path.file_name().and_then(|n| n.to_str()) {
            Some(name) => format!("{name}.tmp"),
            None => return Err(std::io::Error::other("flight dump path has no file name")),
        });
        let write_result = (|| -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            // The failpoint models a crash after the tmp file exists but
            // before the rename — the window atomicity must cover.
            failpoint::hit("flight.dump").map_err(std::io::Error::other)?;
            f.sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        if let Err(e) = write_result {
            let _ = std::fs::remove_file(&tmp);
            crate::incr("flight.dump.error", 1);
            return Err(e);
        }
        crate::incr("flight.dump.ok", 1);
        Ok(records.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(outcome: &'static str) -> FlightRecord {
        FlightRecord {
            seq: 0,
            t_unix_ms: 1_700_000_000_000,
            trace: 0x2a,
            verb: "minimize",
            strategy: "full",
            queue_ns: 10,
            parse_ns: 20,
            minimize_ns: 30,
            render_ns: 5,
            total_ns: 65,
            bytes_in: 48,
            bytes_out: 120,
            outcome,
            cache_hit: false,
            shed: false,
            backpressure: false,
        }
    }

    #[test]
    fn ring_assigns_seqs_and_evicts_oldest() {
        let rec = FlightRecorder::new(3);
        for _ in 0..5 {
            rec.record(record("ok"));
        }
        let all = rec.recent(usize::MAX);
        assert_eq!(all.len(), 3, "capacity bounds the ring");
        assert_eq!(all.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(rec.recorded(), 5);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn recent_is_non_destructive_and_takes_the_newest() {
        let rec = FlightRecorder::new(8);
        for _ in 0..4 {
            rec.record(record("ok"));
        }
        let two = rec.recent(2);
        assert_eq!(two.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![2, 3]);
        // Nothing was consumed.
        assert_eq!(rec.recent(usize::MAX).len(), 4);
    }

    #[test]
    fn json_lines_render_one_object_per_record() {
        let rec = FlightRecorder::new(4);
        rec.record(record("ok"));
        rec.record(record("budget"));
        let text = flight_to_json_lines(&rec.recent(usize::MAX));
        assert_eq!(text.lines().count(), 2);
        let first = Json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("seq").and_then(Json::as_i64), Some(0));
        assert_eq!(first.get("outcome").and_then(Json::as_str), Some("ok"));
        assert_eq!(first.get("trace").and_then(Json::as_str), Some("000000000000002a"));
        let phases = first.get("phases_ns").unwrap();
        assert_eq!(phases.get("minimize").and_then(Json::as_i64), Some(30));
        let second = Json::parse(text.lines().nth(1).unwrap()).unwrap();
        assert_eq!(second.get("outcome").and_then(Json::as_str), Some("budget"));
    }

    #[test]
    fn zero_trace_renders_null() {
        let mut r = record("overloaded");
        r.trace = 0;
        r.shed = true;
        assert!(matches!(r.to_json().get("trace"), Some(Json::Null)));
    }

    #[test]
    fn dump_writes_json_lines_atomically() {
        let dir = std::env::temp_dir().join(format!("tpq-flight-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight.jsonl");
        let rec = FlightRecorder::new(4);
        rec.record(record("ok"));
        assert_eq!(rec.dump(&path).unwrap(), 1);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(!path.with_file_name("flight.jsonl.tmp").exists(), "tmp renamed away");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dump_failpoint_leaves_the_previous_dump_intact() {
        let dir = std::env::temp_dir().join(format!("tpq-flight-fp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight.jsonl");
        let rec = FlightRecorder::new(4);
        rec.record(record("ok"));
        rec.dump(&path).unwrap();
        let before = std::fs::read_to_string(&path).unwrap();
        rec.record(record("panic"));
        let _fp = failpoint::arm_for_thread("flight.dump", failpoint::Action::Err, 1);
        assert!(rec.dump(&path).is_err(), "armed failpoint fails the dump");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), before, "old dump survives");
        assert!(!path.with_file_name("flight.jsonl.tmp").exists(), "torn tmp removed");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
