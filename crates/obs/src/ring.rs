//! A bounded, non-blocking ring buffer for [`Event`]s.
//!
//! Writers claim a global sequence number with one `fetch_add`, then try
//! to take the per-slot lock for `seq % capacity`. The lock is only ever
//! *tried* — a writer that loses the race (the slot is mid-write or
//! mid-drain) drops its event and bumps a drop counter instead of
//! blocking, so emission from hot paths can never stall on a reader.
//! Older events are silently overwritten once the ring wraps: the ring
//! answers "what happened recently", not "everything that happened" —
//! the aggregate counters and histograms carry the lossless totals.
//!
//! [`drain`](EventRing::drain) empties every slot and returns the
//! surviving events sorted by sequence number.

use crate::event::Event;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default ring capacity (events), enough to hold the full decision trail
/// of any realistic single minimization.
pub(crate) const DEFAULT_CAPACITY: usize = 4096;

pub(crate) struct EventRing {
    slots: Vec<Mutex<Option<Event>>>,
    /// Next sequence number to assign.
    head: AtomicU64,
    /// Events discarded because their slot was contended at write time
    /// (overwrites of old events are not counted; they are the point).
    dropped: AtomicU64,
}

impl EventRing {
    pub(crate) fn new(capacity: usize) -> EventRing {
        assert!(capacity > 0, "event ring needs at least one slot");
        EventRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Publish one event (its `seq` is assigned here). Never blocks.
    pub(crate) fn push(&self, mut event: Event) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        event.seq = seq;
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        match slot.try_lock() {
            Ok(mut guard) => *guard = Some(event),
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Take every buffered event, oldest first.
    pub(crate) fn drain(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for slot in &self.slots {
            if let Ok(mut guard) = slot.try_lock() {
                if let Some(event) = guard.take() {
                    out.push(event);
                }
            }
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Events lost to write-time contention so far.
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Discard all buffered events and zero the drop counter. The
    /// sequence counter keeps running so post-clear events still sort
    /// after pre-clear ones a reader may have kept.
    pub(crate) fn clear(&self) {
        for slot in &self.slots {
            if let Ok(mut guard) = slot.try_lock() {
                *guard = None;
            }
        }
        self.dropped.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str) -> Event {
        Event { seq: 0, t_ns: 0, trace: 0, name, fields: Vec::new() }
    }

    #[test]
    fn drain_returns_events_in_emission_order() {
        let ring = EventRing::new(8);
        ring.push(ev("a"));
        ring.push(ev("b"));
        ring.push(ev("c"));
        let drained = ring.drain();
        assert_eq!(drained.iter().map(|e| e.name).collect::<Vec<_>>(), ["a", "b", "c"]);
        assert_eq!(drained.iter().map(|e| e.seq).collect::<Vec<_>>(), [0, 1, 2]);
        assert!(ring.drain().is_empty(), "drain empties the ring");
    }

    #[test]
    fn wrapping_overwrites_oldest() {
        let ring = EventRing::new(4);
        for name in ["a", "b", "c", "d", "e", "f"] {
            ring.push(ev(name));
        }
        let drained = ring.drain();
        assert_eq!(drained.iter().map(|e| e.name).collect::<Vec<_>>(), ["c", "d", "e", "f"]);
        assert_eq!(ring.dropped(), 0, "overwrites are not drops");
    }

    #[test]
    fn clear_discards_and_keeps_sequencing() {
        let ring = EventRing::new(4);
        ring.push(ev("a"));
        ring.clear();
        assert!(ring.drain().is_empty());
        ring.push(ev("b"));
        let drained = ring.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].seq, 1, "sequence numbers survive clear");
    }

    #[test]
    fn concurrent_writers_lose_nothing_when_the_ring_is_big_enough() {
        use std::sync::Arc;
        let ring = Arc::new(EventRing::new(1024));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        ring.push(ev("w"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let drained = ring.drain();
        assert_eq!(drained.len() as u64 + ring.dropped(), 400);
        // Slots are uncontended once writers finish, so nothing is lost.
        assert_eq!(ring.dropped(), 0);
    }
}
