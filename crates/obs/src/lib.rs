//! Lightweight observability for the tree-pattern-query workspace.
//!
//! Three ingredients, all process-global and safe to use from any thread:
//!
//! * **Spans** — `let _s = span!("acim.tables");` measures the enclosing
//!   scope with RAII, attributing time to the span *and* the nesting edge
//!   from its parent span (thread-local stack), so reports can show both
//!   totals and self time.
//! * **Counters** — named atomic `u64`s ([`counter`] / [`incr`]).
//! * **Histograms** — every span feeds a log-scale latency histogram;
//!   reports surface p50/p95/p99. Free-standing *value* distributions
//!   ([`record_value`]) cover dimensionless quantities (batch sizes,
//!   epoll ready-event counts) with the same machinery.
//! * **Events** — discrete decision records ([`event`]) in a bounded
//!   non-blocking ring, drained with [`drain_events`]; each carries the
//!   emitting thread's trace id ([`trace_scope`] / [`current_trace`]),
//!   which `tpq serve` mints per request and `tpq explain` uses to
//!   reconstruct why each node was pruned.
//! * **Flight records** — a fixed-capacity ring of completed-request
//!   records ([`FlightRecorder`]) with per-phase timings, drained over
//!   `tpq serve`'s `TIMELINE` verb and dumped as a postmortem black box.
//! * **Rolling windows** — a 60-slot per-second wheel ([`RollingWindow`])
//!   turning request outcomes into RED rates and windowed p50/p95/p99,
//!   for the STATS `window` block and the `tpq_*_1m` METRICS gauges.
//!
//! The whole layer is **disabled by default**: every entry point starts
//! with one relaxed atomic load and bails, so instrumented hot paths cost
//! a branch. Enable via [`set_enabled`] (the `tpq` CLI's `--trace` /
//! `--metrics-json` flags do this) or the environment:
//!
//! * `TPQ_TRACE=1` — record everything; `TPQ_TRACE=acim,cdm` — record only
//!   spans whose name starts with one of the prefixes (counters are always
//!   recorded while enabled);
//! * `TPQ_METRICS=1` — ditto, conventionally used when only the JSON
//!   export matters.
//!
//! Sinks: [`report`] returns a [`Report`] that renders as a flame-style
//! text tree ([`Report::to_text`]) or JSON ([`Report::to_json`]); see
//! `docs/OBSERVABILITY.md` for naming conventions and the JSON schema.
//! The `tpq serve` service keeps the layer enabled for its whole lifetime
//! and embeds [`report`]'s JSON in every `STATS` response, so a running
//! server can be scraped over its own protocol (counters under `serve.*`,
//! request/connection latency histograms under `serve.request` and
//! `serve.conn`).

#![warn(missing_docs)]

mod event;
mod flight;
mod histogram;
mod prom;
mod registry;
mod report;
mod ring;
mod span;
mod window;

pub use event::{
    current_trace, events_to_json_lines, fresh_trace_id, trace_hex, trace_scope, Event, FieldValue,
    TraceScope,
};
pub use flight::{flight_to_json_lines, FlightRecord, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use histogram::Histogram;
pub use prom::prometheus_name;
pub use registry::{Counter, EdgeStat, SpanStat};
pub use report::Report;
pub use span::{span, SpanGuard};
pub use window::{RollingWindow, WindowStats, WINDOW_SECONDS};

use registry::Registry;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Whether the layer is recording.
#[inline]
pub fn enabled() -> bool {
    Registry::global().enabled.load(Ordering::Relaxed)
}

/// Turn recording on or off at runtime (overrides the environment).
pub fn set_enabled(on: bool) {
    Registry::global().enabled.store(on, Ordering::Relaxed);
}

/// Replace the span-name prefix filter (empty = record all spans).
pub fn set_filter(prefixes: Vec<String>) {
    Registry::global().set_filter(prefixes);
}

/// Handle to the named counter; cache it outside hot loops. Counters exist
/// (at value 0) from the first call, even while disabled, so reports can
/// distinguish "never incremented" from "unknown".
pub fn counter(name: &'static str) -> Counter {
    Registry::global().counter(name)
}

/// Add `n` to the named counter, if enabled. Convenience for cold paths —
/// hot loops should cache the [`counter`] handle and pair it with
/// [`enabled`].
#[inline]
pub fn incr(name: &'static str, n: u64) {
    let registry = Registry::global();
    if registry.enabled.load(Ordering::Relaxed) {
        registry.counter(name).add(n);
    }
}

/// Record an externally-measured duration under `name`, as if a span of
/// that length had completed with no parent. For code that already holds
/// an `Instant`-based measurement it cannot restructure into a guard.
pub fn record_duration(name: &'static str, elapsed: Duration) {
    let registry = Registry::global();
    if registry.enabled.load(Ordering::Relaxed) && registry.span_allowed(name) {
        registry.record_span(name, None, elapsed, elapsed);
    }
}

/// Record one sample of a *dimensionless* value distribution — batch
/// sizes, queue lengths, epoll ready-event counts — under `name`.
/// Distinct from the span/duration histograms: the same log-scale
/// [`Histogram`] backs both, but value histograms are reported raw
/// (`values` in the JSON report, suffix-free in the Prometheus
/// exposition) instead of being scaled to seconds.
#[inline]
pub fn record_value(name: &'static str, value: u64) {
    let registry = Registry::global();
    if registry.enabled.load(Ordering::Relaxed) {
        registry.value_histogram(name).record(value);
    }
}

/// Emit a structured [`Event`] into the process-global ring, if enabled.
/// Field keys and string values are `&'static str`, so the disabled path
/// is one relaxed load and the enabled path allocates only the field
/// vector. The emitting thread's [`current_trace`] id is attached.
#[inline]
pub fn event(name: &'static str, fields: &[(&'static str, FieldValue)]) {
    let registry = Registry::global();
    if registry.enabled.load(Ordering::Relaxed) {
        registry.record_event(name, event::current_trace(), fields.to_vec());
    }
}

/// Take every buffered event (oldest first), emptying the ring. The ring
/// is process-global and bounded: concurrent emitters keep writing while
/// a drain runs, and old events are overwritten once it wraps.
pub fn drain_events() -> Vec<Event> {
    Registry::global().drain_events()
}

/// Events lost to write-time slot contention since the last [`reset`]
/// (overwrites of old events when the ring wraps are not counted).
pub fn events_dropped() -> u64 {
    Registry::global().events_dropped()
}

/// Snapshot everything recorded so far.
pub fn report() -> Report {
    Report::new(Registry::global().snapshot())
}

/// Render the current registry state as Prometheus text exposition,
/// appending the caller's gauge readings (name, value). Counters map to
/// `tpq_*_total`, span histograms to `tpq_*_seconds`; see
/// [`prometheus_name`] for the name mangling.
pub fn prometheus(gauges: &[(&str, f64)]) -> String {
    report().to_prometheus(gauges)
}

/// Clear all recorded data (counters zero in place so cached handles stay
/// live, histograms and span aggregates empty, the event ring discards
/// its contents). Enabled state and filter are preserved. Meant for
/// benches and tests that need per-run isolation.
pub fn reset() {
    Registry::global().reset();
}
