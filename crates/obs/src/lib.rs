//! Lightweight observability for the tree-pattern-query workspace.
//!
//! Three ingredients, all process-global and safe to use from any thread:
//!
//! * **Spans** — `let _s = span!("acim.tables");` measures the enclosing
//!   scope with RAII, attributing time to the span *and* the nesting edge
//!   from its parent span (thread-local stack), so reports can show both
//!   totals and self time.
//! * **Counters** — named atomic `u64`s ([`counter`] / [`incr`]).
//! * **Histograms** — every span feeds a log-scale latency histogram;
//!   reports surface p50/p95/p99.
//!
//! The whole layer is **disabled by default**: every entry point starts
//! with one relaxed atomic load and bails, so instrumented hot paths cost
//! a branch. Enable via [`set_enabled`] (the `tpq` CLI's `--trace` /
//! `--metrics-json` flags do this) or the environment:
//!
//! * `TPQ_TRACE=1` — record everything; `TPQ_TRACE=acim,cdm` — record only
//!   spans whose name starts with one of the prefixes (counters are always
//!   recorded while enabled);
//! * `TPQ_METRICS=1` — ditto, conventionally used when only the JSON
//!   export matters.
//!
//! Sinks: [`report`] returns a [`Report`] that renders as a flame-style
//! text tree ([`Report::to_text`]) or JSON ([`Report::to_json`]); see
//! `docs/OBSERVABILITY.md` for naming conventions and the JSON schema.
//! The `tpq serve` service keeps the layer enabled for its whole lifetime
//! and embeds [`report`]'s JSON in every `STATS` response, so a running
//! server can be scraped over its own protocol (counters under `serve.*`,
//! request/connection latency histograms under `serve.request` and
//! `serve.conn`).

mod histogram;
mod registry;
mod report;
mod span;

pub use histogram::Histogram;
pub use registry::{Counter, EdgeStat, SpanStat};
pub use report::Report;
pub use span::{span, SpanGuard};

use registry::Registry;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Whether the layer is recording.
#[inline]
pub fn enabled() -> bool {
    Registry::global().enabled.load(Ordering::Relaxed)
}

/// Turn recording on or off at runtime (overrides the environment).
pub fn set_enabled(on: bool) {
    Registry::global().enabled.store(on, Ordering::Relaxed);
}

/// Replace the span-name prefix filter (empty = record all spans).
pub fn set_filter(prefixes: Vec<String>) {
    Registry::global().set_filter(prefixes);
}

/// Handle to the named counter; cache it outside hot loops. Counters exist
/// (at value 0) from the first call, even while disabled, so reports can
/// distinguish "never incremented" from "unknown".
pub fn counter(name: &'static str) -> Counter {
    Registry::global().counter(name)
}

/// Add `n` to the named counter, if enabled. Convenience for cold paths —
/// hot loops should cache the [`counter`] handle and pair it with
/// [`enabled`].
#[inline]
pub fn incr(name: &'static str, n: u64) {
    let registry = Registry::global();
    if registry.enabled.load(Ordering::Relaxed) {
        registry.counter(name).add(n);
    }
}

/// Record an externally-measured duration under `name`, as if a span of
/// that length had completed with no parent. For code that already holds
/// an `Instant`-based measurement it cannot restructure into a guard.
pub fn record_duration(name: &'static str, elapsed: Duration) {
    let registry = Registry::global();
    if registry.enabled.load(Ordering::Relaxed) && registry.span_allowed(name) {
        registry.record_span(name, None, elapsed, elapsed);
    }
}

/// Snapshot everything recorded so far.
pub fn report() -> Report {
    Report::new(Registry::global().snapshot())
}

/// Clear all recorded data (counters zero in place so cached handles stay
/// live). Enabled state and filter are preserved. Meant for benches and
/// tests that need per-run isolation.
pub fn reset() {
    Registry::global().reset();
}
