//! Structured decision events and per-request trace identity.
//!
//! An [`Event`] is one discrete fact about a run — "the chase applied
//! `Section ->> Paragraph` at node 4", "CIM pruned node 2 with witness
//! node 7" — as opposed to the aggregate spans and counters the rest of
//! the crate keeps. Events carry a monotonic timestamp (nanoseconds since
//! the registry was first touched), the emitting thread's current *trace
//! id*, a static name and a small list of static-keyed fields.
//!
//! Trace ids are plain `u64`s; `0` means "no trace". A scope is
//! established with [`trace_scope`] (RAII, thread-local) and read back
//! with [`current_trace`]; `tpq serve` mints one per request with
//! [`fresh_trace_id`] and re-establishes it on the worker thread that
//! executes the request, so every event (and span-close event) on the
//! request's path carries the request's id. `tpq explain` does the same
//! for one in-process minimization and then drains the ring filtered by
//! its own id.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use tpq_base::Json;

/// One field value: events deal only in integers and static strings so
/// emitting one never formats or allocates per field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldValue {
    /// An unsigned integer (node ids, type ids, sizes, nanoseconds).
    U64(u64),
    /// A static string (operators, rule names).
    Str(&'static str),
}

impl FieldValue {
    fn to_json(self) -> Json {
        match self {
            FieldValue::U64(n) => Json::Int(n as i64),
            FieldValue::Str(s) => Json::Str(s.to_owned()),
        }
    }
}

/// One structured decision event, as drained from the ring.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global emission order (gap-free counter; gaps in a drained batch
    /// mean events were overwritten or dropped).
    pub seq: u64,
    /// Nanoseconds since the registry was first touched (monotonic).
    pub t_ns: u64,
    /// Trace id active on the emitting thread; `0` = none.
    pub trace: u64,
    /// Event name (`chase.apply`, `cim.prune`, `cdm.prune`, …).
    pub name: &'static str,
    /// Static-keyed fields, in emission order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }

    /// Look up an integer field by key.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        match self.field(key) {
            Some(FieldValue::U64(n)) => Some(n),
            _ => None,
        }
    }

    /// Look up a string field by key.
    pub fn str_field(&self, key: &str) -> Option<&'static str> {
        match self.field(key) {
            Some(FieldValue::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// One-object JSON rendering (schema in `docs/OBSERVABILITY.md`).
    pub fn to_json(&self) -> Json {
        let fields = self.fields.iter().map(|&(k, v)| (k, v.to_json())).collect::<Vec<_>>();
        Json::object(vec![
            ("seq", Json::Int(self.seq as i64)),
            ("t_ns", Json::Int(self.t_ns as i64)),
            ("trace", if self.trace == 0 { Json::Null } else { Json::Str(trace_hex(self.trace)) }),
            ("name", Json::Str(self.name.to_owned())),
            ("fields", Json::object(fields)),
        ])
    }
}

/// Render a batch of events as JSON lines (one compact object per line).
pub fn events_to_json_lines(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json().to_string_compact());
        out.push('\n');
    }
    out
}

/// Canonical 16-hex-digit rendering of a trace id.
pub fn trace_hex(trace: u64) -> String {
    format!("{trace:016x}")
}

thread_local! {
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

/// The trace id active on this thread (`0` = none).
#[inline]
pub fn current_trace() -> u64 {
    CURRENT_TRACE.with(Cell::get)
}

/// RAII guard from [`trace_scope`]; restores the previous trace id on drop.
#[must_use = "a trace scope covers the scope it is alive in; bind it to a variable"]
pub struct TraceScope {
    prev: u64,
}

/// Make `trace` the current trace id for this thread until the returned
/// guard drops (scopes nest; the previous id is restored). Crossing a
/// thread boundary — a pool worker, a scoped spawn — does *not* carry the
/// id over: capture [`current_trace`] before the hop and re-establish a
/// scope on the other side.
pub fn trace_scope(trace: u64) -> TraceScope {
    let prev = CURRENT_TRACE.with(|cell| cell.replace(trace));
    TraceScope { prev }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|cell| cell.set(self.prev));
    }
}

/// Mint a process-unique, non-zero trace id.
pub fn fresh_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_scopes_nest_and_restore() {
        assert_eq!(current_trace(), 0);
        let outer = trace_scope(7);
        assert_eq!(current_trace(), 7);
        {
            let _inner = trace_scope(9);
            assert_eq!(current_trace(), 9);
        }
        assert_eq!(current_trace(), 7);
        drop(outer);
        assert_eq!(current_trace(), 0);
    }

    #[test]
    fn fresh_ids_are_distinct_and_nonzero() {
        let a = fresh_trace_id();
        let b = fresh_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn event_json_shape() {
        let e = Event {
            seq: 3,
            t_ns: 125,
            trace: 0xab,
            name: "cim.prune",
            fields: vec![("node", FieldValue::U64(2)), ("op", FieldValue::Str("->"))],
        };
        let json = e.to_json();
        assert_eq!(json.get("seq").and_then(Json::as_i64), Some(3));
        assert_eq!(json.get("trace").and_then(Json::as_str), Some("00000000000000ab"));
        let fields = json.get("fields").unwrap();
        assert_eq!(fields.get("node").and_then(Json::as_i64), Some(2));
        assert_eq!(fields.get("op").and_then(Json::as_str), Some("->"));
        assert_eq!(e.u64_field("node"), Some(2));
        assert_eq!(e.str_field("op"), Some("->"));
        assert_eq!(e.field("missing"), None);
    }

    #[test]
    fn untraced_event_renders_null_trace() {
        let e = Event { seq: 0, t_ns: 0, trace: 0, name: "x", fields: vec![] };
        assert!(matches!(e.to_json().get("trace"), Some(Json::Null)));
        assert_eq!(events_to_json_lines(&[e]).lines().count(), 1);
    }
}
