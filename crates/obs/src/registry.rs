//! The process-wide metrics registry.
//!
//! All state is keyed by `&'static str` names. Counters and histogram
//! buckets are atomics shared out behind `Arc`, so the hot path after the
//! first lookup is a single `fetch_add`; the maps themselves sit behind
//! `Mutex`es that are only taken on lookup, registration, reset and
//! reporting.

use crate::event::{Event, FieldValue};
use crate::histogram::Histogram;
use crate::ring::{EventRing, DEFAULT_CAPACITY};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanStat {
    /// Number of completed spans.
    pub count: u64,
    /// Total wall time, nanoseconds.
    pub total_ns: u64,
    /// Wall time not attributed to child spans, nanoseconds.
    pub self_ns: u64,
}

/// Aggregated statistics for one (parent, child) span nesting edge.
/// `parent` is `None` for spans entered with no enclosing span.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgeStat {
    /// Times the child completed directly under this parent.
    pub count: u64,
    /// Total child wall time under this parent, nanoseconds.
    pub total_ns: u64,
}

/// A handle to a named counter. Cloning is cheap; increments are a single
/// atomic add, so handles can be cached across hot loops.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

pub(crate) struct Registry {
    pub(crate) enabled: AtomicBool,
    /// Span-name prefixes to record; empty means record everything.
    filter: Mutex<Vec<String>>,
    counters: Mutex<HashMap<&'static str, Arc<AtomicU64>>>,
    histograms: Mutex<HashMap<&'static str, Arc<Histogram>>>,
    /// Distributions of dimensionless values (batch sizes, ready-event
    /// counts), as opposed to `histograms`, which hold span latencies
    /// in nanoseconds.
    values: Mutex<HashMap<&'static str, Arc<Histogram>>>,
    spans: Mutex<HashMap<&'static str, SpanStat>>,
    edges: Mutex<HashMap<(Option<&'static str>, &'static str), EdgeStat>>,
    events: EventRing,
    /// Origin of event timestamps (the registry's first touch).
    epoch: Instant,
}

impl Registry {
    pub(crate) fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let trace = std::env::var("TPQ_TRACE").ok();
            let metrics = std::env::var("TPQ_METRICS").ok();
            let enabled = is_on(trace.as_deref()) || is_on(metrics.as_deref());
            Registry {
                enabled: AtomicBool::new(enabled),
                filter: Mutex::new(parse_filter(trace.as_deref())),
                counters: Mutex::new(HashMap::new()),
                histograms: Mutex::new(HashMap::new()),
                values: Mutex::new(HashMap::new()),
                spans: Mutex::new(HashMap::new()),
                edges: Mutex::new(HashMap::new()),
                events: EventRing::new(DEFAULT_CAPACITY),
                epoch: Instant::now(),
            }
        })
    }

    pub(crate) fn counter(&self, name: &'static str) -> Counter {
        let mut map = self.counters.lock().expect("counter map poisoned");
        Counter { cell: Arc::clone(map.entry(name).or_default()) }
    }

    pub(crate) fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram map poisoned");
        Arc::clone(map.entry(name).or_default())
    }

    pub(crate) fn value_histogram(&self, name: &'static str) -> Arc<Histogram> {
        let mut map = self.values.lock().expect("value map poisoned");
        Arc::clone(map.entry(name).or_default())
    }

    pub(crate) fn span_allowed(&self, name: &str) -> bool {
        let filter = self.filter.lock().expect("filter poisoned");
        filter.is_empty() || filter.iter().any(|p| name.starts_with(p.as_str()))
    }

    pub(crate) fn record_span(
        &self,
        name: &'static str,
        parent: Option<&'static str>,
        total: Duration,
        self_time: Duration,
    ) {
        let total_ns = total.as_nanos() as u64;
        {
            let mut spans = self.spans.lock().expect("span map poisoned");
            let stat = spans.entry(name).or_default();
            stat.count += 1;
            stat.total_ns += total_ns;
            stat.self_ns += self_time.as_nanos() as u64;
        }
        {
            let mut edges = self.edges.lock().expect("edge map poisoned");
            let edge = edges.entry((parent, name)).or_default();
            edge.count += 1;
            edge.total_ns += total_ns;
        }
        self.histogram(name).record(total_ns);
    }

    /// Publish one event into the ring (`seq` is assigned by the ring).
    pub(crate) fn record_event(
        &self,
        name: &'static str,
        trace: u64,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        let t_ns = self.epoch.elapsed().as_nanos() as u64;
        self.events.push(Event { seq: 0, t_ns, trace, name, fields });
    }

    pub(crate) fn drain_events(&self) -> Vec<Event> {
        self.events.drain()
    }

    pub(crate) fn events_dropped(&self) -> u64 {
        self.events.dropped()
    }

    pub(crate) fn set_filter(&self, prefixes: Vec<String>) {
        *self.filter.lock().expect("filter poisoned") = prefixes;
    }

    pub(crate) fn reset(&self) {
        // Zero counters and histograms in place so cached handles stay
        // valid; drop span aggregates entirely.
        for cell in self.counters.lock().expect("counter map poisoned").values() {
            cell.store(0, Ordering::Relaxed);
        }
        for h in self.histograms.lock().expect("histogram map poisoned").values() {
            h.clear();
        }
        for h in self.values.lock().expect("value map poisoned").values() {
            h.clear();
        }
        self.spans.lock().expect("span map poisoned").clear();
        self.edges.lock().expect("edge map poisoned").clear();
        self.events.clear();
    }

    pub(crate) fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter map poisoned")
            .iter()
            .map(|(&name, cell)| (name, cell.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram map poisoned")
            .iter()
            .map(|(&name, h)| (name, Arc::clone(h)))
            .collect();
        let spans = self
            .spans
            .lock()
            .expect("span map poisoned")
            .iter()
            .map(|(&name, &stat)| (name, stat))
            .collect();
        let values = self
            .values
            .lock()
            .expect("value map poisoned")
            .iter()
            .map(|(&name, h)| (name, Arc::clone(h)))
            .collect();
        let edges = self
            .edges
            .lock()
            .expect("edge map poisoned")
            .iter()
            .map(|(&key, &stat)| (key, stat))
            .collect();
        Snapshot {
            counters,
            spans,
            edges,
            histograms,
            values,
            events_dropped: self.events.dropped(),
        }
    }
}

/// A point-in-time copy of everything the registry holds, from which the
/// report sinks render.
pub struct Snapshot {
    /// Counter values by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Span aggregates by name.
    pub spans: Vec<(&'static str, SpanStat)>,
    /// Nesting edges: `((parent, child), stat)`.
    pub edges: Vec<((Option<&'static str>, &'static str), EdgeStat)>,
    /// Latency histograms by span name.
    pub histograms: Vec<(&'static str, Arc<Histogram>)>,
    /// Dimensionless value distributions by name (see
    /// [`crate::record_value`]): batch sizes, ready-event counts.
    pub values: Vec<(&'static str, Arc<Histogram>)>,
    /// Events lost to write-time ring contention since the last reset.
    /// Surfaced so silent event loss is visible in every sink.
    pub events_dropped: u64,
}

fn is_on(var: Option<&str>) -> bool {
    match var {
        None => false,
        Some("0") | Some("false") | Some("off") => false,
        Some(_) => true,
    }
}

fn parse_filter(trace: Option<&str>) -> Vec<String> {
    match trace {
        // "1"/"true"/"on" (or empty) mean "everything", i.e. no filter.
        None | Some("" | "1" | "true" | "on" | "0" | "false" | "off") => Vec::new(),
        Some(list) => {
            list.split(',').map(str::trim).filter(|s| !s.is_empty()).map(str::to_owned).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_value_interpretation() {
        assert!(!is_on(None));
        assert!(!is_on(Some("0")));
        assert!(!is_on(Some("off")));
        assert!(is_on(Some("1")));
        assert!(is_on(Some("acim,cdm")));
    }

    #[test]
    fn filter_parsing() {
        assert!(parse_filter(None).is_empty());
        assert!(parse_filter(Some("1")).is_empty());
        assert_eq!(parse_filter(Some("acim, cdm")), vec!["acim", "cdm"]);
        assert_eq!(parse_filter(Some("a,,b")), vec!["a", "b"]);
    }
}
