//! Report sinks: flame-style text and JSON.

use crate::registry::{EdgeStat, Snapshot, SpanStat};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use tpq_base::Json;

/// A rendered view over one registry snapshot.
pub struct Report {
    snapshot: Snapshot,
}

impl Report {
    pub(crate) fn new(snapshot: Snapshot) -> Report {
        Report { snapshot }
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.snapshot.spans.is_empty() && self.snapshot.counters.iter().all(|(_, v)| *v == 0)
    }

    /// Aggregate stats for one span, if it completed at least once.
    pub fn span(&self, name: &str) -> Option<SpanStat> {
        self.snapshot.spans.iter().find(|(n, _)| *n == name).map(|&(_, stat)| stat)
    }

    /// Value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.snapshot.counters.iter().find(|(n, _)| *n == name).map_or(0, |&(_, v)| v)
    }

    /// Events lost to write-time ring contention at snapshot time.
    pub fn events_dropped(&self) -> u64 {
        self.snapshot.events_dropped
    }

    /// The value at quantile `q` (in `[0, 1]`, nanoseconds) of the named
    /// span's latency histogram; `None` when the span never completed.
    /// This is the bridge the bench harness uses to turn a live registry
    /// into persisted latency panels (p50/p95/p99 of `serve.request`).
    pub fn histogram_quantile(&self, name: &str, q: f64) -> Option<u64> {
        self.histogram(name).map(|h| h.quantile(q))
    }

    /// Number of samples in the named span's latency histogram.
    pub fn histogram_count(&self, name: &str) -> Option<u64> {
        self.histogram(name).map(|h| h.count())
    }

    /// The named latency histogram, if it holds at least one sample.
    fn histogram(&self, name: &str) -> Option<&Arc<crate::Histogram>> {
        self.snapshot.histograms.iter().find(|(n, h)| *n == name && h.count() > 0).map(|(_, h)| h)
    }

    /// The value at quantile `q` of the named *value* distribution (see
    /// [`crate::record_value`]); `None` when it has no samples.
    pub fn value_quantile(&self, name: &str, q: f64) -> Option<u64> {
        self.value_histogram(name).map(|h| h.quantile(q))
    }

    /// Number of samples in the named value distribution.
    pub fn value_count(&self, name: &str) -> Option<u64> {
        self.value_histogram(name).map(|h| h.count())
    }

    /// The named value distribution, if it holds at least one sample.
    fn value_histogram(&self, name: &str) -> Option<&Arc<crate::Histogram>> {
        self.snapshot.values.iter().find(|(n, h)| *n == name && h.count() > 0).map(|(_, h)| h)
    }

    /// Stats of the nesting edge `parent → child` (`None` parent = root).
    pub fn edge(&self, parent: Option<&str>, child: &str) -> Option<EdgeStat> {
        self.snapshot
            .edges
            .iter()
            .find(|((p, c), _)| *c == child && p.as_deref() == parent)
            .map(|&(_, stat)| stat)
    }

    /// Flame-style text report: the span tree indented by nesting (children
    /// sorted by time, shares relative to the parent), then counters, then
    /// per-span latency percentiles.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if self.snapshot.spans.is_empty() && self.snapshot.counters.is_empty() {
            return "no observations recorded (is TPQ_TRACE/TPQ_METRICS set?)\n".into();
        }

        // children[parent] = [(child, edge)]
        let mut children: HashMap<Option<&str>, Vec<(&str, EdgeStat)>> = HashMap::new();
        for &((parent, child), stat) in &self.snapshot.edges {
            children.entry(parent).or_default().push((child, stat));
        }
        for list in children.values_mut() {
            list.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
        }
        let spans: HashMap<&str, SpanStat> =
            self.snapshot.spans.iter().map(|&(n, s)| (n, s)).collect();

        let _ =
            writeln!(out, "{:<42} {:>10} {:>10} {:>8}  share", "span", "total", "self", "calls");
        // Iterative DFS over the edge tree. All columns are per *edge*
        // (this parent → this child), so a span reached from several
        // parents shows each call path's own time; `share` is the edge's
        // portion of its parent's total. Self time is tracked per span,
        // so it is attributed to each edge proportionally to the edge's
        // share of the span's total time.
        let mut stack: Vec<(&str, usize, EdgeStat, u64)> = Vec::new();
        let mut roots = children.get(&None).cloned().unwrap_or_default();
        let root_total: u64 = roots.iter().map(|(_, e)| e.total_ns).sum();
        roots.reverse();
        for (name, edge) in roots {
            stack.push((name, 0, edge, root_total));
        }
        let mut guard = 0usize;
        while let Some((name, depth, edge, parent_ns)) = stack.pop() {
            guard += 1;
            if guard > 10_000 {
                let _ = writeln!(out, "... (span tree truncated)");
                break;
            }
            let stat = spans.get(name).copied().unwrap_or_default();
            let self_ns = if stat.total_ns == 0 {
                0
            } else {
                (stat.self_ns as u128 * edge.total_ns as u128 / stat.total_ns as u128) as u64
            };
            let share = if parent_ns == 0 {
                100.0
            } else {
                edge.total_ns as f64 / parent_ns as f64 * 100.0
            };
            let _ = writeln!(
                out,
                "{:<42} {:>10} {:>10} {:>8}  {share:>5.1}%",
                format!("{}{}", "  ".repeat(depth), name),
                fmt_ns(edge.total_ns),
                fmt_ns(self_ns),
                edge.count,
            );
            if depth >= 32 {
                continue; // degenerate recursion; keep the report bounded
            }
            if let Some(kids) = children.get(&Some(name)) {
                for &(child, child_edge) in kids.iter().rev() {
                    stack.push((child, depth + 1, child_edge, edge.total_ns));
                }
            }
        }

        let mut counters: Vec<_> = self.snapshot.counters.clone();
        counters.sort();
        if counters.iter().any(|(_, v)| *v > 0) {
            let _ = writeln!(out, "\ncounters (cumulative since process start)");
            for (name, value) in counters {
                if value > 0 {
                    let _ = writeln!(out, "  {name:<40} {value:>10}");
                }
            }
        }

        let mut histograms: Vec<_> =
            self.snapshot.histograms.iter().filter(|(_, h)| h.count() > 0).collect();
        histograms.sort_by_key(|(n, _)| *n);
        if !histograms.is_empty() {
            let _ = writeln!(
                out,
                "\n{:<42} {:>10} {:>10} {:>10} {:>8}",
                "latency", "p50", "p95", "p99", "count"
            );
            for (name, h) in histograms {
                let _ = writeln!(
                    out,
                    "{:<42} {:>10} {:>10} {:>10} {:>8}",
                    name,
                    fmt_ns(h.quantile(0.50)),
                    fmt_ns(h.quantile(0.95)),
                    fmt_ns(h.quantile(0.99)),
                    h.count(),
                );
            }
        }

        let mut values: Vec<_> =
            self.snapshot.values.iter().filter(|(_, h)| h.count() > 0).collect();
        values.sort_by_key(|(n, _)| *n);
        if !values.is_empty() {
            let _ = writeln!(
                out,
                "\n{:<42} {:>10} {:>10} {:>10} {:>8}",
                "value", "p50", "p95", "p99", "count"
            );
            for (name, h) in values {
                let _ = writeln!(
                    out,
                    "{:<42} {:>10} {:>10} {:>10} {:>8}",
                    name,
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.quantile(0.99),
                    h.count(),
                );
            }
        }
        out
    }

    /// JSON export (schema documented in `docs/OBSERVABILITY.md`).
    pub fn to_json(&self) -> Json {
        let histograms: HashMap<&str, &Arc<crate::Histogram>> =
            self.snapshot.histograms.iter().map(|(n, h)| (*n, h)).collect();
        let micros = |ns: u64| Json::Float(ns as f64 / 1e3);

        let mut spans: Vec<_> = self.snapshot.spans.clone();
        spans.sort_by_key(|(n, _)| *n);
        let spans = spans
            .into_iter()
            .map(|(name, stat)| {
                let mut members = vec![
                    ("name", Json::Str(name.to_string())),
                    ("count", Json::Int(stat.count as i64)),
                    ("total_micros", micros(stat.total_ns)),
                    ("self_micros", micros(stat.self_ns)),
                ];
                if let Some(h) = histograms.get(name) {
                    members.push(("p50_micros", micros(h.quantile(0.50))));
                    members.push(("p95_micros", micros(h.quantile(0.95))));
                    members.push(("p99_micros", micros(h.quantile(0.99))));
                }
                Json::object(members)
            })
            .collect();

        let mut edges: Vec<_> = self.snapshot.edges.clone();
        edges.sort_by_key(|&((p, c), _)| (p, c));
        let edges = edges
            .into_iter()
            .map(|((parent, child), stat)| {
                Json::object(vec![
                    ("parent", parent.map_or(Json::Null, |p| Json::Str(p.to_string()))),
                    ("child", Json::Str(child.to_string())),
                    ("count", Json::Int(stat.count as i64)),
                    ("total_micros", micros(stat.total_ns)),
                ])
            })
            .collect();

        let mut counters: Vec<_> = self.snapshot.counters.clone();
        counters.sort();
        let counters = counters
            .into_iter()
            .map(|(name, value)| {
                Json::object(vec![
                    ("name", Json::Str(name.to_string())),
                    ("value", Json::Int(value as i64)),
                ])
            })
            .collect();

        let mut values: Vec<_> =
            self.snapshot.values.iter().filter(|(_, h)| h.count() > 0).collect();
        values.sort_by_key(|(n, _)| *n);
        let values = values
            .into_iter()
            .map(|(name, h)| {
                Json::object(vec![
                    ("name", Json::Str((*name).to_string())),
                    ("count", Json::Int(h.count() as i64)),
                    ("p50", Json::Int(h.quantile(0.50) as i64)),
                    ("p95", Json::Int(h.quantile(0.95) as i64)),
                    ("p99", Json::Int(h.quantile(0.99) as i64)),
                ])
            })
            .collect();

        Json::object(vec![
            ("spans", Json::Array(spans)),
            ("edges", Json::Array(edges)),
            ("counters", Json::Array(counters)),
            ("values", Json::Array(values)),
            // Counters (and spans) are never windowed: values accumulate
            // from process start until an explicit `reset()`.
            ("counters_note", Json::Str("cumulative since process start".to_owned())),
            ("events_dropped", Json::Int(self.snapshot.events_dropped as i64)),
        ])
    }

    /// Prometheus text exposition of this snapshot, with caller-supplied
    /// gauge readings appended. See [`crate::prometheus`].
    pub fn to_prometheus(&self, gauges: &[(&str, f64)]) -> String {
        crate::prom::render(&self.snapshot, gauges)
    }
}

fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_json_escapes_quotes_and_backslashes_in_names() {
        let name: &'static str = "weird\"name\\with.quotes";
        let snapshot = Snapshot {
            counters: vec![(name, 2)],
            spans: vec![(name, SpanStat { count: 1, total_ns: 5, self_ns: 5 })],
            edges: vec![((None, name), EdgeStat { count: 1, total_ns: 5 })],
            histograms: vec![],
            values: vec![],
            events_dropped: 0,
        };
        let text = Report::new(snapshot).to_json().to_string_compact();
        assert!(text.contains(r#"weird\"name\\with.quotes"#), "raw text: {text}");
        // The authoritative check: the serialized report re-parses and the
        // names round-trip unmangled.
        let parsed = Json::parse(&text).expect("escaped report must re-parse");
        let Some(Json::Array(spans)) = parsed.get("spans") else { panic!("spans array") };
        assert_eq!(spans[0].get("name").and_then(Json::as_str), Some(name));
        let Some(Json::Array(counters)) = parsed.get("counters") else { panic!("counters array") };
        assert_eq!(counters[0].get("name").and_then(Json::as_str), Some(name));
        let Some(Json::Array(edges)) = parsed.get("edges") else { panic!("edges array") };
        assert_eq!(edges[0].get("child").and_then(Json::as_str), Some(name));
    }

    #[test]
    fn sinks_state_that_counters_are_cumulative() {
        let snapshot = Snapshot {
            counters: vec![("c", 1)],
            spans: vec![],
            edges: vec![],
            histograms: vec![],
            values: vec![],
            events_dropped: 0,
        };
        let report = Report::new(snapshot);
        assert!(report.to_text().contains("cumulative since process start"));
        let note = report.to_json().get("counters_note").and_then(Json::as_str).map(str::to_owned);
        assert_eq!(note.as_deref(), Some("cumulative since process start"));
    }

    #[test]
    fn report_exposes_event_drops_and_histogram_quantiles() {
        let h = Arc::new(crate::Histogram::default());
        for v in [100u64, 200, 400, 800] {
            h.record(v);
        }
        let snapshot = Snapshot {
            counters: vec![],
            spans: vec![],
            edges: vec![],
            histograms: vec![("serve.request", Arc::clone(&h)), ("idle", Default::default())],
            values: vec![("serve.epoll.ready", Arc::clone(&h))],
            events_dropped: 3,
        };
        let report = Report::new(snapshot);
        assert_eq!(report.events_dropped(), 3);
        assert_eq!(report.value_count("serve.epoll.ready"), Some(4));
        assert!(report.value_quantile("serve.epoll.ready", 0.5).is_some());
        assert_eq!(report.value_quantile("nope", 0.5), None);
        assert_eq!(report.to_json().get("events_dropped").and_then(Json::as_i64), Some(3));
        assert_eq!(report.histogram_count("serve.request"), Some(4));
        let p50 = report.histogram_quantile("serve.request", 0.5).unwrap();
        assert!((200..=225).contains(&p50), "p50 = {p50}");
        assert!(report.histogram_quantile("serve.request", 1.0).unwrap() >= 800);
        assert_eq!(report.histogram_quantile("idle", 0.5), None, "empty histogram is absent");
        assert_eq!(report.histogram_quantile("nope", 0.5), None);
    }
}
