//! The serve-concurrency panel: request latency under a herd of idle
//! connections, plus the cost of accepting the herd itself.
//!
//! The serve-latency panel measures the request path when every client is
//! busy; this one measures what PR 9's epoll reactor is for — whether a
//! large population of *idle* connections taxes the request path. The
//! panel boots one loopback [`tpq_serve::Server`], and for each herd size
//! opens that many connections which then sit silent, measures the ramp
//! (accept cost per connection, epoll registration included), and then
//! round-trips a batch of minimization requests on one fresh connection,
//! reporting p50/p99 exactly like `serve-latency` does (client-side
//! log-scale [`tpq_obs::Histogram`], so the numbers quantize like the
//! METRICS exposition).
//!
//! A thread-per-connection server degrades linearly in the herd size (one
//! OS thread per idle socket); an epoll reactor should hold the request
//! quantiles flat. The herd sizes adapt to `RLIMIT_NOFILE` — the bench
//! process pays two fds per herd member (client end + accepted end), so
//! on a constrained runner the grid shrinks instead of dying on EMFILE.

use crate::{experiments::ExpConfig, Panel, Point, Series};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;
use tpq_obs::Histogram;
use tpq_serve::{ServeConfig, Server};

/// Herd sizes (idle connections held while measuring) for full runs.
const HERD_FULL: [u64; 3] = [256, 1024, 4096];

/// Herd sizes for `--quick` (CI) runs.
const HERD_QUICK: [u64; 3] = [64, 128, 256];

/// Measured round trips per herd size (after one unmeasured warmup).
fn round_trips(cfg: &ExpConfig) -> usize {
    if cfg.quick {
        60
    } else {
        200
    }
}

/// Largest herd this process can afford: two fds per member (client end
/// plus the server's accepted end), with headroom for the harness.
fn herd_budget() -> u64 {
    #[cfg(target_os = "linux")]
    if let Some((soft, _)) = tpq_base::fd::nofile_limit() {
        return soft.saturating_sub(128) / 2;
    }
    // Off Linux there is no reactor (thread-per-connection fallback), so
    // a large idle herd would mean thousands of parked OS threads.
    256
}

/// Request-latency quantiles and per-connection accept cost vs the number
/// of idle connections concurrently held by the server.
pub fn serve_concurrency(cfg: &ExpConfig) -> Panel {
    let sizes: Vec<u64> = if cfg.quick { HERD_QUICK } else { HERD_FULL }
        .into_iter()
        .filter(|n| *n <= herd_budget())
        .collect();
    assert!(!sizes.is_empty(), "fd limit too low for even the smallest herd");
    // The same request every time: after the first round trip the shared
    // engine answers from its canonical-pattern cache, so the panel
    // measures the socket path under load, not minimization CPU.
    let request = r#"{"query": "Book*[/Title][/Publisher]", "constraints": "Book -> Publisher"}"#;

    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        jobs: 2,
        max_conns: (*sizes.last().unwrap() + 16) as usize,
        handle_signals: false,
        ..ServeConfig::default()
    })
    .expect("bind loopback serve port");
    let addr = server.local_addr().expect("bound server has an address");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());

    // One unmeasured round trip before any ramp: the first request ever
    // pays server-thread boot and lazy engine setup, which would land on
    // the smallest herd's accept series otherwise.
    {
        let warm = TcpStream::connect(addr).expect("warmup connection");
        let mut reader = BufReader::new(warm.try_clone().expect("clone socket"));
        (&warm).write_all(b"PING\n").expect("send warmup ping");
        let mut pong = String::new();
        reader.read_line(&mut pong).expect("read warmup pong");
    }

    let mut accept_us = Vec::new();
    let mut p50 = Vec::new();
    let mut p99 = Vec::new();
    for &n in &sizes {
        // Ramp: n connections that connect and then never speak. Paced in
        // chunks below the listener's backlog — a full-speed ramp
        // overflows the SYN queue and the kernel's ~1s retransmit would
        // swamp the accept cost we want to measure. The PING barrier on
        // the newest socket proves the reactor accepted the whole chunk
        // (accepts are FIFO), so the measured cost covers accept +
        // nonblocking setup + epoll registration, amortized per
        // connection.
        let t0 = Instant::now();
        let mut herd: Vec<TcpStream> = Vec::with_capacity(n as usize);
        for chunk in 0..n.div_ceil(64) {
            for i in 0..64.min(n - chunk * 64) {
                herd.push(TcpStream::connect(addr).unwrap_or_else(|e| {
                    panic!("herd conn {}: {e}", chunk * 64 + i);
                }));
            }
            let mut barrier = herd.last().expect("non-empty chunk");
            let mut reader = BufReader::new(barrier.try_clone().expect("clone socket"));
            barrier.write_all(b"PING\n").expect("chunk barrier ping");
            let mut pong = String::new();
            reader.read_line(&mut pong).expect("chunk barrier pong");
        }
        accept_us.push(Point::flat(n, t0.elapsed().as_micros() as f64 / n as f64));

        let stream = TcpStream::connect(addr).expect("measuring connection");
        stream.set_nodelay(true).expect("set TCP_NODELAY");
        let mut reader = BufReader::new(stream.try_clone().expect("clone socket"));
        let mut writer = stream;
        let mut response = String::new();
        writer.write_all(b"PING\n").expect("send warmup ping");
        reader.read_line(&mut response).expect("read warmup pong");
        let hist = Histogram::default();
        let framed = format!("{request}\n");
        for _ in 0..round_trips(cfg) {
            let t0 = Instant::now();
            writer.write_all(framed.as_bytes()).expect("send request");
            response.clear();
            reader.read_line(&mut response).expect("read response");
            hist.record(t0.elapsed().as_micros() as u64);
            assert!(response.contains("\"minimized\""), "bad response: {response}");
        }
        p50.push(Point::flat(n, hist.quantile(0.50) as f64));
        p99.push(Point::flat(n, hist.quantile(0.99) as f64));
        drop(herd);
    }

    handle.shutdown();
    let summary = server_thread.join().expect("server thread").expect("server run");
    assert!(summary.requests_ok >= (round_trips(cfg) * sizes.len()) as u64);

    Panel {
        id: "serve-concurrency".into(),
        title: "tpq serve: request latency and accept cost vs idle connections held".into(),
        x_label: "Idle connections".into(),
        unit: crate::UNIT_MICROS.into(),
        series: vec![
            Series { label: "p50".into(), points: p50 },
            Series { label: "p99".into(), points: p99 },
            Series { label: "accept/conn".into(), points: accept_us },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrency_panel_measures_all_sizes() {
        let p = serve_concurrency(&ExpConfig::quick());
        assert_eq!(p.id, "serve-concurrency");
        assert_eq!(p.series.len(), 3);
        let sizes = p.series[0].points.len();
        assert!(sizes >= 1, "at least one herd size must fit the fd budget");
        for s in &p.series {
            assert_eq!(s.points.len(), sizes);
            for pt in &s.points {
                assert!(pt.micros > 0.0, "{} at {} conns measured 0us", s.label, pt.x);
            }
        }
        // p50 <= p99 at every herd size (same histogram).
        for i in 0..sizes {
            assert!(p.series[0].points[i].micros <= p.series[1].points[i].micros);
        }
    }
}
