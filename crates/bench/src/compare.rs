//! Point-by-point comparison of two benchmark-trajectory directories,
//! with a noise threshold, per-panel overrides and a markdown report —
//! the engine behind the `tpq-bench compare` binary and the CI perf gate.
//!
//! Matching is by panel id, then by `(series label, x)` within a panel,
//! so grid changes (a point added or dropped) never misalign the rest of
//! the curve. Direction comes from the panel's unit: micros regress
//! upward, hit rates and speedups regress downward.

use crate::trajectory::Trajectory;
use crate::{Panel, UNIT_MICROS};
use std::fmt::Write;

/// Noise tolerances for [`compare`].
#[derive(Debug, Clone)]
pub struct Thresholds {
    /// Relative change (fraction, e.g. `0.20` = ±20%) below which a point
    /// is considered unchanged.
    pub default_rel: f64,
    /// Absolute floor for micros panels: a point whose baseline and
    /// candidate are both under this many microseconds never regresses —
    /// sub-floor timings are dominated by scheduler noise.
    pub abs_floor_us: f64,
    /// Per-panel overrides of the relative threshold, by panel id.
    pub per_panel: Vec<(String, f64)>,
}

impl Default for Thresholds {
    fn default() -> Thresholds {
        Thresholds { default_rel: 0.20, abs_floor_us: 20.0, per_panel: Vec::new() }
    }
}

impl Thresholds {
    /// The relative threshold in force for a panel.
    pub fn for_panel(&self, id: &str) -> f64 {
        self.per_panel
            .iter()
            .find(|(panel, _)| panel == id)
            .map_or(self.default_rel, |(_, rel)| *rel)
    }
}

/// How one panel moved between baseline and candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanelStatus {
    /// At least one point got better past the threshold, none got worse.
    Improved,
    /// At least one point got worse past the threshold.
    Regressed,
    /// Every matched point is within the threshold.
    Unchanged,
    /// Panel exists only in the candidate (new benchmark).
    New,
    /// Panel exists only in the baseline (a benchmark disappeared —
    /// treated as a failure, deletions must be deliberate).
    Missing,
}

impl PanelStatus {
    /// Short human label.
    pub fn label(self) -> &'static str {
        match self {
            PanelStatus::Improved => "improved",
            PanelStatus::Regressed => "regressed",
            PanelStatus::Unchanged => "unchanged",
            PanelStatus::New => "new",
            PanelStatus::Missing => "missing",
        }
    }
}

/// One matched point's movement.
#[derive(Debug, Clone)]
pub struct PointDelta {
    /// Series label within the panel.
    pub series: String,
    /// The point's x value.
    pub x: u64,
    /// Baseline value (panel unit).
    pub base: f64,
    /// Candidate value (panel unit).
    pub cand: f64,
    /// Signed relative change, `(cand - base) / base` (0 when the
    /// baseline is zero and the candidate is too; 1.0 when only the
    /// baseline is zero).
    pub rel: f64,
    /// Worse past the threshold, in the panel's direction.
    pub regressed: bool,
    /// Better past the threshold.
    pub improved: bool,
}

/// One panel's comparison.
#[derive(Debug, Clone)]
pub struct PanelReport {
    /// Panel id.
    pub id: String,
    /// Unit of the panel's values.
    pub unit: String,
    /// Overall classification.
    pub status: PanelStatus,
    /// Relative threshold that was applied.
    pub rel_threshold: f64,
    /// Every matched point, in baseline order.
    pub deltas: Vec<PointDelta>,
}

impl PanelReport {
    /// The matched point that moved the most in the regressing direction
    /// (by |rel| among regressed points), if any.
    pub fn worst(&self) -> Option<&PointDelta> {
        self.deltas
            .iter()
            .filter(|d| d.regressed)
            .max_by(|a, b| a.rel.abs().partial_cmp(&b.rel.abs()).expect("no NaN"))
    }
}

/// The whole comparison.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Per-panel results, baseline order then new panels.
    pub panels: Vec<PanelReport>,
}

impl CompareReport {
    /// Whether the gate should fail: any panel regressed or disappeared.
    pub fn has_failures(&self) -> bool {
        self.panels
            .iter()
            .any(|p| matches!(p.status, PanelStatus::Regressed | PanelStatus::Missing))
    }

    /// Count panels with the given status.
    pub fn count(&self, status: PanelStatus) -> usize {
        self.panels.iter().filter(|p| p.status == status).count()
    }

    /// Render the comparison as a markdown report (the CI job summary).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# Benchmark trajectory comparison\n");
        let _ = writeln!(out, "| panel | status | worst change | threshold |");
        let _ = writeln!(out, "|-------|--------|--------------|-----------|");
        for p in &self.panels {
            let worst = match p.status {
                PanelStatus::New => "first measurement".to_owned(),
                PanelStatus::Missing => "panel disappeared".to_owned(),
                _ => match p.worst().or_else(|| {
                    p.deltas
                        .iter()
                        .max_by(|a, b| a.rel.abs().partial_cmp(&b.rel.abs()).expect("no NaN"))
                }) {
                    Some(d) => format!(
                        "{} @x={}: {:.1} → {:.1} {} ({:+.1}%)",
                        d.series,
                        d.x,
                        d.base,
                        d.cand,
                        p.unit,
                        d.rel * 100.0
                    ),
                    None => "no matched points".to_owned(),
                },
            };
            let _ = writeln!(
                out,
                "| {} | {} | {} | ±{:.0}% |",
                p.id,
                p.status.label(),
                worst,
                p.rel_threshold * 100.0
            );
        }
        let _ = writeln!(out);
        for p in self.panels.iter().filter(|p| p.status == PanelStatus::Regressed) {
            let _ = writeln!(out, "## {} regressions\n", p.id);
            for d in p.deltas.iter().filter(|d| d.regressed) {
                let _ = writeln!(
                    out,
                    "- `{}` @x={}: {:.1} → {:.1} {} ({:+.1}%)",
                    d.series,
                    d.x,
                    d.base,
                    d.cand,
                    p.unit,
                    d.rel * 100.0
                );
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Compare one candidate panel against its baseline.
fn compare_panel(base: &Panel, cand: &Panel, th: &Thresholds) -> PanelReport {
    let rel_threshold = th.for_panel(&base.id);
    let lower_is_better = base.lower_is_better();
    let mut deltas = Vec::new();
    for base_series in &base.series {
        let Some(cand_series) = cand.series.iter().find(|s| s.label == base_series.label) else {
            continue;
        };
        for bp in &base_series.points {
            let Some(cp) = cand_series.points.iter().find(|p| p.x == bp.x) else {
                continue;
            };
            let rel = if bp.micros == 0.0 {
                if cp.micros == 0.0 {
                    0.0
                } else {
                    1.0
                }
            } else {
                (cp.micros - bp.micros) / bp.micros
            };
            // Sub-floor micros points are scheduler noise, never a signal.
            let under_floor = base.unit == UNIT_MICROS
                && bp.micros < th.abs_floor_us
                && cp.micros < th.abs_floor_us;
            let worse = if lower_is_better { rel > rel_threshold } else { rel < -rel_threshold };
            let better = if lower_is_better { rel < -rel_threshold } else { rel > rel_threshold };
            deltas.push(PointDelta {
                series: base_series.label.clone(),
                x: bp.x,
                base: bp.micros,
                cand: cp.micros,
                rel,
                regressed: worse && !under_floor,
                improved: better && !under_floor,
            });
        }
    }
    let status = if deltas.iter().any(|d| d.regressed) {
        PanelStatus::Regressed
    } else if deltas.iter().any(|d| d.improved) {
        PanelStatus::Improved
    } else {
        PanelStatus::Unchanged
    };
    PanelReport { id: base.id.clone(), unit: base.unit.clone(), status, rel_threshold, deltas }
}

/// Compare candidate trajectories against baselines, panel by panel.
pub fn compare(
    baseline: &[Trajectory],
    candidate: &[Trajectory],
    th: &Thresholds,
) -> CompareReport {
    let mut panels = Vec::new();
    for base in baseline {
        match candidate.iter().find(|c| c.panel.id == base.panel.id) {
            Some(cand) => panels.push(compare_panel(&base.panel, &cand.panel, th)),
            None => panels.push(PanelReport {
                id: base.panel.id.clone(),
                unit: base.panel.unit.clone(),
                status: PanelStatus::Missing,
                rel_threshold: th.for_panel(&base.panel.id),
                deltas: Vec::new(),
            }),
        }
    }
    for cand in candidate {
        if !baseline.iter().any(|b| b.panel.id == cand.panel.id) {
            panels.push(PanelReport {
                id: cand.panel.id.clone(),
                unit: cand.panel.unit.clone(),
                status: PanelStatus::New,
                rel_threshold: th.for_panel(&cand.panel.id),
                deltas: Vec::new(),
            });
        }
    }
    CompareReport { panels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExpConfig;
    use crate::{Point, Series, UNIT_PERCENT};

    fn traj(id: &str, unit: &str, values: &[(u64, f64)]) -> Trajectory {
        Trajectory::new(
            Panel {
                id: id.into(),
                title: id.into(),
                x_label: "x".into(),
                unit: unit.into(),
                series: vec![Series {
                    label: "S".into(),
                    points: values.iter().map(|&(x, v)| Point::flat(x, v)).collect(),
                }],
            },
            &ExpConfig::quick(),
        )
    }

    #[test]
    fn self_compare_is_all_unchanged() {
        let t = vec![traj("a", UNIT_MICROS, &[(1, 100.0), (2, 200.0)])];
        let report = compare(&t, &t, &Thresholds::default());
        assert!(!report.has_failures());
        assert_eq!(report.panels[0].status, PanelStatus::Unchanged);
    }

    #[test]
    fn slowdown_past_threshold_regresses_micros_panels() {
        let base = vec![traj("a", UNIT_MICROS, &[(1, 100.0)])];
        let cand = vec![traj("a", UNIT_MICROS, &[(1, 130.0)])];
        let report = compare(&base, &cand, &Thresholds::default());
        assert!(report.has_failures());
        let p = &report.panels[0];
        assert_eq!(p.status, PanelStatus::Regressed);
        let worst = p.worst().unwrap();
        assert_eq!(worst.x, 1);
        assert!((worst.rel - 0.3).abs() < 1e-9);
        assert!(report.to_markdown().contains("regressed"));
    }

    #[test]
    fn direction_flips_for_percent_panels() {
        // A hit rate FALLING is the regression; rising is an improvement.
        let base = vec![traj("cache", UNIT_PERCENT, &[(1, 80.0)])];
        let down = vec![traj("cache", UNIT_PERCENT, &[(1, 40.0)])];
        let up = vec![traj("cache", UNIT_PERCENT, &[(1, 100.0)])];
        let th = Thresholds::default();
        assert_eq!(compare(&base, &down, &th).panels[0].status, PanelStatus::Regressed);
        assert_eq!(compare(&base, &up, &th).panels[0].status, PanelStatus::Improved);
        // And a faster micros panel is an improvement, not a regression.
        let fast_base = vec![traj("a", UNIT_MICROS, &[(1, 100.0)])];
        let fast_cand = vec![traj("a", UNIT_MICROS, &[(1, 60.0)])];
        assert_eq!(compare(&fast_base, &fast_cand, &th).panels[0].status, PanelStatus::Improved);
    }

    #[test]
    fn threshold_boundary_is_exclusive() {
        // Exactly +20% on a ±20% threshold is unchanged; just past it
        // regresses.
        let base = vec![traj("a", UNIT_MICROS, &[(1, 100.0)])];
        let at = vec![traj("a", UNIT_MICROS, &[(1, 120.0)])];
        let past = vec![traj("a", UNIT_MICROS, &[(1, 120.1)])];
        let th = Thresholds::default();
        assert_eq!(compare(&base, &at, &th).panels[0].status, PanelStatus::Unchanged);
        assert_eq!(compare(&base, &past, &th).panels[0].status, PanelStatus::Regressed);
    }

    #[test]
    fn per_panel_override_beats_the_default() {
        let base = vec![traj("noisy", UNIT_MICROS, &[(1, 100.0)])];
        let cand = vec![traj("noisy", UNIT_MICROS, &[(1, 160.0)])];
        let th =
            Thresholds { per_panel: vec![("noisy".to_owned(), 0.80)], ..Thresholds::default() };
        let report = compare(&base, &cand, &th);
        assert_eq!(report.panels[0].status, PanelStatus::Unchanged);
        assert_eq!(report.panels[0].rel_threshold, 0.80);
    }

    #[test]
    fn missing_panel_fails_and_new_panel_does_not() {
        let base = vec![traj("a", UNIT_MICROS, &[(1, 10.0)])];
        let cand = vec![traj("b", UNIT_MICROS, &[(1, 10.0)])];
        let report = compare(&base, &cand, &Thresholds::default());
        assert!(report.has_failures(), "a disappeared");
        assert_eq!(report.count(PanelStatus::Missing), 1);
        assert_eq!(report.count(PanelStatus::New), 1);
        let only_new = compare(&[], &cand, &Thresholds::default());
        assert!(!only_new.has_failures(), "brand-new panels pass the gate");
        let md = report.to_markdown();
        assert!(md.contains("panel disappeared") && md.contains("first measurement"));
    }

    #[test]
    fn zero_and_subfloor_points_never_regress() {
        // Both-zero points are unchanged; zero→tiny stays under the
        // absolute floor; zero→large regresses.
        let base = vec![traj("a", UNIT_MICROS, &[(1, 0.0), (2, 0.0), (3, 0.0), (4, 5.0)])];
        let cand = vec![traj("a", UNIT_MICROS, &[(1, 0.0), (2, 12.0), (3, 500.0), (4, 19.0)])];
        let report = compare(&base, &cand, &Thresholds::default());
        let d = &report.panels[0].deltas;
        assert!(!d[0].regressed, "0 -> 0 is unchanged");
        assert!(!d[1].regressed, "sub-floor jitter is not a regression");
        assert!(d[2].regressed, "0 -> 500us is a real regression");
        assert!(!d[3].regressed, "5us -> 19us stays under the 20us floor");
    }

    #[test]
    fn grid_changes_do_not_misalign_points() {
        // Candidate dropped x=2 and added x=3: x=1 still matches by key.
        let base = vec![traj("a", UNIT_MICROS, &[(1, 100.0), (2, 200.0)])];
        let cand = vec![traj("a", UNIT_MICROS, &[(1, 101.0), (3, 999.0)])];
        let report = compare(&base, &cand, &Thresholds::default());
        let p = &report.panels[0];
        assert_eq!(p.status, PanelStatus::Unchanged);
        assert_eq!(p.deltas.len(), 1, "only the shared x=1 point is compared");
    }
}
