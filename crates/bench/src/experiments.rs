//! One function per figure panel of the paper's Section 6, returning
//! measured [`Panel`]s. The `experiments` binary prints them and persists
//! them as `BENCH_<panel>.json` trajectories; the Criterion benches
//! measure the same workloads.
//!
//! Absolute numbers differ from the paper's 2001 hardware; the
//! reproduction target is the *shape* of each curve (see EXPERIMENTS.md).
//! Every panel takes an [`ExpConfig`]: `--quick` shrinks the measurement
//! grids (same workload families, fewer points and iterations) so the CI
//! perf gate finishes in seconds and compares like-for-like against
//! quick-generated baselines.

use crate::{measure_micros, Panel, Point, Series, UNIT_PERCENT, UNIT_RATIO};
use tpq_base::FxHashSet;
use tpq_core::{
    acim_closed, acim_incremental_closed, cdm_closed, cim, minimize_with, MinimizeStats, Strategy,
};
use tpq_pattern::TreePattern;
use tpq_workload::{
    ic_chain_query, prefilter_query, redundancy_query, relevant_constraints, shaped_ic_query,
    RedundancySpec,
};

/// Iterations per measured point in a full run (median is reported).
const ITERS: usize = 7;

/// Measurement configuration shared by every panel.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Timing iterations per measured point (after one warmup).
    pub iters: usize,
    /// Reduced grids for CI and smoke runs.
    pub quick: bool,
    /// Seed for the panels that sample workloads (the serve replay mix).
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> ExpConfig {
        ExpConfig { iters: ITERS, quick: false, seed: 0 }
    }
}

impl ExpConfig {
    /// The reduced-grid configuration used by CI and the self-test.
    pub fn quick() -> ExpConfig {
        ExpConfig { iters: 3, quick: true, seed: 0 }
    }

    /// Pick the full or quick x-grid.
    pub(crate) fn grid(&self, full: &[u64], quick: &[u64]) -> Vec<u64> {
        if self.quick {
            quick.to_vec()
        } else {
            full.to_vec()
        }
    }
}

/// Figure 7(a): ACIM time as a function of `RedDegree × RedNodes` for a
/// 101-node query, at several relevant-constraint counts.
pub fn fig7a(cfg: &ExpConfig) -> Panel {
    let degree = 2;
    let full: Vec<u64> = (1..=9).map(|i| i * 10).collect();
    let xs = cfg.grid(&full, &[10, 40, 90]);
    let ks: Vec<usize> = if cfg.quick { vec![0, 100] } else { vec![0, 50, 100, 150] };
    let mut series = Vec::new();
    for k in ks {
        let mut points = Vec::new();
        for &x in &xs {
            let red = (x as usize) / degree;
            let q = redundancy_query(&RedundancySpec {
                total_nodes: 101,
                redundant_nodes: red,
                degree,
            });
            let ics = relevant_constraints(&q, k).closure();
            let (m, out) = measure_micros(cfg.iters, || {
                let mut stats = MinimizeStats::default();
                acim_incremental_closed(&q.pattern, &ics, &mut stats)
            });
            assert_eq!(out.size(), q.expected_minimal_size);
            points.push(Point::timed(x, m));
        }
        series.push(Series { label: format!("{k}Constraints"), points });
    }
    Panel {
        id: "fig7a".into(),
        title: "ACIM: varying redundancy and constraints (101-node query)".into(),
        x_label: "RedDeg*RedN".into(),
        unit: crate::UNIT_MICROS.into(),
        series,
    }
}

/// Figure 7(b): total ACIM time vs time spent building the images and
/// ancestor/descendant tables, on a 101-node chain where the bottom `r`
/// nodes are IC-redundant.
pub fn fig7b(cfg: &ExpConfig) -> Panel {
    let chain = ic_chain_query(101);
    let full: Vec<u64> = (1..=10).map(|i| i * 10).collect();
    let xs = cfg.grid(&full, &[10, 50, 100]);
    let mut total = Vec::new();
    let mut tables = Vec::new();
    for &x in &xs {
        // Keep only the constraints for the deepest x edges so exactly x
        // nodes are redundant.
        let keep: Vec<_> = {
            let all: Vec<_> = chain.constraints.iter().collect();
            // Constraints were inserted per edge from the top; retain the
            // ones whose lhs is deepest. Sort by type index (= depth).
            let mut v = all;
            v.sort_by_key(|c| std::cmp::Reverse(c.lhs().0));
            v.into_iter().take(x as usize).collect()
        };
        let ics: tpq_constraints::ConstraintSet =
            keep.into_iter().collect::<tpq_constraints::ConstraintSet>().closure();
        // Sample total and tables time from the SAME runs so the ratio is
        // meaningful, then take per-metric medians.
        let mut totals = Vec::with_capacity(cfg.iters);
        let mut tabs = Vec::with_capacity(cfg.iters);
        for i in 0..=cfg.iters {
            let mut stats = MinimizeStats::default();
            let out = acim_incremental_closed(&chain.pattern, &ics, &mut stats);
            assert_eq!(out.size(), 101 - x as usize);
            if i > 0 {
                // first run is warmup
                totals.push(stats.total_time.as_secs_f64() * 1e6);
                tabs.push(stats.tables_time.as_secs_f64() * 1e6);
            }
        }
        let total_m = crate::Measurement::from_samples(&totals);
        let tables_m = crate::Measurement::from_samples(&tabs);
        let mut total_pt = Point::timed(x, total_m);
        total_pt.aux_micros = Some(tables_m.median);
        total.push(total_pt);
        tables.push(Point::timed(x, tables_m));
    }
    Panel {
        id: "fig7b".into(),
        title: "ACIM: total time vs images/ancestor table time (101-node chain)".into(),
        x_label: "RedNodes".into(),
        unit: crate::UNIT_MICROS.into(),
        series: vec![
            Series { label: "TotalTime".into(), points: total },
            Series { label: "TablesTime".into(), points: tables },
        ],
    }
}

/// Figure 8(a): CDM time is flat in the number of constraints in the
/// repository (127-node c-edge chain; `->>` constraints are relevant —
/// they mention query types — but trigger no local rule on c-edges, as in
/// the paper every check is a hash probe).
pub fn fig8a(cfg: &ExpConfig) -> Panel {
    let chain = ic_chain_query(127);
    let step = if cfg.quick { 50 } else { 10 };
    let mut points = Vec::new();
    for k in (0..=150).step_by(step) {
        // Relevant `->>` constraints over non-adjacent chain types.
        let mut ics = tpq_constraints::ConstraintSet::new();
        let mut produced = 0;
        'outer: for gap in 2u32..127 {
            for i in 0..(127 - gap) {
                if produced == k {
                    break 'outer;
                }
                let a = chain.pattern.node(tpq_pattern::NodeId(i)).primary;
                let b = chain.pattern.node(tpq_pattern::NodeId(i + gap)).primary;
                if ics.insert(tpq_constraints::Constraint::RequiredDescendant(a, b)) {
                    produced += 1;
                }
            }
        }
        let closed = ics.closure();
        let (m, out) = measure_micros(cfg.iters, || {
            let mut stats = MinimizeStats::default();
            cdm_closed(&chain.pattern, &closed, &mut stats)
        });
        assert_eq!(out.size(), 127, "no local redundancy on a c-edge chain");
        points.push(Point::timed(k as u64, m));
    }
    Panel {
        id: "fig8a".into(),
        title: "CDM: time vs number of constraints (127-node query)".into(),
        x_label: "Constraints".into(),
        unit: crate::UNIT_MICROS.into(),
        series: vec![Series { label: "CDMconstant".into(), points }],
    }
}

/// Figure 8(b): CDM time vs query size for right-deep, bushy and wider
/// fanout shapes (all edges IC-redundant; only the root survives).
pub fn fig8b(cfg: &ExpConfig) -> Panel {
    let full: Vec<u64> = (1..=14).map(|i| i * 10).collect();
    let xs = cfg.grid(&full, &[10, 70, 140]);
    let shapes = [("RightDeep", 1usize), ("Bushy", 2), ("VaryingFanout", 4)];
    let mut series = Vec::new();
    for (label, fanout) in shapes {
        let mut points = Vec::new();
        for &x in &xs {
            let q = shaped_ic_query(x as usize, fanout);
            let closed = q.constraints.closure();
            let (m, out) = measure_micros(cfg.iters, || {
                let mut stats = MinimizeStats::default();
                cdm_closed(&q.pattern, &closed, &mut stats)
            });
            assert_eq!(out.size(), 1);
            points.push(Point::timed(x, m));
        }
        series.push(Series { label: label.into(), points });
    }
    Panel {
        id: "fig8b".into(),
        title: "CDM: time vs query size and shape (all edges redundant)".into(),
        x_label: "QuerySize".into(),
        unit: crate::UNIT_MICROS.into(),
        series,
    }
}

/// Companion to Figure 8(b)'s discussion: CDM time vs node fanout at a
/// fixed query size (the paper: "CDM behaves in a quadratic fashion with
/// respect to the node fanout").
pub fn fig8b_fanout(cfg: &ExpConfig) -> Panel {
    let n = 121;
    let full: Vec<u64> = (1..=12).collect();
    let fanouts = cfg.grid(&full, &[2, 6, 12]);
    let mut points = Vec::new();
    for &fanout in &fanouts {
        let q = shaped_ic_query(n, fanout as usize);
        let closed = q.constraints.closure();
        let (m, out) = measure_micros(cfg.iters, || {
            let mut stats = MinimizeStats::default();
            cdm_closed(&q.pattern, &closed, &mut stats)
        });
        assert_eq!(out.size(), 1);
        points.push(Point::timed(fanout, m));
    }
    Panel {
        id: "fig8b-fanout".into(),
        title: format!("CDM: time vs fanout ({n}-node query)"),
        x_label: "Fanout".into(),
        unit: crate::UNIT_MICROS.into(),
        series: vec![Series { label: "VaryingFanout".into(), points }],
    }
}

/// Figure 9(a): ACIM vs CDM on queries where both remove the same nodes.
pub fn fig9a(cfg: &ExpConfig) -> Panel {
    let full: Vec<u64> = (1..=10).map(|i| i * 10).collect();
    let xs = cfg.grid(&full, &[10, 50, 100]);
    let mut acim_pts = Vec::new();
    let mut cdm_pts = Vec::new();
    for &x in &xs {
        let q = ic_chain_query(x as usize);
        let closed = q.constraints.closure();
        let (a_m, a_out) = measure_micros(cfg.iters, || {
            let mut stats = MinimizeStats::default();
            acim_incremental_closed(&q.pattern, &closed, &mut stats)
        });
        let (c_m, c_out) = measure_micros(cfg.iters, || {
            let mut stats = MinimizeStats::default();
            cdm_closed(&q.pattern, &closed, &mut stats)
        });
        assert_eq!(a_out.size(), 1);
        assert_eq!(c_out.size(), 1, "CDM removes the same set here");
        acim_pts.push(Point::timed(x, a_m));
        cdm_pts.push(Point::timed(x, c_m));
    }
    Panel {
        id: "fig9a".into(),
        title: "ACIM vs CDM removing the same nodes, varying query size".into(),
        x_label: "QuerySize".into(),
        unit: crate::UNIT_MICROS.into(),
        series: vec![
            Series { label: "ACIM".into(), points: acim_pts },
            Series { label: "CDM".into(), points: cdm_pts },
        ],
    }
}

/// Figure 9(b): direct ACIM vs CDM-prefilter-then-ACIM on queries where
/// CDM removes half of what ACIM can.
pub fn fig9b(cfg: &ExpConfig) -> Panel {
    let full: Vec<u64> = (1..=10).map(|i| i * 10).collect();
    let xs = cfg.grid(&full, &[10, 50, 100]);
    let mut direct_pts = Vec::new();
    let mut combined_pts = Vec::new();
    for &x in &xs {
        let k = ((x as usize).saturating_sub(1) / 3).max(1);
        let q = prefilter_query(k);
        let (d_m, d_out) = measure_micros(cfg.iters, || {
            minimize_with(&q.pattern, &q.constraints, Strategy::AcimOnly)
        });
        let (c_m, c_out) = measure_micros(cfg.iters, || {
            minimize_with(&q.pattern, &q.constraints, Strategy::CdmThenAcim)
        });
        assert_eq!(d_out.pattern.size(), q.pattern.size() - q.acim_removable);
        assert_eq!(c_out.pattern.size(), d_out.pattern.size());
        direct_pts.push(Point::timed(x, d_m));
        combined_pts.push(Point::timed(x, c_m));
    }
    Panel {
        id: "fig9b".into(),
        title: "ACIM alone vs CDM as a pre-filter (CDM removes half)".into(),
        x_label: "QuerySize".into(),
        unit: crate::UNIT_MICROS.into(),
        series: vec![
            Series { label: "ACIM".into(), points: direct_pts },
            Series { label: "CDMACIM".into(), points: combined_pts },
        ],
    }
}

/// Parallel batch minimization over the Figure 7(a) workload family,
/// minimized by [`tpq_core::BatchMinimizer`] at increasing worker counts,
/// plus the derived speedup-vs-jobs panel. The `Cold` series starts from
/// an empty memo cache each run (in-batch duplicates still fold); the
/// `Warm` series re-runs the same batch on the warmed engine, where every
/// query is a cache hit. Speedup at `--jobs N` is `Cold(x=1) / Cold(x=N)`.
pub fn batch_with_speedup(cfg: &ExpConfig) -> (Panel, Panel) {
    // Degree starts at 2: with a degree-1 witness the shared `tF0 ->> tX`
    // constraint makes the lone witness leaf itself removable, which would
    // put the generator's expected size off by one for that slice.
    let (degrees, reds) = if cfg.quick { (2..=3u32, 1..=10usize) } else { (2..=6u32, 1..=25usize) };
    let specs: Vec<RedundancySpec> = degrees
        .flat_map(|degree| {
            reds.clone().map(move |red| RedundancySpec {
                total_nodes: 33,
                redundant_nodes: red,
                degree: degree as usize,
            })
        })
        .collect();
    let generated: Vec<_> = specs.iter().map(redundancy_query).collect();
    let mut queries: Vec<TreePattern> = Vec::with_capacity(4 * generated.len());
    let mut expected: Vec<usize> = Vec::with_capacity(4 * generated.len());
    for _ in 0..4 {
        for g in &generated {
            queries.push(g.pattern.clone());
            expected.push(g.expected_minimal_size);
        }
    }
    // All specs intern tR, tX, tF0.. in the same order, so type ids agree
    // across the family and one constraint set covers the whole batch.
    let most_fillers =
        generated.iter().max_by_key(|g| g.filler_types.len()).expect("non-empty family");
    let ics = relevant_constraints(most_fillers, 20);
    let jobs_grid: &[u64] = if cfg.quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let mut cold = Vec::new();
    let mut warm = Vec::new();
    for &jobs in jobs_grid {
        let (cold_m, outcome) = measure_micros(3, || {
            let engine = tpq_core::BatchMinimizer::new(&ics);
            engine.minimize_batch(&queries, jobs as usize)
        });
        for (m, want) in outcome.patterns.iter().zip(&expected) {
            assert_eq!(m.size(), *want, "batch result disagrees with the generator");
        }
        assert_eq!(outcome.stats.unique, generated.len(), "duplicates must fold");
        let warm_engine = tpq_core::BatchMinimizer::new(&ics);
        warm_engine.minimize_batch(&queries, jobs as usize); // prime the cache
        let (warm_m, warm_out) =
            measure_micros(3, || warm_engine.minimize_batch(&queries, jobs as usize));
        assert_eq!(warm_out.stats.cache_misses, 0, "warmed engine must serve all hits");
        cold.push(Point::timed(jobs, cold_m));
        warm.push(Point::timed(jobs, warm_m));
    }
    let base = cold[0].micros;
    let speedup_pts: Vec<Point> =
        cold.iter().map(|p| Point::flat(p.x, base / p.micros.max(1.0))).collect();
    for p in &cold {
        eprintln!(
            "batch: jobs={} cold {:.0}us ({:.2}x vs jobs=1)",
            p.x,
            p.micros,
            base / p.micros.max(1.0)
        );
    }
    let timing = Panel {
        id: "batch".into(),
        title: "parallel batch minimization: Figure-7 queries, cold vs warm cache".into(),
        x_label: "Jobs".into(),
        unit: crate::UNIT_MICROS.into(),
        series: vec![
            Series { label: "ColdCache".into(), points: cold },
            Series { label: "WarmCache".into(), points: warm },
        ],
    };
    let speedup = Panel {
        id: "batch-speedup".into(),
        title: "batch minimization speedup over one worker (cold cache)".into(),
        x_label: "Jobs".into(),
        unit: UNIT_RATIO.into(),
        series: vec![Series { label: "ColdSpeedup".into(), points: speedup_pts }],
    };
    (timing, speedup)
}

/// The batch timing panel alone (kept for callers that don't want the
/// derived speedup panel).
pub fn batch(cfg: &ExpConfig) -> Panel {
    batch_with_speedup(cfg).0
}

/// Observed hit rates of the three caches on the serve path — the batch
/// memo (canonical-pattern results), the process-wide closure LRU and the
/// shared-engine LRU — over repeated rounds of the same workload. Round 1
/// is cold; later rounds should converge to 100%. Rates are computed from
/// `tpq-obs` counter deltas around each round, so the panel measures the
/// same counters Prometheus exports.
pub fn cache(cfg: &ExpConfig) -> Panel {
    let was_enabled = tpq_obs::enabled();
    tpq_obs::set_enabled(true);
    // A small Figure-7 family with duplicates: 4 copies of each of 10
    // distinct queries, all sharing one constraint set.
    let pool = if cfg.quick { 6 } else { 10 };
    let generated: Vec<_> = (0..pool)
        .map(|i| {
            redundancy_query(&RedundancySpec {
                total_nodes: 17,
                redundant_nodes: 2 + (i % 8),
                degree: 2,
            })
        })
        .collect();
    let mut queries: Vec<TreePattern> = Vec::new();
    for _ in 0..4 {
        queries.extend(generated.iter().map(|g| g.pattern.clone()));
    }
    let widest = generated.iter().max_by_key(|g| g.filler_types.len()).expect("non-empty family");
    let ics = relevant_constraints(widest, 8);

    let batch_hit = tpq_obs::counter("batch.cache.hit");
    let batch_miss = tpq_obs::counter("batch.cache.miss");
    let closure_hit = tpq_obs::counter("closure.cache.hit");
    let closure_miss = tpq_obs::counter("closure.recomputed");
    let engine_hit = tpq_obs::counter("engine.cache.hit");
    let engine_miss = tpq_obs::counter("engine.recomputed");
    let rate = |hits: u64, misses: u64| {
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            100.0 * hits as f64 / total as f64
        }
    };

    let engine = tpq_core::BatchMinimizer::new(&ics);
    let mut memo_pts = Vec::new();
    let mut closure_pts = Vec::new();
    let mut engine_pts = Vec::new();
    for round in 1..=3u64 {
        let before = (
            (batch_hit.get(), batch_miss.get()),
            (closure_hit.get(), closure_miss.get()),
            (engine_hit.get(), engine_miss.get()),
        );
        // Drive all three caches the way the serve path does: resolve the
        // shared engine for the constraint set (engine LRU), take the
        // constraint closure via the pipeline (closure LRU), and minimize
        // the batch on the per-engine memo.
        let _shared = tpq_core::shared_engine(&ics, Strategy::default());
        let _ = minimize_with(&generated[0].pattern, &ics, Strategy::default());
        let outcome = engine.minimize_batch(&queries, 2);
        assert_eq!(outcome.patterns.len(), queries.len());
        memo_pts.push(Point::flat(
            round,
            rate(batch_hit.get() - before.0 .0, batch_miss.get() - before.0 .1),
        ));
        closure_pts.push(Point::flat(
            round,
            rate(closure_hit.get() - before.1 .0, closure_miss.get() - before.1 .1),
        ));
        engine_pts.push(Point::flat(
            round,
            rate(engine_hit.get() - before.2 .0, engine_miss.get() - before.2 .1),
        ));
    }
    tpq_obs::set_enabled(was_enabled);
    Panel {
        id: "cache".into(),
        title: "cache hit rates per round: batch memo, closure LRU, engine LRU".into(),
        x_label: "Round".into(),
        unit: UNIT_PERCENT.into(),
        series: vec![
            Series { label: "BatchMemo".into(), points: memo_pts },
            Series { label: "ClosureLru".into(), points: closure_pts },
            Series { label: "EngineLru".into(), points: engine_pts },
        ],
    }
}

/// Ablations of the design choices called out in DESIGN.md §3.
pub fn ablations(cfg: &ExpConfig) -> Vec<Panel> {
    vec![
        ablate_containment(cfg),
        ablate_cim_cache(cfg),
        ablate_incremental(cfg),
        ablate_matching(cfg),
    ]
}

/// Rebuild-per-test ACIM (the literal Figure 3 loop) vs the incremental
/// engine (Section 6.1: persistent hash-table images, rebuilt only on
/// removal).
fn ablate_incremental(cfg: &ExpConfig) -> Panel {
    let xs = cfg.grid(&[10, 30, 50, 70, 90], &[10, 50, 90]);
    let mut rebuilding = Vec::new();
    let mut incremental = Vec::new();
    for &x in &xs {
        let q = redundancy_query(&RedundancySpec {
            total_nodes: 101,
            redundant_nodes: x as usize / 2,
            degree: 2,
        });
        let closed = relevant_constraints(&q, 50).closure();
        let (r_m, r_out) = measure_micros(3, || {
            let mut stats = MinimizeStats::default();
            acim_closed(&q.pattern, &closed, &mut stats)
        });
        let (i_m, i_out) = measure_micros(cfg.iters, || {
            let mut stats = MinimizeStats::default();
            acim_incremental_closed(&q.pattern, &closed, &mut stats)
        });
        assert_eq!(r_out.size(), q.expected_minimal_size);
        assert_eq!(i_out.size(), q.expected_minimal_size);
        rebuilding.push(Point::timed(x, r_m));
        incremental.push(Point::timed(x, i_m));
    }
    Panel {
        id: "ablate-incremental".into(),
        title: "ACIM: rebuild-per-test vs maintained images tables (101-node query)".into(),
        x_label: "RedDeg*RedN".into(),
        unit: crate::UNIT_MICROS.into(),
        series: vec![
            Series { label: "RebuildPerTest".into(), points: rebuilding },
            Series { label: "Incremental".into(), points: incremental },
        ],
    }
}

/// Images-pruning containment vs brute-force backtracking, on the
/// backtracker's worst case: a d-edge chain of one repeated type mapping
/// into a longer chain whose required tail type is missing — the naive
/// search enumerates every descending assignment before failing, while
/// pruning rejects in polynomial time.
fn ablate_containment(cfg: &ExpConfig) -> Panel {
    let mut tys = tpq_base::TypeInterner::new();
    let a = tys.intern("a");
    let c = tys.intern("c");
    let mut pruned = Vec::new();
    let mut naive = Vec::new();
    let ks = cfg.grid(&[4, 5, 6, 7, 8], &[4, 6, 8]);
    for &k in &ks {
        // from: a //a //… //a //c   (k a-nodes then a c)
        let mut from = TreePattern::new(a);
        let mut cur = from.root();
        for _ in 1..k {
            cur = from.add_child(cur, tpq_pattern::EdgeKind::Descendant, a);
        }
        from.add_child(cur, tpq_pattern::EdgeKind::Descendant, c);
        // to: a //a //… //a  (2k a-nodes, no c anywhere)
        let mut to = TreePattern::new(a);
        let mut cur = to.root();
        for _ in 1..2 * k {
            cur = to.add_child(cur, tpq_pattern::EdgeKind::Descendant, a);
        }
        let (p_m, r1) = measure_micros(cfg.iters, || tpq_core::has_homomorphism(&from, &to));
        let (n_m, r2) = measure_micros(3, || tpq_core::has_homomorphism_naive(&from, &to));
        assert!(!r1 && !r2);
        pruned.push(Point::timed(k, p_m));
        naive.push(Point::timed(k, n_m));
    }
    Panel {
        id: "ablate-containment".into(),
        title: "containment: images pruning vs backtracking (no-match chains)".into(),
        x_label: "ChainLen".into(),
        unit: crate::UNIT_MICROS.into(),
        series: vec![
            Series { label: "Pruning".into(), points: pruned },
            Series { label: "Backtracking".into(), points: naive },
        ],
    }
}

/// CIM with the "never retest non-redundant leaves" enhancement
/// (Figure 3 enhancement (1)) vs a naive loop that retests every leaf in
/// every round. The workload maximizes rounds: a duplicated deep chain
/// (one leaf removable per round → `depth` rounds) plus many
/// non-redundant leaves that the naive loop re-tests each round.
fn ablate_cim_cache(cfg: &ExpConfig) -> Panel {
    let mut tys = tpq_base::TypeInterner::new();
    let mut cached = Vec::new();
    let mut uncached = Vec::new();
    let depths = cfg.grid(&[5, 10, 15, 20], &[5, 15]);
    for &depth in &depths {
        let root_ty = tys.intern("root");
        let chain_ty = tys.intern("link");
        let mut q = TreePattern::new(root_ty);
        let root = q.root();
        // 30 distinct-type, non-redundant leaves.
        for i in 0..30 {
            let t = tys.intern(&format!("leaf{i}"));
            q.add_child(root, tpq_pattern::EdgeKind::Child, t);
        }
        // Original chain + duplicate (folds one leaf per round).
        for _ in 0..2 {
            let mut cur = root;
            for _ in 0..depth {
                cur = q.add_child(cur, tpq_pattern::EdgeKind::Descendant, chain_ty);
            }
        }
        let (c_m, c_out) = measure_micros(cfg.iters, || cim(&q));
        let (u_m, u_out) = measure_micros(3, || cim_no_cache(&q));
        assert_eq!(c_out.size(), u_out.size());
        assert_eq!(c_out.size(), 31 + depth as usize);
        cached.push(Point::timed(depth, c_m));
        uncached.push(Point::timed(depth, u_m));
    }
    Panel {
        id: "ablate-cim-cache".into(),
        title: "CIM: non-redundant caching (enhancement 1) on vs off".into(),
        x_label: "ChainDepth".into(),
        unit: crate::UNIT_MICROS.into(),
        series: vec![
            Series { label: "Cached".into(), points: cached },
            Series { label: "RetestAll".into(), points: uncached },
        ],
    }
}

/// The paper's enhancement (1) disabled: retest every leaf each round.
fn cim_no_cache(q: &TreePattern) -> TreePattern {
    let mut work = q.clone();
    loop {
        let mut progress = false;
        let leaves: Vec<_> =
            work.leaves().into_iter().filter(|&l| l != work.root() && l != work.output()).collect();
        for l in leaves {
            if work.is_alive(l) && tpq_core::redundant_leaf(&work, l) {
                work.remove_leaf(l).expect("leaf");
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }
    work.compact().0
}

/// Why minimize at all: embedding-set evaluation cost before vs after
/// minimization on a synthetic department database.
fn ablate_matching(cfg: &ExpConfig) -> Panel {
    let mut tys = tpq_base::TypeInterner::new();
    let full =
        tpq_pattern::parse_pattern("Dept*[//Proj][//Proj][//Mgr//Proj][//Mgr//Proj]", &mut tys)
            .unwrap();
    let minimal = cim(&full);
    let mut before = Vec::new();
    let mut after = Vec::new();
    let xs = cfg.grid(&[50, 100, 200, 400], &[50, 200]);
    for &x in &xs {
        let doc = department_doc(x as usize, &mut tys);
        let (f_m, fa) = measure_micros(cfg.iters, || tpq_match::answer_set(&full, &doc));
        let (m_m, ma) = measure_micros(cfg.iters, || tpq_match::answer_set(&minimal, &doc));
        assert_eq!(fa.len(), ma.len());
        before.push(Point::timed(x, f_m));
        after.push(Point::timed(x, m_m));
    }
    Panel {
        id: "ablate-matching".into(),
        title: "matching cost: original vs minimized pattern".into(),
        x_label: "DocNodes".into(),
        unit: crate::UNIT_MICROS.into(),
        series: vec![
            Series { label: "Original".into(), points: before },
            Series { label: "Minimized".into(), points: after },
        ],
    }
}

fn department_doc(n: usize, tys: &mut tpq_base::TypeInterner) -> tpq_data::Document {
    let dept = tys.intern("Dept");
    let mgr = tys.intern("Mgr");
    let proj = tys.intern("Proj");
    let mut doc = tpq_data::Document::new(dept);
    let mut mgr_node = doc.add_child(doc.root(), mgr);
    let mut i = 2;
    while i < n {
        let m = doc.add_child(mgr_node, proj);
        let _ = m;
        i += 1;
        if i % 5 == 0 && i < n {
            mgr_node = doc.add_child(doc.root(), mgr);
            i += 1;
        }
    }
    doc
}

/// All standard panels, in figure order. Includes the derived
/// observability panels (cache hit rates, batch speedup, serve latency
/// quantiles) after the paper figures and ablations.
pub fn all_panels(cfg: &ExpConfig) -> Vec<Panel> {
    let mut v = vec![
        fig7a(cfg),
        fig7b(cfg),
        fig8a(cfg),
        fig8b(cfg),
        fig8b_fanout(cfg),
        fig9a(cfg),
        fig9b(cfg),
    ];
    v.extend(ablations(cfg));
    let (timing, speedup) = batch_with_speedup(cfg);
    v.push(timing);
    v.push(speedup);
    v.push(cache(cfg));
    v.push(crate::serve_panel::serve_latency(cfg));
    v.push(crate::match_panel::match_throughput(cfg));
    v.push(crate::match_panel::minimize_then_match(cfg));
    v.push(crate::degradation_panel::serve_degradation(cfg));
    v
}

/// Panels needed to validate correctness quickly (reduced grids) — used
/// by the harness self-test.
pub fn smoke() -> Vec<Panel> {
    let cfg = ExpConfig::quick();
    vec![fig9a(&cfg), fig8a(&cfg)]
}

/// Keep a type-level guarantee that the panel ids are unique.
pub fn check_unique_ids(panels: &[Panel]) -> bool {
    let mut seen = FxHashSet::default();
    panels.iter().all(|p| seen.insert(p.id.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_ids_unique_and_series_non_empty() {
        // Use the cheap panels to keep test time low.
        let cfg = ExpConfig::quick();
        let panels = vec![fig9a(&cfg), fig9b(&cfg)];
        assert!(check_unique_ids(&panels));
        for p in &panels {
            assert!(!p.series.is_empty());
            for s in &p.series {
                assert!(!s.points.is_empty());
                for pt in &s.points {
                    assert!(pt.min_micros <= pt.micros && pt.micros <= pt.max_micros);
                }
            }
        }
    }

    #[test]
    fn fig9a_cdm_is_faster_than_acim_at_scale() {
        let p = fig9a(&ExpConfig::quick());
        let acim_last = p.series[0].points.last().unwrap().micros;
        let cdm_last = p.series[1].points.last().unwrap().micros;
        assert!(
            cdm_last < acim_last,
            "CDM ({cdm_last}us) should beat ACIM ({acim_last}us) at size 100"
        );
    }

    #[test]
    fn cache_panel_converges_to_full_hit_rates() {
        let _guard = crate::global_cache_test_lock();
        let p = cache(&ExpConfig::quick());
        assert_eq!(p.unit, UNIT_PERCENT);
        assert_eq!(p.series.len(), 3);
        for s in &p.series {
            let last = s.points.last().unwrap();
            assert!(
                last.micros > 99.0,
                "{} should be all hits by round 3, got {:.1}%",
                s.label,
                last.micros
            );
        }
        // The batch memo's first round serves 3 of every 4 duplicates from
        // the in-batch fold, so even round 1 has hits — but fewer than a
        // warmed round.
        let memo = &p.series[0];
        assert!(memo.points[0].micros < memo.points[2].micros);
    }
}
