//! One function per figure panel of the paper's Section 6, returning
//! measured [`Panel`]s. The `experiments` binary prints them; the
//! Criterion benches measure the same workloads.
//!
//! Absolute numbers differ from the paper's 2001 hardware; the
//! reproduction target is the *shape* of each curve (see EXPERIMENTS.md).

use crate::{median_micros, Panel, Point, Series};
use tpq_base::FxHashSet;
use tpq_core::{
    acim_closed, acim_incremental_closed, cdm_closed, cim, minimize_with, MinimizeStats, Strategy,
};
use tpq_pattern::TreePattern;
use tpq_workload::{
    ic_chain_query, prefilter_query, redundancy_query, relevant_constraints, shaped_ic_query,
    RedundancySpec,
};

/// Iterations per measured point (median is reported).
const ITERS: usize = 7;

/// Figure 7(a): ACIM time as a function of `RedDegree × RedNodes` for a
/// 101-node query, at 0 / 50 / 100 / 150 relevant constraints.
pub fn fig7a() -> Panel {
    let degree = 2;
    let xs: Vec<u64> = (1..=9).map(|i| i * 10).collect();
    let mut series = Vec::new();
    for k in [0usize, 50, 100, 150] {
        let mut points = Vec::new();
        for &x in &xs {
            let red = (x as usize) / degree;
            let q = redundancy_query(&RedundancySpec {
                total_nodes: 101,
                redundant_nodes: red,
                degree,
            });
            let ics = relevant_constraints(&q, k).closure();
            let (micros, out) = median_micros(ITERS, || {
                let mut stats = MinimizeStats::default();
                acim_incremental_closed(&q.pattern, &ics, &mut stats)
            });
            assert_eq!(out.size(), q.expected_minimal_size);
            points.push(Point { x, micros, aux_micros: None });
        }
        series.push(Series { label: format!("{k}Constraints"), points });
    }
    Panel {
        id: "fig7a".into(),
        title: "ACIM: varying redundancy and constraints (101-node query)".into(),
        x_label: "RedDeg*RedN".into(),
        series,
    }
}

/// Figure 7(b): total ACIM time vs time spent building the images and
/// ancestor/descendant tables, on a 101-node chain where the bottom `r`
/// nodes are IC-redundant.
pub fn fig7b() -> Panel {
    let chain = ic_chain_query(101);
    let xs: Vec<u64> = (1..=10).map(|i| i * 10).collect();
    let mut total = Vec::new();
    let mut tables = Vec::new();
    for &x in &xs {
        // Keep only the constraints for the deepest x edges so exactly x
        // nodes are redundant.
        let keep: Vec<_> = {
            let all: Vec<_> = chain.constraints.iter().collect();
            // Constraints were inserted per edge from the top; retain the
            // ones whose lhs is deepest. Sort by type index (= depth).
            let mut v = all;
            v.sort_by_key(|c| std::cmp::Reverse(c.lhs().0));
            v.into_iter().take(x as usize).collect()
        };
        let ics: tpq_constraints::ConstraintSet =
            keep.into_iter().collect::<tpq_constraints::ConstraintSet>().closure();
        // Sample total and tables time from the SAME runs so the ratio is
        // meaningful, then take per-metric medians.
        let mut totals = Vec::with_capacity(ITERS);
        let mut tabs = Vec::with_capacity(ITERS);
        for i in 0..=ITERS {
            let mut stats = MinimizeStats::default();
            let out = acim_incremental_closed(&chain.pattern, &ics, &mut stats);
            assert_eq!(out.size(), 101 - x as usize);
            if i > 0 {
                // first run is warmup
                totals.push(stats.total_time.as_secs_f64() * 1e6);
                tabs.push(stats.tables_time.as_secs_f64() * 1e6);
            }
        }
        totals.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        tabs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let micros = totals[totals.len() / 2];
        let tables_us = tabs[tabs.len() / 2];
        total.push(Point { x, micros, aux_micros: Some(tables_us) });
        tables.push(Point { x, micros: tables_us, aux_micros: None });
    }
    Panel {
        id: "fig7b".into(),
        title: "ACIM: total time vs images/ancestor table time (101-node chain)".into(),
        x_label: "RedNodes".into(),
        series: vec![
            Series { label: "TotalTime".into(), points: total },
            Series { label: "TablesTime".into(), points: tables },
        ],
    }
}

/// Figure 8(a): CDM time is flat in the number of constraints in the
/// repository (127-node c-edge chain; `->>` constraints are relevant —
/// they mention query types — but trigger no local rule on c-edges, as in
/// the paper every check is a hash probe).
pub fn fig8a() -> Panel {
    let chain = ic_chain_query(127);
    let mut points = Vec::new();
    for k in (0..=150).step_by(10) {
        // Relevant `->>` constraints over non-adjacent chain types.
        let mut ics = tpq_constraints::ConstraintSet::new();
        let mut produced = 0;
        'outer: for gap in 2u32..127 {
            for i in 0..(127 - gap) {
                if produced == k {
                    break 'outer;
                }
                let a = chain.pattern.node(tpq_pattern::NodeId(i)).primary;
                let b = chain.pattern.node(tpq_pattern::NodeId(i + gap)).primary;
                if ics.insert(tpq_constraints::Constraint::RequiredDescendant(a, b)) {
                    produced += 1;
                }
            }
        }
        let closed = ics.closure();
        let (micros, out) = median_micros(ITERS, || {
            let mut stats = MinimizeStats::default();
            cdm_closed(&chain.pattern, &closed, &mut stats)
        });
        assert_eq!(out.size(), 127, "no local redundancy on a c-edge chain");
        points.push(Point { x: k as u64, micros, aux_micros: None });
    }
    Panel {
        id: "fig8a".into(),
        title: "CDM: time vs number of constraints (127-node query)".into(),
        x_label: "Constraints".into(),
        series: vec![Series { label: "CDMconstant".into(), points }],
    }
}

/// Figure 8(b): CDM time vs query size for right-deep, bushy and wider
/// fanout shapes (all edges IC-redundant; only the root survives).
pub fn fig8b() -> Panel {
    let xs: Vec<u64> = (1..=14).map(|i| i * 10).collect();
    let shapes = [("RightDeep", 1usize), ("Bushy", 2), ("VaryingFanout", 4)];
    let mut series = Vec::new();
    for (label, fanout) in shapes {
        let mut points = Vec::new();
        for &x in &xs {
            let q = shaped_ic_query(x as usize, fanout);
            let closed = q.constraints.closure();
            let (micros, out) = median_micros(ITERS, || {
                let mut stats = MinimizeStats::default();
                cdm_closed(&q.pattern, &closed, &mut stats)
            });
            assert_eq!(out.size(), 1);
            points.push(Point { x, micros, aux_micros: None });
        }
        series.push(Series { label: label.into(), points });
    }
    Panel {
        id: "fig8b".into(),
        title: "CDM: time vs query size and shape (all edges redundant)".into(),
        x_label: "QuerySize".into(),
        series,
    }
}

/// Companion to Figure 8(b)'s discussion: CDM time vs node fanout at a
/// fixed query size (the paper: "CDM behaves in a quadratic fashion with
/// respect to the node fanout").
pub fn fig8b_fanout() -> Panel {
    let n = 121;
    let mut points = Vec::new();
    for fanout in 1..=12u64 {
        let q = shaped_ic_query(n, fanout as usize);
        let closed = q.constraints.closure();
        let (micros, out) = median_micros(ITERS, || {
            let mut stats = MinimizeStats::default();
            cdm_closed(&q.pattern, &closed, &mut stats)
        });
        assert_eq!(out.size(), 1);
        points.push(Point { x: fanout, micros, aux_micros: None });
    }
    Panel {
        id: "fig8b-fanout".into(),
        title: format!("CDM: time vs fanout ({n}-node query)"),
        x_label: "Fanout".into(),
        series: vec![Series { label: "VaryingFanout".into(), points }],
    }
}

/// Figure 9(a): ACIM vs CDM on queries where both remove the same nodes.
pub fn fig9a() -> Panel {
    let xs: Vec<u64> = (1..=10).map(|i| i * 10).collect();
    let mut acim_pts = Vec::new();
    let mut cdm_pts = Vec::new();
    for &x in &xs {
        let q = ic_chain_query(x as usize);
        let closed = q.constraints.closure();
        let (a_us, a_out) = median_micros(ITERS, || {
            let mut stats = MinimizeStats::default();
            acim_incremental_closed(&q.pattern, &closed, &mut stats)
        });
        let (c_us, c_out) = median_micros(ITERS, || {
            let mut stats = MinimizeStats::default();
            cdm_closed(&q.pattern, &closed, &mut stats)
        });
        assert_eq!(a_out.size(), 1);
        assert_eq!(c_out.size(), 1, "CDM removes the same set here");
        acim_pts.push(Point { x, micros: a_us, aux_micros: None });
        cdm_pts.push(Point { x, micros: c_us, aux_micros: None });
    }
    Panel {
        id: "fig9a".into(),
        title: "ACIM vs CDM removing the same nodes, varying query size".into(),
        x_label: "QuerySize".into(),
        series: vec![
            Series { label: "ACIM".into(), points: acim_pts },
            Series { label: "CDM".into(), points: cdm_pts },
        ],
    }
}

/// Figure 9(b): direct ACIM vs CDM-prefilter-then-ACIM on queries where
/// CDM removes half of what ACIM can.
pub fn fig9b() -> Panel {
    let xs: Vec<u64> = (1..=10).map(|i| i * 10).collect();
    let mut direct_pts = Vec::new();
    let mut combined_pts = Vec::new();
    for &x in &xs {
        let k = ((x as usize).saturating_sub(1) / 3).max(1);
        let q = prefilter_query(k);
        let (d_us, d_out) =
            median_micros(ITERS, || minimize_with(&q.pattern, &q.constraints, Strategy::AcimOnly));
        let (c_us, c_out) = median_micros(ITERS, || {
            minimize_with(&q.pattern, &q.constraints, Strategy::CdmThenAcim)
        });
        assert_eq!(d_out.pattern.size(), q.pattern.size() - q.acim_removable);
        assert_eq!(c_out.pattern.size(), d_out.pattern.size());
        direct_pts.push(Point { x, micros: d_us, aux_micros: None });
        combined_pts.push(Point { x, micros: c_us, aux_micros: None });
    }
    Panel {
        id: "fig9b".into(),
        title: "ACIM alone vs CDM as a pre-filter (CDM removes half)".into(),
        x_label: "QuerySize".into(),
        series: vec![
            Series { label: "ACIM".into(), points: direct_pts },
            Series { label: "CDMACIM".into(), points: combined_pts },
        ],
    }
}

/// Parallel batch minimization over the Figure 7(a) workload family: 500
/// queries (125 distinct specs, each appearing 4×) minimized by
/// [`tpq_core::BatchMinimizer`] at increasing worker counts. The `Cold`
/// series starts from an empty memo cache each run (in-batch duplicates
/// still fold, so 125 minimizations serve 500 queries); the `Warm` series
/// re-runs the same batch on the warmed engine, where every query is a
/// cache hit. Speedup at `--jobs N` is `Cold(x=1) / Cold(x=N)` — on a
/// multi-core host it tracks the worker count until the key pass and
/// memory bandwidth dominate.
pub fn batch() -> Panel {
    // Degree starts at 2: with a degree-1 witness the shared `tF0 ->> tX`
    // constraint makes the lone witness leaf itself removable, which would
    // put the generator's expected size off by one for that slice.
    let specs: Vec<RedundancySpec> = (2..=6)
        .flat_map(|degree| {
            (1..=25).map(move |red| RedundancySpec {
                total_nodes: 33,
                redundant_nodes: red,
                degree,
            })
        })
        .collect();
    let generated: Vec<_> = specs.iter().map(redundancy_query).collect();
    let mut queries: Vec<TreePattern> = Vec::with_capacity(4 * generated.len());
    let mut expected: Vec<usize> = Vec::with_capacity(4 * generated.len());
    for _ in 0..4 {
        for g in &generated {
            queries.push(g.pattern.clone());
            expected.push(g.expected_minimal_size);
        }
    }
    // All specs intern tR, tX, tF0.. in the same order, so type ids agree
    // across the family and one constraint set covers the whole batch.
    let most_fillers =
        generated.iter().max_by_key(|g| g.filler_types.len()).expect("non-empty family");
    let ics = relevant_constraints(most_fillers, 20);
    let mut cold = Vec::new();
    let mut warm = Vec::new();
    for jobs in [1u64, 2, 4, 8] {
        let (cold_us, outcome) = median_micros(3, || {
            let engine = tpq_core::BatchMinimizer::new(&ics);
            engine.minimize_batch(&queries, jobs as usize)
        });
        for (m, want) in outcome.patterns.iter().zip(&expected) {
            assert_eq!(m.size(), *want, "batch result disagrees with the generator");
        }
        assert_eq!(outcome.stats.unique, generated.len(), "duplicates must fold");
        let warm_engine = tpq_core::BatchMinimizer::new(&ics);
        warm_engine.minimize_batch(&queries, jobs as usize); // prime the cache
        let (warm_us, warm_out) =
            median_micros(3, || warm_engine.minimize_batch(&queries, jobs as usize));
        assert_eq!(warm_out.stats.cache_misses, 0, "warmed engine must serve all hits");
        cold.push(Point { x: jobs, micros: cold_us, aux_micros: None });
        warm.push(Point { x: jobs, micros: warm_us, aux_micros: None });
    }
    let base = cold[0].micros;
    for p in &cold {
        eprintln!(
            "batch: jobs={} cold {:.0}us ({:.2}x vs jobs=1)",
            p.x,
            p.micros,
            base / p.micros.max(1.0)
        );
    }
    Panel {
        id: "batch".into(),
        title: "parallel batch minimization: 500 Figure-7 queries, cold vs warm cache".into(),
        x_label: "Jobs".into(),
        series: vec![
            Series { label: "ColdCache".into(), points: cold },
            Series { label: "WarmCache".into(), points: warm },
        ],
    }
}

/// Ablations of the design choices called out in DESIGN.md §3.
pub fn ablations() -> Vec<Panel> {
    vec![ablate_containment(), ablate_cim_cache(), ablate_incremental(), ablate_matching()]
}

/// Rebuild-per-test ACIM (the literal Figure 3 loop) vs the incremental
/// engine (Section 6.1: persistent hash-table images, rebuilt only on
/// removal).
fn ablate_incremental() -> Panel {
    let mut rebuilding = Vec::new();
    let mut incremental = Vec::new();
    for x in [10u64, 30, 50, 70, 90] {
        let q = redundancy_query(&RedundancySpec {
            total_nodes: 101,
            redundant_nodes: x as usize / 2,
            degree: 2,
        });
        let closed = relevant_constraints(&q, 50).closure();
        let (r_us, r_out) = median_micros(3, || {
            let mut stats = MinimizeStats::default();
            acim_closed(&q.pattern, &closed, &mut stats)
        });
        let (i_us, i_out) = median_micros(ITERS, || {
            let mut stats = MinimizeStats::default();
            acim_incremental_closed(&q.pattern, &closed, &mut stats)
        });
        assert_eq!(r_out.size(), q.expected_minimal_size);
        assert_eq!(i_out.size(), q.expected_minimal_size);
        rebuilding.push(Point { x, micros: r_us, aux_micros: None });
        incremental.push(Point { x, micros: i_us, aux_micros: None });
    }
    Panel {
        id: "ablate-incremental".into(),
        title: "ACIM: rebuild-per-test vs maintained images tables (101-node query)".into(),
        x_label: "RedDeg*RedN".into(),
        series: vec![
            Series { label: "RebuildPerTest".into(), points: rebuilding },
            Series { label: "Incremental".into(), points: incremental },
        ],
    }
}

/// Images-pruning containment vs brute-force backtracking, on the
/// backtracker's worst case: a d-edge chain of one repeated type mapping
/// into a longer chain whose required tail type is missing — the naive
/// search enumerates every descending assignment before failing, while
/// pruning rejects in polynomial time.
fn ablate_containment() -> Panel {
    let mut tys = tpq_base::TypeInterner::new();
    let a = tys.intern("a");
    let c = tys.intern("c");
    let mut pruned = Vec::new();
    let mut naive = Vec::new();
    for k in [4u64, 5, 6, 7, 8] {
        // from: a //a //… //a //c   (k a-nodes then a c)
        let mut from = TreePattern::new(a);
        let mut cur = from.root();
        for _ in 1..k {
            cur = from.add_child(cur, tpq_pattern::EdgeKind::Descendant, a);
        }
        from.add_child(cur, tpq_pattern::EdgeKind::Descendant, c);
        // to: a //a //… //a  (2k a-nodes, no c anywhere)
        let mut to = TreePattern::new(a);
        let mut cur = to.root();
        for _ in 1..2 * k {
            cur = to.add_child(cur, tpq_pattern::EdgeKind::Descendant, a);
        }
        let (p_us, r1) = median_micros(ITERS, || tpq_core::has_homomorphism(&from, &to));
        let (n_us, r2) = median_micros(3, || tpq_core::has_homomorphism_naive(&from, &to));
        assert!(!r1 && !r2);
        pruned.push(Point { x: k, micros: p_us, aux_micros: None });
        naive.push(Point { x: k, micros: n_us, aux_micros: None });
    }
    Panel {
        id: "ablate-containment".into(),
        title: "containment: images pruning vs backtracking (no-match chains)".into(),
        x_label: "ChainLen".into(),
        series: vec![
            Series { label: "Pruning".into(), points: pruned },
            Series { label: "Backtracking".into(), points: naive },
        ],
    }
}

/// CIM with the "never retest non-redundant leaves" enhancement
/// (Figure 3 enhancement (1)) vs a naive loop that retests every leaf in
/// every round. The workload maximizes rounds: a duplicated deep chain
/// (one leaf removable per round → `depth` rounds) plus many
/// non-redundant leaves that the naive loop re-tests each round.
fn ablate_cim_cache() -> Panel {
    let mut tys = tpq_base::TypeInterner::new();
    let mut cached = Vec::new();
    let mut uncached = Vec::new();
    for depth in [5u64, 10, 15, 20] {
        let root_ty = tys.intern("root");
        let chain_ty = tys.intern("link");
        let mut q = TreePattern::new(root_ty);
        let root = q.root();
        // 30 distinct-type, non-redundant leaves.
        for i in 0..30 {
            let t = tys.intern(&format!("leaf{i}"));
            q.add_child(root, tpq_pattern::EdgeKind::Child, t);
        }
        // Original chain + duplicate (folds one leaf per round).
        for _ in 0..2 {
            let mut cur = root;
            for _ in 0..depth {
                cur = q.add_child(cur, tpq_pattern::EdgeKind::Descendant, chain_ty);
            }
        }
        let (c_us, c_out) = median_micros(ITERS, || cim(&q));
        let (u_us, u_out) = median_micros(3, || cim_no_cache(&q));
        assert_eq!(c_out.size(), u_out.size());
        assert_eq!(c_out.size(), 31 + depth as usize);
        cached.push(Point { x: depth, micros: c_us, aux_micros: None });
        uncached.push(Point { x: depth, micros: u_us, aux_micros: None });
    }
    Panel {
        id: "ablate-cim-cache".into(),
        title: "CIM: non-redundant caching (enhancement 1) on vs off".into(),
        x_label: "ChainDepth".into(),
        series: vec![
            Series { label: "Cached".into(), points: cached },
            Series { label: "RetestAll".into(), points: uncached },
        ],
    }
}

/// The paper's enhancement (1) disabled: retest every leaf each round.
fn cim_no_cache(q: &TreePattern) -> TreePattern {
    let mut work = q.clone();
    loop {
        let mut progress = false;
        let leaves: Vec<_> =
            work.leaves().into_iter().filter(|&l| l != work.root() && l != work.output()).collect();
        for l in leaves {
            if work.is_alive(l) && tpq_core::redundant_leaf(&work, l) {
                work.remove_leaf(l).expect("leaf");
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }
    work.compact().0
}

/// Why minimize at all: embedding-set evaluation cost before vs after
/// minimization on a synthetic department database.
fn ablate_matching() -> Panel {
    let mut tys = tpq_base::TypeInterner::new();
    let full =
        tpq_pattern::parse_pattern("Dept*[//Proj][//Proj][//Mgr//Proj][//Mgr//Proj]", &mut tys)
            .unwrap();
    let minimal = cim(&full);
    let mut before = Vec::new();
    let mut after = Vec::new();
    for x in [50u64, 100, 200, 400] {
        let doc = department_doc(x as usize, &mut tys);
        let (f_us, fa) = median_micros(ITERS, || tpq_match::answer_set(&full, &doc));
        let (m_us, ma) = median_micros(ITERS, || tpq_match::answer_set(&minimal, &doc));
        assert_eq!(fa.len(), ma.len());
        before.push(Point { x, micros: f_us, aux_micros: None });
        after.push(Point { x, micros: m_us, aux_micros: None });
    }
    Panel {
        id: "ablate-matching".into(),
        title: "matching cost: original vs minimized pattern".into(),
        x_label: "DocNodes".into(),
        series: vec![
            Series { label: "Original".into(), points: before },
            Series { label: "Minimized".into(), points: after },
        ],
    }
}

fn department_doc(n: usize, tys: &mut tpq_base::TypeInterner) -> tpq_data::Document {
    let dept = tys.intern("Dept");
    let mgr = tys.intern("Mgr");
    let proj = tys.intern("Proj");
    let mut doc = tpq_data::Document::new(dept);
    let mut mgr_node = doc.add_child(doc.root(), mgr);
    let mut i = 2;
    while i < n {
        let m = doc.add_child(mgr_node, proj);
        let _ = m;
        i += 1;
        if i % 5 == 0 && i < n {
            mgr_node = doc.add_child(doc.root(), mgr);
            i += 1;
        }
    }
    doc
}

/// All standard panels, in figure order.
pub fn all_panels() -> Vec<Panel> {
    let mut v = vec![fig7a(), fig7b(), fig8a(), fig8b(), fig8b_fanout(), fig9a(), fig9b()];
    v.extend(ablations());
    v.push(batch());
    v
}

/// Panels needed to validate correctness quickly (reduced grids) — used
/// by the harness self-test.
pub fn smoke() -> Vec<Panel> {
    vec![fig9a(), fig8a()]
}

/// Keep a type-level guarantee that the panel ids are unique.
pub fn check_unique_ids(panels: &[Panel]) -> bool {
    let mut seen = FxHashSet::default();
    panels.iter().all(|p| seen.insert(p.id.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_ids_unique_and_series_non_empty() {
        // Use the cheap panels to keep test time low.
        let panels = vec![fig9a(), fig9b()];
        assert!(check_unique_ids(&panels));
        for p in &panels {
            assert!(!p.series.is_empty());
            for s in &p.series {
                assert!(!s.points.is_empty());
            }
        }
    }

    #[test]
    fn fig9a_cdm_is_faster_than_acim_at_scale() {
        let p = fig9a();
        let acim_last = p.series[0].points.last().unwrap().micros;
        let cdm_last = p.series[1].points.last().unwrap().micros;
        assert!(
            cdm_last < acim_last,
            "CDM ({cdm_last}us) should beat ACIM ({acim_last}us) at size 100"
        );
    }
}
